//! Minimal, offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate provides the (small) API subset SUNMAP actually uses:
//! [`Rng::gen_range`], [`Rng::gen_bool`], [`SeedableRng::seed_from_u64`]
//! and [`rngs::SmallRng`]. The generator is `xoshiro256++` seeded via
//! SplitMix64 — the same construction the real `SmallRng` uses on
//! 64-bit targets — so statistical quality is adequate for simulation
//! workloads. It is **not** cryptographically secure.

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// A random number generator seedable from a `u64`.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed (SplitMix64 expansion).
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be sampled uniformly from a range by an [`Rng`].
pub trait SampleRange<T> {
    /// Draws one uniform sample from `self`.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// High-level sampling methods, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a uniform value from `range` (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        // 53 random mantissa bits, exactly like rand's `f64` sampling.
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

macro_rules! int_sample_range {
    ($($t:ty),+) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end - self.start) as u64;
                // Debiased multiply-shift rejection (Lemire's method).
                loop {
                    let x = rng.next_u64();
                    let hi = ((x as u128 * span as u128) >> 64) as u64;
                    let lo = (x as u128 * span as u128) as u64;
                    if lo >= span || lo >= span.wrapping_neg() % span {
                        return self.start + hi as $t;
                    }
                }
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty inclusive range in gen_range");
                // Span arithmetic stays in u64 so `end == T::MAX` never
                // overflows; the one span that doesn't fit (MIN..=MAX of
                // a 64-bit type) is the trivial full-range draw.
                if (end - start) as u64 == u64::MAX {
                    return rng.next_u64() as $t;
                }
                let span = (end - start) as u64 + 1;
                let offset = SampleRange::sample_single(0u64..span, rng);
                start + offset as $t
            }
        }
    )+};
}

int_sample_range!(u8, u16, u32, u64, usize);

macro_rules! signed_sample_range {
    ($($t:ty => $u:ty),+) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = self.end.wrapping_sub(self.start) as $u as u64;
                let offset = SampleRange::sample_single(0u64..span, rng);
                self.start.wrapping_add(offset as $t)
            }
        }
    )+};
}

signed_sample_range!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "empty range in gen_range");
        let unit = (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32);
        self.start + unit * (self.end - self.start)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, non-cryptographic PRNG (`xoshiro256++`).
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(mut state: u64) -> Self {
            // SplitMix64 seed expansion, as recommended by the xoshiro
            // authors (and used by rand's seed_from_u64).
            let mut next = || {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            SmallRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
    }

    #[test]
    fn ranges_are_respected() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f: f64 = rng.gen_range(-2.0..3.5);
            assert!((-2.0..3.5).contains(&f));
            let i = rng.gen_range(-5i32..5);
            assert!((-5..5).contains(&i));
            let inc = rng.gen_range(1usize..=4);
            assert!((1..=4).contains(&inc));
        }
    }

    #[test]
    fn inclusive_ranges_reach_type_max() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut saw_max = false;
        for _ in 0..10_000 {
            let v = rng.gen_range(1u8..=u8::MAX);
            assert!(v >= 1);
            saw_max |= v == u8::MAX;
        }
        assert!(saw_max, "u8::MAX must be reachable");
        let w = rng.gen_range(0u64..=u64::MAX);
        let _ = w; // full-range draw must not panic
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(11);
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.25)).count();
        let rate = hits as f64 / 20_000.0;
        assert!((rate - 0.25).abs() < 0.02, "rate {rate}");
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }
}
