//! Minimal, offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate implements the subset of proptest that SUNMAP's property
//! tests use: the [`Strategy`](strategy::Strategy) trait with `prop_map` / `prop_flat_map`,
//! range and tuple strategies, [`collection::vec`], [`strategy::Just`],
//! and the [`proptest!`] / [`prop_assert!`] / [`prop_assert_eq!`] /
//! [`prop_assume!`] macros.
//!
//! Differences from real proptest: no shrinking (a failing case is
//! reported with its case number and message only), and generation is
//! deterministic per test name so failures reproduce exactly.

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// The glob-import surface, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};
}

/// Asserts a condition inside a `proptest!` body, failing the current
/// case (instead of panicking the whole runner) when it is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "{}", concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Asserts two expressions are equal inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{}` == `{}` (left: `{:?}`, right: `{:?}`)",
            stringify!($left),
            stringify!($right),
            left,
            right
        );
    }};
}

/// Rejects the current case (it is regenerated, not counted as a run)
/// when the precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}

/// Defines property tests: each `fn name(pat in strategy, ...)` item
/// becomes a `#[test]` that runs the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr)) => {};
    (($config:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            let mut rng = $crate::test_runner::TestRng::deterministic(concat!(
                module_path!(),
                "::",
                stringify!($name)
            ));
            let strategy = ($($strat,)+);
            let mut passed: u32 = 0;
            let mut attempts: u32 = 0;
            let max_attempts = config
                .cases
                .saturating_mul(config.max_global_rejects)
                .max(config.cases);
            while passed < config.cases {
                attempts += 1;
                assert!(
                    attempts <= max_attempts,
                    "proptest '{}': too many rejected cases ({} attempts for {} passes)",
                    stringify!($name),
                    attempts,
                    passed
                );
                let ($($arg,)+) =
                    $crate::strategy::Strategy::generate(&strategy, &mut rng);
                let outcome = (|| -> $crate::test_runner::TestCaseResult {
                    $body
                    ::core::result::Result::Ok(())
                })();
                match outcome {
                    ::core::result::Result::Ok(()) => passed += 1,
                    ::core::result::Result::Err(
                        $crate::test_runner::TestCaseError::Reject(_),
                    ) => {}
                    ::core::result::Result::Err(
                        $crate::test_runner::TestCaseError::Fail(message),
                    ) => {
                        panic!(
                            "proptest '{}' failed at case {}: {}",
                            stringify!($name),
                            passed,
                            message
                        );
                    }
                }
            }
        }
        $crate::__proptest_items! { ($config) $($rest)* }
    };
}
