//! Configuration, RNG, and case-outcome types for the [`proptest!`]
//! runner.
//!
//! [`proptest!`]: crate::proptest

/// Per-test configuration, mirroring `proptest::test_runner::Config`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of successful cases each property must pass.
    pub cases: u32,
    /// Multiplier bounding how many `prop_assume!` rejections are
    /// tolerated per requested case before the runner gives up.
    pub max_global_rejects: u32,
}

impl ProptestConfig {
    /// A config running `cases` successful cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..ProptestConfig::default()
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 64,
            max_global_rejects: 64,
        }
    }
}

/// Why a single generated case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// The case was rejected by `prop_assume!`; generate another.
    Reject(String),
    /// An assertion failed; the whole property fails.
    Fail(String),
}

impl TestCaseError {
    /// A rejection (from `prop_assume!`).
    pub fn reject(reason: impl Into<String>) -> Self {
        TestCaseError::Reject(reason.into())
    }

    /// A failure (from `prop_assert!`).
    pub fn fail(reason: impl Into<String>) -> Self {
        TestCaseError::Fail(reason.into())
    }
}

/// Result of one generated case inside a `proptest!` body.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Deterministic generation RNG (SplitMix64), seeded per test name so
/// each property replays the identical case sequence every run.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the RNG from a test's fully qualified name (FNV-1a hash).
    pub fn deterministic(name: &str) -> Self {
        let mut hash: u64 = 0xCBF2_9CE4_8422_2325;
        for byte in name.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: hash }
    }

    /// Returns the next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `usize` in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: usize) -> usize {
        debug_assert!(bound > 0);
        (self.next_u64() % bound as u64) as usize
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
