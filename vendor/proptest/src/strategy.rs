//! The [`Strategy`] trait and the combinators SUNMAP's tests use.

use std::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;

/// A recipe for generating values of one type.
///
/// Unlike real proptest there is no intermediate `ValueTree` and no
/// shrinking: a strategy draws a value directly from the runner's RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms every generated value with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { base: self, f }
    }

    /// Generates an intermediate value, then generates from the
    /// strategy `f` builds out of it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { base: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Always produces a clone of the wrapped value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.base.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Clone)]
pub struct FlatMap<S, F> {
    base: S,
    f: F,
}

impl<S, T, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    T: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T::Value;

    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.base.generate(rng)).generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty inclusive range strategy");
                let span = (end - start) as u64 + 1;
                start + (rng.next_u64() % span) as $t
            }
        }
    )+};
}

int_range_strategy!(u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
tuple_strategy!(A, B, C, D, E, F, G);
tuple_strategy!(A, B, C, D, E, F, G, H);
