//! Collection strategies (`proptest::collection`).

use std::ops::Range;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Anything usable as a collection size specification.
pub trait SizeRange {
    /// Draws a concrete length.
    fn pick(&self, rng: &mut TestRng) -> usize;
}

impl SizeRange for usize {
    fn pick(&self, _rng: &mut TestRng) -> usize {
        *self
    }
}

impl SizeRange for Range<usize> {
    fn pick(&self, rng: &mut TestRng) -> usize {
        assert!(self.start < self.end, "empty vec size range");
        self.start + rng.below(self.end - self.start)
    }
}

/// Generates `Vec`s whose length is drawn from `size` and whose
/// elements are drawn from `element`.
pub fn vec<S: Strategy, Z: SizeRange>(element: S, size: Z) -> VecStrategy<S, Z> {
    VecStrategy { element, size }
}

/// See [`vec()`].
#[derive(Clone)]
pub struct VecStrategy<S, Z> {
    element: S,
    size: Z,
}

impl<S: Strategy, Z: SizeRange> Strategy for VecStrategy<S, Z> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.size.pick(rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
