//! Minimal, offline stand-in for the `criterion` benchmark harness.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate implements the subset of criterion SUNMAP's benches use:
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::bench_with_input`], [`Bencher::iter`],
//! [`BenchmarkId`], and the [`criterion_group!`] / [`criterion_main!`]
//! macros.
//!
//! Measurement model: each benchmark runs a short warm-up, then
//! `sample_size` timed samples (batching very fast bodies so a sample
//! is long enough to time), and reports min / median / max per
//! iteration. There is no statistical regression analysis and no
//! report directory; output goes to stdout only.
//!
//! Like real criterion, passing `--test` on the bench binary's command
//! line (`cargo bench --bench <name> -- --test`) switches to smoke
//! mode: every benchmark body runs exactly once, unsampled, so CI can
//! validate that benches execute without paying for measurement.
//!
//! Smoke mode also emits a machine-readable summary: when the
//! `CRITERION_SMOKE_JSON` environment variable names a file, every
//! benchmark appends one JSON object per line
//! (`{"id":...,"mode":"smoke","duration_ns":...}`) to it. The repo's
//! `make bench-smoke` wraps those lines into `BENCH_results.json`,
//! which CI uploads as an artifact — the start of a per-commit perf
//! trajectory.

use std::fmt;
use std::io::Write as _;
use std::sync::OnceLock;
use std::time::{Duration, Instant};

/// Whether `--test` was passed to the bench binary (criterion's smoke
/// mode: run each benchmark once, skip warm-up and sampling).
fn test_mode() -> bool {
    static MODE: OnceLock<bool> = OnceLock::new();
    *MODE.get_or_init(|| std::env::args().any(|a| a == "--test"))
}

/// Top-level harness state, mirroring `criterion::Criterion`.
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            warm_up_time: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Sets how many timed samples each benchmark collects.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Sets the warm-up duration run before sampling starts.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(id, self.sample_size, self.warm_up_time, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
            warm_up_time: self.warm_up_time,
            _criterion: self,
        }
    }
}

/// A group of benchmarks sharing a name prefix and configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    warm_up_time: Duration,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the sample count for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Benchmarks `f` under `group_name/id`.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        run_benchmark(&full, self.sample_size, self.warm_up_time, &mut f);
        self
    }

    /// Benchmarks `f` with `input`, under `group_name/id`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id);
        run_benchmark(&full, self.sample_size, self.warm_up_time, &mut |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group (kept for API compatibility; no-op here).
    pub fn finish(self) {}
}

/// A benchmark identifier, mirroring `criterion::BenchmarkId`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    function_name: Option<String>,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// An id with both a function name and a parameter value.
    pub fn new<S: Into<String>, P: fmt::Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId {
            function_name: Some(function_name.into()),
            parameter: Some(parameter.to_string()),
        }
    }

    /// An id distinguished only by a parameter value.
    pub fn from_parameter<P: fmt::Display>(parameter: P) -> Self {
        BenchmarkId {
            function_name: None,
            parameter: Some(parameter.to_string()),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (&self.function_name, &self.parameter) {
            (Some(name), Some(p)) => write!(f, "{name}/{p}"),
            (Some(name), None) => write!(f, "{name}"),
            (None, Some(p)) => write!(f, "{p}"),
            (None, None) => write!(f, "unnamed"),
        }
    }
}

/// Passed to benchmark closures; times the routine under test.
pub struct Bencher {
    iters_per_sample: u64,
    samples: Vec<Duration>,
    measured: bool,
}

impl Bencher {
    /// Times `routine`, collecting the configured number of samples.
    /// In `--test` smoke mode the routine runs exactly once, untimed.
    pub fn iter<O, F>(&mut self, mut routine: F)
    where
        F: FnMut() -> O,
    {
        self.measured = true;
        if test_mode() {
            std::hint::black_box(routine());
            return;
        }
        // Calibrate batch size so one sample lasts >= ~1 ms even for
        // nanosecond-scale bodies.
        let probe = Instant::now();
        std::hint::black_box(routine());
        let once = probe.elapsed().max(Duration::from_nanos(1));
        let target = Duration::from_millis(1);
        self.iters_per_sample = (target.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;

        let sample_count = self.samples.capacity();
        for _ in 0..sample_count {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                std::hint::black_box(routine());
            }
            let elapsed = start.elapsed();
            self.samples.push(elapsed / self.iters_per_sample as u32);
        }
    }
}

/// Appends one JSON-lines record for a smoke-mode run to the file named
/// by `CRITERION_SMOKE_JSON`, if set. The single-execution duration is
/// *not* a statistical measurement — it is recorded so the smoke
/// artifact still sketches a coarse perf trajectory across commits.
fn record_smoke(id: &str, duration: Duration) {
    let Ok(path) = std::env::var("CRITERION_SMOKE_JSON") else {
        return;
    };
    let escaped: String = id
        .chars()
        .flat_map(|c| match c {
            '"' | '\\' => vec!['\\', c],
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect();
    let line = format!(
        "{{\"id\":\"{escaped}\",\"mode\":\"smoke\",\"duration_ns\":{}}}\n",
        duration.as_nanos()
    );
    let written = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .and_then(|mut f| f.write_all(line.as_bytes()));
    if let Err(e) = written {
        eprintln!("criterion: cannot record smoke result to {path}: {e}");
    }
}

fn run_benchmark<F>(id: &str, sample_size: usize, warm_up: Duration, f: &mut F)
where
    F: FnMut(&mut Bencher),
{
    if test_mode() {
        let mut bencher = Bencher {
            iters_per_sample: 1,
            samples: Vec::new(),
            measured: false,
        };
        let start = Instant::now();
        f(&mut bencher);
        record_smoke(id, start.elapsed());
        println!("{id:<50} (smoke: ran once, not measured)");
        return;
    }
    // Warm-up: run the closure body (un-sampled) until the budget is
    // spent at least once.
    let warm_start = Instant::now();
    loop {
        let mut warm_bencher = Bencher {
            iters_per_sample: 1,
            samples: Vec::with_capacity(2),
            measured: false,
        };
        f(&mut warm_bencher);
        if warm_start.elapsed() >= warm_up || !warm_bencher.measured {
            break;
        }
    }

    let mut bencher = Bencher {
        iters_per_sample: 1,
        samples: Vec::with_capacity(sample_size),
        measured: false,
    };
    f(&mut bencher);

    if !bencher.measured {
        println!("{id:<50} (no measurement: closure never called iter)");
        return;
    }
    let mut samples = bencher.samples;
    samples.sort_unstable();
    let min = samples[0];
    let max = samples[samples.len() - 1];
    let median = samples[samples.len() / 2];
    println!(
        "{:<50} time: [{} {} {}]",
        id,
        format_duration(min),
        format_duration(median),
        format_duration(max)
    );
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos >= 1_000_000_000 {
        format!("{:.4} s", nanos as f64 / 1e9)
    } else if nanos >= 1_000_000 {
        format!("{:.4} ms", nanos as f64 / 1e6)
    } else if nanos >= 1_000 {
        format!("{:.4} µs", nanos as f64 / 1e3)
    } else {
        format!("{nanos} ns")
    }
}

/// Re-export matching criterion's convenience export; benches may use
/// either this or `std::hint::black_box`.
pub use std::hint::black_box;

/// Bundles benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Generates the `main` function running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_collects_samples() {
        let mut c = Criterion::default()
            .sample_size(5)
            .warm_up_time(Duration::from_millis(1));
        c.bench_function("smoke/sum", |b| {
            b.iter(|| (0..100u64).sum::<u64>());
        });
    }

    #[test]
    fn group_api_matches_usage() {
        let mut c = Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1));
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        group.bench_with_input(BenchmarkId::from_parameter("x"), &41u64, |b, v| {
            b.iter(|| v + 1)
        });
        group.bench_function("plain", |b| b.iter(|| 2 + 2));
        group.finish();
    }

    #[test]
    fn benchmark_id_display_forms() {
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
        assert_eq!(BenchmarkId::from_parameter("vopd").to_string(), "vopd");
    }

    #[test]
    fn smoke_mode_runs_body_once_per_bencher() {
        // The unit-test binary is not invoked with --test on its argv,
        // so test_mode() is false here; assert the flag parse itself.
        assert!(!test_mode());
    }

    #[test]
    fn smoke_records_are_json_lines() {
        let path = std::env::temp_dir().join("criterion_smoke_test.jsonl");
        let _ = std::fs::remove_file(&path);
        std::env::set_var("CRITERION_SMOKE_JSON", &path);
        record_smoke("group/bench \"q\"", Duration::from_nanos(1234));
        record_smoke("group/other", Duration::from_micros(5));
        std::env::remove_var("CRITERION_SMOKE_JSON");
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(
            lines[0],
            "{\"id\":\"group/bench \\\"q\\\"\",\"mode\":\"smoke\",\"duration_ns\":1234}"
        );
        assert!(lines[1].contains("\"duration_ns\":5000"));
        let _ = std::fs::remove_file(&path);
    }
}
