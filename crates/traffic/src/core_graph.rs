//! The application core graph (paper Definition 1).

use std::collections::BTreeMap;

/// Index of a core in a [`CoreGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct CoreId(pub usize);

impl CoreId {
    /// Raw index of the core.
    pub fn index(self) -> usize {
        self.0
    }
}

impl std::fmt::Display for CoreId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "c{}", self.0)
    }
}

impl From<usize> for CoreId {
    fn from(value: usize) -> Self {
        CoreId(value)
    }
}

/// A processor or memory core of the SoC. The paper takes per-core
/// area/power as tool inputs (§5); we carry area (for floorplanning)
/// and an aspect-ratio flexibility flag (soft vs hard block).
#[derive(Debug, Clone, PartialEq)]
pub struct Core {
    /// Human-readable core name ("vld", "sdram", ...).
    pub name: String,
    /// Core area in mm².
    pub area: f64,
    /// Whether the floorplanner may reshape the block within the
    /// permissible aspect-ratio range (soft block) or must keep it
    /// square-ish (hard block).
    pub soft: bool,
}

/// A single-commodity flow `d_k` (paper Eq. 2): one directed core-graph
/// edge with its bandwidth value `vl(d_k) = comm_{i,j}`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Commodity {
    /// Producing core (`source(d_k)` before mapping).
    pub src: CoreId,
    /// Consuming core.
    pub dst: CoreId,
    /// Bandwidth demand in MB/s.
    pub bandwidth: f64,
}

/// Errors from core-graph construction.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum TrafficError {
    /// Self-communication edges are not meaningful in the model.
    SelfEdge(CoreId),
    /// Bandwidth demands must be positive and finite.
    InvalidBandwidth(f64),
    /// Core areas must be positive and finite.
    InvalidArea(f64),
    /// An endpoint refers to a core that does not exist.
    UnknownCore(CoreId),
}

impl std::fmt::Display for TrafficError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TrafficError::SelfEdge(c) => write!(f, "core {c} cannot communicate with itself"),
            TrafficError::InvalidBandwidth(b) => {
                write!(f, "bandwidth must be positive and finite, got {b}")
            }
            TrafficError::InvalidArea(a) => {
                write!(f, "core area must be positive and finite, got {a}")
            }
            TrafficError::UnknownCore(c) => write!(f, "unknown core {c}"),
        }
    }
}

impl std::error::Error for TrafficError {}

/// The core graph `G(V, E)`: cores plus directed bandwidth-annotated
/// communication edges.
///
/// # Examples
///
/// ```
/// use sunmap_traffic::CoreGraph;
///
/// let mut g = CoreGraph::new();
/// let a = g.add_core("producer", 2.0);
/// let b = g.add_core("consumer", 2.0);
/// g.add_traffic(a, b, 150.0)?;
/// assert_eq!(g.total_traffic(), 150.0);
/// # Ok::<(), sunmap_traffic::TrafficError>(())
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CoreGraph {
    cores: Vec<Core>,
    edges: Vec<Commodity>,
}

impl CoreGraph {
    /// Creates an empty core graph.
    pub fn new() -> Self {
        CoreGraph::default()
    }

    /// Adds a soft core with the given name and area (mm²).
    ///
    /// # Panics
    ///
    /// Panics if `area` is non-positive or non-finite; use
    /// [`CoreGraph::try_add_core`] for validated insertion.
    pub fn add_core(&mut self, name: impl Into<String>, area: f64) -> CoreId {
        self.try_add_core(name, area, true)
            .expect("core area must be positive and finite")
    }

    /// Adds a core, choosing softness, with validation.
    ///
    /// # Errors
    ///
    /// Returns [`TrafficError::InvalidArea`] for non-positive or
    /// non-finite areas.
    pub fn try_add_core(
        &mut self,
        name: impl Into<String>,
        area: f64,
        soft: bool,
    ) -> Result<CoreId, TrafficError> {
        if !(area.is_finite() && area > 0.0) {
            return Err(TrafficError::InvalidArea(area));
        }
        let id = CoreId(self.cores.len());
        self.cores.push(Core {
            name: name.into(),
            area,
            soft,
        });
        Ok(id)
    }

    /// Adds a directed communication demand of `bandwidth` MB/s from
    /// `src` to `dst`. Parallel demands between the same pair accumulate.
    ///
    /// # Errors
    ///
    /// Returns an error for self-edges, unknown endpoints, or
    /// non-positive bandwidth.
    pub fn add_traffic(
        &mut self,
        src: CoreId,
        dst: CoreId,
        bandwidth: f64,
    ) -> Result<(), TrafficError> {
        if src == dst {
            return Err(TrafficError::SelfEdge(src));
        }
        for c in [src, dst] {
            if c.index() >= self.cores.len() {
                return Err(TrafficError::UnknownCore(c));
            }
        }
        if !(bandwidth.is_finite() && bandwidth > 0.0) {
            return Err(TrafficError::InvalidBandwidth(bandwidth));
        }
        if let Some(existing) = self.edges.iter_mut().find(|e| e.src == src && e.dst == dst) {
            existing.bandwidth += bandwidth;
        } else {
            self.edges.push(Commodity {
                src,
                dst,
                bandwidth,
            });
        }
        Ok(())
    }

    /// Number of cores `|V|`.
    pub fn core_count(&self) -> usize {
        self.cores.len()
    }

    /// Number of communication edges `|E|` (= number of commodities).
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// The core with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of bounds.
    pub fn core(&self, id: CoreId) -> &Core {
        &self.cores[id.index()]
    }

    /// All cores with their ids.
    pub fn cores(&self) -> impl Iterator<Item = (CoreId, &Core)> {
        self.cores.iter().enumerate().map(|(i, c)| (CoreId(i), c))
    }

    /// Looks a core up by name.
    pub fn core_by_name(&self, name: &str) -> Option<CoreId> {
        self.cores.iter().position(|c| c.name == name).map(CoreId)
    }

    /// The commodity set `D`, sorted by decreasing bandwidth — the order
    /// in which the mapping algorithm routes flows (Fig. 5 step 2).
    pub fn commodities(&self) -> Vec<Commodity> {
        let mut d = self.edges.clone();
        d.sort_by(|a, b| {
            b.bandwidth
                .total_cmp(&a.bandwidth)
                .then_with(|| (a.src, a.dst).cmp(&(b.src, b.dst)))
        });
        d
    }

    /// Raw edge list in insertion order.
    pub fn edges(&self) -> &[Commodity] {
        &self.edges
    }

    /// Sum of all bandwidth demands (MB/s).
    pub fn total_traffic(&self) -> f64 {
        self.edges.iter().map(|e| e.bandwidth).sum()
    }

    /// Total bandwidth a core sends plus receives. The greedy initial
    /// placement seeds the core maximising this (Fig. 5 step 1).
    pub fn communication_of(&self, core: CoreId) -> f64 {
        self.edges
            .iter()
            .filter(|e| e.src == core || e.dst == core)
            .map(|e| e.bandwidth)
            .sum()
    }

    /// The core with maximum total communication.
    ///
    /// Returns `None` for an empty graph.
    pub fn max_communication_core(&self) -> Option<CoreId> {
        (0..self.core_count()).map(CoreId).max_by(|a, b| {
            self.communication_of(*a)
                .total_cmp(&self.communication_of(*b))
                // Deterministic tie-break: lower id wins (max_by keeps
                // the last maximal element, so order the tie that way).
                .then_with(|| b.cmp(a))
        })
    }

    /// Bandwidth communicated between `core` and a set of placed cores
    /// (in either direction). Drives the greedy "most communication with
    /// placed cores" selection.
    pub fn communication_with(&self, core: CoreId, placed: &[CoreId]) -> f64 {
        self.edges
            .iter()
            .filter(|e| {
                (e.src == core && placed.contains(&e.dst))
                    || (e.dst == core && placed.contains(&e.src))
            })
            .map(|e| e.bandwidth)
            .sum()
    }

    /// Bandwidth matrix view: `matrix[i][j]` is the demand from core `i`
    /// to core `j` in MB/s.
    pub fn bandwidth_matrix(&self) -> Vec<Vec<f64>> {
        let n = self.core_count();
        let mut m = vec![vec![0.0; n]; n];
        for e in &self.edges {
            m[e.src.index()][e.dst.index()] += e.bandwidth;
        }
        m
    }

    /// Total area of all cores (mm²), the lower bound for any floorplan.
    pub fn total_core_area(&self) -> f64 {
        self.cores.iter().map(|c| c.area).sum()
    }

    /// Merges another graph's cores and traffic into `self`, returning
    /// the id offset that was applied to the other graph's cores.
    pub fn absorb(&mut self, other: &CoreGraph) -> usize {
        let offset = self.cores.len();
        self.cores.extend(other.cores.iter().cloned());
        for e in &other.edges {
            self.edges.push(Commodity {
                src: CoreId(e.src.index() + offset),
                dst: CoreId(e.dst.index() + offset),
                bandwidth: e.bandwidth,
            });
        }
        offset
    }
}

impl FromIterator<(String, f64)> for CoreGraph {
    /// Builds a graph of disconnected cores from `(name, area)` pairs.
    fn from_iter<T: IntoIterator<Item = (String, f64)>>(iter: T) -> Self {
        let mut g = CoreGraph::new();
        for (name, area) in iter {
            g.add_core(name, area);
        }
        g
    }
}

/// Convenience: build a graph from `(name, area)` pairs and
/// `(src_name, dst_name, bandwidth)` triples.
///
/// # Panics
///
/// Panics on unknown names, self-edges or invalid values — intended for
/// statically known benchmark tables.
pub(crate) fn graph_from_tables(cores: &[(&str, f64)], traffic: &[(&str, &str, f64)]) -> CoreGraph {
    let mut g = CoreGraph::new();
    let mut ids = BTreeMap::new();
    for (name, area) in cores {
        ids.insert(*name, g.add_core(*name, *area));
    }
    for (src, dst, bw) in traffic {
        let s = ids[src];
        let d = ids[dst];
        g.add_traffic(s, d, *bw)
            .expect("benchmark tables are valid");
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> (CoreGraph, CoreId, CoreId, CoreId) {
        let mut g = CoreGraph::new();
        let a = g.add_core("a", 1.0);
        let b = g.add_core("b", 2.0);
        let c = g.add_core("c", 3.0);
        g.add_traffic(a, b, 100.0).unwrap();
        g.add_traffic(b, c, 50.0).unwrap();
        g.add_traffic(c, a, 10.0).unwrap();
        (g, a, b, c)
    }

    #[test]
    fn commodities_sorted_decreasing() {
        let (g, ..) = tiny();
        let d = g.commodities();
        let bws: Vec<f64> = d.iter().map(|c| c.bandwidth).collect();
        assert_eq!(bws, vec![100.0, 50.0, 10.0]);
    }

    #[test]
    fn parallel_demands_accumulate() {
        let mut g = CoreGraph::new();
        let a = g.add_core("a", 1.0);
        let b = g.add_core("b", 1.0);
        g.add_traffic(a, b, 10.0).unwrap();
        g.add_traffic(a, b, 5.0).unwrap();
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.total_traffic(), 15.0);
    }

    #[test]
    fn self_edges_rejected() {
        let mut g = CoreGraph::new();
        let a = g.add_core("a", 1.0);
        assert_eq!(g.add_traffic(a, a, 10.0), Err(TrafficError::SelfEdge(a)));
    }

    #[test]
    fn invalid_values_rejected() {
        let mut g = CoreGraph::new();
        let a = g.add_core("a", 1.0);
        let b = g.add_core("b", 1.0);
        assert!(g.add_traffic(a, b, 0.0).is_err());
        assert!(g.add_traffic(a, b, -1.0).is_err());
        assert!(g.add_traffic(a, b, f64::NAN).is_err());
        assert!(g.add_traffic(a, CoreId(9), 1.0).is_err());
        assert!(g.try_add_core("bad", -2.0, true).is_err());
        assert!(g.try_add_core("bad", f64::INFINITY, true).is_err());
    }

    #[test]
    fn communication_accounting() {
        let (g, a, b, c) = tiny();
        assert_eq!(g.communication_of(a), 110.0);
        assert_eq!(g.communication_of(b), 150.0);
        assert_eq!(g.max_communication_core(), Some(b));
        assert_eq!(g.communication_with(c, &[a]), 10.0);
        assert_eq!(g.communication_with(c, &[a, b]), 60.0);
        assert_eq!(g.communication_with(c, &[]), 0.0);
    }

    #[test]
    fn bandwidth_matrix_matches_edges() {
        let (g, a, b, _) = tiny();
        let m = g.bandwidth_matrix();
        assert_eq!(m[a.index()][b.index()], 100.0);
        assert_eq!(m[b.index()][a.index()], 0.0);
    }

    #[test]
    fn absorb_offsets_ids() {
        let (mut g, ..) = tiny();
        let (other, ..) = tiny();
        let offset = g.absorb(&other);
        assert_eq!(offset, 3);
        assert_eq!(g.core_count(), 6);
        assert_eq!(g.edge_count(), 6);
        assert_eq!(g.total_traffic(), 2.0 * 160.0);
    }

    #[test]
    fn from_iterator_builds_disconnected_cores() {
        let g: CoreGraph = [("x".to_string(), 1.0), ("y".to_string(), 2.0)]
            .into_iter()
            .collect();
        assert_eq!(g.core_count(), 2);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.core_by_name("y"), Some(CoreId(1)));
        assert_eq!(g.core_by_name("z"), None);
    }

    #[test]
    fn total_core_area_sums() {
        let (g, ..) = tiny();
        assert_eq!(g.total_core_area(), 6.0);
    }

    #[test]
    fn max_communication_tie_breaks_to_lowest_id() {
        let mut g = CoreGraph::new();
        let a = g.add_core("a", 1.0);
        let b = g.add_core("b", 1.0);
        g.add_traffic(a, b, 10.0).unwrap();
        // Both cores have total communication 10: lowest id wins.
        assert_eq!(g.max_communication_core(), Some(a));
    }
}
