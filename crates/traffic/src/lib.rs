//! Application traffic models for SUNMAP.
//!
//! SUNMAP abstracts inter-core communication as a *core graph* (paper
//! Definition 1): a directed graph whose vertices are cores and whose
//! edge weights are sustained bandwidth demands in MB/s. This crate
//! provides:
//!
//! * the [`CoreGraph`] data structure and its commodity view
//!   ([`Commodity`], paper Eq. 2);
//! * the four benchmark applications of the paper's evaluation, in
//!   [`benchmarks`]: the Video Object Plane Decoder, the MPEG4 decoder,
//!   the six-core DSP filter and the 16-node network processor;
//! * synthetic traffic patterns in [`patterns`] for simulator-driven
//!   experiments (uniform, transpose, bit-complement, bit-reversal,
//!   tornado, hotspot);
//! * a seeded synthetic core-graph generator in [`synthetic`], growing
//!   the workload space beyond the four transcribed benchmarks;
//! * the [`AppSource`] enum in [`source`]: the one typed way to name an
//!   application (built-in, `synth:` spec, inline graph, or `.app`
//!   file) across CLI positionals, batch manifests and serve frames.
//!
//! # Examples
//!
//! ```
//! use sunmap_traffic::benchmarks;
//!
//! let vopd = benchmarks::vopd();
//! assert_eq!(vopd.core_count(), 12);
//! // Commodities come out sorted by decreasing bandwidth, as the
//! // mapping algorithm of paper Fig. 5 requires.
//! let d = vopd.commodities();
//! assert!(d.windows(2).all(|w| w[0].bandwidth >= w[1].bandwidth));
//! ```

pub mod benchmarks;
mod core_graph;
pub mod io;
pub mod patterns;
pub mod source;
pub mod synthetic;

pub use core_graph::{Commodity, Core, CoreGraph, CoreId, TrafficError};
pub use source::AppSource;
