//! Seeded synthetic core-graph generation.
//!
//! The paper evaluates SUNMAP on four hand-transcribed benchmarks;
//! scaling the flow to a *corpus* of workloads needs applications on
//! demand. A [`SyntheticSpec`] describes one: core count, traffic
//! locality, hotspot skew and a log-uniform bandwidth distribution,
//! all expanded deterministically from a `u64` seed — the same spec
//! always yields the same [`CoreGraph`], bit for bit, so batch runs
//! over synthetic workloads are reproducible and shardable.
//!
//! Specs round-trip through a compact text form accepted anywhere an
//! application name is (CLI positionals, batch manifests):
//!
//! ```text
//! synth:seed=7,cores=32,locality=0.7,hotspot=0.2
//! ```
//!
//! # Examples
//!
//! ```
//! use sunmap_traffic::synthetic::SyntheticSpec;
//!
//! let spec: SyntheticSpec = "synth:seed=7,cores=24".parse()?;
//! let app = spec.generate();
//! assert_eq!(app.core_count(), 24);
//! // Deterministic: re-generating from the same spec is identical.
//! assert_eq!(app, spec.generate());
//! # Ok::<(), sunmap_traffic::synthetic::ParseSpecError>(())
//! ```

use std::str::FromStr;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::CoreGraph;

/// Largest supported synthetic core count (a 64×64 grid of switches is
/// already far beyond the topology sizes the library targets).
pub const MAX_CORES: usize = 4096;

/// Parameters of one synthetic application.
///
/// Construct via [`SyntheticSpec::new`] + builder-style setters or
/// parse from the `synth:key=value,...` text form; both validate.
#[derive(Debug, Clone, PartialEq)]
pub struct SyntheticSpec {
    /// RNG seed; everything else equal, distinct seeds give distinct
    /// traffic.
    pub seed: u64,
    /// Number of cores (2..=[`MAX_CORES`]).
    pub cores: usize,
    /// Traffic locality in `[0, 1]`: `0` spreads destinations over the
    /// whole id space, `1` confines them to immediate neighbours.
    pub locality: f64,
    /// Hotspot skew in `[0, 1]`: the probability that a flow is
    /// redirected to the designated hotspot core (core 0), modelling
    /// shared-memory contention.
    pub hotspot: f64,
    /// Outgoing flows drawn per core (each may merge with an existing
    /// parallel demand, so the realised edge count can be lower).
    pub degree: usize,
    /// Lower end of the log-uniform bandwidth distribution (MB/s).
    pub min_bandwidth: f64,
    /// Upper end of the log-uniform bandwidth distribution (MB/s).
    pub max_bandwidth: f64,
}

impl Default for SyntheticSpec {
    fn default() -> Self {
        SyntheticSpec {
            seed: 1,
            cores: 16,
            locality: 0.5,
            hotspot: 0.0,
            degree: 3,
            min_bandwidth: 25.0,
            max_bandwidth: 400.0,
        }
    }
}

/// Errors from [`SyntheticSpec`] validation and parsing.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ParseSpecError {
    /// The text did not start with the `synth:` prefix.
    MissingPrefix,
    /// A `key=value` item was malformed.
    BadItem(String),
    /// An unknown parameter key.
    UnknownKey(String),
    /// A parameter key appeared more than once. Silently letting the
    /// last occurrence win would make typos like
    /// `synth:seed=1,seed=2` unreproducible surprises, so duplicates
    /// are rejected like unknown keys are.
    DuplicateKey(String),
    /// A value failed to parse as its parameter's type.
    BadValue {
        /// The parameter key.
        key: &'static str,
        /// The offending text.
        text: String,
    },
    /// A parameter is outside its valid range.
    OutOfRange {
        /// The parameter key.
        key: &'static str,
        /// Human-readable valid range.
        range: &'static str,
    },
}

impl std::fmt::Display for ParseSpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseSpecError::MissingPrefix => {
                write!(f, "synthetic spec must start with 'synth:'")
            }
            ParseSpecError::BadItem(item) => {
                write!(f, "'{item}' is not a key=value parameter")
            }
            ParseSpecError::UnknownKey(key) => write!(
                f,
                "unknown synthetic parameter '{key}' (valid: {})",
                SyntheticSpec::KEYS.join(", ")
            ),
            ParseSpecError::DuplicateKey(key) => write!(
                f,
                "duplicate synthetic parameter '{key}' (each of {} may \
                 appear at most once)",
                SyntheticSpec::KEYS.join(", ")
            ),
            ParseSpecError::BadValue { key, text } => {
                write!(f, "'{text}' is not a valid value for '{key}'")
            }
            ParseSpecError::OutOfRange { key, range } => {
                write!(f, "'{key}' must be in {range}")
            }
        }
    }
}

impl std::error::Error for ParseSpecError {}

impl SyntheticSpec {
    /// The valid `synth:` parameter keys, in canonical order — listed
    /// in parse errors the way [`crate::patterns::TrafficPattern::NAMES`]
    /// backs the pattern parser's messages.
    pub const KEYS: [&'static str; 7] = [
        "seed", "cores", "locality", "hotspot", "degree", "bwmin", "bwmax",
    ];

    /// A spec with the default shape (16 cores, locality 0.5, no
    /// hotspot) under the given seed.
    pub fn new(seed: u64) -> Self {
        SyntheticSpec {
            seed,
            ..SyntheticSpec::default()
        }
    }

    /// Validates all parameter ranges.
    ///
    /// # Errors
    ///
    /// Returns the first [`ParseSpecError::OutOfRange`] violation.
    pub fn validate(&self) -> Result<(), ParseSpecError> {
        let range = |ok: bool, key: &'static str, range: &'static str| {
            if ok {
                Ok(())
            } else {
                Err(ParseSpecError::OutOfRange { key, range })
            }
        };
        range((2..=MAX_CORES).contains(&self.cores), "cores", "2..=4096")?;
        range(
            (0.0..=1.0).contains(&self.locality),
            "locality",
            "0.0..=1.0",
        )?;
        range((0.0..=1.0).contains(&self.hotspot), "hotspot", "0.0..=1.0")?;
        range((1..=64).contains(&self.degree), "degree", "1..=64")?;
        range(
            self.min_bandwidth.is_finite() && self.min_bandwidth > 0.0,
            "bwmin",
            "positive finite MB/s",
        )?;
        range(
            self.max_bandwidth.is_finite() && self.max_bandwidth >= self.min_bandwidth,
            "bwmax",
            "bwmin..=finite MB/s",
        )?;
        Ok(())
    }

    /// Whether `text` looks like a synthetic spec (has the `synth:`
    /// prefix, or is exactly `synth`).
    pub fn is_spec(text: &str) -> bool {
        text == "synth" || text.starts_with("synth:")
    }

    /// Expands the spec into its core graph. Deterministic: the same
    /// spec always produces the same graph.
    ///
    /// Core areas cycle over a small set of 0.1 µm-era block sizes with
    /// a seeded jitter; every core draws [`SyntheticSpec::degree`]
    /// outgoing flows whose destinations follow the locality window
    /// (and are diverted to the hotspot core with probability
    /// [`SyntheticSpec::hotspot`]) and whose bandwidths are log-uniform
    /// in `[min_bandwidth, max_bandwidth]`.
    ///
    /// # Panics
    ///
    /// Panics if the spec does not [`SyntheticSpec::validate`].
    pub fn generate(&self) -> CoreGraph {
        self.validate().expect("synthetic spec must be valid");
        let n = self.cores;
        // The seed stream covers every parameter, so two specs
        // differing in any field draw from different streams.
        let mut rng = SmallRng::seed_from_u64(
            self.seed
                ^ (n as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
                ^ self.locality.to_bits().rotate_left(17)
                ^ self.hotspot.to_bits().rotate_left(31)
                ^ (self.degree as u64).rotate_left(47)
                ^ self.min_bandwidth.to_bits().rotate_left(7)
                ^ self.max_bandwidth.to_bits().rotate_left(53),
        );
        let mut g = CoreGraph::new();
        let ids: Vec<_> = (0..n)
            .map(|i| {
                // Block sizes between 1 and ~10 mm², memory-ish blocks
                // larger, matching the seed benchmarks' spread.
                let base = [2.0, 2.5, 3.0, 4.0, 6.0, 8.0][i % 6];
                let area = base * rng.gen_range(0.8..1.25);
                g.add_core(format!("s{i}"), area)
            })
            .collect();
        // Locality 1.0 keeps destinations adjacent; 0.0 lets them reach
        // anywhere. The window is how far (in id space, both ways) a
        // flow may travel.
        let window = (((1.0 - self.locality) * (n - 1) as f64).round() as usize).max(1);
        for src in 0..n {
            for _ in 0..self.degree {
                let dst = if self.hotspot > 0.0 && rng.gen_bool(self.hotspot) && src != 0 {
                    0
                } else {
                    let offset = rng.gen_range(1..=window);
                    let forward = rng.gen_bool(0.5);
                    if forward {
                        (src + offset) % n
                    } else {
                        (src + n - (offset % n)) % n
                    }
                };
                if dst == src {
                    continue;
                }
                // Log-uniform bandwidth: heavy flows are rare, light
                // flows common, like the benchmark histograms.
                let u: f64 = rng.gen_range(0.0..1.0);
                let bw = self.min_bandwidth * (self.max_bandwidth / self.min_bandwidth).powf(u);
                g.add_traffic(ids[src], ids[dst], bw)
                    .expect("generated flows are valid");
            }
        }
        g
    }

    /// Canonical text form (`synth:seed=..,cores=..,...`), parseable by
    /// [`SyntheticSpec::from_str`]. Only parameters differing from the
    /// defaults are listed, so `SyntheticSpec::new(7)` prints as
    /// `synth:seed=7`.
    pub fn spec_string(&self) -> String {
        let d = SyntheticSpec::default();
        let mut items = vec![format!("seed={}", self.seed)];
        if self.cores != d.cores {
            items.push(format!("cores={}", self.cores));
        }
        if self.locality != d.locality {
            items.push(format!("locality={}", self.locality));
        }
        if self.hotspot != d.hotspot {
            items.push(format!("hotspot={}", self.hotspot));
        }
        if self.degree != d.degree {
            items.push(format!("degree={}", self.degree));
        }
        if self.min_bandwidth != d.min_bandwidth {
            items.push(format!("bwmin={}", self.min_bandwidth));
        }
        if self.max_bandwidth != d.max_bandwidth {
            items.push(format!("bwmax={}", self.max_bandwidth));
        }
        format!("synth:{}", items.join(","))
    }
}

impl std::fmt::Display for SyntheticSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.spec_string())
    }
}

impl FromStr for SyntheticSpec {
    type Err = ParseSpecError;

    /// Parses `synth:key=value,...`. Unlisted parameters keep their
    /// defaults; `synth` alone is the default spec.
    fn from_str(text: &str) -> Result<Self, ParseSpecError> {
        let body = if text == "synth" {
            ""
        } else {
            text.strip_prefix("synth:")
                .ok_or(ParseSpecError::MissingPrefix)?
        };
        let mut spec = SyntheticSpec::default();
        let mut seen = [false; SyntheticSpec::KEYS.len()];
        for item in body.split(',').filter(|s| !s.trim().is_empty()) {
            let (key, value) = item
                .split_once('=')
                .ok_or_else(|| ParseSpecError::BadItem(item.to_string()))?;
            let (key, value) = (key.trim(), value.trim());
            if let Some(slot) = SyntheticSpec::KEYS.iter().position(|k| *k == key) {
                if seen[slot] {
                    return Err(ParseSpecError::DuplicateKey(key.to_string()));
                }
                seen[slot] = true;
            }
            fn parse<T: FromStr>(key: &'static str, value: &str) -> Result<T, ParseSpecError> {
                value.parse().map_err(|_| ParseSpecError::BadValue {
                    key,
                    text: value.to_string(),
                })
            }
            match key {
                "seed" => spec.seed = parse("seed", value)?,
                "cores" => spec.cores = parse("cores", value)?,
                "locality" => spec.locality = parse("locality", value)?,
                "hotspot" => spec.hotspot = parse("hotspot", value)?,
                "degree" => spec.degree = parse("degree", value)?,
                "bwmin" => spec.min_bandwidth = parse("bwmin", value)?,
                "bwmax" => spec.max_bandwidth = parse("bwmax", value)?,
                other => return Err(ParseSpecError::UnknownKey(other.to_string())),
            }
        }
        spec.validate()?;
        Ok(spec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_per_spec() {
        let spec = SyntheticSpec {
            seed: 42,
            cores: 32,
            locality: 0.7,
            hotspot: 0.15,
            ..SyntheticSpec::default()
        };
        let a = spec.generate();
        let b = spec.generate();
        assert_eq!(a, b);
        assert_eq!(a.core_count(), 32);
        assert!(a.edge_count() > 0);
    }

    #[test]
    fn seeds_and_parameters_change_the_graph() {
        let base = SyntheticSpec::new(1);
        let other_seed = SyntheticSpec::new(2);
        assert_ne!(base.generate(), other_seed.generate());
        let other_locality = SyntheticSpec {
            locality: 0.95,
            ..base.clone()
        };
        assert_ne!(base.generate(), other_locality.generate());
    }

    #[test]
    fn locality_confines_flows_to_neighbours() {
        let spec = SyntheticSpec {
            seed: 9,
            cores: 64,
            locality: 1.0,
            ..SyntheticSpec::default()
        };
        let g = spec.generate();
        for e in g.edges() {
            let (s, d) = (e.src.index() as i64, e.dst.index() as i64);
            let dist = (s - d).rem_euclid(64).min((d - s).rem_euclid(64));
            assert_eq!(dist, 1, "flow {s}->{d} is not neighbour-local");
        }
    }

    #[test]
    fn hotspot_skew_concentrates_on_core_zero() {
        let spec = SyntheticSpec {
            seed: 3,
            cores: 32,
            hotspot: 0.9,
            degree: 4,
            ..SyntheticSpec::default()
        };
        let g = spec.generate();
        let to_hot: f64 = g
            .edges()
            .iter()
            .filter(|e| e.dst.index() == 0)
            .map(|e| e.bandwidth)
            .sum();
        assert!(
            to_hot > g.total_traffic() * 0.5,
            "hotspot received only {to_hot} of {}",
            g.total_traffic()
        );
    }

    #[test]
    fn bandwidths_stay_inside_the_distribution() {
        let spec = SyntheticSpec {
            seed: 5,
            cores: 24,
            min_bandwidth: 50.0,
            max_bandwidth: 200.0,
            ..SyntheticSpec::default()
        };
        let g = spec.generate();
        for e in g.edges() {
            // Parallel demands accumulate, so the per-edge total may
            // exceed max_bandwidth; the floor always holds.
            assert!(e.bandwidth >= 50.0, "{} too light", e.bandwidth);
            assert!(
                e.bandwidth <= 200.0 * spec.degree as f64,
                "{} beyond accumulation bound",
                e.bandwidth
            );
        }
    }

    #[test]
    fn spec_string_round_trips() {
        let specs = [
            SyntheticSpec::default(),
            SyntheticSpec::new(77),
            SyntheticSpec {
                seed: 8,
                cores: 48,
                locality: 0.25,
                hotspot: 0.4,
                degree: 5,
                min_bandwidth: 10.0,
                max_bandwidth: 900.0,
            },
        ];
        for spec in specs {
            let text = spec.to_string();
            let parsed: SyntheticSpec = text.parse().unwrap();
            assert_eq!(parsed, spec, "{text} did not round-trip");
        }
    }

    #[test]
    fn parse_accepts_partial_specs_and_plain_synth() {
        let spec: SyntheticSpec = "synth".parse().unwrap();
        assert_eq!(spec, SyntheticSpec::default());
        let spec: SyntheticSpec = "synth:cores=20, seed=4".parse().unwrap();
        assert_eq!(spec.cores, 20);
        assert_eq!(spec.seed, 4);
        assert_eq!(spec.locality, SyntheticSpec::default().locality);
        assert!(SyntheticSpec::is_spec("synth:seed=1"));
        assert!(!SyntheticSpec::is_spec("vopd"));
    }

    #[test]
    fn parse_rejects_bad_specs() {
        assert_eq!(
            "vopd".parse::<SyntheticSpec>(),
            Err(ParseSpecError::MissingPrefix)
        );
        assert!(matches!(
            "synth:cores".parse::<SyntheticSpec>(),
            Err(ParseSpecError::BadItem(_))
        ));
        assert!(matches!(
            "synth:wat=3".parse::<SyntheticSpec>(),
            Err(ParseSpecError::UnknownKey(_))
        ));
        assert!(matches!(
            "synth:cores=x".parse::<SyntheticSpec>(),
            Err(ParseSpecError::BadValue { key: "cores", .. })
        ));
        assert!(matches!(
            "synth:cores=1".parse::<SyntheticSpec>(),
            Err(ParseSpecError::OutOfRange { key: "cores", .. })
        ));
        assert!(matches!(
            "synth:locality=1.5".parse::<SyntheticSpec>(),
            Err(ParseSpecError::OutOfRange {
                key: "locality",
                ..
            })
        ));
        assert!(matches!(
            "synth:bwmax=1".parse::<SyntheticSpec>(),
            Err(ParseSpecError::OutOfRange { key: "bwmax", .. })
        ));
    }

    #[test]
    fn error_messages_name_the_problem() {
        let e = "synth:wat=3".parse::<SyntheticSpec>().unwrap_err();
        assert!(e.to_string().contains("unknown synthetic parameter"));
        let e = "synth:cores=1".parse::<SyntheticSpec>().unwrap_err();
        assert!(e.to_string().contains("2..=4096"));
    }

    #[test]
    fn duplicate_keys_are_rejected_with_the_key_list() {
        for spec in [
            "synth:seed=1,seed=2",
            "synth:cores=8,locality=0.5,cores=16",
            "synth:bwmin=10, bwmin=20",
        ] {
            let err = spec.parse::<SyntheticSpec>().unwrap_err();
            assert!(
                matches!(&err, ParseSpecError::DuplicateKey(_)),
                "{spec}: {err:?}"
            );
            let msg = err.to_string();
            assert!(msg.contains("duplicate synthetic parameter"), "{msg}");
            for key in SyntheticSpec::KEYS {
                assert!(msg.contains(key), "message must list '{key}': {msg}");
            }
        }
        // A duplicate *unknown* key still reports the unknown key.
        assert!(matches!(
            "synth:wat=1,wat=2".parse::<SyntheticSpec>(),
            Err(ParseSpecError::UnknownKey(_))
        ));
        // Unknown-key errors list the valid keys too.
        let msg = "synth:wat=1"
            .parse::<SyntheticSpec>()
            .unwrap_err()
            .to_string();
        for key in SyntheticSpec::KEYS {
            assert!(msg.contains(key), "message must list '{key}': {msg}");
        }
    }
}
