//! The benchmark applications of the paper's evaluation (§6).
//!
//! Edge bandwidths (MB/s) are transcribed from the paper's figures;
//! where the figure is ambiguous we use the canonical values published
//! for the same benchmarks in the companion DATE 2004 mapping paper
//! (ref. \[19\]). Core areas are not given in the paper (they are tool
//! inputs, §5); we assign representative 0.1 µm-era values with memory
//! and CPU blocks larger than pipeline stages.

use crate::core_graph::graph_from_tables;
use crate::CoreGraph;

/// The Video Object Plane Decoder core graph (paper Fig. 3a): 12 cores,
/// 14 communication edges, heaviest flow 500 MB/s.
///
/// # Examples
///
/// ```
/// let vopd = sunmap_traffic::benchmarks::vopd();
/// assert_eq!(vopd.core_count(), 12);
/// assert_eq!(vopd.edge_count(), 14);
/// let heaviest = vopd.commodities()[0];
/// assert_eq!(heaviest.bandwidth, 500.0);
/// ```
pub fn vopd() -> CoreGraph {
    graph_from_tables(
        &[
            ("vld", 2.5),
            ("rld", 2.0),   // run-length decoder
            ("iscan", 2.0), // inverse scan
            ("acdc", 3.0),  // AC/DC prediction
            ("smem", 6.0),  // stripe memory
            ("iquant", 2.5),
            ("idct", 4.0),
            ("upsamp", 3.5),
            ("vopr", 4.0), // VOP reconstruction
            ("pad", 2.5),  // padding
            ("vopm", 8.0), // VOP memory
            ("arm", 10.0),
        ],
        &[
            ("vld", "rld", 70.0),
            ("rld", "iscan", 362.0),
            ("iscan", "acdc", 362.0),
            ("acdc", "iquant", 362.0),
            ("acdc", "smem", 49.0),
            ("smem", "iquant", 27.0),
            ("iquant", "idct", 357.0),
            ("idct", "upsamp", 353.0),
            ("upsamp", "vopr", 300.0),
            ("vopr", "pad", 313.0),
            ("pad", "vopm", 313.0),
            ("vopm", "vopr", 500.0),
            ("vopm", "arm", 94.0),
            ("arm", "pad", 16.0),
        ],
    )
}

/// The MPEG4 decoder core graph (paper Fig. 7a): hub-and-spoke traffic
/// around a shared SDRAM with four flows above 500 MB/s, which is why
/// minimum-path routing violates the paper's 500 MB/s links on every
/// topology and split-traffic routing becomes necessary (§6.1).
///
/// # Examples
///
/// ```
/// let mpeg4 = sunmap_traffic::benchmarks::mpeg4();
/// let over = mpeg4
///     .commodities()
///     .iter()
///     .filter(|c| c.bandwidth > 500.0)
///     .count();
/// assert_eq!(over, 4); // 910, 670 and two 600 MB/s flows
/// ```
pub fn mpeg4() -> CoreGraph {
    graph_from_tables(
        &[
            ("vu", 3.0),     // video unit
            ("au", 2.0),     // audio unit
            ("cpumed", 8.0), // media CPU
            ("rast", 3.0),   // rasterizer
            ("adsp", 5.0),   // audio DSP
            ("idct_etc", 5.0),
            ("upsamp", 3.0),
            ("bab", 3.0), // binary alpha blocks
            ("risc", 8.0),
            ("sram1", 5.0),
            ("sram2", 5.0),
            ("sdram", 10.0),
        ],
        &[
            ("vu", "sdram", 190.0),
            ("sdram", "vu", 0.5),
            ("au", "sdram", 173.0),
            ("sdram", "au", 0.5),
            ("cpumed", "sdram", 32.0),
            ("rast", "sdram", 40.0),
            ("sdram", "idct_etc", 910.0),
            ("idct_etc", "sram1", 250.0),
            ("upsamp", "sdram", 600.0),
            ("sdram", "upsamp", 40.0),
            ("bab", "risc", 500.0),
            ("risc", "sram2", 670.0),
            ("adsp", "sdram", 600.0),
        ],
    )
}

/// The six-core DSP filter application (paper Fig. 10a): an ARM,
/// memory, display and an FFT → filter → IFFT chain with two 600 MB/s
/// edges and six 200 MB/s edges.
///
/// # Examples
///
/// ```
/// let dsp = sunmap_traffic::benchmarks::dsp_filter();
/// assert_eq!(dsp.core_count(), 6);
/// assert_eq!(dsp.total_traffic(), 6.0 * 200.0 + 2.0 * 600.0);
/// ```
pub fn dsp_filter() -> CoreGraph {
    graph_from_tables(
        &[
            ("arm", 10.0),
            ("memory", 8.0),
            ("display", 3.0),
            ("fft", 4.0),
            ("ifft", 4.0),
            ("filter", 3.0),
        ],
        &[
            ("arm", "memory", 200.0),
            ("memory", "arm", 200.0),
            ("arm", "display", 200.0),
            ("memory", "fft", 200.0),
            ("fft", "filter", 600.0),
            ("filter", "ifft", 600.0),
            ("ifft", "memory", 200.0),
            ("memory", "display", 200.0),
        ],
    )
}

/// A 16-node network processor (paper §6.2, node architecture of
/// Fig. 8a). Each node exchanges large data flows with several distant
/// peers — the all-to-all style load for which the paper argues Clos
/// networks, with their maximal path diversity, are the right choice.
///
/// Every node `i` sends `per_flow` MB/s to nodes `i+1`, `i+4` and
/// `i+8` (mod 16), mixing neighbour, medium and maximal-distance flows.
///
/// # Examples
///
/// ```
/// let np = sunmap_traffic::benchmarks::network_processor(100.0);
/// assert_eq!(np.core_count(), 16);
/// assert_eq!(np.edge_count(), 48);
/// ```
pub fn network_processor(per_flow: f64) -> CoreGraph {
    let mut g = CoreGraph::new();
    let ids: Vec<_> = (0..16)
        .map(|i| g.add_core(format!("node{i}"), 4.0))
        .collect();
    for i in 0..16usize {
        for d in [1usize, 4, 8] {
            g.add_traffic(ids[i], ids[(i + d) % 16], per_flow)
                .expect("constructed demands are valid");
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vopd_matches_paper_figure() {
        let g = vopd();
        assert_eq!(g.core_count(), 12);
        assert_eq!(g.edge_count(), 14);
        // The figure's edge-weight multiset.
        let mut bws: Vec<u32> = g.edges().iter().map(|e| e.bandwidth as u32).collect();
        bws.sort_unstable();
        assert_eq!(
            bws,
            vec![16, 27, 49, 70, 94, 300, 313, 313, 353, 357, 362, 362, 362, 500]
        );
        // All VOPD flows fit a 500 MB/s link individually: min-path
        // routing can be feasible (§6.1).
        assert!(g.commodities().iter().all(|c| c.bandwidth <= 500.0));
    }

    #[test]
    fn mpeg4_exceeds_single_link_capacity() {
        let g = mpeg4();
        assert_eq!(g.core_count(), 12);
        assert_eq!(g.edge_count(), 13);
        let max = g.commodities()[0].bandwidth;
        assert_eq!(max, 910.0);
        // The SDRAM is the communication hub.
        let sdram = g.core_by_name("sdram").unwrap();
        let hub = g.communication_of(sdram);
        for (id, _) in g.cores() {
            assert!(g.communication_of(id) <= hub);
        }
    }

    #[test]
    fn dsp_filter_chain_is_heaviest() {
        let g = dsp_filter();
        let top = g.commodities();
        assert_eq!(top[0].bandwidth, 600.0);
        assert_eq!(top[1].bandwidth, 600.0);
        let fft = g.core_by_name("fft").unwrap();
        let filter = g.core_by_name("filter").unwrap();
        assert!(top[..2].iter().any(|c| c.src == fft && c.dst == filter));
    }

    #[test]
    fn network_processor_is_node_symmetric() {
        let g = network_processor(100.0);
        let first = g.communication_of(crate::CoreId(0));
        for (id, _) in g.cores() {
            assert_eq!(g.communication_of(id), first);
        }
        assert_eq!(g.total_traffic(), 48.0 * 100.0);
    }

    #[test]
    fn benchmark_areas_are_positive() {
        for g in [vopd(), mpeg4(), dsp_filter(), network_processor(50.0)] {
            for (_, core) in g.cores() {
                assert!(core.area > 0.0);
            }
            assert!(g.total_core_area() > 0.0);
        }
    }
}
