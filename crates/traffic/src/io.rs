//! A plain-text application format, so core graphs can live in files
//! next to the designs they describe.
//!
//! The format is line based:
//!
//! ```text
//! # VOPD-style application
//! core vld 2.5
//! core sdram 10.0 hard
//! traffic vld sdram 70.0
//! ```
//!
//! * `core <name> <area_mm2> [hard]` declares a core; `hard` marks a
//!   fixed-aspect block for the floorplanner.
//! * `traffic <src> <dst> <bandwidth_mbs>` declares a directed demand.
//! * `#` starts a comment; blank lines are ignored.
//!
//! # Examples
//!
//! ```
//! use sunmap_traffic::io;
//!
//! let text = "core a 2.0\ncore b 3.0\ntraffic a b 120.0\n";
//! let app = io::parse_app(text)?;
//! assert_eq!(app.core_count(), 2);
//! let round_trip = io::parse_app(&io::write_app(&app))?;
//! assert_eq!(round_trip, app);
//! # Ok::<(), sunmap_traffic::io::ParseAppError>(())
//! ```

use std::fmt::Write as _;

use crate::{CoreGraph, TrafficError};

/// Errors from parsing the application format.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ParseAppError {
    /// A line did not match any directive.
    UnknownDirective {
        /// 1-based line number.
        line: usize,
        /// The offending word.
        word: String,
    },
    /// A directive had the wrong number of fields.
    WrongArity {
        /// 1-based line number.
        line: usize,
        /// The directive.
        directive: &'static str,
        /// Fields expected.
        expected: usize,
    },
    /// A numeric field failed to parse.
    BadNumber {
        /// 1-based line number.
        line: usize,
        /// The text that was not a number.
        text: String,
    },
    /// A traffic line referenced an undeclared core.
    UnknownCore {
        /// 1-based line number.
        line: usize,
        /// The unknown name.
        name: String,
    },
    /// A core name was declared twice.
    DuplicateCore {
        /// 1-based line number.
        line: usize,
        /// The duplicated name.
        name: String,
    },
    /// The underlying graph rejected a value (self-edge, non-positive
    /// bandwidth or area).
    Invalid {
        /// 1-based line number.
        line: usize,
        /// The graph-level error.
        source: TrafficError,
    },
}

impl std::fmt::Display for ParseAppError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseAppError::UnknownDirective { line, word } => {
                write!(f, "line {line}: unknown directive '{word}'")
            }
            ParseAppError::WrongArity {
                line,
                directive,
                expected,
            } => write!(f, "line {line}: '{directive}' expects {expected} fields"),
            ParseAppError::BadNumber { line, text } => {
                write!(f, "line {line}: '{text}' is not a number")
            }
            ParseAppError::UnknownCore { line, name } => {
                write!(f, "line {line}: unknown core '{name}'")
            }
            ParseAppError::DuplicateCore { line, name } => {
                write!(f, "line {line}: core '{name}' declared twice")
            }
            ParseAppError::Invalid { line, source } => write!(f, "line {line}: {source}"),
        }
    }
}

impl std::error::Error for ParseAppError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ParseAppError::Invalid { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// Parses the application format into a [`CoreGraph`].
///
/// # Errors
///
/// Returns a [`ParseAppError`] locating the first bad line.
pub fn parse_app(text: &str) -> Result<CoreGraph, ParseAppError> {
    let mut app = CoreGraph::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = idx + 1;
        let content = raw.split('#').next().unwrap_or("").trim();
        if content.is_empty() {
            continue;
        }
        let fields: Vec<&str> = content.split_whitespace().collect();
        match fields[0] {
            "core" => {
                if fields.len() != 3 && !(fields.len() == 4 && fields[3] == "hard") {
                    return Err(ParseAppError::WrongArity {
                        line,
                        directive: "core",
                        expected: 3,
                    });
                }
                let name = fields[1];
                if app.core_by_name(name).is_some() {
                    return Err(ParseAppError::DuplicateCore {
                        line,
                        name: name.to_string(),
                    });
                }
                let area: f64 = fields[2].parse().map_err(|_| ParseAppError::BadNumber {
                    line,
                    text: fields[2].to_string(),
                })?;
                let soft = fields.len() == 3;
                app.try_add_core(name, area, soft)
                    .map_err(|source| ParseAppError::Invalid { line, source })?;
            }
            "traffic" => {
                if fields.len() != 4 {
                    return Err(ParseAppError::WrongArity {
                        line,
                        directive: "traffic",
                        expected: 4,
                    });
                }
                let src =
                    app.core_by_name(fields[1])
                        .ok_or_else(|| ParseAppError::UnknownCore {
                            line,
                            name: fields[1].to_string(),
                        })?;
                let dst =
                    app.core_by_name(fields[2])
                        .ok_or_else(|| ParseAppError::UnknownCore {
                            line,
                            name: fields[2].to_string(),
                        })?;
                let bw: f64 = fields[3].parse().map_err(|_| ParseAppError::BadNumber {
                    line,
                    text: fields[3].to_string(),
                })?;
                app.add_traffic(src, dst, bw)
                    .map_err(|source| ParseAppError::Invalid { line, source })?;
            }
            other => {
                return Err(ParseAppError::UnknownDirective {
                    line,
                    word: other.to_string(),
                })
            }
        }
    }
    Ok(app)
}

/// Serialises a [`CoreGraph`] into the application format; the output
/// round-trips through [`parse_app`].
pub fn write_app(app: &CoreGraph) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# {} cores, {} flows",
        app.core_count(),
        app.edge_count()
    );
    for (_, core) in app.cores() {
        if core.soft {
            let _ = writeln!(out, "core {} {}", core.name, core.area);
        } else {
            let _ = writeln!(out, "core {} {} hard", core.name, core.area);
        }
    }
    for e in app.edges() {
        let _ = writeln!(
            out,
            "traffic {} {} {}",
            app.core(e.src).name,
            app.core(e.dst).name,
            e.bandwidth
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::benchmarks;

    #[test]
    fn benchmarks_round_trip() {
        for app in [
            benchmarks::vopd(),
            benchmarks::mpeg4(),
            benchmarks::dsp_filter(),
            benchmarks::network_processor(100.0),
        ] {
            let text = write_app(&app);
            let parsed = parse_app(&text).expect("serialised form parses");
            assert_eq!(parsed, app);
        }
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let text = "\n# header\ncore a 1.0   # trailing comment\n\ncore b 2.0\ntraffic a b 10\n";
        let app = parse_app(text).unwrap();
        assert_eq!(app.core_count(), 2);
        assert_eq!(app.total_traffic(), 10.0);
    }

    #[test]
    fn hard_cores_survive_round_trip() {
        let text = "core rom 4.0 hard\ncore cpu 2.0\ntraffic cpu rom 5\n";
        let app = parse_app(text).unwrap();
        let rom = app.core_by_name("rom").unwrap();
        assert!(!app.core(rom).soft);
        let again = parse_app(&write_app(&app)).unwrap();
        assert!(!again.core(again.core_by_name("rom").unwrap()).soft);
    }

    #[test]
    fn errors_carry_line_numbers() {
        assert_eq!(
            parse_app("core a 1.0\nbogus x\n"),
            Err(ParseAppError::UnknownDirective {
                line: 2,
                word: "bogus".to_string()
            })
        );
        assert_eq!(
            parse_app("core a not_a_number\n"),
            Err(ParseAppError::BadNumber {
                line: 1,
                text: "not_a_number".to_string()
            })
        );
        assert_eq!(
            parse_app("core a 1.0\ntraffic a ghost 5\n"),
            Err(ParseAppError::UnknownCore {
                line: 2,
                name: "ghost".to_string()
            })
        );
        assert_eq!(
            parse_app("core a 1.0\ncore a 2.0\n"),
            Err(ParseAppError::DuplicateCore {
                line: 2,
                name: "a".to_string()
            })
        );
        assert!(matches!(
            parse_app("core a 1.0\ncore b 1.0\ntraffic a b -5\n"),
            Err(ParseAppError::Invalid { line: 3, .. })
        ));
        assert!(matches!(
            parse_app("core a 1.0 extra_stuff\n"),
            Err(ParseAppError::WrongArity { line: 1, .. })
        ));
    }

    #[test]
    fn empty_input_is_an_empty_graph() {
        let app = parse_app("").unwrap();
        assert_eq!(app.core_count(), 0);
    }
}
