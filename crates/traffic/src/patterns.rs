//! Synthetic traffic patterns for simulator-driven experiments.
//!
//! The paper's network-processor study (§6.2) drives each candidate
//! topology with "adversarial traffic" from traffic generators. These
//! are the classic patterns used for that purpose (Dally & Towles):
//! each pattern maps a source terminal to a destination terminal, and
//! the simulator injects packets accordingly.

use rand::Rng;

/// A synthetic destination-selection pattern over `n` terminals.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TrafficPattern {
    /// Every packet picks a destination uniformly at random (excluding
    /// the source).
    UniformRandom,
    /// Terminal `(x, y)` sends to `(y, x)` on a `sqrt(n)` grid: stresses
    /// one mesh diagonal, bypassed by torus wrap channels.
    Transpose,
    /// Terminal `b_{k-1}..b_0` sends to its bitwise complement:
    /// maximum-distance traffic on hypercubes and meshes.
    BitComplement,
    /// Terminal `b_{k-1}..b_0` sends to `b_0..b_{k-1}`: the classic
    /// butterfly adversary (all traffic collides in the middle stages).
    BitReverse,
    /// Terminal `i` sends to `i + n/2 - 1 (mod n)`: the torus adversary,
    /// marching almost half-way around every ring.
    Tornado,
    /// A fraction of packets target a fixed hotspot terminal; the rest
    /// are uniform. Models the shared-memory contention of the MPEG4
    /// SDRAM.
    Hotspot {
        /// The overloaded terminal.
        target: usize,
        /// Probability (0..=1 scaled by 1000) that a packet goes to the
        /// hotspot, stored as per-mille to keep the type `Eq`.
        per_mille: u32,
    },
    /// An arbitrary fixed permutation: `dest[i]` receives everything
    /// terminal `i` sends.
    Permutation(Vec<usize>),
}

impl TrafficPattern {
    /// Picks the destination terminal for a packet injected at `src`
    /// among `n` terminals. Deterministic patterns ignore `rng`.
    ///
    /// Sources mapped to themselves by a deterministic pattern return
    /// `None` (such terminals simply do not inject).
    ///
    /// # Panics
    ///
    /// Panics if `src >= n`, or if a [`TrafficPattern::Permutation`] is
    /// shorter than `n`.
    pub fn destination<R: Rng + ?Sized>(&self, src: usize, n: usize, rng: &mut R) -> Option<usize> {
        assert!(src < n, "source terminal {src} out of range 0..{n}");
        let dst = match self {
            TrafficPattern::UniformRandom => {
                if n < 2 {
                    return None;
                }
                let mut d = rng.gen_range(0..n - 1);
                if d >= src {
                    d += 1;
                }
                d
            }
            TrafficPattern::Transpose => {
                let side = (n as f64).sqrt().round() as usize;
                if side * side != n {
                    // Fall back to a shuffle-free analogue: reverse order.
                    n - 1 - src
                } else {
                    let (x, y) = (src / side, src % side);
                    y * side + x
                }
            }
            TrafficPattern::BitComplement => {
                let bits = n.next_power_of_two().trailing_zeros();
                (!src) & ((1usize << bits) - 1).min(n - 1)
            }
            TrafficPattern::BitReverse => {
                let bits = n.next_power_of_two().trailing_zeros();
                let mut v = 0usize;
                for b in 0..bits {
                    if src & (1 << b) != 0 {
                        v |= 1 << (bits - 1 - b);
                    }
                }
                v.min(n - 1)
            }
            TrafficPattern::Tornado => (src + n / 2 - 1 + n) % n,
            TrafficPattern::Hotspot { target, per_mille } => {
                if rng.gen_range(0u32..1000) < *per_mille {
                    *target
                } else {
                    if n < 2 {
                        return None;
                    }
                    let mut d = rng.gen_range(0..n - 1);
                    if d >= src {
                        d += 1;
                    }
                    d
                }
            }
            TrafficPattern::Permutation(p) => {
                assert!(p.len() >= n, "permutation shorter than terminal count");
                p[src]
            }
        };
        if dst == src || dst >= n {
            None
        } else {
            Some(dst)
        }
    }

    /// The parameter-free pattern names [`TrafficPattern::from_name`]
    /// accepts — callers embed this list in their parse errors.
    pub const NAMES: [&'static str; 5] = [
        "uniform",
        "transpose",
        "bit-complement",
        "bit-reverse",
        "tornado",
    ];

    /// Parses a parameter-free pattern from its [`name`](Self::name)
    /// (the CLI's `--pattern` values), case-insensitively. `Hotspot`
    /// and `Permutation` carry parameters and are not nameable; they
    /// return `None`. See [`TrafficPattern::NAMES`] for the accepted
    /// spellings.
    pub fn from_name(name: &str) -> Option<TrafficPattern> {
        match name.to_ascii_lowercase().as_str() {
            "uniform" => Some(TrafficPattern::UniformRandom),
            "transpose" => Some(TrafficPattern::Transpose),
            "bit-complement" => Some(TrafficPattern::BitComplement),
            "bit-reverse" => Some(TrafficPattern::BitReverse),
            "tornado" => Some(TrafficPattern::Tornado),
            _ => None,
        }
    }

    /// Human-readable pattern name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            TrafficPattern::UniformRandom => "uniform",
            TrafficPattern::Transpose => "transpose",
            TrafficPattern::BitComplement => "bit-complement",
            TrafficPattern::BitReverse => "bit-reverse",
            TrafficPattern::Tornado => "tornado",
            TrafficPattern::Hotspot { .. } => "hotspot",
            TrafficPattern::Permutation(_) => "permutation",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_never_returns_source() {
        let mut rng = SmallRng::seed_from_u64(7);
        let p = TrafficPattern::UniformRandom;
        for src in 0..16 {
            for _ in 0..50 {
                let d = p.destination(src, 16, &mut rng).unwrap();
                assert_ne!(d, src);
                assert!(d < 16);
            }
        }
    }

    #[test]
    fn transpose_is_an_involution_on_square_counts() {
        let mut rng = SmallRng::seed_from_u64(7);
        let p = TrafficPattern::Transpose;
        for src in 0..16 {
            if let Some(d) = p.destination(src, 16, &mut rng) {
                let back = p.destination(d, 16, &mut rng).unwrap();
                assert_eq!(back, src);
            } else {
                // Diagonal terminals map to themselves.
                let side = 4;
                assert_eq!(src / side, src % side);
            }
        }
    }

    #[test]
    fn bit_complement_pairs_opposite_corners() {
        let mut rng = SmallRng::seed_from_u64(7);
        let p = TrafficPattern::BitComplement;
        assert_eq!(p.destination(0, 16, &mut rng), Some(15));
        assert_eq!(p.destination(5, 16, &mut rng), Some(10));
    }

    #[test]
    fn bit_reverse_matches_hand_computation() {
        let mut rng = SmallRng::seed_from_u64(7);
        let p = TrafficPattern::BitReverse;
        // 16 terminals = 4 bits: 0b0001 -> 0b1000.
        assert_eq!(p.destination(1, 16, &mut rng), Some(8));
        assert_eq!(p.destination(3, 16, &mut rng), Some(12));
        // Palindromic labels self-map and are skipped.
        assert_eq!(p.destination(9, 16, &mut rng), None);
    }

    #[test]
    fn tornado_travels_half_way() {
        let mut rng = SmallRng::seed_from_u64(7);
        let p = TrafficPattern::Tornado;
        assert_eq!(p.destination(0, 16, &mut rng), Some(7));
        assert_eq!(p.destination(10, 16, &mut rng), Some(1));
    }

    #[test]
    fn hotspot_concentrates_traffic() {
        let mut rng = SmallRng::seed_from_u64(7);
        let p = TrafficPattern::Hotspot {
            target: 3,
            per_mille: 800,
        };
        let mut hits = 0;
        for _ in 0..1000 {
            if p.destination(0, 16, &mut rng) == Some(3) {
                hits += 1;
            }
        }
        assert!(hits > 600, "hotspot hit only {hits}/1000 times");
    }

    #[test]
    fn permutation_is_table_lookup() {
        let mut rng = SmallRng::seed_from_u64(7);
        let p = TrafficPattern::Permutation(vec![2, 3, 0, 1]);
        assert_eq!(p.destination(0, 4, &mut rng), Some(2));
        assert_eq!(p.destination(3, 4, &mut rng), Some(1));
    }

    #[test]
    fn from_name_round_trips_parameter_free_patterns() {
        for p in [
            TrafficPattern::UniformRandom,
            TrafficPattern::Transpose,
            TrafficPattern::BitComplement,
            TrafficPattern::BitReverse,
            TrafficPattern::Tornado,
        ] {
            assert_eq!(TrafficPattern::from_name(p.name()), Some(p));
        }
        assert_eq!(TrafficPattern::from_name("hotspot"), None);
        assert_eq!(TrafficPattern::from_name("nope"), None);
    }

    #[test]
    fn from_name_is_case_insensitive() {
        for (text, expected) in [
            ("Uniform", TrafficPattern::UniformRandom),
            ("TORNADO", TrafficPattern::Tornado),
            ("Bit-Complement", TrafficPattern::BitComplement),
            ("BIT-reverse", TrafficPattern::BitReverse),
            ("tRaNsPoSe", TrafficPattern::Transpose),
        ] {
            assert_eq!(TrafficPattern::from_name(text), Some(expected), "{text}");
        }
    }

    #[test]
    fn names_list_matches_from_name() {
        for name in TrafficPattern::NAMES {
            let p = TrafficPattern::from_name(name).expect(name);
            assert_eq!(p.name(), name);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_source_panics() {
        let mut rng = SmallRng::seed_from_u64(7);
        TrafficPattern::UniformRandom.destination(16, 16, &mut rng);
    }
}
