//! Application sources: the one way every SUNMAP surface names an
//! application.
//!
//! Historically each surface (CLI positional, batch manifest, library
//! callers) resolved application specs through its own stringly
//! `load_app(&str)`-style helper. [`AppSource`] replaces them: a typed
//! enum covering every way an application can be named — a built-in
//! benchmark, a seeded [`SyntheticSpec`], an inline core graph carried
//! in the spec itself, or an `.app` file on disk — with a [`FromStr`]
//! / [`Display`](std::fmt::Display) pair that round-trips, so a source
//! can travel through manifests, command lines and serve frames
//! unchanged.
//!
//! Parsing is pure (no filesystem access); [`AppSource::resolve`] does
//! the I/O and graph construction, and is the only place an
//! application can fail to load.
//!
//! # Examples
//!
//! ```
//! use sunmap_traffic::AppSource;
//!
//! let src: AppSource = "synth:seed=7,cores=24".parse()?;
//! assert_eq!(src.resolve()?.core_count(), 24);
//! // Display round-trips through FromStr.
//! let again: AppSource = src.to_string().parse()?;
//! assert_eq!(again, src);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use std::str::FromStr;

use crate::synthetic::SyntheticSpec;
use crate::{benchmarks, io, CoreGraph};

/// Prefix introducing an inline application (the remainder is `.app`
/// text, see [`io::parse_app`]).
const INLINE_PREFIX: &str = "inline:";

/// A typed application source.
///
/// The text form (via [`FromStr`] and [`Display`](std::fmt::Display))
/// round-trips: `parse(display(s)) == s` for every source, including
/// inline graphs (serialised through [`io::write_app`], which is
/// exact).
#[derive(Debug, Clone, PartialEq)]
pub enum AppSource {
    /// A built-in benchmark of the paper's evaluation; the name is one
    /// of [`AppSource::BUILTINS`].
    Named(String),
    /// A seeded synthetic workload (`synth:seed=..,cores=..`).
    Synth(SyntheticSpec),
    /// A core graph carried inline in the source text
    /// (`inline:core a 2.0\n...`), e.g. uploaded over a serve frame.
    Inline(CoreGraph),
    /// An `.app` file path, read at [`AppSource::resolve`] time.
    File(String),
}

/// Errors from [`AppSource`] parsing.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ParseSourceError {
    /// A `synth:` spec failed to parse.
    Synth(crate::synthetic::ParseSpecError),
    /// An `inline:` application failed to parse.
    Inline(String),
    /// An `inline:` application parsed but declares no cores.
    EmptyInline,
}

impl std::fmt::Display for ParseSourceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseSourceError::Synth(e) => write!(f, "{e}"),
            ParseSourceError::Inline(e) => write!(f, "inline application: {e}"),
            ParseSourceError::EmptyInline => {
                write!(f, "inline application declares no cores")
            }
        }
    }
}

impl std::error::Error for ParseSourceError {}

impl AppSource {
    /// The built-in benchmark names, in canonical order — listed in
    /// resolution errors the way [`SyntheticSpec::KEYS`] and
    /// [`crate::patterns::TrafficPattern::NAMES`] back their parsers'
    /// messages.
    pub const BUILTINS: [&'static str; 4] = ["vopd", "mpeg4", "dsp", "netproc"];

    /// One-line description of every accepted spelling, appended to
    /// resolution errors so a typo'd name explains itself.
    fn valid_forms() -> String {
        format!(
            "valid sources: a built-in ({}), a synthetic spec \
             (synth:key=value,... with keys {}), an inline application \
             (inline:<.app text>), or a readable .app file path",
            AppSource::BUILTINS.join(", "),
            SyntheticSpec::KEYS.join(", "),
        )
    }

    /// Loads the application this source names.
    ///
    /// This is the single resolution path behind every surface (CLI
    /// positionals, batch manifests, serve frames). Empty applications
    /// are rejected here, so every downstream consumer can rely on a
    /// non-empty graph.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message naming the source and the
    /// failure; unreadable files additionally list the valid source
    /// forms (the most common failure is a typo'd built-in name
    /// falling through to the file path case).
    pub fn resolve(&self) -> Result<CoreGraph, String> {
        let app = match self {
            AppSource::Named(name) => match name.as_str() {
                "vopd" => benchmarks::vopd(),
                "mpeg4" => benchmarks::mpeg4(),
                "dsp" => benchmarks::dsp_filter(),
                "netproc" => benchmarks::network_processor(100.0),
                other => unreachable!("Named sources are validated at parse time: {other}"),
            },
            AppSource::Synth(spec) => spec.generate(),
            AppSource::Inline(graph) => graph.clone(),
            AppSource::File(path) => {
                let text = std::fs::read_to_string(path).map_err(|e| {
                    format!(
                        "cannot read application '{path}': {e} ({})",
                        AppSource::valid_forms()
                    )
                })?;
                io::parse_app(&text).map_err(|e| format!("{path}: {e}"))?
            }
        };
        if app.core_count() == 0 {
            return Err(format!("application '{self}' declares no cores"));
        }
        Ok(app)
    }

    /// Parses and resolves in one step — the drop-in body for the old
    /// stringly helpers.
    ///
    /// # Errors
    ///
    /// Parse errors and resolution errors, both as human-readable
    /// messages naming the spec.
    pub fn load(spec: &str) -> Result<CoreGraph, String> {
        let source: AppSource = spec.parse().map_err(|e| format!("{spec}: {e}"))?;
        source.resolve()
    }
}

impl std::fmt::Display for AppSource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AppSource::Named(name) => f.write_str(name),
            AppSource::Synth(spec) => write!(f, "{spec}"),
            AppSource::Inline(graph) => write!(f, "{INLINE_PREFIX}{}", io::write_app(graph)),
            AppSource::File(path) => f.write_str(path),
        }
    }
}

impl FromStr for AppSource {
    type Err = ParseSourceError;

    /// Parses a source spec: a built-in name, a `synth:` spec, an
    /// `inline:` application, or (for any other text) a file path.
    ///
    /// Parsing never touches the filesystem; a path's existence is
    /// checked by [`AppSource::resolve`].
    fn from_str(text: &str) -> Result<Self, ParseSourceError> {
        if AppSource::BUILTINS.contains(&text) {
            return Ok(AppSource::Named(text.to_string()));
        }
        if SyntheticSpec::is_spec(text) {
            return text
                .parse()
                .map(AppSource::Synth)
                .map_err(ParseSourceError::Synth);
        }
        if let Some(body) = text.strip_prefix(INLINE_PREFIX) {
            let graph = io::parse_app(body).map_err(|e| ParseSourceError::Inline(e.to_string()))?;
            if graph.core_count() == 0 {
                return Err(ParseSourceError::EmptyInline);
            }
            return Ok(AppSource::Inline(graph));
        }
        Ok(AppSource::File(text.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtins_parse_and_resolve() {
        for name in AppSource::BUILTINS {
            let src: AppSource = name.parse().unwrap();
            assert_eq!(src, AppSource::Named(name.to_string()));
            assert!(src.resolve().unwrap().core_count() >= 6, "{name}");
            assert_eq!(src.to_string(), name);
        }
    }

    #[test]
    fn synth_specs_parse_and_round_trip() {
        let src: AppSource = "synth:seed=3,cores=10".parse().unwrap();
        assert!(matches!(&src, AppSource::Synth(s) if s.cores == 10));
        assert_eq!(src.resolve().unwrap().core_count(), 10);
        let again: AppSource = src.to_string().parse().unwrap();
        assert_eq!(again, src);
        // Bad specs carry the synthetic parser's message.
        let err = "synth:cores=1".parse::<AppSource>().unwrap_err();
        assert!(err.to_string().contains("2..=4096"), "{err}");
    }

    #[test]
    fn inline_applications_round_trip() {
        let text = "inline:core a 2.0\ncore b 3.0\ntraffic a b 120.5\n";
        let src: AppSource = text.parse().unwrap();
        let app = src.resolve().unwrap();
        assert_eq!(app.core_count(), 2);
        // Display serialises the graph back out; the round trip parses
        // to an equal source (write_app is exact).
        let again: AppSource = src.to_string().parse().unwrap();
        assert_eq!(again, src);
    }

    #[test]
    fn inline_errors_are_descriptive() {
        let err = "inline:frob a b\n".parse::<AppSource>().unwrap_err();
        assert!(err.to_string().contains("inline application"), "{err}");
        assert_eq!(
            "inline:# empty\n".parse::<AppSource>().unwrap_err(),
            ParseSourceError::EmptyInline
        );
    }

    #[test]
    fn anything_else_is_a_file_resolved_lazily() {
        let src: AppSource = "/no/such.app".parse().unwrap();
        assert_eq!(src, AppSource::File("/no/such.app".to_string()));
        let err = src.resolve().unwrap_err();
        assert!(err.contains("cannot read"), "{err}");
        // The error teaches the valid forms: built-in names and the
        // synthetic keys (a typo'd built-in lands here).
        for name in AppSource::BUILTINS {
            assert!(err.contains(name), "'{name}' missing from: {err}");
        }
        for key in SyntheticSpec::KEYS {
            assert!(err.contains(key), "'{key}' missing from: {err}");
        }
    }

    #[test]
    fn file_sources_resolve_and_reject_empty_apps() {
        let dir = std::env::temp_dir().join("sunmap_source_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("tiny.app");
        std::fs::write(&path, "core a 2.0\ncore b 2.0\ntraffic a b 10\n").unwrap();
        let src: AppSource = path.to_str().unwrap().parse().unwrap();
        assert_eq!(src.resolve().unwrap().core_count(), 2);
        let empty = dir.join("empty.app");
        std::fs::write(&empty, "# no cores\n").unwrap();
        let err = AppSource::load(empty.to_str().unwrap()).unwrap_err();
        assert!(err.contains("declares no cores"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn load_is_parse_then_resolve() {
        assert_eq!(AppSource::load("vopd").unwrap().core_count(), 12);
        assert!(AppSource::load("synth:wat=1").unwrap_err().contains("wat"));
    }
}
