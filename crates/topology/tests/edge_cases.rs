//! Edge-case and structural tests for the topology crate.

use sunmap_topology::{builders, dimension_order, paths, quadrant, NodeKind, TopologyKind};

#[test]
fn multistage_networks_are_one_directional() {
    // Traffic in a butterfly/Clos flows ingress -> egress only: over
    // the switch fabric alone (the folded core ports are endpoints, not
    // through-routes), a later stage cannot reach an earlier one.
    let switch_only =
        |g: &sunmap_topology::TopologyGraph| -> paths::AllowedSet { g.switches().collect() };
    let g = builders::butterfly(4, 2, 500.0).unwrap();
    let s0 = g.switch_at_stage(0, 0).unwrap();
    let s1 = g.switch_at_stage(1, 0).unwrap();
    assert!(paths::shortest_path(&g, s0, s1, Some(&switch_only(&g))).is_some());
    assert!(paths::shortest_path(&g, s1, s0, Some(&switch_only(&g))).is_none());
    let g = builders::clos(3, 3, 3, 500.0).unwrap();
    let first = g.switch_at_stage(0, 0).unwrap();
    let mid = g.switch_at_stage(1, 0).unwrap();
    assert!(paths::shortest_path(&g, mid, first, Some(&switch_only(&g))).is_none());
}

#[test]
fn every_mappable_pair_is_connected_in_every_library_topology() {
    for cores in [2usize, 6, 12, 16, 20] {
        for g in builders::standard_library(cores, 500.0).unwrap() {
            let nodes = g.mappable_nodes();
            for &a in nodes {
                for &b in nodes {
                    if a != b {
                        assert!(
                            paths::shortest_path(&g, a, b, None).is_some(),
                            "{}: {a} cannot reach {b}",
                            g.kind()
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn one_by_n_mesh_is_a_line() {
    let g = builders::mesh(1, 5, 500.0).unwrap();
    assert_eq!(g.network_channel_count(), 4);
    let a = g.switch_at_grid(0, 0).unwrap();
    let b = g.switch_at_grid(0, 4).unwrap();
    assert_eq!(paths::hop_distance(&g, a, b), Some(4));
    // Dimension-ordered routing degenerates to walking the line.
    let route = dimension_order::route(&g, a, b).unwrap();
    assert_eq!(route.len(), 5);
}

#[test]
fn two_wide_torus_has_no_wrap_duplicates() {
    // rows = 2 suppresses row wraps; the channel count equals the mesh
    // plus the column wraps only.
    let torus = builders::torus(2, 4, 500.0).unwrap();
    let mesh = builders::mesh(2, 4, 500.0).unwrap();
    assert_eq!(
        torus.network_channel_count(),
        mesh.network_channel_count() + 2
    );
}

#[test]
fn quadrants_of_reverse_commodities_can_differ_in_multistage() {
    // src->dst and dst->src quadrants are both valid but reference
    // different ingress/egress switches.
    let g = builders::clos(4, 2, 4, 500.0).unwrap();
    let a = g.port(0).unwrap();
    let b = g.port(7).unwrap();
    let fwd = quadrant::quadrant_set(&g, a, b);
    let rev = quadrant::quadrant_set(&g, b, a);
    assert_ne!(fwd, rev);
    assert!(paths::shortest_path(&g, a, b, Some(&fwd)).is_some());
    assert!(paths::shortest_path(&g, b, a, Some(&rev)).is_some());
}

#[test]
fn large_butterfly_scales() {
    // 4-ary 3-fly: 64 terminals, 48 switches.
    let g = builders::butterfly(4, 3, 500.0).unwrap();
    assert_eq!(g.mappable_nodes().len(), 64);
    assert_eq!(g.switch_count(), 48);
    let a = g.port(0).unwrap();
    let b = g.port(63).unwrap();
    // port + 3 stages + port.
    assert_eq!(paths::shortest_path(&g, a, b, None).unwrap().len(), 5);
    // Still a unique path.
    assert_eq!(paths::all_shortest_paths(&g, a, b, None, 8).len(), 1);
}

#[test]
fn switch_radices_cover_every_switch_once() {
    for g in builders::standard_library(12, 500.0).unwrap() {
        let radices = g.switch_radices();
        assert_eq!(radices.len(), g.switch_count(), "{}", g.kind());
        let mut seen = std::collections::HashSet::new();
        for (s, inp, outp) in radices {
            assert!(seen.insert(s));
            assert!(inp > 0 && outp > 0);
            assert_eq!(g.node_kind(s), NodeKind::Switch);
        }
    }
}

#[test]
fn kind_roundtrip_through_display() {
    // Display strings carry the distinguishing parameters.
    let kinds = [
        TopologyKind::Mesh { rows: 3, cols: 4 },
        TopologyKind::Torus { rows: 4, cols: 4 },
        TopologyKind::Hypercube { dim: 4 },
        TopologyKind::Clos {
            ingress: 4,
            ports: 4,
            middle: 4,
        },
        TopologyKind::Butterfly {
            radix: 4,
            stages: 2,
        },
        TopologyKind::Octagon,
        TopologyKind::Star { ports: 9 },
    ];
    let mut strings: Vec<String> = kinds.iter().map(|k| k.to_string()).collect();
    strings.dedup();
    assert_eq!(strings.len(), kinds.len(), "display strings must be unique");
}

#[test]
fn dijkstra_tie_break_is_deterministic() {
    let g = builders::mesh(3, 3, 500.0).unwrap();
    let a = g.switch_at_grid(0, 0).unwrap();
    let b = g.switch_at_grid(2, 2).unwrap();
    let p1 = paths::dijkstra(&g, a, b, None, |_| 1.0).unwrap();
    let p2 = paths::dijkstra(&g, a, b, None, |_| 1.0).unwrap();
    assert_eq!(p1, p2);
}

#[test]
fn all_simple_paths_respects_length_bound() {
    let g = builders::mesh(3, 3, 500.0).unwrap();
    let a = g.switch_at_grid(0, 0).unwrap();
    let b = g.switch_at_grid(0, 2).unwrap();
    for max_len in 3..=7 {
        for p in paths::all_simple_paths(&g, a, b, None, max_len, 64) {
            assert!(p.len() <= max_len);
        }
    }
    // Bound below the distance -> nothing.
    assert!(paths::all_simple_paths(&g, a, b, None, 2, 64).is_empty());
}
