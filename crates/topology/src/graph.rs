//! The NoC topology graph (paper Definition 2).

use crate::{NodeCoords, NodeId, NodeKind, TopologyError, TopologyKind};

/// Index of a directed edge in a [`TopologyGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EdgeId(pub usize);

impl EdgeId {
    /// Raw index of the edge.
    pub fn index(self) -> usize {
        self.0
    }
}

impl std::fmt::Display for EdgeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// A directed channel of the NoC: `f_{i,j}` of the paper, annotated with
/// its bandwidth capacity `bw_{i,j}`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Edge {
    /// Source vertex.
    pub src: NodeId,
    /// Destination vertex.
    pub dst: NodeId,
    /// Bandwidth capacity in MB/s. Core-attach (network-interface) links
    /// are modelled with `f64::INFINITY` since the paper's bandwidth
    /// constraint applies to network links only.
    pub capacity: f64,
}

impl Edge {
    /// Whether this edge is a network (switch-to-switch) link rather than
    /// a core-attach link.
    pub fn is_network_link(&self) -> bool {
        self.capacity.is_finite()
    }
}

/// Dense adjacency lookup built by [`TopologyGraph::adjacency_matrix`]:
/// `edge_between(src, dst)` answers in O(1) what `find_edge` answers by
/// scanning the outgoing list. Matches `find_edge` exactly, including
/// first-edge-wins semantics for (hypothetical) parallel edges.
///
/// # Examples
///
/// ```
/// use sunmap_topology::builders;
///
/// let g = builders::mesh(2, 2, 500.0)?;
/// let adj = g.adjacency_matrix();
/// let a = g.switch_at_grid(0, 0).unwrap();
/// let b = g.switch_at_grid(0, 1).unwrap();
/// assert_eq!(adj.edge_between(a, b), g.find_edge(a, b));
/// assert_eq!(adj.edge_between(b, b), None);
/// # Ok::<(), sunmap_topology::TopologyError>(())
/// ```
#[derive(Debug, Clone)]
pub struct AdjacencyMatrix {
    n: usize,
    /// `u32::MAX` marks an absent edge; anything else is an edge id.
    slots: Vec<u32>,
}

impl AdjacencyMatrix {
    /// The directed edge from `src` to `dst`, if present.
    ///
    /// # Panics
    ///
    /// Panics if either node is out of bounds for the originating graph.
    pub fn edge_between(&self, src: NodeId, dst: NodeId) -> Option<EdgeId> {
        let slot = self.slots[src.index() * self.n + dst.index()];
        (slot != u32::MAX).then_some(EdgeId(slot as usize))
    }

    /// Number of nodes of the originating graph.
    pub fn node_count(&self) -> usize {
        self.n
    }
}

/// The NoC topology graph `P(U, F)` of the paper: vertices are network
/// nodes, directed edges are channels with bandwidth capacities.
///
/// Built through the constructors in [`crate::builders`]; the struct
/// itself is topology-agnostic and exposes generic adjacency queries.
///
/// # Examples
///
/// ```
/// use sunmap_topology::builders;
///
/// let cube = builders::hypercube(3, 500.0)?;
/// // Every hypercube switch has log2(N) = 3 neighbours.
/// for s in cube.switches() {
///     assert_eq!(cube.switch_neighbors(s).count(), 3);
/// }
/// # Ok::<(), sunmap_topology::TopologyError>(())
/// ```
#[derive(Debug, Clone)]
pub struct TopologyGraph {
    kind: TopologyKind,
    kinds: Vec<NodeKind>,
    coords: Vec<NodeCoords>,
    edges: Vec<Edge>,
    /// Outgoing edge ids per node.
    out_adj: Vec<Vec<EdgeId>>,
    /// Incoming edge ids per node.
    in_adj: Vec<Vec<EdgeId>>,
    /// Vertices cores may be mapped onto: all switches for direct
    /// topologies, all core ports for indirect ones.
    mappable: Vec<NodeId>,
}

impl TopologyGraph {
    /// Creates an empty graph of the given kind. Used by the builders.
    pub(crate) fn new(kind: TopologyKind) -> Self {
        TopologyGraph {
            kind,
            kinds: Vec::new(),
            coords: Vec::new(),
            edges: Vec::new(),
            out_adj: Vec::new(),
            in_adj: Vec::new(),
            mappable: Vec::new(),
        }
    }

    pub(crate) fn add_node(&mut self, kind: NodeKind, coords: NodeCoords) -> NodeId {
        let id = NodeId(self.kinds.len());
        self.kinds.push(kind);
        self.coords.push(coords);
        self.out_adj.push(Vec::new());
        self.in_adj.push(Vec::new());
        if kind == NodeKind::CorePort || self.kind.is_direct() {
            self.mappable.push(id);
        }
        id
    }

    pub(crate) fn add_edge(&mut self, src: NodeId, dst: NodeId, capacity: f64) -> EdgeId {
        debug_assert!(src.index() < self.kinds.len());
        debug_assert!(dst.index() < self.kinds.len());
        let id = EdgeId(self.edges.len());
        self.edges.push(Edge { src, dst, capacity });
        self.out_adj[src.index()].push(id);
        self.in_adj[dst.index()].push(id);
        id
    }

    /// Adds a pair of opposite directed edges (one physical bidirectional
    /// channel).
    pub(crate) fn add_channel(&mut self, a: NodeId, b: NodeId, capacity: f64) {
        self.add_edge(a, b, capacity);
        self.add_edge(b, a, capacity);
    }

    /// Which standard topology this graph instantiates.
    pub fn kind(&self) -> TopologyKind {
        self.kind
    }

    /// Total vertex count (switches plus core ports).
    pub fn node_count(&self) -> usize {
        self.kinds.len()
    }

    /// Total directed edge count.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Number of switch vertices.
    pub fn switch_count(&self) -> usize {
        self.kinds
            .iter()
            .filter(|k| **k == NodeKind::Switch)
            .count()
    }

    /// Number of physical channels between switches. A bidirectional
    /// pair created by `add_channel` counts once; the unidirectional
    /// forward links of multistage networks count individually.
    pub fn network_channel_count(&self) -> usize {
        self.edges
            .iter()
            .filter(|e| {
                if !(e.is_network_link()
                    && self.kinds[e.src.index()] == NodeKind::Switch
                    && self.kinds[e.dst.index()] == NodeKind::Switch)
                {
                    return false;
                }
                // Count a bidirectional pair once (from its lower endpoint).
                e.src < e.dst || self.find_edge(e.dst, e.src).is_none()
            })
            .count()
    }

    /// Number of core-attach channels (network-interface links). For
    /// direct topologies this equals the switch count (one local core per
    /// switch); for indirect topologies it counts port links.
    pub fn attach_channel_count(&self) -> usize {
        if self.kind.is_direct() {
            self.switch_count()
        } else {
            self.edges
                .iter()
                .filter(|e| {
                    self.kinds[e.src.index()] == NodeKind::CorePort
                        || self.kinds[e.dst.index()] == NodeKind::CorePort
                })
                .count()
        }
    }

    /// Kind of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of bounds for this graph.
    pub fn node_kind(&self, node: NodeId) -> NodeKind {
        self.kinds[node.index()]
    }

    /// Coordinates of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of bounds for this graph.
    pub fn coords(&self, node: NodeId) -> NodeCoords {
        self.coords[node.index()]
    }

    /// The edge with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `edge` is out of bounds for this graph.
    pub fn edge(&self, edge: EdgeId) -> Edge {
        self.edges[edge.index()]
    }

    /// All directed edges with their ids.
    pub fn edges(&self) -> impl Iterator<Item = (EdgeId, Edge)> + '_ {
        self.edges.iter().enumerate().map(|(i, e)| (EdgeId(i), *e))
    }

    /// All vertices.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> {
        (0..self.node_count()).map(NodeId)
    }

    /// All switch vertices.
    pub fn switches(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes()
            .filter(|n| self.node_kind(*n) == NodeKind::Switch)
    }

    /// All core-port vertices (empty for direct topologies).
    pub fn core_ports(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes()
            .filter(|n| self.node_kind(*n) == NodeKind::CorePort)
    }

    /// Vertices cores may be mapped onto: switches for direct topologies,
    /// core ports for indirect ones. This is the `U` of the paper's
    /// mapping function restricted to placeable targets.
    pub fn mappable_nodes(&self) -> &[NodeId] {
        &self.mappable
    }

    /// Outgoing edge ids of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of bounds for this graph.
    pub fn outgoing(&self, node: NodeId) -> &[EdgeId] {
        &self.out_adj[node.index()]
    }

    /// Incoming edge ids of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of bounds for this graph.
    pub fn incoming(&self, node: NodeId) -> &[EdgeId] {
        &self.in_adj[node.index()]
    }

    /// Successor vertices of `node` (over directed edges).
    pub fn successors(&self, node: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.out_adj[node.index()]
            .iter()
            .map(|e| self.edges[e.index()].dst)
    }

    /// Neighbouring *switches* of a switch, ignoring core-attach links.
    pub fn switch_neighbors(&self, node: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.successors(node)
            .filter(|n| self.node_kind(*n) == NodeKind::Switch)
    }

    /// Degree of `node` counted as distinct successor switches plus, for
    /// direct topologies, nothing extra (the local core is not a network
    /// neighbour). Used by the greedy initial-placement heuristic which
    /// seeds the core with maximum communication onto the node with the
    /// most neighbours.
    pub fn neighbor_count(&self, node: NodeId) -> usize {
        self.switch_neighbors(node).count()
    }

    /// Looks up the directed edge from `src` to `dst`, if present.
    pub fn find_edge(&self, src: NodeId, dst: NodeId) -> Option<EdgeId> {
        self.out_adj[src.index()]
            .iter()
            .copied()
            .find(|e| self.edges[e.index()].dst == dst)
    }

    /// Builds a dense `src × dst → Option<EdgeId>` lookup table. A
    /// single O(V² + E) build amortises the linear [`TopologyGraph::find_edge`] scan
    /// away on hot paths (the evaluation engine resolves every path
    /// window through this matrix).
    pub fn adjacency_matrix(&self) -> AdjacencyMatrix {
        let n = self.node_count();
        let mut slots = vec![u32::MAX; n * n];
        // Iterate in edge-id order keeping the first match, so lookups
        // agree with `find_edge` (whose out_adj lists are id-ordered).
        for (i, e) in self.edges.iter().enumerate() {
            let slot = &mut slots[e.src.index() * n + e.dst.index()];
            if *slot == u32::MAX {
                *slot = i as u32;
            }
        }
        AdjacencyMatrix { n, slots }
    }

    /// The switch a mappable vertex injects into: the vertex itself for
    /// direct topologies, the ingress-stage switch for indirect ones.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::NotMappable`] if `node` is not a
    /// mappable vertex of this graph.
    pub fn ingress_switch(&self, node: NodeId) -> Result<NodeId, TopologyError> {
        match self.node_kind(node) {
            NodeKind::Switch if self.kind.is_direct() => Ok(node),
            NodeKind::CorePort => self
                .successors(node)
                .find(|n| self.node_kind(*n) == NodeKind::Switch)
                .ok_or(TopologyError::NotMappable(node.index())),
            _ => Err(TopologyError::NotMappable(node.index())),
        }
    }

    /// The switch a mappable vertex ejects from: the vertex itself for
    /// direct topologies, the egress-stage switch for indirect ones.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::NotMappable`] if `node` is not a
    /// mappable vertex of this graph.
    pub fn egress_switch(&self, node: NodeId) -> Result<NodeId, TopologyError> {
        match self.node_kind(node) {
            NodeKind::Switch if self.kind.is_direct() => Ok(node),
            NodeKind::CorePort => self
                .incoming(node)
                .iter()
                .map(|e| self.edges[e.index()].src)
                .find(|n| self.node_kind(*n) == NodeKind::Switch)
                .ok_or(TopologyError::NotMappable(node.index())),
            _ => Err(TopologyError::NotMappable(node.index())),
        }
    }

    /// Finds the switch at grid position `(row, col)` for mesh/torus
    /// graphs. Returns `None` for other topologies or out-of-range
    /// positions.
    pub fn switch_at_grid(&self, row: usize, col: usize) -> Option<NodeId> {
        self.nodes().find(|n| {
            matches!(self.coords(*n), NodeCoords::Grid { row: r, col: c } if r == row && c == col)
        })
    }

    /// Finds the switch at `(stage, index)` for multistage graphs.
    pub fn switch_at_stage(&self, stage: usize, index: usize) -> Option<NodeId> {
        self.nodes().find(|n| {
            self.node_kind(*n) == NodeKind::Switch
                && matches!(self.coords(*n), NodeCoords::Stage { stage: s, index: i }
                            if s == stage && i == index)
        })
    }

    /// Finds the core port with terminal index `index` for indirect
    /// graphs.
    pub fn port(&self, index: usize) -> Option<NodeId> {
        self.nodes()
            .find(|n| matches!(self.coords(*n), NodeCoords::Port { index: i } if i == index))
    }

    /// Number of ports of each switch, as `(switch, in_ports, out_ports)`
    /// counting both network and core-attach links. This feeds the
    /// area/power models, which size crossbars by port count.
    pub fn switch_radices(&self) -> Vec<(NodeId, usize, usize)> {
        self.switches()
            .map(|s| {
                let mut inp = self.in_adj[s.index()].len();
                let mut outp = self.out_adj[s.index()].len();
                if self.kind.is_direct() {
                    // The locally attached core contributes one input and
                    // one output port (e.g. 5x5 switches in an inner mesh
                    // node, as §6.1 of the paper notes).
                    inp += 1;
                    outp += 1;
                }
                (s, inp, outp)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders;

    #[test]
    fn mesh_adjacency_matches_paper_fig1a() {
        let g = builders::mesh(3, 3, 500.0).unwrap();
        // Node 4 (centre) has four neighbours, node 0 (corner) two,
        // node 1 (edge) three — exactly the Fig. 1(a) description.
        let centre = g.switch_at_grid(1, 1).unwrap();
        let corner = g.switch_at_grid(0, 0).unwrap();
        let edge = g.switch_at_grid(0, 1).unwrap();
        assert_eq!(g.switch_neighbors(centre).count(), 4);
        assert_eq!(g.switch_neighbors(corner).count(), 2);
        assert_eq!(g.switch_neighbors(edge).count(), 3);
    }

    #[test]
    fn find_edge_and_capacity() {
        let g = builders::mesh(2, 2, 321.0).unwrap();
        let a = g.switch_at_grid(0, 0).unwrap();
        let b = g.switch_at_grid(0, 1).unwrap();
        let e = g.find_edge(a, b).expect("adjacent switches share an edge");
        assert_eq!(g.edge(e).capacity, 321.0);
        assert!(g.edge(e).is_network_link());
        let c = g.switch_at_grid(1, 1).unwrap();
        assert!(g.find_edge(a, c).is_none());
    }

    #[test]
    fn direct_topology_mappable_nodes_are_switches() {
        let g = builders::mesh(2, 3, 500.0).unwrap();
        assert_eq!(g.mappable_nodes().len(), 6);
        for n in g.mappable_nodes() {
            assert_eq!(g.node_kind(*n), NodeKind::Switch);
            assert_eq!(g.ingress_switch(*n).unwrap(), *n);
            assert_eq!(g.egress_switch(*n).unwrap(), *n);
        }
    }

    #[test]
    fn indirect_topology_mappable_nodes_are_ports() {
        let g = builders::butterfly(2, 3, 500.0).unwrap();
        assert_eq!(g.mappable_nodes().len(), 8);
        for n in g.mappable_nodes() {
            assert_eq!(g.node_kind(*n), NodeKind::CorePort);
            let ing = g.ingress_switch(*n).unwrap();
            let eg = g.egress_switch(*n).unwrap();
            assert_eq!(g.node_kind(ing), NodeKind::Switch);
            assert_eq!(g.node_kind(eg), NodeKind::Switch);
        }
    }

    #[test]
    fn switch_radices_account_for_local_core() {
        let g = builders::mesh(3, 3, 500.0).unwrap();
        let centre = g.switch_at_grid(1, 1).unwrap();
        let (_, inp, outp) = g
            .switch_radices()
            .into_iter()
            .find(|(s, _, _)| *s == centre)
            .unwrap();
        // 4 network neighbours + 1 local core = 5x5 switch.
        assert_eq!(inp, 5);
        assert_eq!(outp, 5);
    }

    #[test]
    fn adjacency_matrix_agrees_with_find_edge_everywhere() {
        for g in [
            builders::mesh(3, 4, 500.0).unwrap(),
            builders::torus(3, 3, 500.0).unwrap(),
            builders::butterfly(4, 2, 500.0).unwrap(),
            builders::clos(4, 2, 4, 500.0).unwrap(),
        ] {
            let adj = g.adjacency_matrix();
            assert_eq!(adj.node_count(), g.node_count());
            for a in g.nodes() {
                for b in g.nodes() {
                    assert_eq!(
                        adj.edge_between(a, b),
                        g.find_edge(a, b),
                        "{}: {a}->{b} mismatch",
                        g.kind()
                    );
                }
            }
        }
    }

    #[test]
    fn network_channel_count_mesh() {
        let g = builders::mesh(4, 3, 500.0).unwrap();
        // rows*(cols-1) + cols*(rows-1) = 4*2 + 3*3 = 17 channels.
        assert_eq!(g.network_channel_count(), 17);
        assert_eq!(g.attach_channel_count(), 12);
    }
}
