//! NoC topology library for SUNMAP.
//!
//! This crate provides the *NoC topology graph* abstraction of the SUNMAP
//! paper (Murali & De Micheli, DAC 2004, Definition 2): a directed graph
//! whose vertices are network nodes (switches, plus explicit core-attach
//! ports for indirect topologies) and whose edges are physical channels
//! annotated with bandwidth capacity.
//!
//! Five standard topologies are supported, mirroring the paper's topology
//! library:
//!
//! * direct topologies — [`builders::mesh`], [`builders::torus`],
//!   [`builders::hypercube`] — where each switch hosts exactly one core;
//! * indirect topologies — [`builders::clos`] (3-stage) and
//!   [`builders::butterfly`] (k-ary n-fly) — where cores attach to the
//!   ingress/egress switch stages through dedicated port links.
//!
//! On top of the graphs the crate implements the topology-specific
//! *quadrant graph* formation of paper §4.3 ([`quadrant`]), shortest-path
//! machinery ([`paths`]) and dimension-ordered route construction
//! ([`dimension_order`]).
//!
//! # Examples
//!
//! ```
//! use sunmap_topology::{builders, TopologyGraph};
//!
//! let mesh: TopologyGraph = builders::mesh(3, 4, 500.0)?;
//! assert_eq!(mesh.switch_count(), 12);
//! // A corner switch has two neighbours, an inner switch four.
//! let corner = mesh.switch_at_grid(0, 0).unwrap();
//! assert_eq!(mesh.switch_neighbors(corner).count(), 2);
//! # Ok::<(), sunmap_topology::TopologyError>(())
//! ```

pub mod builders;
pub mod closed_form;
mod custom;
pub mod dimension_order;
mod error;
mod graph;
mod node;
pub mod paths;
pub mod quadrant;

pub use custom::{CustomTopologyBuilder, SwitchRef};
pub use error::TopologyError;
pub use graph::{AdjacencyMatrix, Edge, EdgeId, TopologyGraph};
pub use node::{NodeCoords, NodeId, NodeKind};

/// Identifies which standard topology a [`TopologyGraph`] instantiates,
/// together with its shape parameters.
///
/// The parameters follow the paper's conventions: a mesh/torus is given by
/// its `rows × cols` grid, a hypercube (2-ary n-cube) by its dimension `n`,
/// a 3-stage Clos by `(ingress_switches r, ports_per_ingress n, middle m)`
/// and a butterfly (k-ary n-fly) by its radix `k` and stage count `n`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TopologyKind {
    /// 2-D mesh with `rows × cols` switches (paper Fig. 1a).
    Mesh {
        /// Number of grid rows.
        rows: usize,
        /// Number of grid columns.
        cols: usize,
    },
    /// 2-D torus: a mesh plus wrap-around channels (paper Fig. 1b).
    Torus {
        /// Number of grid rows.
        rows: usize,
        /// Number of grid columns.
        cols: usize,
    },
    /// 2-ary n-cube with `2^dim` switches (paper Fig. 1c).
    Hypercube {
        /// Cube dimension `n = log2(N)`.
        dim: u32,
    },
    /// 3-stage Clos network (paper Fig. 2a).
    Clos {
        /// Ingress (and egress) switch count `r`.
        ingress: usize,
        /// Core ports per ingress/egress switch `n`.
        ports: usize,
        /// Middle-stage switch count `m`.
        middle: usize,
    },
    /// k-ary n-fly butterfly (paper Fig. 2b).
    Butterfly {
        /// Switch radix `k`.
        radix: usize,
        /// Number of switch stages `n = log_k(N)`.
        stages: u32,
    },
    /// The octagon network of Karim et al. (paper ref. \[6\]): eight
    /// switches on a ring with cross links between opposite nodes, any
    /// pair reachable in at most two hops. One of the topologies the
    /// paper names as "easily added to the topology library".
    Octagon,
    /// A star network (paper ref. \[10\]): one central switch with every
    /// core attached through a dedicated bidirectional channel — a
    /// single-hop network whose central crossbar grows with the core
    /// count.
    Star {
        /// Number of core-attach ports on the central switch.
        ports: usize,
    },
    /// A user-defined heterogeneous topology built with
    /// [`CustomTopologyBuilder`] (the paper's §7 future work).
    Custom {
        /// Hash of the builder's name, distinguishing custom designs.
        tag: u32,
    },
}

impl TopologyKind {
    /// Short human-readable name used in reports ("Mesh", "Torus", ...).
    pub fn name(&self) -> &'static str {
        match self {
            TopologyKind::Mesh { .. } => "Mesh",
            TopologyKind::Torus { .. } => "Torus",
            TopologyKind::Hypercube { .. } => "Hypercube",
            TopologyKind::Clos { .. } => "Clos",
            TopologyKind::Butterfly { .. } => "Butterfly",
            TopologyKind::Octagon => "Octagon",
            TopologyKind::Star { .. } => "Star",
            TopologyKind::Custom { .. } => "Custom",
        }
    }

    /// Whether this is a direct topology (one core per switch).
    pub fn is_direct(&self) -> bool {
        matches!(
            self,
            TopologyKind::Mesh { .. }
                | TopologyKind::Torus { .. }
                | TopologyKind::Hypercube { .. }
                | TopologyKind::Octagon
        )
    }
}

impl std::fmt::Display for TopologyKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            TopologyKind::Mesh { rows, cols } => write!(f, "Mesh {rows}x{cols}"),
            TopologyKind::Torus { rows, cols } => write!(f, "Torus {rows}x{cols}"),
            TopologyKind::Hypercube { dim } => write!(f, "Hypercube dim={dim}"),
            TopologyKind::Clos {
                ingress,
                ports,
                middle,
            } => write!(f, "Clos r={ingress} n={ports} m={middle}"),
            TopologyKind::Butterfly { radix, stages } => {
                write!(f, "Butterfly {radix}-ary {stages}-fly")
            }
            TopologyKind::Octagon => write!(f, "Octagon"),
            TopologyKind::Star { ports } => write!(f, "Star {ports}-port"),
            TopologyKind::Custom { tag } => write!(f, "Custom #{tag:08x}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_names_are_stable() {
        assert_eq!(TopologyKind::Mesh { rows: 2, cols: 2 }.name(), "Mesh");
        assert_eq!(TopologyKind::Torus { rows: 2, cols: 2 }.name(), "Torus");
        assert_eq!(TopologyKind::Hypercube { dim: 3 }.name(), "Hypercube");
        assert_eq!(
            TopologyKind::Clos {
                ingress: 4,
                ports: 2,
                middle: 4
            }
            .name(),
            "Clos"
        );
        assert_eq!(
            TopologyKind::Butterfly {
                radix: 2,
                stages: 3
            }
            .name(),
            "Butterfly"
        );
    }

    #[test]
    fn direct_vs_indirect_classification() {
        assert!(TopologyKind::Mesh { rows: 3, cols: 3 }.is_direct());
        assert!(TopologyKind::Torus { rows: 3, cols: 3 }.is_direct());
        assert!(TopologyKind::Hypercube { dim: 3 }.is_direct());
        assert!(!TopologyKind::Clos {
            ingress: 4,
            ports: 2,
            middle: 4
        }
        .is_direct());
        assert!(!TopologyKind::Butterfly {
            radix: 2,
            stages: 3
        }
        .is_direct());
    }

    #[test]
    fn display_includes_parameters() {
        let s = TopologyKind::Butterfly {
            radix: 4,
            stages: 2,
        }
        .to_string();
        assert!(s.contains("4-ary"));
        assert!(s.contains("2-fly"));
    }
}
