//! Closed-form hop distances for the regular library topologies.
//!
//! For every standard topology the minimum switch-to-switch (or
//! port-to-port) hop count between two mappable vertices follows
//! arithmetically from their coordinates — no BFS and no dense n×n
//! enumeration is needed:
//!
//! * **mesh** — Manhattan distance `|Δrow| + |Δcol|`;
//! * **torus** — per-dimension ring distance `min(d, len − d)` summed
//!   over rows and columns (dimensions of length ≤ 2 carry no wrap
//!   channels, and the formula degenerates to the mesh distance there);
//! * **hypercube** — Hamming distance of the binary labels;
//! * **Clos** — every distinct port pair crosses exactly four channels
//!   (port → ingress → middle → egress → port);
//! * **butterfly** — every distinct port pair crosses all `n` switch
//!   stages plus both attach links, `n + 1` channels total.
//!
//! These formulas are exactly the values a full-graph BFS produces on the
//! corresponding builder outputs; the mapping crate's route-table
//! equivalence suite asserts that bit for bit. Irregular topologies
//! (octagon, star, custom designs) are not [`supported`] and fall back to
//! BFS-based preparation.

use crate::{NodeCoords, NodeId, TopologyGraph, TopologyKind};

/// Whether [`distance`] has a closed form for this topology kind.
pub fn supported(kind: TopologyKind) -> bool {
    matches!(
        kind,
        TopologyKind::Mesh { .. }
            | TopologyKind::Torus { .. }
            | TopologyKind::Hypercube { .. }
            | TopologyKind::Clos { .. }
            | TopologyKind::Butterfly { .. }
    )
}

/// Minimum hop count between two *mappable* vertices of `g`, computed
/// from coordinates alone.
///
/// Returns `None` when the topology kind has no closed form (see
/// [`supported`]) or when either vertex is not a mappable one (a
/// mid-stage switch of an indirect topology, say) — callers fall back
/// to BFS in that case.
pub fn distance(g: &TopologyGraph, a: NodeId, b: NodeId) -> Option<u32> {
    match g.kind() {
        TopologyKind::Mesh { .. } => match (g.coords(a), g.coords(b)) {
            (NodeCoords::Grid { row: r1, col: c1 }, NodeCoords::Grid { row: r2, col: c2 }) => {
                Some((r1.abs_diff(r2) + c1.abs_diff(c2)) as u32)
            }
            _ => None,
        },
        TopologyKind::Torus { rows, cols } => match (g.coords(a), g.coords(b)) {
            (NodeCoords::Grid { row: r1, col: c1 }, NodeCoords::Grid { row: r2, col: c2 }) => {
                Some((ring_distance(r1, r2, rows) + ring_distance(c1, c2, cols)) as u32)
            }
            _ => None,
        },
        TopologyKind::Hypercube { .. } => match (g.coords(a), g.coords(b)) {
            (NodeCoords::Hyper { label: l1 }, NodeCoords::Hyper { label: l2 }) => {
                Some(crate::builders::hamming(l1, l2))
            }
            _ => None,
        },
        TopologyKind::Clos { .. } => match (g.coords(a), g.coords(b)) {
            (NodeCoords::Port { index: i }, NodeCoords::Port { index: j }) => {
                Some(if i == j { 0 } else { 4 })
            }
            _ => None,
        },
        TopologyKind::Butterfly { stages, .. } => match (g.coords(a), g.coords(b)) {
            (NodeCoords::Port { index: i }, NodeCoords::Port { index: j }) => {
                Some(if i == j { 0 } else { stages + 1 })
            }
            _ => None,
        },
        _ => None,
    }
}

/// Shortest arc between two positions on a ring of `len` slots. With no
/// wrap channels (`len <= 2`) the wrap arc is never shorter, so the
/// formula matches the plain mesh distance there too.
fn ring_distance(a: usize, b: usize, len: usize) -> usize {
    let d = a.abs_diff(b);
    d.min(len - d)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders;
    use crate::paths::bfs_levels;

    /// BFS over the real graph must agree with the closed form for every
    /// mappable pair of every library topology (tiny instances here; the
    /// mapping crate's proptest suite covers larger random ones).
    #[test]
    fn closed_form_matches_bfs_on_library_topologies() {
        let graphs = [
            builders::mesh(3, 4, 500.0).unwrap(),
            builders::torus(3, 4, 500.0).unwrap(),
            builders::torus(2, 5, 500.0).unwrap(),
            builders::hypercube(3, 500.0).unwrap(),
            builders::clos(3, 4, 3, 500.0).unwrap(),
            builders::butterfly(2, 3, 500.0).unwrap(),
        ];
        for g in &graphs {
            assert!(supported(g.kind()), "{} should be supported", g.kind());
            for &a in g.mappable_nodes() {
                let levels = bfs_levels(g, a);
                for &b in g.mappable_nodes() {
                    let bfs = levels[b.index()];
                    let closed = distance(g, a, b)
                        .unwrap_or_else(|| panic!("{}: no closed form for {a}->{b}", g.kind()));
                    assert_eq!(
                        bfs,
                        closed as usize,
                        "{}: {a}->{b} BFS {bfs} != closed {closed}",
                        g.kind()
                    );
                }
            }
        }
    }

    #[test]
    fn irregular_topologies_are_unsupported() {
        assert!(!supported(TopologyKind::Octagon));
        assert!(!supported(TopologyKind::Star { ports: 8 }));
        assert!(!supported(TopologyKind::Custom { tag: 1 }));
        let g = builders::octagon(500.0).unwrap();
        let nodes = g.mappable_nodes();
        assert_eq!(distance(&g, nodes[0], nodes[1]), None);
    }
}
