//! Topology-specific quadrant-graph formation (paper §4.3).
//!
//! The quadrant graph of a commodity is the vertex subset guaranteed to
//! contain a minimum path between its source and destination. Routing
//! searches are restricted to it, which is where the paper's "large
//! computational time savings" come from: the quadrant is much smaller
//! than the full NoC graph.

use crate::paths::{shortest_path, AllowedSet};
use crate::{NodeCoords, NodeId, TopologyGraph, TopologyKind};

/// Builds the quadrant graph (as an allowed vertex set) for the
/// commodity from `src` to `dst`, both mappable vertices of `g`.
///
/// * **Mesh**: switches inside the bounding box spanned by the row and
///   column of source and destination (paper Fig. 3b shading).
/// * **Torus**: same, but each dimension independently picks the shorter
///   circular arc, so wrap-around channels participate (Fig. 3c).
/// * **Hypercube**: the subcube of nodes matching source/destination on
///   every dimension where the two agree (`(0,*,*)` in the paper's
///   example of nodes 0 and 3).
/// * **Clos**: source port, its ingress switch, every middle switch, the
///   destination's egress switch and the destination port ("adjacency
///   calculations are trivial").
/// * **Butterfly**: the unique source→destination path ("no path
///   diversity").
///
/// The returned set always contains `src` and `dst`.
///
/// # Examples
///
/// ```
/// use sunmap_topology::{builders, quadrant};
///
/// let g = builders::mesh(3, 4, 500.0)?;
/// let a = g.switch_at_grid(0, 0).unwrap();
/// let b = g.switch_at_grid(2, 1).unwrap();
/// let q = quadrant::quadrant_set(&g, a, b);
/// assert_eq!(q.len(), 6); // 3 rows x 2 cols
/// # Ok::<(), sunmap_topology::TopologyError>(())
/// ```
pub fn quadrant_set(g: &TopologyGraph, src: NodeId, dst: NodeId) -> AllowedSet {
    match g.kind() {
        TopologyKind::Mesh { .. } => mesh_quadrant(g, src, dst),
        TopologyKind::Torus { rows, cols } => torus_quadrant(g, src, dst, rows, cols),
        TopologyKind::Hypercube { dim } => hypercube_quadrant(g, src, dst, dim),
        TopologyKind::Clos { .. } => clos_quadrant(g, src, dst),
        TopologyKind::Butterfly { .. } => butterfly_quadrant(g, src, dst),
        // Extension topologies: the octagon's two-hop diameter and the
        // star's single switch make the whole graph its own quadrant.
        TopologyKind::Octagon | TopologyKind::Star { .. } | TopologyKind::Custom { .. } => {
            g.nodes().collect()
        }
    }
}

fn grid_coords(g: &TopologyGraph, n: NodeId) -> (usize, usize) {
    match g.coords(n) {
        NodeCoords::Grid { row, col } => (row, col),
        other => panic!("expected grid coordinates, found {other}"),
    }
}

fn mesh_quadrant(g: &TopologyGraph, src: NodeId, dst: NodeId) -> AllowedSet {
    let (r1, c1) = grid_coords(g, src);
    let (r2, c2) = grid_coords(g, dst);
    let (rlo, rhi) = (r1.min(r2), r1.max(r2));
    let (clo, chi) = (c1.min(c2), c1.max(c2));
    g.switches()
        .filter(|n| {
            let (r, c) = grid_coords(g, *n);
            (rlo..=rhi).contains(&r) && (clo..=chi).contains(&c)
        })
        .collect()
}

/// The set of coordinates along the shorter circular arc from `a` to `b`
/// on a ring of length `len` (ties resolved to the direct, non-wrapping
/// interval).
fn ring_arc(a: usize, b: usize, len: usize) -> Vec<usize> {
    if a == b {
        return vec![a];
    }
    let fwd = (b + len - a) % len; // distance going "up" with wrap
    let bwd = (a + len - b) % len;
    let direct = b.abs_diff(a);
    let wrap = len - direct;
    if direct <= wrap {
        let (lo, hi) = (a.min(b), a.max(b));
        (lo..=hi).collect()
    } else if fwd <= bwd {
        // a -> a+1 -> ... wrapping up to b.
        (0..=fwd).map(|k| (a + k) % len).collect()
    } else {
        (0..=bwd).map(|k| (b + k) % len).collect()
    }
}

fn torus_quadrant(
    g: &TopologyGraph,
    src: NodeId,
    dst: NodeId,
    rows: usize,
    cols: usize,
) -> AllowedSet {
    let (r1, c1) = grid_coords(g, src);
    let (r2, c2) = grid_coords(g, dst);
    let row_arc = ring_arc(r1, r2, rows);
    let col_arc = ring_arc(c1, c2, cols);
    g.switches()
        .filter(|n| {
            let (r, c) = grid_coords(g, *n);
            row_arc.contains(&r) && col_arc.contains(&c)
        })
        .collect()
}

fn hypercube_quadrant(g: &TopologyGraph, src: NodeId, dst: NodeId, _dim: u32) -> AllowedSet {
    let label = |n: NodeId| match g.coords(n) {
        NodeCoords::Hyper { label } => label,
        other => panic!("expected hypercube coordinates, found {other}"),
    };
    let (a, b) = (label(src), label(dst));
    let fixed_mask = !(a ^ b); // bits where src and dst agree
    g.switches()
        .filter(|n| {
            let l = label(*n);
            (l ^ a) & fixed_mask == 0
        })
        .collect()
}

fn clos_quadrant(g: &TopologyGraph, src: NodeId, dst: NodeId) -> AllowedSet {
    let mut set = AllowedSet::from([src, dst]);
    if let Ok(ing) = g.ingress_switch(src) {
        set.insert(ing);
    }
    if let Ok(eg) = g.egress_switch(dst) {
        set.insert(eg);
    }
    for n in g.switches() {
        if matches!(g.coords(n), NodeCoords::Stage { stage: 1, .. }) {
            set.insert(n);
        }
    }
    set
}

fn butterfly_quadrant(g: &TopologyGraph, src: NodeId, dst: NodeId) -> AllowedSet {
    shortest_path(g, src, dst, None)
        .map(|p| p.into_iter().collect())
        .unwrap_or_else(|| AllowedSet::from([src, dst]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders;
    use crate::paths;

    /// The defining quadrant property: restricting the search to the
    /// quadrant never lengthens the minimum path.
    fn assert_quadrant_preserves_min_path(g: &TopologyGraph) {
        let nodes = g.mappable_nodes().to_vec();
        for &a in &nodes {
            for &b in &nodes {
                if a == b {
                    continue;
                }
                let q = quadrant_set(g, a, b);
                assert!(q.contains(&a) && q.contains(&b));
                let full = paths::shortest_path(g, a, b, None)
                    .unwrap_or_else(|| panic!("{} unreachable pair", g.kind()));
                let restricted = paths::shortest_path(g, a, b, Some(&q))
                    .unwrap_or_else(|| panic!("{} quadrant disconnects pair", g.kind()));
                assert_eq!(
                    restricted.len(),
                    full.len(),
                    "{}: quadrant lengthens path {a}->{b}",
                    g.kind()
                );
            }
        }
    }

    #[test]
    fn quadrants_preserve_min_paths_on_all_topologies() {
        for g in builders::standard_library(12, 500.0).unwrap() {
            assert_quadrant_preserves_min_path(&g);
        }
    }

    #[test]
    fn mesh_quadrant_is_bounding_box() {
        let g = builders::mesh(4, 4, 500.0).unwrap();
        let a = g.switch_at_grid(1, 1).unwrap();
        let b = g.switch_at_grid(3, 2).unwrap();
        let q = quadrant_set(&g, a, b);
        assert_eq!(q.len(), 6); // rows 1..=3 x cols 1..=2
    }

    #[test]
    fn torus_quadrant_uses_wraparound() {
        let g = builders::torus(4, 4, 500.0).unwrap();
        let a = g.switch_at_grid(0, 0).unwrap();
        let b = g.switch_at_grid(0, 3).unwrap();
        let q = quadrant_set(&g, a, b);
        // Columns {3, 0} via the wrap channel, a single row.
        assert_eq!(q.len(), 2);
        let p = paths::shortest_path(&g, a, b, Some(&q)).unwrap();
        assert_eq!(p.len(), 2, "wrap channel gives a single-hop route");
    }

    #[test]
    fn hypercube_quadrant_matches_paper_example() {
        // Source 0 = (0,0,0), destination 3 = (0,1,1): the quadrant is
        // all nodes of the form (0,*,*) = {0,1,2,3}.
        let g = builders::hypercube(3, 500.0).unwrap();
        let find = |l: u32| {
            g.nodes()
                .find(|n| g.coords(*n) == NodeCoords::Hyper { label: l })
                .unwrap()
        };
        let q = quadrant_set(&g, find(0), find(3));
        let labels: std::collections::BTreeSet<u32> = q
            .iter()
            .map(|n| match g.coords(*n) {
                NodeCoords::Hyper { label } => label,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(labels, [0u32, 1, 2, 3].into_iter().collect());
    }

    #[test]
    fn clos_quadrant_contains_all_middles() {
        let g = builders::clos(3, 4, 5, 500.0).unwrap();
        let a = g.port(0).unwrap();
        let b = g.port(11).unwrap();
        let q = quadrant_set(&g, a, b);
        // src + dst + ingress + egress + 5 middles.
        assert_eq!(q.len(), 9);
    }

    #[test]
    fn butterfly_quadrant_is_the_unique_path() {
        let g = builders::butterfly(4, 2, 500.0).unwrap();
        let a = g.port(0).unwrap();
        let b = g.port(15).unwrap();
        let q = quadrant_set(&g, a, b);
        assert_eq!(q.len(), 4); // port, stage0, stage1, port
    }

    #[test]
    fn ring_arc_prefers_direct_on_tie() {
        // len 4, distance 2 both ways: direct interval wins.
        assert_eq!(ring_arc(0, 2, 4), vec![0, 1, 2]);
        assert_eq!(ring_arc(0, 3, 4), vec![3, 0]);
        assert_eq!(ring_arc(3, 0, 4), vec![3, 0]);
        assert_eq!(ring_arc(1, 1, 4), vec![1]);
    }
}
