//! Dimension-ordered (deterministic) route construction.
//!
//! Dimension-ordered routing is one of the four routing functions SUNMAP
//! supports. For grid topologies it is classic XY routing (columns
//! first, then rows), for the torus it additionally picks the shorter
//! wrap direction per dimension, and for the hypercube it is e-cube
//! routing (bits corrected from least to most significant). Multistage
//! networks have no dimension order proper: the butterfly has a unique
//! path and the Clos uses a deterministic middle-switch hash so that the
//! function stays oblivious.

use crate::paths::shortest_path;
use crate::{NodeCoords, NodeId, TopologyError, TopologyGraph, TopologyKind};

/// Computes the dimension-ordered route from `src` to `dst` (both
/// mappable vertices), returning the full vertex path including the
/// endpoints.
///
/// # Errors
///
/// Returns [`TopologyError::NotMappable`] if either endpoint is not a
/// mappable vertex of `g`.
///
/// # Panics
///
/// Panics if the graph was built inconsistently (missing edges along the
/// canonical route), which cannot happen for graphs from
/// [`crate::builders`].
///
/// # Examples
///
/// ```
/// use sunmap_topology::{builders, dimension_order};
///
/// let g = builders::mesh(3, 3, 500.0)?;
/// let a = g.switch_at_grid(0, 0).unwrap();
/// let b = g.switch_at_grid(2, 2).unwrap();
/// let route = dimension_order::route(&g, a, b)?;
/// // XY: across the top row first, then down the last column.
/// assert_eq!(route.len(), 5);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn route(g: &TopologyGraph, src: NodeId, dst: NodeId) -> Result<Vec<NodeId>, TopologyError> {
    if !g.mappable_nodes().contains(&src) {
        return Err(TopologyError::NotMappable(src.index()));
    }
    if !g.mappable_nodes().contains(&dst) {
        return Err(TopologyError::NotMappable(dst.index()));
    }
    if src == dst {
        return Ok(vec![src]);
    }
    Ok(match g.kind() {
        TopologyKind::Mesh { .. } => xy_route(g, src, dst, None),
        TopologyKind::Torus { rows, cols } => xy_route(g, src, dst, Some((rows, cols))),
        TopologyKind::Hypercube { .. } => ecube_route(g, src, dst),
        TopologyKind::Clos { middle, .. } => clos_route(g, src, dst, middle),
        TopologyKind::Butterfly { .. } => {
            shortest_path(g, src, dst, None).expect("butterfly terminals are connected")
        }
        TopologyKind::Octagon => octagon_route(g, src, dst),
        TopologyKind::Star { .. } => {
            shortest_path(g, src, dst, None).expect("star ports are connected")
        }
        TopologyKind::Custom { .. } => {
            shortest_path(g, src, dst, None).ok_or(TopologyError::NotMappable(dst.index()))?
        }
    })
}

fn grid_of(g: &TopologyGraph, n: NodeId) -> (usize, usize) {
    match g.coords(n) {
        NodeCoords::Grid { row, col } => (row, col),
        other => panic!("expected grid coordinates, found {other}"),
    }
}

/// One signed unit step along a ring of length `len`, moving the shorter
/// way (ties towards increasing coordinate); `None` disables wrapping.
fn ring_step(from: usize, to: usize, len: Option<usize>) -> usize {
    match len {
        None => {
            if from < to {
                from + 1
            } else {
                from - 1
            }
        }
        Some(len) => {
            let fwd = (to + len - from) % len;
            let bwd = (from + len - to) % len;
            if fwd <= bwd {
                (from + 1) % len
            } else {
                (from + len - 1) % len
            }
        }
    }
}

fn xy_route(
    g: &TopologyGraph,
    src: NodeId,
    dst: NodeId,
    wrap: Option<(usize, usize)>,
) -> Vec<NodeId> {
    let (mut r, mut c) = grid_of(g, src);
    let (r2, c2) = grid_of(g, dst);
    let mut path = vec![src];
    // X (column) dimension first.
    while c != c2 {
        c = ring_step(c, c2, wrap.map(|(_, cols)| cols).filter(|l| *l > 2));
        path.push(g.switch_at_grid(r, c).expect("grid switch exists"));
    }
    while r != r2 {
        r = ring_step(r, r2, wrap.map(|(rows, _)| rows).filter(|l| *l > 2));
        path.push(g.switch_at_grid(r, c).expect("grid switch exists"));
    }
    path
}

fn ecube_route(g: &TopologyGraph, src: NodeId, dst: NodeId) -> Vec<NodeId> {
    let label = |n: NodeId| match g.coords(n) {
        NodeCoords::Hyper { label } => label,
        other => panic!("expected hypercube coordinates, found {other}"),
    };
    let mut cur = label(src);
    let target = label(dst);
    let mut path = vec![src];
    let mut bit = 0u32;
    while cur != target {
        if (cur ^ target) & (1 << bit) != 0 {
            cur ^= 1 << bit;
            let next = g
                .nodes()
                .find(|n| g.coords(*n) == NodeCoords::Hyper { label: cur })
                .expect("hypercube label exists");
            path.push(next);
        }
        bit += 1;
    }
    path
}

/// Deterministic octagon routing (Karim et al.): hop the cross link
/// first when the circular distance exceeds two, then walk the shorter
/// ring direction.
fn octagon_route(g: &TopologyGraph, src: NodeId, dst: NodeId) -> Vec<NodeId> {
    let index_of = |n: NodeId| {
        g.switches()
            .position(|s| s == n)
            .expect("octagon switch exists")
    };
    let nodes: Vec<NodeId> = g.switches().collect();
    let mut cur = index_of(src);
    let target = index_of(dst);
    let mut path = vec![src];
    while cur != target {
        let rel = (target + 8 - cur) % 8;
        cur = match rel {
            1..=2 => (cur + 1) % 8,
            6..=7 => (cur + 7) % 8,
            _ => (cur + 4) % 8, // 3, 4 or 5 away: take the cross link
        };
        path.push(nodes[cur]);
    }
    path
}

fn clos_route(g: &TopologyGraph, src: NodeId, dst: NodeId, middle: usize) -> Vec<NodeId> {
    let ing = g.ingress_switch(src).expect("mappable clos port");
    let eg = g.egress_switch(dst).expect("mappable clos port");
    let idx = |n: NodeId| match g.coords(n) {
        NodeCoords::Stage { index, .. } => index,
        other => panic!("expected stage coordinates, found {other}"),
    };
    // Deterministic, source/destination-oblivious spread of commodities
    // over the middle stage.
    let mid_index = (idx(ing) + idx(eg)) % middle;
    let mid = g
        .switch_at_stage(1, mid_index)
        .expect("middle switch exists");
    vec![src, ing, mid, eg, dst]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders;
    use crate::paths;

    #[test]
    fn mesh_xy_route_is_minimal_and_monotone() {
        let g = builders::mesh(4, 4, 500.0).unwrap();
        for a in g.switches() {
            for b in g.switches() {
                let p = route(&g, a, b).unwrap();
                let min = paths::shortest_path(&g, a, b, None).unwrap();
                assert_eq!(p.len(), min.len(), "XY route must be minimal");
                // Column movement must finish before row movement starts.
                let mut seen_row_move = false;
                for w in p.windows(2) {
                    let (r1, c1) = grid_of(&g, w[0]);
                    let (r2, _c2) = grid_of(&g, w[1]);
                    if r1 != r2 {
                        seen_row_move = true;
                    } else {
                        assert!(!seen_row_move, "column move after row move");
                    }
                    let _ = c1;
                }
            }
        }
    }

    #[test]
    fn torus_route_uses_wrap_and_is_minimal() {
        let g = builders::torus(4, 4, 500.0).unwrap();
        for a in g.switches() {
            for b in g.switches() {
                let p = route(&g, a, b).unwrap();
                let min = paths::shortest_path(&g, a, b, None).unwrap();
                assert_eq!(p.len(), min.len(), "torus DO route must be minimal");
            }
        }
    }

    #[test]
    fn ecube_route_is_minimal() {
        let g = builders::hypercube(4, 500.0).unwrap();
        for a in g.switches() {
            for b in g.switches() {
                let p = route(&g, a, b).unwrap();
                let min = paths::shortest_path(&g, a, b, None).unwrap();
                assert_eq!(p.len(), min.len(), "e-cube route must be minimal");
            }
        }
    }

    #[test]
    fn clos_route_is_deterministic_and_valid() {
        let g = builders::clos(4, 2, 4, 500.0).unwrap();
        let a = g.port(0).unwrap();
        let b = g.port(7).unwrap();
        let p1 = route(&g, a, b).unwrap();
        let p2 = route(&g, a, b).unwrap();
        assert_eq!(p1, p2);
        assert_eq!(p1.len(), 5);
        for w in p1.windows(2) {
            assert!(g.find_edge(w[0], w[1]).is_some(), "route uses real edges");
        }
    }

    #[test]
    fn butterfly_route_is_the_unique_path() {
        let g = builders::butterfly(2, 3, 500.0).unwrap();
        let a = g.port(1).unwrap();
        let b = g.port(6).unwrap();
        let p = route(&g, a, b).unwrap();
        let sp = paths::shortest_path(&g, a, b, None).unwrap();
        assert_eq!(p, sp);
    }

    #[test]
    fn route_rejects_non_mappable_endpoints() {
        let g = builders::clos(2, 2, 2, 500.0).unwrap();
        let sw = g.switch_at_stage(0, 0).unwrap();
        let port = g.port(0).unwrap();
        assert!(route(&g, sw, port).is_err());
    }

    #[test]
    fn route_to_self_is_trivial() {
        let g = builders::mesh(2, 2, 500.0).unwrap();
        let a = g.switch_at_grid(0, 0).unwrap();
        assert_eq!(route(&g, a, a).unwrap(), vec![a]);
    }
}
