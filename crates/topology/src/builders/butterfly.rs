//! k-ary n-fly butterfly builder (paper Fig. 2b).

use crate::{NodeCoords, NodeKind, TopologyError, TopologyGraph, TopologyKind};

/// Builds a k-ary n-fly butterfly with `k^n` terminals, `n` switch
/// stages of `k^(n-1)` switches each, and the classic digit-replacement
/// wiring: between stage `s` and `s+1`, output `p` of switch `j` reaches
/// the switch whose base-k label equals `j` with digit `n-2-s` replaced
/// by `p`.
///
/// This reproduces the paper's description of a 2-ary 3-fly: "switch 0 of
/// stage 1 is connected to switches 0 and 2 of stage 2 (maximum distance
/// 2); switch 0 of the second stage is connected to switches 0 and 1 of
/// the third stage (maximum distance 1)". Between any terminal pair there
/// is exactly one path — butterflies trade path diversity for switch
/// count (paper §6.1).
///
/// Core port `i` injects at stage-0 switch `i / k` and ejects from
/// stage-(n-1) switch `i / k`.
///
/// # Errors
///
/// Returns [`TopologyError::InvalidRadix`] if `radix < 2` and
/// [`TopologyError::InvalidDimension`] if `stages` is zero or the network
/// would exceed 65536 terminals.
///
/// # Examples
///
/// ```
/// // The 4-ary 2-fly used for the 12-core VOPD in §6.1.
/// let b = sunmap_topology::builders::butterfly(4, 2, 500.0)?;
/// assert_eq!(b.switch_count(), 8);
/// assert_eq!(b.mappable_nodes().len(), 16);
/// # Ok::<(), sunmap_topology::TopologyError>(())
/// ```
pub fn butterfly(
    radix: usize,
    stages: u32,
    link_capacity: f64,
) -> Result<TopologyGraph, TopologyError> {
    if radix < 2 {
        return Err(TopologyError::InvalidRadix(radix));
    }
    if stages == 0 {
        return Err(TopologyError::InvalidDimension {
            parameter: "stages",
            value: 0,
        });
    }
    let terminals = (radix as u64).checked_pow(stages).unwrap_or(u64::MAX);
    if terminals > 65536 {
        return Err(TopologyError::InvalidDimension {
            parameter: "stages",
            value: stages as usize,
        });
    }
    let terminals = terminals as usize;
    let per_stage = terminals / radix;
    let n = stages as usize;

    let mut g = TopologyGraph::new(TopologyKind::Butterfly { radix, stages });
    let mut sw = vec![vec![]; n];
    for (stage, stage_ids) in sw.iter_mut().enumerate() {
        for index in 0..per_stage {
            stage_ids.push(g.add_node(NodeKind::Switch, NodeCoords::Stage { stage, index }));
        }
    }
    // Inter-stage wiring by digit replacement. Switch labels have n-1
    // base-k digits; digit n-2-s is replaced by the output port number.
    for s in 0..n.saturating_sub(1) {
        let digit = n - 2 - s;
        let place = radix.pow(digit as u32);
        for j in 0..per_stage {
            let cleared = j - (j / place % radix) * place;
            for p in 0..radix {
                let target = cleared + p * place;
                g.add_edge(sw[s][j], sw[s + 1][target], link_capacity);
            }
        }
    }
    for i in 0..terminals {
        let port = g.add_node(NodeKind::CorePort, NodeCoords::Port { index: i });
        g.add_edge(port, sw[0][i / radix], f64::INFINITY);
        g.add_edge(sw[n - 1][i / radix], port, f64::INFINITY);
    }
    Ok(g)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paths;

    #[test]
    fn paper_fig2b_wiring_2ary_3fly() {
        let g = butterfly(2, 3, 500.0).unwrap();
        let s0 = g.switch_at_stage(0, 0).unwrap();
        let targets: Vec<_> = g.switch_neighbors(s0).map(|t| g.coords(t)).collect();
        assert!(targets.contains(&NodeCoords::Stage { stage: 1, index: 0 }));
        assert!(targets.contains(&NodeCoords::Stage { stage: 1, index: 2 }));
        let s1 = g.switch_at_stage(1, 0).unwrap();
        let targets: Vec<_> = g.switch_neighbors(s1).map(|t| g.coords(t)).collect();
        assert!(targets.contains(&NodeCoords::Stage { stage: 2, index: 0 }));
        assert!(targets.contains(&NodeCoords::Stage { stage: 2, index: 1 }));
    }

    #[test]
    fn counts_closed_form() {
        let g = butterfly(4, 2, 500.0).unwrap();
        assert_eq!(g.switch_count(), 8);
        assert_eq!(g.network_channel_count(), 16);
        assert_eq!(g.attach_channel_count(), 32);
        let g = butterfly(2, 3, 500.0).unwrap();
        assert_eq!(g.switch_count(), 12);
        assert_eq!(g.network_channel_count(), 16);
    }

    #[test]
    fn exactly_one_path_between_any_terminal_pair() {
        let g = butterfly(2, 3, 500.0).unwrap();
        for a in 0..8 {
            for b in 0..8 {
                if a == b {
                    continue;
                }
                let src = g.port(a).unwrap();
                let dst = g.port(b).unwrap();
                let all = paths::all_shortest_paths(&g, src, dst, None, 64);
                assert_eq!(all.len(), 1, "ports {a}->{b} should have a unique path");
            }
        }
    }

    #[test]
    fn every_terminal_pair_connected_in_n_switch_hops() {
        let g = butterfly(4, 2, 500.0).unwrap();
        for a in 0..16 {
            for b in 0..16 {
                if a == b {
                    continue;
                }
                let src = g.port(a).unwrap();
                let dst = g.port(b).unwrap();
                let p = paths::shortest_path(&g, src, dst, None).expect("connected");
                // Path = port, stage0, stage1, port: 2 switch hops.
                assert_eq!(p.len(), 4);
            }
        }
    }

    #[test]
    fn invalid_parameters_rejected() {
        assert!(butterfly(1, 3, 500.0).is_err());
        assert!(butterfly(2, 0, 500.0).is_err());
        assert!(butterfly(2, 20, 500.0).is_err());
    }
}
