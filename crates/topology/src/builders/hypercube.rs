//! Hypercube (2-ary n-cube) builder (paper Fig. 1c).

use crate::{NodeCoords, NodeKind, TopologyError, TopologyGraph, TopologyKind};

/// Builds a 2-ary n-cube with `2^dim` switches. Switch `i` carries the
/// binary label `i`; switches whose labels differ in exactly one bit are
/// adjacent (paper §4.2: node 2 = (0,1,0) is adjacent to node 6 =
/// (1,1,0)).
///
/// # Errors
///
/// Returns [`TopologyError::InvalidDimension`] if `dim` is zero or would
/// overflow (`dim > 16` is rejected as unrealistic for an on-chip
/// network).
///
/// # Examples
///
/// ```
/// let h = sunmap_topology::builders::hypercube(3, 500.0)?;
/// assert_eq!(h.switch_count(), 8);
/// // Each node has log2(N) = 3 neighbours.
/// let n = h.nodes().next().unwrap();
/// assert_eq!(h.switch_neighbors(n).count(), 3);
/// # Ok::<(), sunmap_topology::TopologyError>(())
/// ```
pub fn hypercube(dim: u32, link_capacity: f64) -> Result<TopologyGraph, TopologyError> {
    if dim == 0 || dim > 16 {
        return Err(TopologyError::InvalidDimension {
            parameter: "dim",
            value: dim as usize,
        });
    }
    let n = 1usize << dim;
    let mut g = TopologyGraph::new(TopologyKind::Hypercube { dim });
    let ids: Vec<_> = (0..n)
        .map(|i| g.add_node(NodeKind::Switch, NodeCoords::Hyper { label: i as u32 }))
        .collect();
    for i in 0..n {
        for bit in 0..dim {
            let j = i ^ (1usize << bit);
            if j > i {
                g.add_channel(ids[i], ids[j], link_capacity);
            }
        }
    }
    Ok(g)
}

/// Hamming distance between two hypercube labels: the minimal hop count
/// between the corresponding switches.
pub fn hamming(a: u32, b: u32) -> u32 {
    (a ^ b).count_ones()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_closed_form() {
        for dim in 1..=5u32 {
            let g = hypercube(dim, 500.0).unwrap();
            let n = 1usize << dim;
            assert_eq!(g.switch_count(), n);
            assert_eq!(g.network_channel_count(), n * dim as usize / 2);
            for s in g.switches() {
                assert_eq!(g.switch_neighbors(s).count(), dim as usize);
            }
        }
    }

    #[test]
    fn adjacency_is_single_bit_flips() {
        let g = hypercube(3, 500.0).unwrap();
        for s in g.switches() {
            let NodeCoords::Hyper { label: a } = g.coords(s) else {
                panic!("hypercube node without hyper coords")
            };
            for t in g.switch_neighbors(s) {
                let NodeCoords::Hyper { label: b } = g.coords(t) else {
                    panic!("hypercube node without hyper coords")
                };
                assert_eq!(hamming(a, b), 1);
            }
        }
    }

    #[test]
    fn paper_example_node2_adjacent_node6() {
        let g = hypercube(3, 500.0).unwrap();
        let n2 = g
            .nodes()
            .find(|n| g.coords(*n) == NodeCoords::Hyper { label: 2 })
            .unwrap();
        let n6 = g
            .nodes()
            .find(|n| g.coords(*n) == NodeCoords::Hyper { label: 6 })
            .unwrap();
        assert!(g.find_edge(n2, n6).is_some());
    }

    #[test]
    fn degenerate_dims_rejected() {
        assert!(hypercube(0, 500.0).is_err());
        assert!(hypercube(17, 500.0).is_err());
    }
}
