//! Mesh and torus builders (paper Fig. 1a, 1b).

use crate::{NodeCoords, NodeKind, TopologyError, TopologyGraph, TopologyKind};

fn grid_graph(
    kind: TopologyKind,
    rows: usize,
    cols: usize,
    wrap: bool,
    link_capacity: f64,
) -> Result<TopologyGraph, TopologyError> {
    if rows == 0 {
        return Err(TopologyError::InvalidDimension {
            parameter: "rows",
            value: rows,
        });
    }
    if cols == 0 {
        return Err(TopologyError::InvalidDimension {
            parameter: "cols",
            value: cols,
        });
    }
    let mut g = TopologyGraph::new(kind);
    let mut ids = vec![vec![None; cols]; rows];
    for (row, row_ids) in ids.iter_mut().enumerate() {
        for (col, slot) in row_ids.iter_mut().enumerate() {
            *slot = Some(g.add_node(NodeKind::Switch, NodeCoords::Grid { row, col }));
        }
    }
    let id = |r: usize, c: usize| ids[r][c].expect("all grid slots filled");
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                g.add_channel(id(r, c), id(r, c + 1), link_capacity);
            }
            if r + 1 < rows {
                g.add_channel(id(r, c), id(r + 1, c), link_capacity);
            }
        }
    }
    if wrap {
        // Wrap-around channels between opposite edges; only meaningful
        // when a dimension has at least three nodes (with two, the wrap
        // channel would duplicate the existing one).
        if cols > 2 {
            for r in 0..rows {
                g.add_channel(id(r, cols - 1), id(r, 0), link_capacity);
            }
        }
        if rows > 2 {
            for c in 0..cols {
                g.add_channel(id(rows - 1, c), id(0, c), link_capacity);
            }
        }
    }
    Ok(g)
}

/// Builds a `rows x cols` 2-D mesh: every switch connects to its grid
/// neighbours and hosts one core locally.
///
/// # Errors
///
/// Returns [`TopologyError::InvalidDimension`] if either dimension is
/// zero.
///
/// # Examples
///
/// ```
/// let m = sunmap_topology::builders::mesh(3, 3, 500.0)?;
/// assert_eq!(m.switch_count(), 9);
/// assert_eq!(m.network_channel_count(), 12);
/// # Ok::<(), sunmap_topology::TopologyError>(())
/// ```
pub fn mesh(rows: usize, cols: usize, link_capacity: f64) -> Result<TopologyGraph, TopologyError> {
    grid_graph(
        TopologyKind::Mesh { rows, cols },
        rows,
        cols,
        false,
        link_capacity,
    )
}

/// Builds a `rows x cols` 2-D torus: a mesh plus wrap-around channels
/// between edge switches (paper Fig. 1b: node 0 connects to nodes 2 and
/// 6 on the opposite edges of a 3x3 grid).
///
/// # Errors
///
/// Returns [`TopologyError::InvalidDimension`] if either dimension is
/// zero.
///
/// # Examples
///
/// ```
/// let t = sunmap_topology::builders::torus(3, 3, 500.0)?;
/// // 12 mesh channels + 3 row wraps + 3 column wraps.
/// assert_eq!(t.network_channel_count(), 18);
/// # Ok::<(), sunmap_topology::TopologyError>(())
/// ```
pub fn torus(rows: usize, cols: usize, link_capacity: f64) -> Result<TopologyGraph, TopologyError> {
    grid_graph(
        TopologyKind::Torus { rows, cols },
        rows,
        cols,
        true,
        link_capacity,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mesh_counts_closed_form() {
        for (r, c) in [(1, 1), (1, 5), (2, 2), (3, 4), (4, 4), (5, 3)] {
            let g = mesh(r, c, 500.0).unwrap();
            assert_eq!(g.switch_count(), r * c);
            assert_eq!(g.network_channel_count(), r * (c - 1) + c * (r - 1));
        }
    }

    #[test]
    fn torus_counts_closed_form() {
        let g = torus(3, 3, 500.0).unwrap();
        assert_eq!(g.network_channel_count(), 18);
        let g = torus(4, 4, 500.0).unwrap();
        // 2 * N channels for a full torus with both dims > 2.
        assert_eq!(g.network_channel_count(), 32);
    }

    #[test]
    fn torus_every_switch_has_four_neighbors_when_large() {
        let g = torus(3, 4, 500.0).unwrap();
        for s in g.switches() {
            assert_eq!(g.switch_neighbors(s).count(), 4, "switch {s}");
        }
    }

    #[test]
    fn degenerate_torus_avoids_duplicate_channels() {
        // A 2-wide torus must not create a second parallel channel.
        let g = torus(2, 3, 500.0).unwrap();
        let a = g.switch_at_grid(0, 0).unwrap();
        let b = g.switch_at_grid(1, 0).unwrap();
        let parallel = g
            .outgoing(a)
            .iter()
            .filter(|e| g.edge(**e).dst == b)
            .count();
        assert_eq!(parallel, 1);
    }

    #[test]
    fn wraparound_connects_opposite_edges() {
        let g = torus(3, 3, 500.0).unwrap();
        let n0 = g.switch_at_grid(0, 0).unwrap();
        let n2 = g.switch_at_grid(0, 2).unwrap();
        let n6 = g.switch_at_grid(2, 0).unwrap();
        assert!(g.find_edge(n0, n2).is_some(), "row wrap missing");
        assert!(g.find_edge(n0, n6).is_some(), "column wrap missing");
    }

    #[test]
    fn zero_dimension_is_rejected() {
        assert!(mesh(0, 3, 500.0).is_err());
        assert!(mesh(3, 0, 500.0).is_err());
        assert!(torus(0, 0, 500.0).is_err());
    }
}
