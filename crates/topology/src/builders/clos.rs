//! 3-stage Clos network builder (paper Fig. 2a).

use crate::{NodeCoords, NodeKind, TopologyError, TopologyGraph, TopologyKind};

/// Builds a unidirectional 3-stage Clos network.
///
/// * Stage 1 has `ingress` switches, each accepting `ports` cores.
/// * Stage 2 has `middle` switches; every stage-1 switch connects to
///   every stage-2 switch, and every stage-2 switch to every stage-3
///   switch ("each switch in a stage is connected to every switch in the
///   next stage", paper §4.2).
/// * Stage 3 mirrors stage 1 on the egress side.
///
/// Cores are represented by `ingress * ports` core-port vertices. Core
/// port `i` injects at stage-1 switch `i / ports` and ejects from
/// stage-3 switch `i / ports` — the folded view of the paper's figure
/// where the same cores appear on both sides.
///
/// # Errors
///
/// Returns [`TopologyError::InvalidDimension`] if any parameter is zero.
///
/// # Examples
///
/// ```
/// // The shape of paper Fig. 2(a): 8 cores, 4 switches per stage.
/// let c = sunmap_topology::builders::clos(4, 2, 4, 500.0)?;
/// assert_eq!(c.switch_count(), 12);
/// assert_eq!(c.mappable_nodes().len(), 8);
/// # Ok::<(), sunmap_topology::TopologyError>(())
/// ```
pub fn clos(
    ingress: usize,
    ports: usize,
    middle: usize,
    link_capacity: f64,
) -> Result<TopologyGraph, TopologyError> {
    for (name, v) in [("ingress", ingress), ("ports", ports), ("middle", middle)] {
        if v == 0 {
            return Err(TopologyError::InvalidDimension {
                parameter: name,
                value: v,
            });
        }
    }
    let mut g = TopologyGraph::new(TopologyKind::Clos {
        ingress,
        ports,
        middle,
    });
    let stage1: Vec<_> = (0..ingress)
        .map(|index| g.add_node(NodeKind::Switch, NodeCoords::Stage { stage: 0, index }))
        .collect();
    let stage2: Vec<_> = (0..middle)
        .map(|index| g.add_node(NodeKind::Switch, NodeCoords::Stage { stage: 1, index }))
        .collect();
    let stage3: Vec<_> = (0..ingress)
        .map(|index| g.add_node(NodeKind::Switch, NodeCoords::Stage { stage: 2, index }))
        .collect();
    for &s1 in &stage1 {
        for &s2 in &stage2 {
            g.add_edge(s1, s2, link_capacity);
        }
    }
    for &s2 in &stage2 {
        for &s3 in &stage3 {
            g.add_edge(s2, s3, link_capacity);
        }
    }
    for i in 0..ingress * ports {
        let p = g.add_node(NodeKind::CorePort, NodeCoords::Port { index: i });
        g.add_edge(p, stage1[i / ports], f64::INFINITY);
        g.add_edge(stage3[i / ports], p, f64::INFINITY);
    }
    Ok(g)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_interstage_connectivity() {
        let g = clos(3, 4, 3, 500.0).unwrap();
        for a in 0..3 {
            for b in 0..3 {
                let s1 = g.switch_at_stage(0, a).unwrap();
                let s2 = g.switch_at_stage(1, b).unwrap();
                let s3 = g.switch_at_stage(2, a).unwrap();
                assert!(g.find_edge(s1, s2).is_some(), "stage1 {a} -> stage2 {b}");
                assert!(g.find_edge(s2, s3).is_some(), "stage2 {b} -> stage3 {a}");
            }
        }
    }

    #[test]
    fn paper_fig2a_example_switch0_reaches_all_middles() {
        let g = clos(4, 2, 4, 500.0).unwrap();
        let s0 = g.switch_at_stage(0, 0).unwrap();
        let middles: Vec<_> = g.switch_neighbors(s0).collect();
        assert_eq!(middles.len(), 4);
    }

    #[test]
    fn ports_fold_onto_matching_edge_switches() {
        let g = clos(3, 4, 3, 500.0).unwrap();
        for i in 0..12 {
            let p = g.port(i).unwrap();
            let ing = g.ingress_switch(p).unwrap();
            let eg = g.egress_switch(p).unwrap();
            assert_eq!(
                g.coords(ing),
                NodeCoords::Stage {
                    stage: 0,
                    index: i / 4
                }
            );
            assert_eq!(
                g.coords(eg),
                NodeCoords::Stage {
                    stage: 2,
                    index: i / 4
                }
            );
        }
    }

    #[test]
    fn counts_closed_form() {
        let (r, n, m) = (4, 3, 5);
        let g = clos(r, n, m, 500.0).unwrap();
        assert_eq!(g.switch_count(), 2 * r + m);
        assert_eq!(g.mappable_nodes().len(), r * n);
        // Unidirectional network links: r*m + m*r.
        assert_eq!(g.network_channel_count(), 2 * r * m);
        // Each core port contributes one injection and one ejection link.
        assert_eq!(g.attach_channel_count(), 2 * r * n);
    }

    #[test]
    fn zero_parameters_rejected() {
        assert!(clos(0, 2, 2, 500.0).is_err());
        assert!(clos(2, 0, 2, 500.0).is_err());
        assert!(clos(2, 2, 0, 500.0).is_err());
    }
}
