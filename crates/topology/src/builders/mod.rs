//! Constructors for the standard topologies of the SUNMAP library.
//!
//! Each builder produces a [`TopologyGraph`] with every physical channel
//! represented as a pair of opposite directed edges, each with the given
//! `link_capacity` (MB/s). Core-attach links of indirect topologies are
//! created with infinite capacity: the paper's bandwidth constraint
//! applies to network links, while ingress/egress is part of the network
//! interface.

mod butterfly;
mod clos;
mod extended;
mod grid;
mod hypercube;

pub use butterfly::butterfly;
pub use clos::clos;
pub use extended::{octagon, star};
pub use grid::{mesh, torus};
pub use hypercube::{hamming, hypercube};

use crate::{TopologyError, TopologyGraph, TopologyKind};

/// Picks grid dimensions `(rows, cols)` for `cores` switches, as close to
/// square as possible with `rows * cols >= cores` and `cols >= rows`.
///
/// This mirrors the paper's benchmark instances: 12 cores map onto a 3x4
/// mesh (Fig. 3b) and 16 onto a 4x4.
pub fn grid_dims(cores: usize) -> (usize, usize) {
    if cores == 0 {
        return (1, 1);
    }
    let mut rows = (cores as f64).sqrt().floor() as usize;
    rows = rows.max(1);
    while rows > 1 && cores.div_ceil(rows) < rows {
        rows -= 1;
    }
    let cols = cores.div_ceil(rows);
    (rows, cols)
}

/// Builds the full standard topology library sized to host `cores` cores,
/// in the paper's order: mesh, torus, hypercube, Clos, butterfly.
///
/// Sizing rules:
///
/// * mesh/torus: near-square grid with at least `cores` switches;
/// * hypercube: dimension `ceil(log2(cores))`;
/// * Clos: 3-stage with `n = ceil(sqrt(cores))` ports per edge switch,
///   `r = ceil(cores / n)` edge switches per side and `m = n` middle
///   switches (the rearrangeably non-blocking minimum);
/// * butterfly: 4-ary n-fly when `cores > 8` (the paper uses a 4-ary
///   2-fly for the 12-core VOPD), otherwise 2-ary n-fly.
///
/// # Errors
///
/// Returns an error if `cores` is zero.
///
/// # Examples
///
/// ```
/// use sunmap_topology::builders::standard_library;
///
/// let lib = standard_library(12, 500.0)?;
/// assert_eq!(lib.len(), 5);
/// for g in &lib {
///     assert!(g.mappable_nodes().len() >= 12);
/// }
/// # Ok::<(), sunmap_topology::TopologyError>(())
/// ```
pub fn standard_library(
    cores: usize,
    link_capacity: f64,
) -> Result<Vec<TopologyGraph>, TopologyError> {
    if cores == 0 {
        return Err(TopologyError::InvalidDimension {
            parameter: "cores",
            value: 0,
        });
    }
    let (rows, cols) = grid_dims(cores);
    let dim = (cores.max(2) as f64).log2().ceil() as u32;
    let ports = (cores as f64).sqrt().ceil() as usize;
    let ingress = cores.div_ceil(ports);
    let (radix, stages) = butterfly_dims(cores);
    Ok(vec![
        mesh(rows, cols, link_capacity)?,
        torus(rows, cols, link_capacity)?,
        hypercube(dim, link_capacity)?,
        clos(ingress, ports, ports.max(2), link_capacity)?,
        butterfly(radix, stages, link_capacity)?,
    ])
}

/// Picks `(radix k, stages n)` for a k-ary n-fly hosting at least `cores`
/// terminals. Small networks prefer two stages with a larger radix, as
/// the paper's examples do: the 12-core VOPD uses a 4-ary 2-fly (§6.1)
/// and the 6-core DSP filter a 2-stage network of 3x3 switches
/// (Fig. 10b); beyond 16 terminals the radix stays at 4 and stages grow.
pub fn butterfly_dims(cores: usize) -> (usize, u32) {
    if cores <= 4 {
        return (2, 2);
    }
    if cores <= 9 {
        return (3, 2);
    }
    if cores <= 16 {
        return (4, 2);
    }
    let mut stages = 3u32;
    while 4u64.pow(stages) < cores as u64 {
        stages += 1;
    }
    (4, stages)
}

/// Builds one topology of the given kind. Custom kinds cannot be
/// rebuilt from their tag alone — construct those through
/// [`crate::CustomTopologyBuilder`].
///
/// # Errors
///
/// Propagates the individual builder errors for degenerate parameters;
/// returns [`TopologyError::NotMappable`] for custom kinds.
pub fn build(kind: TopologyKind, link_capacity: f64) -> Result<TopologyGraph, TopologyError> {
    match kind {
        TopologyKind::Mesh { rows, cols } => mesh(rows, cols, link_capacity),
        TopologyKind::Torus { rows, cols } => torus(rows, cols, link_capacity),
        TopologyKind::Hypercube { dim } => hypercube(dim, link_capacity),
        TopologyKind::Clos {
            ingress,
            ports,
            middle,
        } => clos(ingress, ports, middle, link_capacity),
        TopologyKind::Butterfly { radix, stages } => butterfly(radix, stages, link_capacity),
        TopologyKind::Octagon => octagon(link_capacity),
        TopologyKind::Star { ports } => star(ports, link_capacity),
        TopologyKind::Custom { tag } => Err(TopologyError::NotMappable(tag as usize)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_dims_near_square() {
        assert_eq!(grid_dims(12), (3, 4));
        assert_eq!(grid_dims(16), (4, 4));
        assert_eq!(grid_dims(14), (3, 5));
        assert_eq!(grid_dims(6), (2, 3));
        assert_eq!(grid_dims(1), (1, 1));
        assert_eq!(grid_dims(2), (1, 2));
    }

    #[test]
    fn butterfly_dims_match_paper_choices() {
        // 12-core VOPD -> 4-ary 2-fly (16 terminals), as in §6.1.
        assert_eq!(butterfly_dims(12), (4, 2));
        assert_eq!(butterfly_dims(16), (4, 2));
        // 6-core DSP filter -> 2 stages of 3x3 switches (Fig. 10b).
        assert_eq!(butterfly_dims(6), (3, 2));
        assert_eq!(butterfly_dims(4), (2, 2));
        assert_eq!(butterfly_dims(17), (4, 3));
        assert_eq!(butterfly_dims(64), (4, 3));
        assert_eq!(butterfly_dims(65), (4, 4));
    }

    #[test]
    fn standard_library_has_five_topologies_with_capacity() {
        let lib = standard_library(12, 500.0).unwrap();
        assert_eq!(lib.len(), 5);
        let names: Vec<_> = lib.iter().map(|g| g.kind().name()).collect();
        assert_eq!(names, ["Mesh", "Torus", "Hypercube", "Clos", "Butterfly"]);
        for g in &lib {
            assert!(
                g.mappable_nodes().len() >= 12,
                "{} offers too few slots",
                g.kind()
            );
        }
    }

    #[test]
    fn standard_library_rejects_zero_cores() {
        assert!(standard_library(0, 500.0).is_err());
    }

    #[test]
    fn build_round_trips_kind() {
        for cores in [4usize, 9, 12, 16] {
            for g in standard_library(cores, 500.0).unwrap() {
                let rebuilt = build(g.kind(), 500.0).unwrap();
                assert_eq!(rebuilt.node_count(), g.node_count());
                assert_eq!(rebuilt.edge_count(), g.edge_count());
            }
        }
    }
}
