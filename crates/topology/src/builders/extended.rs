//! Extension topologies beyond the paper's standard five.
//!
//! Paper §1: "the approach presented here is general and other
//! topologies (such as octagon network or star network) can be easily
//! added to the topology library". These are those two topologies.

use crate::{NodeCoords, NodeKind, TopologyError, TopologyGraph, TopologyKind};

/// Grid positions of the eight octagon switches around a 3x3 perimeter
/// (used for floorplanning); index `i` is the octagon node number.
pub(crate) const OCTAGON_RING: [(usize, usize); 8] = [
    (0, 0),
    (0, 1),
    (0, 2),
    (1, 2),
    (2, 2),
    (2, 1),
    (2, 0),
    (1, 0),
];

/// Builds the octagon network (Karim et al., paper ref. \[6\]): eight
/// switches, each hosting one core, connected in a ring with cross
/// links between opposite switches — switch `i` is adjacent to
/// `i±1 (mod 8)` and `i+4 (mod 8)`, so any pair communicates in at most
/// two hops.
///
/// # Errors
///
/// Infallible in practice; returns `Result` for API consistency with
/// the other builders.
///
/// # Examples
///
/// ```
/// let oct = sunmap_topology::builders::octagon(500.0)?;
/// assert_eq!(oct.switch_count(), 8);
/// // Ring (8) plus cross (4) channels.
/// assert_eq!(oct.network_channel_count(), 12);
/// # Ok::<(), sunmap_topology::TopologyError>(())
/// ```
pub fn octagon(link_capacity: f64) -> Result<TopologyGraph, TopologyError> {
    let mut g = TopologyGraph::new(TopologyKind::Octagon);
    let ids: Vec<_> = OCTAGON_RING
        .iter()
        .map(|&(row, col)| g.add_node(NodeKind::Switch, NodeCoords::Grid { row, col }))
        .collect();
    for i in 0..8 {
        g.add_channel(ids[i], ids[(i + 1) % 8], link_capacity);
    }
    for i in 0..4 {
        g.add_channel(ids[i], ids[i + 4], link_capacity);
    }
    Ok(g)
}

/// Builds a star network (paper ref. \[10\]): one central switch with
/// `ports` cores, each attached through a dedicated bidirectional
/// channel of `link_capacity`. Every communication crosses exactly one
/// switch, so the star minimises hop delay at the price of a large
/// central crossbar and per-core channel capacity limits.
///
/// Unlike the Clos/butterfly port links (which are free NI stubs), star
/// attach channels are real network links with finite capacity: they
/// are the star's only links, and its feasibility story.
///
/// # Errors
///
/// Returns [`TopologyError::InvalidDimension`] if `ports` is zero.
///
/// # Examples
///
/// ```
/// let star = sunmap_topology::builders::star(6, 500.0)?;
/// assert_eq!(star.switch_count(), 1);
/// assert_eq!(star.mappable_nodes().len(), 6);
/// # Ok::<(), sunmap_topology::TopologyError>(())
/// ```
pub fn star(ports: usize, link_capacity: f64) -> Result<TopologyGraph, TopologyError> {
    if ports == 0 {
        return Err(TopologyError::InvalidDimension {
            parameter: "ports",
            value: 0,
        });
    }
    let mut g = TopologyGraph::new(TopologyKind::Star { ports });
    let hub = g.add_node(NodeKind::Switch, NodeCoords::Stage { stage: 0, index: 0 });
    for i in 0..ports {
        let p = g.add_node(NodeKind::CorePort, NodeCoords::Port { index: i });
        g.add_edge(p, hub, link_capacity);
        g.add_edge(hub, p, link_capacity);
    }
    Ok(g)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paths;

    #[test]
    fn octagon_diameter_is_two() {
        let g = octagon(500.0).unwrap();
        let nodes: Vec<_> = g.switches().collect();
        for &a in &nodes {
            for &b in &nodes {
                let d = paths::hop_distance(&g, a, b).unwrap();
                assert!(d <= 2, "octagon distance {a}->{b} = {d}");
            }
        }
    }

    #[test]
    fn octagon_adjacency_matches_karim() {
        let g = octagon(500.0).unwrap();
        let nodes: Vec<_> = g.switches().collect();
        for i in 0..8usize {
            let neighbors: Vec<_> = g.switch_neighbors(nodes[i]).collect();
            assert_eq!(neighbors.len(), 3, "node {i}");
            assert!(neighbors.contains(&nodes[(i + 1) % 8]));
            assert!(neighbors.contains(&nodes[(i + 7) % 8]));
            assert!(neighbors.contains(&nodes[(i + 4) % 8]));
        }
    }

    #[test]
    fn octagon_is_direct_and_mappable_everywhere() {
        let g = octagon(500.0).unwrap();
        assert!(g.kind().is_direct());
        assert_eq!(g.mappable_nodes().len(), 8);
    }

    #[test]
    fn star_single_hop_between_any_ports() {
        let g = star(5, 500.0).unwrap();
        for a in g.core_ports() {
            for b in g.core_ports() {
                if a == b {
                    continue;
                }
                let p = paths::shortest_path(&g, a, b, None).unwrap();
                assert_eq!(p.len(), 3, "port -> hub -> port");
            }
        }
    }

    #[test]
    fn star_attach_channels_have_finite_capacity() {
        let g = star(4, 321.0).unwrap();
        for (_, e) in g.edges() {
            assert_eq!(e.capacity, 321.0);
            assert!(e.is_network_link());
        }
    }

    #[test]
    fn star_rejects_zero_ports() {
        assert!(star(0, 500.0).is_err());
    }
}
