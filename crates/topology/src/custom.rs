//! User-defined (heterogeneous) topologies — the paper's §7 future
//! work: "we plan to enhance the tool with automatic heterogeneous
//! topology modeling".
//!
//! [`CustomTopologyBuilder`] lets a user assemble an arbitrary switch
//! graph with per-link capacities and explicit core-attachment points,
//! producing a [`TopologyGraph`] that flows through mapping, selection
//! and generation exactly like the library topologies. Generic
//! fallbacks cover the topology-specific machinery: the quadrant graph
//! of a custom topology is the whole graph, deterministic routing is
//! the lexicographically-first minimum path, and the floorplanner lays
//! switches out on a caller-controlled (or near-square default) grid.

use std::collections::BTreeMap;

use crate::{NodeCoords, NodeId, NodeKind, TopologyError, TopologyGraph, TopologyKind};

/// Builder for heterogeneous topologies.
///
/// Switches are added first (optionally with explicit floorplan grid
/// slots), then links and core-attachment ports.
///
/// # Examples
///
/// A three-switch "spine" with four cores:
///
/// ```
/// use sunmap_topology::CustomTopologyBuilder;
///
/// let mut b = CustomTopologyBuilder::new("spine");
/// let s0 = b.add_switch();
/// let s1 = b.add_switch();
/// let s2 = b.add_switch();
/// b.add_link(s0, s1, 500.0)?;
/// b.add_link(s1, s2, 1000.0)?; // heterogeneous capacity
/// b.add_port(s0)?;
/// b.add_port(s0)?;
/// b.add_port(s2)?;
/// b.add_port(s2)?;
/// let g = b.build()?;
/// assert_eq!(g.switch_count(), 3);
/// assert_eq!(g.mappable_nodes().len(), 4);
/// # Ok::<(), sunmap_topology::TopologyError>(())
/// ```
#[derive(Debug, Clone)]
pub struct CustomTopologyBuilder {
    name_hash: u32,
    switches: Vec<Option<(usize, usize)>>,
    links: Vec<(usize, usize, f64, bool)>,
    ports: Vec<usize>,
}

/// Index of a switch inside a [`CustomTopologyBuilder`] (only
/// meaningful before [`CustomTopologyBuilder::build`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SwitchRef(usize);

impl CustomTopologyBuilder {
    /// Starts a new custom topology. `name` distinguishes custom
    /// topologies in reports (hashed into the kind tag).
    pub fn new(name: &str) -> Self {
        let name_hash = name
            .bytes()
            .fold(0u32, |h, b| h.wrapping_mul(31).wrapping_add(b as u32));
        CustomTopologyBuilder {
            name_hash,
            switches: Vec::new(),
            links: Vec::new(),
            ports: Vec::new(),
        }
    }

    /// Adds a switch; the floorplanner will place it on an
    /// automatically chosen near-square grid.
    pub fn add_switch(&mut self) -> SwitchRef {
        self.switches.push(None);
        SwitchRef(self.switches.len() - 1)
    }

    /// Adds a switch with an explicit floorplan grid slot.
    pub fn add_switch_at(&mut self, row: usize, col: usize) -> SwitchRef {
        self.switches.push(Some((row, col)));
        SwitchRef(self.switches.len() - 1)
    }

    /// Adds a bidirectional channel of `capacity` MB/s between two
    /// switches.
    ///
    /// # Errors
    ///
    /// Rejects unknown switches, self-links and non-positive
    /// capacities.
    pub fn add_link(
        &mut self,
        a: SwitchRef,
        b: SwitchRef,
        capacity: f64,
    ) -> Result<(), TopologyError> {
        self.check_link(a, b, capacity)?;
        self.links.push((a.0, b.0, capacity, true));
        Ok(())
    }

    /// Adds a unidirectional channel from `a` to `b`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`CustomTopologyBuilder::add_link`].
    pub fn add_directed_link(
        &mut self,
        a: SwitchRef,
        b: SwitchRef,
        capacity: f64,
    ) -> Result<(), TopologyError> {
        self.check_link(a, b, capacity)?;
        self.links.push((a.0, b.0, capacity, false));
        Ok(())
    }

    fn check_link(&self, a: SwitchRef, b: SwitchRef, capacity: f64) -> Result<(), TopologyError> {
        if a.0 >= self.switches.len() || b.0 >= self.switches.len() {
            return Err(TopologyError::NotMappable(a.0.max(b.0)));
        }
        if a == b {
            return Err(TopologyError::InvalidDimension {
                parameter: "self-link",
                value: a.0,
            });
        }
        if !(capacity.is_finite() && capacity > 0.0) {
            return Err(TopologyError::InvalidDimension {
                parameter: "capacity",
                value: capacity as usize,
            });
        }
        Ok(())
    }

    /// Adds a core-attachment port to `switch`: one core may be mapped
    /// onto each port.
    ///
    /// # Errors
    ///
    /// Rejects unknown switches.
    pub fn add_port(&mut self, switch: SwitchRef) -> Result<(), TopologyError> {
        if switch.0 >= self.switches.len() {
            return Err(TopologyError::NotMappable(switch.0));
        }
        self.ports.push(switch.0);
        Ok(())
    }

    /// Finalises the graph.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::InvalidDimension`] if the topology has
    /// no switches or no ports.
    pub fn build(self) -> Result<TopologyGraph, TopologyError> {
        if self.switches.is_empty() {
            return Err(TopologyError::InvalidDimension {
                parameter: "switches",
                value: 0,
            });
        }
        if self.ports.is_empty() {
            return Err(TopologyError::InvalidDimension {
                parameter: "ports",
                value: 0,
            });
        }
        let mut g = TopologyGraph::new(TopologyKind::Custom {
            tag: self.name_hash,
        });
        // Auto-grid for switches without explicit slots, avoiding any
        // explicitly used slot.
        let mut used: BTreeMap<(usize, usize), ()> = self
            .switches
            .iter()
            .flatten()
            .map(|slot| (*slot, ()))
            .collect();
        let side = (self.switches.len() as f64).sqrt().ceil() as usize;
        let mut auto = 0usize;
        let ids: Vec<NodeId> = self
            .switches
            .iter()
            .map(|slot| {
                let (row, col) = slot.unwrap_or_else(|| loop {
                    let candidate = (auto / side.max(1), auto % side.max(1));
                    auto += 1;
                    if used.insert(candidate, ()).is_none() {
                        break candidate;
                    }
                });
                g.add_node(NodeKind::Switch, NodeCoords::Grid { row, col })
            })
            .collect();
        for (a, b, capacity, bidir) in self.links {
            if bidir {
                g.add_channel(ids[a], ids[b], capacity);
            } else {
                g.add_edge(ids[a], ids[b], capacity);
            }
        }
        for (index, sw) in self.ports.into_iter().enumerate() {
            let p = g.add_node(NodeKind::CorePort, NodeCoords::Port { index });
            g.add_edge(p, ids[sw], f64::INFINITY);
            g.add_edge(ids[sw], p, f64::INFINITY);
        }
        Ok(g)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paths;

    fn ring_of(n: usize) -> TopologyGraph {
        let mut b = CustomTopologyBuilder::new("ring");
        let sw: Vec<_> = (0..n).map(|_| b.add_switch()).collect();
        for i in 0..n {
            b.add_link(sw[i], sw[(i + 1) % n], 500.0).unwrap();
        }
        for &s in &sw {
            b.add_port(s).unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn ring_topology_builds_and_routes() {
        let g = ring_of(6);
        assert_eq!(g.switch_count(), 6);
        assert_eq!(g.mappable_nodes().len(), 6);
        assert!(!g.kind().is_direct(), "custom cores attach via ports");
        let a = g.port(0).unwrap();
        let b = g.port(3).unwrap();
        // Opposite side of a 6-ring: 3 switch hops + 2 port hops.
        assert_eq!(paths::shortest_path(&g, a, b, None).unwrap().len(), 6);
    }

    #[test]
    fn heterogeneous_capacities_are_preserved() {
        let mut b = CustomTopologyBuilder::new("fat");
        let s0 = b.add_switch();
        let s1 = b.add_switch();
        b.add_link(s0, s1, 2000.0).unwrap();
        b.add_port(s0).unwrap();
        b.add_port(s1).unwrap();
        let g = b.build().unwrap();
        let caps: Vec<f64> = g
            .edges()
            .filter(|(_, e)| e.is_network_link())
            .map(|(_, e)| e.capacity)
            .collect();
        assert_eq!(caps, vec![2000.0, 2000.0]);
    }

    #[test]
    fn directed_links_are_one_way() {
        let mut b = CustomTopologyBuilder::new("oneway");
        let s0 = b.add_switch();
        let s1 = b.add_switch();
        b.add_directed_link(s0, s1, 500.0).unwrap();
        b.add_port(s0).unwrap();
        b.add_port(s1).unwrap();
        let g = b.build().unwrap();
        let a = g.port(0).unwrap();
        let z = g.port(1).unwrap();
        assert!(paths::shortest_path(&g, a, z, None).is_some());
        assert!(paths::shortest_path(&g, z, a, None).is_none());
    }

    #[test]
    fn multiple_ports_per_switch() {
        let mut b = CustomTopologyBuilder::new("hub");
        let hub = b.add_switch();
        for _ in 0..4 {
            b.add_port(hub).unwrap();
        }
        let g = b.build().unwrap();
        assert_eq!(g.mappable_nodes().len(), 4);
        for p in g.core_ports() {
            assert_eq!(g.ingress_switch(p).unwrap(), g.egress_switch(p).unwrap());
        }
    }

    #[test]
    fn explicit_and_auto_slots_never_collide() {
        let mut b = CustomTopologyBuilder::new("mixed");
        let s0 = b.add_switch_at(0, 0);
        let _s1 = b.add_switch(); // would default to (0,0) without collision avoidance
        let _s2 = b.add_switch();
        b.add_port(s0).unwrap();
        let g = b.build().unwrap();
        let mut slots = std::collections::HashSet::new();
        for s in g.switches() {
            let NodeCoords::Grid { row, col } = g.coords(s) else {
                panic!("custom switches carry grid coords")
            };
            assert!(slots.insert((row, col)), "slot collision at ({row},{col})");
        }
    }

    #[test]
    fn validation_errors() {
        let mut b = CustomTopologyBuilder::new("bad");
        let s0 = b.add_switch();
        assert!(b.add_link(s0, s0, 500.0).is_err());
        assert!(b.add_link(s0, SwitchRef(9), 500.0).is_err());
        assert!(b.add_link(s0, s0, -1.0).is_err());
        assert!(b.add_port(SwitchRef(9)).is_err());
        assert!(CustomTopologyBuilder::new("empty").build().is_err());
        let mut no_ports = CustomTopologyBuilder::new("noports");
        no_ports.add_switch();
        assert!(no_ports.build().is_err());
    }

    #[test]
    fn distinct_names_get_distinct_tags() {
        let a = CustomTopologyBuilder::new("alpha");
        let b = CustomTopologyBuilder::new("beta");
        assert_ne!(a.name_hash, b.name_hash);
    }
}
