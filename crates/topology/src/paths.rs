//! Shortest-path machinery over topology graphs.
//!
//! All functions accept an optional *allowed set* of vertices, which is
//! how the mapping engine restricts the search to a quadrant graph
//! (paper §4.1 step 4–5): "Dijkstra's shortest path algorithm is applied
//! to the quadrant graph and the minimum path is obtained". Source and
//! destination are always considered allowed.

use std::cmp::Ordering;
use std::collections::{BTreeSet, BinaryHeap, VecDeque};

use crate::{EdgeId, NodeId, TopologyGraph};

/// Restriction of a search to a vertex subset (a quadrant graph).
pub type AllowedSet = BTreeSet<NodeId>;

fn permitted(allowed: Option<&AllowedSet>, node: NodeId, src: NodeId, dst: NodeId) -> bool {
    node == src || node == dst || allowed.is_none_or(|a| a.contains(&node))
}

/// Breadth-first minimum-hop path from `src` to `dst`, optionally
/// restricted to `allowed`. Returns the vertex sequence including both
/// endpoints, or `None` if unreachable.
///
/// # Examples
///
/// ```
/// use sunmap_topology::{builders, paths};
///
/// let g = builders::mesh(3, 3, 500.0)?;
/// let a = g.switch_at_grid(0, 0).unwrap();
/// let b = g.switch_at_grid(2, 2).unwrap();
/// let p = paths::shortest_path(&g, a, b, None).unwrap();
/// assert_eq!(p.len(), 5); // 4 hops across the mesh diagonal
/// # Ok::<(), sunmap_topology::TopologyError>(())
/// ```
pub fn shortest_path(
    g: &TopologyGraph,
    src: NodeId,
    dst: NodeId,
    allowed: Option<&AllowedSet>,
) -> Option<Vec<NodeId>> {
    if src == dst {
        return Some(vec![src]);
    }
    let mut prev: Vec<Option<NodeId>> = vec![None; g.node_count()];
    let mut seen = vec![false; g.node_count()];
    seen[src.index()] = true;
    let mut queue = VecDeque::from([src]);
    while let Some(u) = queue.pop_front() {
        for v in g.successors(u) {
            if seen[v.index()] || !permitted(allowed, v, src, dst) {
                continue;
            }
            seen[v.index()] = true;
            prev[v.index()] = Some(u);
            if v == dst {
                return Some(reconstruct(&prev, src, dst));
            }
            queue.push_back(v);
        }
    }
    None
}

fn reconstruct(prev: &[Option<NodeId>], src: NodeId, dst: NodeId) -> Vec<NodeId> {
    let mut path = Vec::new();
    reconstruct_into(prev, src, dst, &mut path);
    path
}

fn reconstruct_into(prev: &[Option<NodeId>], src: NodeId, dst: NodeId, out: &mut Vec<NodeId>) {
    out.clear();
    out.push(dst);
    let mut cur = dst;
    while cur != src {
        cur = prev[cur.index()].expect("predecessor chain reaches the source");
        out.push(cur);
    }
    out.reverse();
}

/// BFS hop levels from `src` to every vertex of `g` in one O(V + E)
/// pass (`usize::MAX` marks unreachable vertices). One call per source
/// replaces the per-*pair* BFS that [`hop_distance`] would cost when
/// tabulating all-pairs distances.
///
/// # Examples
///
/// ```
/// use sunmap_topology::{builders, paths};
///
/// let g = builders::mesh(3, 3, 500.0)?;
/// let a = g.switch_at_grid(0, 0).unwrap();
/// let b = g.switch_at_grid(2, 2).unwrap();
/// let levels = paths::bfs_levels(&g, a);
/// assert_eq!(levels[b.index()], 4);
/// assert_eq!(levels[a.index()], 0);
/// # Ok::<(), sunmap_topology::TopologyError>(())
/// ```
pub fn bfs_levels(g: &TopologyGraph, src: NodeId) -> Vec<usize> {
    let mut level = vec![usize::MAX; g.node_count()];
    level[src.index()] = 0;
    let mut queue = VecDeque::from([src]);
    while let Some(u) = queue.pop_front() {
        for v in g.successors(u) {
            if level[v.index()] == usize::MAX {
                level[v.index()] = level[u.index()] + 1;
                queue.push_back(v);
            }
        }
    }
    level
}

#[derive(Debug, PartialEq)]
struct HeapEntry {
    cost: f64,
    node: NodeId,
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap on cost; ties broken by node id for determinism.
        other
            .cost
            .total_cmp(&self.cost)
            .then_with(|| other.node.cmp(&self.node))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Reusable Dijkstra state (dist / prev / heap) sized for one graph.
///
/// The mapping engine's steady-state candidate evaluation runs one
/// Dijkstra per commodity per candidate; allocating these vectors fresh
/// each time dominated small-search runtime. A scratch is reset lazily:
/// only vertices touched by the previous search are cleared.
#[derive(Debug, Default)]
pub struct DijkstraScratch {
    dist: Vec<f64>,
    prev: Vec<Option<NodeId>>,
    touched: Vec<usize>,
    heap: BinaryHeap<HeapEntry>,
}

impl DijkstraScratch {
    /// Creates scratch buffers for a graph of `node_count` vertices.
    pub fn new(node_count: usize) -> Self {
        DijkstraScratch {
            dist: vec![f64::INFINITY; node_count],
            prev: vec![None; node_count],
            touched: Vec::new(),
            heap: BinaryHeap::new(),
        }
    }

    fn reset(&mut self) {
        for &i in &self.touched {
            self.dist[i] = f64::INFINITY;
            self.prev[i] = None;
        }
        self.touched.clear();
        self.heap.clear();
    }
}

/// Dijkstra's algorithm with a caller-supplied non-negative edge cost,
/// optionally restricted to `allowed`. Returns `(total_cost, vertices)`.
///
/// The mapping engine uses a cost of `HOP_WEIGHT + current_load(edge)`
/// so that routes stay minimum-hop while balancing load among ties, and
/// increments edge loads after each commodity as in paper Fig. 5 step 6.
///
/// # Panics
///
/// Debug-asserts that edge costs are non-negative.
pub fn dijkstra<F>(
    g: &TopologyGraph,
    src: NodeId,
    dst: NodeId,
    allowed: Option<&AllowedSet>,
    mut edge_cost: F,
) -> Option<(f64, Vec<NodeId>)>
where
    F: FnMut(EdgeId) -> f64,
{
    let mut scratch = DijkstraScratch::new(g.node_count());
    let mut path = Vec::new();
    let cost = dijkstra_into(
        g,
        src,
        dst,
        |n| permitted(allowed, n, src, dst),
        &mut edge_cost,
        &mut scratch,
        &mut path,
    )?;
    Some((cost, path))
}

/// Allocation-free Dijkstra: identical algorithm (and therefore
/// identical tie-breaking) to [`dijkstra`], but vertex admission comes
/// from a caller-supplied predicate, working state lives in `scratch`,
/// and the path is written into `path_out`. Returns the total cost, or
/// `None` if `dst` is unreachable (in which case `path_out` is
/// unspecified).
///
/// The predicate must admit `src` and `dst` themselves; [`dijkstra`]
/// wires this up via [`AllowedSet`] semantics.
pub fn dijkstra_into<P, F>(
    g: &TopologyGraph,
    src: NodeId,
    dst: NodeId,
    admit: P,
    mut edge_cost: F,
    scratch: &mut DijkstraScratch,
    path_out: &mut Vec<NodeId>,
) -> Option<f64>
where
    P: Fn(NodeId) -> bool,
    F: FnMut(EdgeId) -> f64,
{
    debug_assert_eq!(scratch.dist.len(), g.node_count());
    scratch.reset();
    scratch.dist[src.index()] = 0.0;
    scratch.touched.push(src.index());
    scratch.heap.push(HeapEntry {
        cost: 0.0,
        node: src,
    });
    while let Some(HeapEntry { cost, node }) = scratch.heap.pop() {
        if cost > scratch.dist[node.index()] {
            continue;
        }
        if node == dst {
            reconstruct_into(&scratch.prev, src, dst, path_out);
            return Some(cost);
        }
        for &e in g.outgoing(node) {
            let edge = g.edge(e);
            if !admit(edge.dst) {
                continue;
            }
            let w = edge_cost(e);
            debug_assert!(w >= 0.0, "edge costs must be non-negative");
            let next = cost + w;
            if next < scratch.dist[edge.dst.index()] {
                if scratch.dist[edge.dst.index()] == f64::INFINITY {
                    scratch.touched.push(edge.dst.index());
                }
                scratch.dist[edge.dst.index()] = next;
                scratch.prev[edge.dst.index()] = Some(node);
                scratch.heap.push(HeapEntry {
                    cost: next,
                    node: edge.dst,
                });
            }
        }
    }
    None
}

/// Enumerates every minimum-hop path from `src` to `dst` (up to `cap`
/// paths), optionally restricted to `allowed`. Used by the
/// split-traffic-across-minimum-paths routing function.
pub fn all_shortest_paths(
    g: &TopologyGraph,
    src: NodeId,
    dst: NodeId,
    allowed: Option<&AllowedSet>,
    cap: usize,
) -> Vec<Vec<NodeId>> {
    // BFS levels from src, then backtrack along strictly-decreasing
    // levels from dst.
    let Some(min) = shortest_path(g, src, dst, allowed).map(|p| p.len()) else {
        return Vec::new();
    };
    let mut level = vec![usize::MAX; g.node_count()];
    level[src.index()] = 0;
    let mut queue = VecDeque::from([src]);
    while let Some(u) = queue.pop_front() {
        for v in g.successors(u) {
            if level[v.index()] == usize::MAX && permitted(allowed, v, src, dst) {
                level[v.index()] = level[u.index()] + 1;
                queue.push_back(v);
            }
        }
    }
    let mut out = Vec::new();
    let mut stack = vec![src];
    enumerate_levels(g, dst, &level, min - 1, &mut stack, &mut out, cap);
    out
}

fn enumerate_levels(
    g: &TopologyGraph,
    dst: NodeId,
    level: &[usize],
    hops: usize,
    stack: &mut Vec<NodeId>,
    out: &mut Vec<Vec<NodeId>>,
    cap: usize,
) {
    if out.len() >= cap {
        return;
    }
    let here = *stack.last().expect("stack starts with the source");
    if here == dst {
        out.push(stack.clone());
        return;
    }
    if stack.len() > hops {
        return;
    }
    for v in g.successors(here) {
        if level[v.index()] == stack.len() && (v == dst || level[v.index()] < usize::MAX) {
            // Only extend along BFS-level-increasing edges: every such
            // completion is a minimum-hop path.
            stack.push(v);
            enumerate_levels(g, dst, level, hops, stack, out, cap);
            stack.pop();
        }
    }
}

/// Enumerates simple paths from `src` to `dst` within `allowed` (up to
/// `cap` paths and `max_len` vertices each). Used by the
/// split-traffic-across-all-paths routing function, where "all paths"
/// means all simple paths inside the commodity's quadrant graph.
pub fn all_simple_paths(
    g: &TopologyGraph,
    src: NodeId,
    dst: NodeId,
    allowed: Option<&AllowedSet>,
    max_len: usize,
    cap: usize,
) -> Vec<Vec<NodeId>> {
    let mut out = Vec::new();
    let mut stack = vec![src];
    let mut on_path: BTreeSet<NodeId> = BTreeSet::from([src]);
    simple_dfs(
        g,
        dst,
        allowed,
        max_len,
        cap,
        &mut stack,
        &mut on_path,
        &mut out,
    );
    out
}

#[allow(clippy::too_many_arguments)]
fn simple_dfs(
    g: &TopologyGraph,
    dst: NodeId,
    allowed: Option<&AllowedSet>,
    max_len: usize,
    cap: usize,
    stack: &mut Vec<NodeId>,
    on_path: &mut BTreeSet<NodeId>,
    out: &mut Vec<Vec<NodeId>>,
) {
    if out.len() >= cap {
        return;
    }
    let here = *stack.last().expect("stack starts non-empty");
    if here == dst {
        out.push(stack.clone());
        return;
    }
    if stack.len() >= max_len {
        return;
    }
    let src = stack[0];
    for v in g.successors(here) {
        if on_path.contains(&v) || !permitted(allowed, v, src, dst) {
            continue;
        }
        stack.push(v);
        on_path.insert(v);
        simple_dfs(g, dst, allowed, max_len, cap, stack, on_path, out);
        on_path.remove(&v);
        stack.pop();
    }
}

/// Converts a vertex path into the directed edges traversed.
///
/// # Panics
///
/// Panics if consecutive vertices of `path` are not adjacent in `g`.
pub fn path_edges(g: &TopologyGraph, path: &[NodeId]) -> Vec<EdgeId> {
    path.windows(2)
        .map(|w| {
            g.find_edge(w[0], w[1])
                .expect("consecutive path vertices must be adjacent")
        })
        .collect()
}

/// Minimum hop distance (edge count) between two vertices, or `None` if
/// unreachable.
pub fn hop_distance(g: &TopologyGraph, src: NodeId, dst: NodeId) -> Option<usize> {
    shortest_path(g, src, dst, None).map(|p| p.len() - 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders;

    #[test]
    fn bfs_and_dijkstra_agree_on_unit_costs() {
        let g = builders::torus(3, 4, 500.0).unwrap();
        for a in g.switches() {
            for b in g.switches() {
                let bfs = shortest_path(&g, a, b, None).unwrap().len();
                let (cost, path) = dijkstra(&g, a, b, None, |_| 1.0).unwrap();
                assert_eq!(path.len(), bfs);
                assert_eq!(cost as usize, bfs - 1);
            }
        }
    }

    #[test]
    fn restricted_search_respects_allowed_set() {
        let g = builders::mesh(3, 3, 500.0).unwrap();
        let a = g.switch_at_grid(0, 0).unwrap();
        let b = g.switch_at_grid(0, 2).unwrap();
        // Only allow the bottom row: the direct top-row path is blocked.
        let allowed: AllowedSet = (0..3)
            .map(|c| g.switch_at_grid(2, c).unwrap())
            .chain((0..3).map(|r| g.switch_at_grid(r, 0).unwrap()))
            .chain((0..3).map(|r| g.switch_at_grid(r, 2).unwrap()))
            .filter(|n| *n != g.switch_at_grid(0, 1).unwrap())
            .collect();
        let p = shortest_path(&g, a, b, Some(&allowed)).unwrap();
        assert!(p.len() > 3, "must detour around the blocked middle column");
        assert!(!p.contains(&g.switch_at_grid(0, 1).unwrap()));
    }

    #[test]
    fn all_shortest_paths_mesh_diagonal() {
        let g = builders::mesh(3, 3, 500.0).unwrap();
        let a = g.switch_at_grid(0, 0).unwrap();
        let b = g.switch_at_grid(1, 1).unwrap();
        let all = all_shortest_paths(&g, a, b, None, 16);
        assert_eq!(all.len(), 2); // right-down and down-right
        for p in &all {
            assert_eq!(p.len(), 3);
        }
        // 2x2 sub-diagonal of the corner-to-corner walk: C(4,2) = 6.
        let c = g.switch_at_grid(2, 2).unwrap();
        assert_eq!(all_shortest_paths(&g, a, c, None, 32).len(), 6);
    }

    #[test]
    fn all_shortest_paths_cap_is_respected() {
        let g = builders::mesh(3, 3, 500.0).unwrap();
        let a = g.switch_at_grid(0, 0).unwrap();
        let c = g.switch_at_grid(2, 2).unwrap();
        assert_eq!(all_shortest_paths(&g, a, c, None, 3).len(), 3);
    }

    #[test]
    fn all_simple_paths_include_non_minimal() {
        let g = builders::mesh(2, 2, 500.0).unwrap();
        let a = g.switch_at_grid(0, 0).unwrap();
        let b = g.switch_at_grid(0, 1).unwrap();
        let all = all_simple_paths(&g, a, b, None, 4, 16);
        // Direct hop plus the 3-hop detour around the square.
        assert_eq!(all.len(), 2);
    }

    #[test]
    fn dijkstra_prefers_cheap_edges() {
        let g = builders::mesh(1, 3, 500.0).unwrap();
        let a = g.switch_at_grid(0, 0).unwrap();
        let c = g.switch_at_grid(0, 2).unwrap();
        let (cost, path) = dijkstra(&g, a, c, None, |_| 2.5).unwrap();
        assert_eq!(path.len(), 3);
        assert_eq!(cost, 5.0);
    }

    #[test]
    fn path_edges_matches_path() {
        let g = builders::mesh(2, 3, 500.0).unwrap();
        let a = g.switch_at_grid(0, 0).unwrap();
        let b = g.switch_at_grid(1, 2).unwrap();
        let p = shortest_path(&g, a, b, None).unwrap();
        let es = path_edges(&g, &p);
        assert_eq!(es.len(), p.len() - 1);
        for (i, e) in es.iter().enumerate() {
            assert_eq!(g.edge(*e).src, p[i]);
            assert_eq!(g.edge(*e).dst, p[i + 1]);
        }
    }

    #[test]
    fn bfs_levels_match_hop_distance() {
        for g in [
            builders::mesh(3, 4, 500.0).unwrap(),
            builders::butterfly(4, 2, 500.0).unwrap(),
        ] {
            for a in g.nodes() {
                let levels = bfs_levels(&g, a);
                for b in g.nodes() {
                    match hop_distance(&g, a, b) {
                        Some(d) => assert_eq!(levels[b.index()], d, "{a}->{b}"),
                        None => assert_eq!(levels[b.index()], usize::MAX, "{a}->{b}"),
                    }
                }
            }
        }
    }

    #[test]
    fn scratch_dijkstra_reproduces_allocating_dijkstra() {
        let g = builders::torus(3, 4, 500.0).unwrap();
        let mut scratch = DijkstraScratch::new(g.node_count());
        let mut path = Vec::new();
        // Non-uniform costs exercise tie-breaking; reuse the scratch
        // across every pair to exercise the lazy reset.
        let cost_of = |e: EdgeId| 1.0 + (e.index() % 7) as f64 * 0.25;
        for a in g.switches() {
            for b in g.switches() {
                let reference = dijkstra(&g, a, b, None, cost_of).unwrap();
                let cost =
                    dijkstra_into(&g, a, b, |_| true, cost_of, &mut scratch, &mut path).unwrap();
                assert_eq!(cost, reference.0);
                assert_eq!(path, reference.1);
            }
        }
    }

    #[test]
    fn hop_distance_identity_and_symmetry_on_direct() {
        let g = builders::hypercube(4, 500.0).unwrap();
        for a in g.switches() {
            assert_eq!(hop_distance(&g, a, a), Some(0));
            for b in g.switches() {
                assert_eq!(hop_distance(&g, a, b), hop_distance(&g, b, a));
            }
        }
    }
}
