//! Node identifiers, kinds and coordinates.

/// Index of a vertex in a [`TopologyGraph`](crate::TopologyGraph).
///
/// `NodeId`s are dense indices `0..node_count()` and are only meaningful
/// relative to the graph that produced them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct NodeId(pub usize);

impl NodeId {
    /// Raw index of the node.
    pub fn index(self) -> usize {
        self.0
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl From<usize> for NodeId {
    fn from(value: usize) -> Self {
        NodeId(value)
    }
}

/// Role of a vertex in the NoC topology graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NodeKind {
    /// A switch (router). In direct topologies the switch also hosts one
    /// core locally; in indirect topologies switches never host cores.
    Switch,
    /// A core-attach port of an indirect topology: a vertex cores are
    /// mapped onto, connected to its ingress switch and from its egress
    /// switch. Direct topologies have no `CorePort` vertices.
    CorePort,
}

/// Topology-specific coordinates of a node.
///
/// Coordinates are what make the quadrant-graph and dimension-ordered
/// routing computations of the paper possible; each builder annotates its
/// nodes with the appropriate variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NodeCoords {
    /// Position of a switch in a mesh/torus grid.
    Grid {
        /// Row (0-based, top row first as in paper Fig. 1).
        row: usize,
        /// Column (0-based).
        col: usize,
    },
    /// Binary label of a hypercube switch: bit `j` of `label` is the
    /// coordinate `h_{j+1}` of the paper's n-tuple.
    Hyper {
        /// Binary node label (the decimal node number).
        label: u32,
    },
    /// Position of a switch in a multistage (Clos/butterfly) network.
    Stage {
        /// Stage index, 0-based from the ingress side.
        stage: usize,
        /// Switch index within the stage, 0-based from the top.
        index: usize,
    },
    /// A core-attach port of an indirect topology.
    Port {
        /// Terminal index (0-based). Port `i` injects at ingress switch
        /// `i / ports_per_switch` and ejects from the same egress index.
        index: usize,
    },
}

impl std::fmt::Display for NodeCoords {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            NodeCoords::Grid { row, col } => write!(f, "({row},{col})"),
            NodeCoords::Hyper { label } => write!(f, "0b{label:b}"),
            NodeCoords::Stage { stage, index } => write!(f, "s{stage}.{index}"),
            NodeCoords::Port { index } => write!(f, "p{index}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_roundtrip() {
        let id = NodeId::from(7usize);
        assert_eq!(id.index(), 7);
        assert_eq!(id.to_string(), "n7");
    }

    #[test]
    fn coords_display() {
        assert_eq!(NodeCoords::Grid { row: 1, col: 2 }.to_string(), "(1,2)");
        assert_eq!(NodeCoords::Hyper { label: 5 }.to_string(), "0b101");
        assert_eq!(NodeCoords::Stage { stage: 0, index: 3 }.to_string(), "s0.3");
        assert_eq!(NodeCoords::Port { index: 4 }.to_string(), "p4");
    }

    #[test]
    fn node_id_ordering_follows_index() {
        assert!(NodeId(1) < NodeId(2));
        assert_eq!(NodeId::default(), NodeId(0));
    }
}
