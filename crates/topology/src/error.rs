//! Error type for topology construction and queries.

/// Errors produced while building or querying topology graphs.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TopologyError {
    /// A builder was given a zero or otherwise degenerate dimension.
    InvalidDimension {
        /// Which parameter was invalid.
        parameter: &'static str,
        /// The offending value.
        value: usize,
    },
    /// A butterfly radix must be at least 2.
    InvalidRadix(usize),
    /// The requested node is not a mappable vertex of the graph.
    NotMappable(usize),
    /// The requested topology cannot host the requested number of cores.
    TooManyCores {
        /// Cores requested.
        cores: usize,
        /// Mappable slots available.
        slots: usize,
    },
}

impl std::fmt::Display for TopologyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TopologyError::InvalidDimension { parameter, value } => {
                write!(f, "invalid topology dimension: {parameter} = {value}")
            }
            TopologyError::InvalidRadix(k) => {
                write!(f, "butterfly radix must be at least 2, got {k}")
            }
            TopologyError::NotMappable(n) => {
                write!(f, "node n{n} is not a mappable vertex of this topology")
            }
            TopologyError::TooManyCores { cores, slots } => {
                write!(
                    f,
                    "topology provides {slots} mappable slots but {cores} cores were requested"
                )
            }
        }
    }
}

impl std::error::Error for TopologyError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = TopologyError::InvalidDimension {
            parameter: "rows",
            value: 0,
        };
        assert!(e.to_string().contains("rows"));
        let e = TopologyError::TooManyCores {
            cores: 20,
            slots: 16,
        };
        assert!(e.to_string().contains("20"));
        assert!(e.to_string().contains("16"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TopologyError>();
    }
}
