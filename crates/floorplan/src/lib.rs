//! Constraint-graph floorplanner for SUNMAP (paper §5).
//!
//! The paper reduces floorplanning to the easy half of the general
//! problem: for a mapping under evaluation "the relative positions of
//! the cores and switches are known. Thus the floorplanning problem is
//! reduced to the one of finding the exact positions and sizes (for
//! soft blocks)". The paper solves this with a simple LP floorplanner
//! from the literature; with relative positions fixed on a grid, that
//! LP's optimum is the longest path through the horizontal/vertical
//! constraint graphs — which this crate computes exactly (see DESIGN.md
//! for the substitution note).
//!
//! Inputs are a [`RelativePlacement`]: blocks (cores and switches, each
//! with an area and an aspect-ratio range for soft blocks) assigned to
//! integer grid slots. Outputs are a [`Floorplan`] with exact positions
//! and sizes, from which the mapping engine reads chip area, aspect
//! ratio and link lengths.
//!
//! # Examples
//!
//! ```
//! use sunmap_floorplan::{BlockSpec, RelativePlacement};
//!
//! let mut rp = RelativePlacement::new();
//! let a = rp.add_block(BlockSpec::soft("cpu", 4.0), 0, 0);
//! let b = rp.add_block(BlockSpec::soft("mem", 9.0), 0, 1);
//! let plan = rp.floorplan()?;
//! assert!(plan.chip_area() >= 13.0);
//! assert!(plan.link_length(a, b) > 0.0);
//! # Ok::<(), sunmap_floorplan::FloorplanError>(())
//! ```

mod plan;

pub use plan::{Floorplan, PlacedBlock};

/// Identifier of a block inside a [`RelativePlacement`] / [`Floorplan`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BlockId(pub usize);

impl BlockId {
    /// Raw index of the block.
    pub fn index(self) -> usize {
        self.0
    }
}

impl std::fmt::Display for BlockId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b{}", self.0)
    }
}

/// Geometry specification of one block (a core or a switch).
#[derive(Debug, Clone, PartialEq)]
pub struct BlockSpec {
    /// Display name.
    pub name: String,
    /// Block area in mm².
    pub area: f64,
    /// Minimum permissible width/height ratio.
    pub min_aspect: f64,
    /// Maximum permissible width/height ratio.
    pub max_aspect: f64,
}

impl BlockSpec {
    /// A soft block: the floorplanner may reshape it within the default
    /// permissible aspect range `[1/3, 3]` of typical physical-design
    /// practice.
    pub fn soft(name: impl Into<String>, area: f64) -> Self {
        BlockSpec {
            name: name.into(),
            area,
            min_aspect: 1.0 / 3.0,
            max_aspect: 3.0,
        }
    }

    /// A hard block: fixed square shape.
    pub fn hard(name: impl Into<String>, area: f64) -> Self {
        BlockSpec {
            name: name.into(),
            area,
            min_aspect: 1.0,
            max_aspect: 1.0,
        }
    }

    /// A soft block with explicit aspect bounds.
    pub fn with_aspect(name: impl Into<String>, area: f64, min: f64, max: f64) -> Self {
        BlockSpec {
            name: name.into(),
            area,
            min_aspect: min,
            max_aspect: max,
        }
    }
}

/// Errors from floorplanning.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum FloorplanError {
    /// A block has non-positive or non-finite area.
    InvalidArea {
        /// Offending block name.
        name: String,
        /// Offending area value.
        area: f64,
    },
    /// A block has an empty or invalid aspect range.
    InvalidAspect {
        /// Offending block name.
        name: String,
    },
    /// Two blocks were assigned the same grid slot.
    SlotCollision {
        /// Grid row of the collision.
        row: usize,
        /// Grid column of the collision.
        col: usize,
    },
    /// The placement contains no blocks.
    Empty,
}

impl std::fmt::Display for FloorplanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FloorplanError::InvalidArea { name, area } => {
                write!(f, "block {name} has invalid area {area}")
            }
            FloorplanError::InvalidAspect { name } => {
                write!(f, "block {name} has an invalid aspect-ratio range")
            }
            FloorplanError::SlotCollision { row, col } => {
                write!(f, "two blocks occupy grid slot ({row}, {col})")
            }
            FloorplanError::Empty => write!(f, "placement contains no blocks"),
        }
    }
}

impl std::error::Error for FloorplanError {}

/// Blocks assigned to integer grid slots — the "relative positions" the
/// paper's mapping hands to the floorplanner.
#[derive(Debug, Clone, Default)]
pub struct RelativePlacement {
    blocks: Vec<BlockSpec>,
    positions: Vec<(usize, usize)>,
}

impl RelativePlacement {
    /// Creates an empty placement.
    pub fn new() -> Self {
        RelativePlacement::default()
    }

    /// Adds a block at grid slot `(row, col)` and returns its id.
    pub fn add_block(&mut self, spec: BlockSpec, row: usize, col: usize) -> BlockId {
        let id = BlockId(self.blocks.len());
        self.blocks.push(spec);
        self.positions.push((row, col));
        id
    }

    /// Number of blocks.
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// The spec of a block.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of bounds.
    pub fn block(&self, id: BlockId) -> &BlockSpec {
        &self.blocks[id.index()]
    }

    /// The grid slot of a block.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of bounds.
    pub fn position(&self, id: BlockId) -> (usize, usize) {
        self.positions[id.index()]
    }

    /// Solves for exact positions and sizes.
    ///
    /// Soft blocks start square and are then stretched vertically to
    /// their row height (within their aspect range), which narrows them
    /// and compacts the chip — a one-step version of the LP resizing.
    ///
    /// # Errors
    ///
    /// Returns an error for empty placements, slot collisions, invalid
    /// areas or empty aspect ranges.
    pub fn floorplan(&self) -> Result<Floorplan, FloorplanError> {
        plan::solve(self)
    }

    pub(crate) fn blocks(&self) -> &[BlockSpec] {
        &self.blocks
    }

    pub(crate) fn positions(&self) -> &[(usize, usize)] {
        &self.positions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_spec_constructors() {
        let s = BlockSpec::soft("a", 4.0);
        assert!(s.min_aspect < 1.0 && s.max_aspect > 1.0);
        let h = BlockSpec::hard("b", 4.0);
        assert_eq!((h.min_aspect, h.max_aspect), (1.0, 1.0));
        let w = BlockSpec::with_aspect("c", 4.0, 0.5, 2.0);
        assert_eq!((w.min_aspect, w.max_aspect), (0.5, 2.0));
    }

    #[test]
    fn slot_collision_detected() {
        let mut rp = RelativePlacement::new();
        rp.add_block(BlockSpec::soft("a", 1.0), 0, 0);
        rp.add_block(BlockSpec::soft("b", 1.0), 0, 0);
        assert_eq!(
            rp.floorplan().unwrap_err(),
            FloorplanError::SlotCollision { row: 0, col: 0 }
        );
    }

    #[test]
    fn empty_placement_rejected() {
        assert_eq!(
            RelativePlacement::new().floorplan().unwrap_err(),
            FloorplanError::Empty
        );
    }

    #[test]
    fn invalid_specs_rejected() {
        let mut rp = RelativePlacement::new();
        rp.add_block(BlockSpec::soft("bad", -1.0), 0, 0);
        assert!(matches!(
            rp.floorplan().unwrap_err(),
            FloorplanError::InvalidArea { .. }
        ));
        let mut rp = RelativePlacement::new();
        rp.add_block(BlockSpec::with_aspect("bad", 1.0, 2.0, 0.5), 0, 0);
        assert!(matches!(
            rp.floorplan().unwrap_err(),
            FloorplanError::InvalidAspect { .. }
        ));
    }
}
