//! The longest-path constraint-graph solve and the resulting plan.

use std::collections::BTreeMap;

use crate::{BlockId, FloorplanError, RelativePlacement};

/// A block with its solved geometry.
#[derive(Debug, Clone, PartialEq)]
pub struct PlacedBlock {
    /// The block's id in the originating placement.
    pub id: BlockId,
    /// Display name copied from the spec.
    pub name: String,
    /// Lower-left x coordinate (mm).
    pub x: f64,
    /// Lower-left y coordinate (mm).
    pub y: f64,
    /// Width (mm).
    pub width: f64,
    /// Height (mm).
    pub height: f64,
}

impl PlacedBlock {
    /// Geometric centre of the block.
    pub fn center(&self) -> (f64, f64) {
        (self.x + self.width / 2.0, self.y + self.height / 2.0)
    }

    /// Block area (mm²).
    pub fn area(&self) -> f64 {
        self.width * self.height
    }

    /// Width/height ratio.
    pub fn aspect(&self) -> f64 {
        self.width / self.height
    }

    /// Whether two placed blocks overlap (strictly, touching edges are
    /// allowed).
    pub fn overlaps(&self, other: &PlacedBlock) -> bool {
        let eps = 1e-9;
        self.x + self.width > other.x + eps
            && other.x + other.width > self.x + eps
            && self.y + self.height > other.y + eps
            && other.y + other.height > self.y + eps
    }
}

/// A solved floorplan: exact block positions and chip extents.
///
/// Produced by [`RelativePlacement::floorplan`].
#[derive(Debug, Clone, PartialEq)]
pub struct Floorplan {
    blocks: Vec<PlacedBlock>,
    chip_width: f64,
    chip_height: f64,
}

impl Floorplan {
    /// All placed blocks, indexed by [`BlockId`].
    pub fn blocks(&self) -> &[PlacedBlock] {
        &self.blocks
    }

    /// The placed geometry of one block.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of bounds.
    pub fn block(&self, id: BlockId) -> &PlacedBlock {
        &self.blocks[id.index()]
    }

    /// Chip bounding-box width (mm).
    pub fn chip_width(&self) -> f64 {
        self.chip_width
    }

    /// Chip bounding-box height (mm).
    pub fn chip_height(&self) -> f64 {
        self.chip_height
    }

    /// Chip bounding-box area (mm²) — the "design area" the paper
    /// reports.
    pub fn chip_area(&self) -> f64 {
        self.chip_width * self.chip_height
    }

    /// Chip aspect ratio (width/height), used for the paper's
    /// "aspect ratios of the design ... within permissible ranges"
    /// feasibility check.
    pub fn chip_aspect(&self) -> f64 {
        self.chip_width / self.chip_height
    }

    /// Manhattan distance between the centres of two blocks: the wire
    /// length estimate for a link connecting them (mm).
    ///
    /// # Panics
    ///
    /// Panics if either id is out of bounds.
    pub fn link_length(&self, a: BlockId, b: BlockId) -> f64 {
        let (ax, ay) = self.block(a).center();
        let (bx, by) = self.block(b).center();
        (ax - bx).abs() + (ay - by).abs()
    }

    /// Sum of block areas divided by chip area: the packing utilisation
    /// in `(0, 1]`.
    pub fn utilization(&self) -> f64 {
        let used: f64 = self.blocks.iter().map(PlacedBlock::area).sum();
        used / self.chip_area()
    }
}

pub(crate) fn solve(rp: &RelativePlacement) -> Result<Floorplan, FloorplanError> {
    let blocks = rp.blocks();
    if blocks.is_empty() {
        return Err(FloorplanError::Empty);
    }
    for b in blocks {
        if !(b.area.is_finite() && b.area > 0.0) {
            return Err(FloorplanError::InvalidArea {
                name: b.name.clone(),
                area: b.area,
            });
        }
        if !(b.min_aspect.is_finite()
            && b.max_aspect.is_finite()
            && b.min_aspect > 0.0
            && b.min_aspect <= b.max_aspect)
        {
            return Err(FloorplanError::InvalidAspect {
                name: b.name.clone(),
            });
        }
    }
    let mut seen: BTreeMap<(usize, usize), ()> = BTreeMap::new();
    for &(row, col) in rp.positions() {
        if seen.insert((row, col), ()).is_some() {
            return Err(FloorplanError::SlotCollision { row, col });
        }
    }

    // Initial square shapes.
    let mut widths: Vec<f64> = blocks.iter().map(|b| b.area.sqrt()).collect();
    let mut heights: Vec<f64> = widths.clone();

    let rows = rp.positions().iter().map(|p| p.0).max().unwrap_or(0) + 1;
    let cols = rp.positions().iter().map(|p| p.1).max().unwrap_or(0) + 1;

    // Two sizing passes: stretch each soft block to its row height
    // (within its aspect range), which shrinks its width; recompute.
    for _ in 0..2 {
        let mut row_h = vec![0.0f64; rows];
        for (i, &(r, _)) in rp.positions().iter().enumerate() {
            row_h[r] = row_h[r].max(heights[i]);
        }
        for (i, b) in blocks.iter().enumerate() {
            let (r, _) = rp.positions()[i];
            let target_h = row_h[r];
            // width/height must stay in [min_aspect, max_aspect]:
            // height in [sqrt(area/max), sqrt(area/min)].
            let h_min = (b.area / b.max_aspect).sqrt();
            let h_max = (b.area / b.min_aspect).sqrt();
            let h = target_h.clamp(h_min, h_max);
            heights[i] = h;
            widths[i] = b.area / h;
        }
    }

    // Constraint-graph longest path: on a grid this is column widths /
    // row heights as running maxima.
    let mut col_w = vec![0.0f64; cols];
    let mut row_h = vec![0.0f64; rows];
    for (i, &(r, c)) in rp.positions().iter().enumerate() {
        col_w[c] = col_w[c].max(widths[i]);
        row_h[r] = row_h[r].max(heights[i]);
    }
    let mut col_x = vec![0.0f64; cols + 1];
    for c in 0..cols {
        col_x[c + 1] = col_x[c] + col_w[c];
    }
    let mut row_y = vec![0.0f64; rows + 1];
    for r in 0..rows {
        row_y[r + 1] = row_y[r] + row_h[r];
    }

    let placed = blocks
        .iter()
        .enumerate()
        .map(|(i, b)| {
            let (r, c) = rp.positions()[i];
            // Centre the block in its slot.
            let x = col_x[c] + (col_w[c] - widths[i]) / 2.0;
            let y = row_y[r] + (row_h[r] - heights[i]) / 2.0;
            PlacedBlock {
                id: BlockId(i),
                name: b.name.clone(),
                x,
                y,
                width: widths[i],
                height: heights[i],
            }
        })
        .collect();

    Ok(Floorplan {
        blocks: placed,
        chip_width: col_x[cols],
        chip_height: row_y[rows],
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BlockSpec;

    fn grid_plan(specs: &[(&str, f64, usize, usize)]) -> Floorplan {
        let mut rp = RelativePlacement::new();
        for (name, area, r, c) in specs {
            rp.add_block(BlockSpec::soft(*name, *area), *r, *c);
        }
        rp.floorplan().unwrap()
    }

    #[test]
    fn no_two_blocks_overlap() {
        let plan = grid_plan(&[
            ("a", 4.0, 0, 0),
            ("b", 9.0, 0, 1),
            ("c", 1.0, 1, 0),
            ("d", 16.0, 1, 1),
        ]);
        let blocks = plan.blocks();
        for i in 0..blocks.len() {
            for j in i + 1..blocks.len() {
                assert!(
                    !blocks[i].overlaps(&blocks[j]),
                    "{} overlaps {}",
                    blocks[i].name,
                    blocks[j].name
                );
            }
        }
    }

    #[test]
    fn chip_contains_all_blocks() {
        let plan = grid_plan(&[("a", 4.0, 0, 0), ("b", 25.0, 1, 2), ("c", 2.0, 2, 1)]);
        for b in plan.blocks() {
            assert!(b.x >= -1e-9 && b.y >= -1e-9);
            assert!(b.x + b.width <= plan.chip_width() + 1e-9);
            assert!(b.y + b.height <= plan.chip_height() + 1e-9);
        }
    }

    #[test]
    fn areas_preserved_by_resizing() {
        let plan = grid_plan(&[("a", 4.0, 0, 0), ("b", 9.0, 0, 1), ("c", 2.5, 1, 0)]);
        for (b, area) in plan.blocks().iter().zip([4.0, 9.0, 2.5]) {
            assert!((b.area() - area).abs() < 1e-9, "{} area drifted", b.name);
        }
    }

    #[test]
    fn aspect_bounds_respected() {
        let mut rp = RelativePlacement::new();
        rp.add_block(BlockSpec::with_aspect("tall", 4.0, 0.25, 0.5), 0, 0);
        rp.add_block(BlockSpec::hard("sq", 100.0), 0, 1);
        let plan = rp.floorplan().unwrap();
        let tall = plan.block(BlockId(0));
        assert!(tall.aspect() <= 0.5 + 1e-9);
        assert!(tall.aspect() >= 0.25 - 1e-9);
        let sq = plan.block(BlockId(1));
        assert!((sq.aspect() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn single_block_is_the_chip() {
        let plan = grid_plan(&[("only", 6.25, 0, 0)]);
        assert!((plan.chip_area() - 6.25).abs() < 1e-9);
        assert!((plan.utilization() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn link_length_is_manhattan_between_centers() {
        let plan = grid_plan(&[("a", 4.0, 0, 0), ("b", 4.0, 0, 1), ("c", 4.0, 1, 0)]);
        // Side-by-side 2x2 squares: centres 2 mm apart.
        assert!((plan.link_length(BlockId(0), BlockId(1)) - 2.0).abs() < 1e-9);
        assert!((plan.link_length(BlockId(0), BlockId(2)) - 2.0).abs() < 1e-9);
        // Diagonal: 2 + 2 Manhattan.
        assert!((plan.link_length(BlockId(1), BlockId(2)) - 4.0).abs() < 1e-9);
    }

    #[test]
    fn sparse_grids_are_allowed() {
        // Slots may be empty; geometry must remain consistent.
        let plan = grid_plan(&[("a", 1.0, 0, 0), ("b", 1.0, 3, 5)]);
        assert!(plan.chip_width() > 0.0 && plan.chip_height() > 0.0);
        assert!(plan.utilization() <= 1.0);
    }

    #[test]
    fn utilization_in_unit_interval() {
        let plan = grid_plan(&[("a", 3.0, 0, 0), ("b", 5.0, 1, 1), ("c", 7.0, 2, 2)]);
        assert!(plan.utilization() > 0.0 && plan.utilization() <= 1.0);
    }
}
