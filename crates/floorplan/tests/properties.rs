//! Property tests for the floorplanner: geometric invariants that must
//! hold for *any* relative placement, not just the hand-picked grids of
//! `geometry.rs`.
//!
//! * no two placed blocks overlap;
//! * the chip bounding box contains at least the summed block area
//!   (equivalently, utilisation never exceeds 1);
//! * link lengths are symmetric;
//! * every soft block's solved aspect ratio stays within its declared
//!   `[min_aspect, max_aspect]` range, and its area is preserved.

use proptest::collection::vec;
use proptest::prelude::*;

use sunmap_floorplan::{BlockId, BlockSpec, Floorplan, RelativePlacement};

/// One generated block: area, aspect-range seed, hard/soft flag and an
/// occupancy flag (so grids come out sparse as well as dense).
type BlockGen = (f64, f64, f64, bool, bool);

/// Builds a placement on a `rows x cols` grid from per-slot generation
/// data; slot `i` sits at `(i / cols, i % cols)`. Returns `None` when
/// every occupancy flag came out false (the empty placement is a
/// documented error, tested separately).
fn build(cols: usize, slots: &[BlockGen]) -> Option<RelativePlacement> {
    let mut rp = RelativePlacement::new();
    let mut any = false;
    for (i, &(area, min_seed, spread, hard, occupied)) in slots.iter().enumerate() {
        if !occupied {
            continue;
        }
        any = true;
        let spec = if hard {
            BlockSpec::hard(format!("b{i}"), area)
        } else {
            // min in [0.2, 1.0), max = min * spread with spread >= 1,
            // so the range is always non-empty.
            BlockSpec::with_aspect(format!("b{i}"), area, min_seed, min_seed * spread)
        };
        rp.add_block(spec, i / cols, i % cols);
    }
    any.then_some(rp)
}

fn solved_ids(plan: &Floorplan) -> Vec<BlockId> {
    plan.blocks().iter().map(|b| b.id).collect()
}

proptest! {
    #[test]
    fn no_two_placed_blocks_overlap(
        cols in 1usize..6,
        slots in vec(
            (0.01f64..80.0, 0.2f64..1.0, 1.0f64..4.0, (0usize..4).prop_map(|h| h == 0),
             (0usize..4).prop_map(|o| o > 0)),
            1..30,
        ),
    ) {
        let Some(rp) = build(cols, &slots) else { return Ok(()) };
        let plan = rp.floorplan().expect("valid placements always solve");
        let blocks = plan.blocks();
        for i in 0..blocks.len() {
            for j in i + 1..blocks.len() {
                prop_assert!(
                    !blocks[i].overlaps(&blocks[j]),
                    "{} overlaps {}",
                    blocks[i].name,
                    blocks[j].name
                );
            }
        }
    }

    #[test]
    fn chip_area_covers_the_summed_block_area(
        cols in 1usize..6,
        slots in vec(
            (0.01f64..80.0, 0.2f64..1.0, 1.0f64..4.0, (0usize..4).prop_map(|h| h == 0),
             (0usize..4).prop_map(|o| o > 0)),
            1..30,
        ),
    ) {
        let Some(rp) = build(cols, &slots) else { return Ok(()) };
        let plan = rp.floorplan().expect("valid placements always solve");
        let block_area: f64 = plan.blocks().iter().map(|b| b.area()).sum();
        prop_assert!(
            plan.chip_area() >= block_area - 1e-9,
            "chip {} < blocks {}",
            plan.chip_area(),
            block_area
        );
        prop_assert!(plan.utilization() <= 1.0 + 1e-9);
        // The chip is exactly the constraint-graph extents: its area is
        // also bounded by (sum of column widths) x (sum of row heights),
        // which both exist and are positive.
        prop_assert!(plan.chip_width() > 0.0 && plan.chip_height() > 0.0);
    }

    #[test]
    fn link_length_is_symmetric(
        cols in 1usize..6,
        slots in vec(
            (0.01f64..80.0, 0.2f64..1.0, 1.0f64..4.0, (0usize..4).prop_map(|h| h == 0),
             (0usize..4).prop_map(|o| o > 0)),
            1..30,
        ),
    ) {
        let Some(rp) = build(cols, &slots) else { return Ok(()) };
        let plan = rp.floorplan().expect("valid placements always solve");
        let ids = solved_ids(&plan);
        for &a in &ids {
            prop_assert_eq!(plan.link_length(a, a), 0.0);
            for &b in &ids {
                let ab = plan.link_length(a, b);
                let ba = plan.link_length(b, a);
                prop_assert!(
                    (ab - ba).abs() < 1e-12,
                    "link_length({:?},{:?}) = {} but reverse = {}",
                    a, b, ab, ba
                );
            }
        }
    }

    #[test]
    fn soft_block_aspects_stay_in_their_declared_range(
        cols in 1usize..6,
        slots in vec(
            (0.01f64..80.0, 0.2f64..1.0, 1.0f64..4.0, (0usize..4).prop_map(|h| h == 0),
             (0usize..4).prop_map(|o| o > 0)),
            1..30,
        ),
    ) {
        let Some(rp) = build(cols, &slots) else { return Ok(()) };
        let plan = rp.floorplan().expect("valid placements always solve");
        for placed in plan.blocks() {
            let spec = rp.block(placed.id);
            prop_assert!(
                placed.aspect() >= spec.min_aspect - 1e-9
                    && placed.aspect() <= spec.max_aspect + 1e-9,
                "{}: aspect {} outside [{}, {}]",
                spec.name,
                placed.aspect(),
                spec.min_aspect,
                spec.max_aspect
            );
            prop_assert!(
                (placed.area() - spec.area).abs() < 1e-9 * spec.area.max(1.0),
                "{}: area drifted from {} to {}",
                spec.name,
                spec.area,
                placed.area()
            );
        }
    }
}
