//! Geometric stress tests for the floorplanner.

use sunmap_floorplan::{BlockId, BlockSpec, FloorplanError, RelativePlacement};

fn assert_sound(plan: &sunmap_floorplan::Floorplan) {
    let blocks = plan.blocks();
    for (i, a) in blocks.iter().enumerate() {
        assert!(a.x >= -1e-9 && a.y >= -1e-9, "{} out of chip", a.name);
        assert!(a.x + a.width <= plan.chip_width() + 1e-9);
        assert!(a.y + a.height <= plan.chip_height() + 1e-9);
        for b in &blocks[i + 1..] {
            assert!(!a.overlaps(b), "{} overlaps {}", a.name, b.name);
        }
    }
}

#[test]
fn wildly_heterogeneous_areas() {
    let mut rp = RelativePlacement::new();
    let areas = [0.01, 100.0, 0.5, 25.0, 1.0, 64.0, 0.1, 9.0, 4.0];
    for (i, area) in areas.iter().enumerate() {
        rp.add_block(BlockSpec::soft(format!("b{i}"), *area), i / 3, i % 3);
    }
    let plan = rp.floorplan().unwrap();
    assert_sound(&plan);
    for (i, area) in areas.iter().enumerate() {
        let b = plan.block(BlockId(i));
        assert!((b.area() - area).abs() < 1e-9, "{} area drifted", b.name);
    }
}

#[test]
fn a_single_row_becomes_a_strip() {
    let mut rp = RelativePlacement::new();
    for c in 0..6 {
        rp.add_block(BlockSpec::soft(format!("b{c}"), 4.0), 0, c);
    }
    let plan = rp.floorplan().unwrap();
    assert_sound(&plan);
    assert!(plan.chip_width() > plan.chip_height());
    // Equal-area soft blocks in one row pack perfectly.
    assert!(plan.utilization() > 0.99);
}

#[test]
fn hard_blocks_stay_square_among_soft_neighbours() {
    let mut rp = RelativePlacement::new();
    rp.add_block(BlockSpec::hard("rom", 9.0), 0, 0);
    rp.add_block(BlockSpec::soft("logic", 2.0), 0, 1);
    rp.add_block(BlockSpec::soft("logic2", 2.0), 1, 0);
    let plan = rp.floorplan().unwrap();
    assert_sound(&plan);
    let rom = plan.block(BlockId(0));
    assert!((rom.aspect() - 1.0).abs() < 1e-9);
    assert!((rom.width - 3.0).abs() < 1e-9);
}

#[test]
fn tiny_areas_do_not_degenerate() {
    let mut rp = RelativePlacement::new();
    rp.add_block(BlockSpec::soft("dust", 1e-6), 0, 0);
    rp.add_block(BlockSpec::soft("boulder", 1e3), 0, 1);
    let plan = rp.floorplan().unwrap();
    assert_sound(&plan);
    assert!(plan.block(BlockId(0)).width > 0.0);
    assert!(plan.chip_area() >= 1e3);
}

#[test]
fn link_length_is_symmetric_and_triangleish() {
    let mut rp = RelativePlacement::new();
    let ids: Vec<BlockId> = (0..9)
        .map(|i| {
            rp.add_block(
                BlockSpec::soft(format!("b{i}"), 2.0 + i as f64),
                i / 3,
                i % 3,
            )
        })
        .collect();
    let plan = rp.floorplan().unwrap();
    for &a in &ids {
        assert_eq!(plan.link_length(a, a), 0.0);
        for &b in &ids {
            assert!((plan.link_length(a, b) - plan.link_length(b, a)).abs() < 1e-12);
            for &c in &ids {
                // Manhattan distance triangle inequality.
                assert!(
                    plan.link_length(a, c)
                        <= plan.link_length(a, b) + plan.link_length(b, c) + 1e-9
                );
            }
        }
    }
}

#[test]
fn collision_reports_the_exact_slot() {
    let mut rp = RelativePlacement::new();
    rp.add_block(BlockSpec::soft("a", 1.0), 2, 5);
    rp.add_block(BlockSpec::soft("b", 1.0), 2, 5);
    match rp.floorplan() {
        Err(FloorplanError::SlotCollision { row: 2, col: 5 }) => {}
        other => panic!("expected collision at (2,5), got {other:?}"),
    }
}

#[test]
fn utilization_degrades_gracefully_with_sparsity() {
    // A diagonal placement wastes most of the chip; utilisation must
    // reflect that without violating geometry.
    let mut rp = RelativePlacement::new();
    for i in 0..4 {
        rp.add_block(BlockSpec::soft(format!("d{i}"), 4.0), i, i);
    }
    let plan = rp.floorplan().unwrap();
    assert_sound(&plan);
    assert!(plan.utilization() < 0.5);
    assert!(plan.utilization() > 0.2);
}
