//! Helpers shared by the CLI integration tests: spawning the binary
//! under test, scratch directories, and a minimal JSON value model +
//! recursive-descent parser — enough to assert the CLI's reports (and
//! the serve daemon's frames) are *valid* JSON, not just greppable
//! text.

// Each integration-test binary uses a subset of these helpers.
#![allow(dead_code)]

use std::fs;
use std::path::PathBuf;
use std::process::{Command, Output};

/// Runs the `sunmap` binary under test to completion.
pub fn sunmap(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_sunmap"))
        .args(args)
        .output()
        .expect("binary runs")
}

/// A fresh scratch directory under the system temp dir.
pub fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(name);
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// A minimal JSON value model.
#[derive(Debug, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Number(f64),
    String(String),
    Array(Vec<Json>),
    Object(Vec<(String, Json)>),
}

impl Json {
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Number(n) => Some(*n),
            _ => None,
        }
    }
}

pub struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    pub fn parse(text: &'a str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing bytes at {}", p.pos));
        }
        Ok(v)
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> Result<(), String> {
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.bytes.get(self.pos) {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::String(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(_) => self.number(),
            None => Err("unexpected end".to_string()),
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(format!("bad literal at {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse().ok())
            .map(Json::Number)
            .ok_or_else(|| format!("bad number at {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.bytes.get(self.pos).ok_or("bad escape")?;
                    out.push(match esc {
                        b'"' => '"',
                        b'\\' => '\\',
                        b'/' => '/',
                        b'n' => '\n',
                        b'r' => '\r',
                        b't' => '\t',
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("bad \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            self.pos += 4;
                            char::from_u32(code).ok_or("bad codepoint")?
                        }
                        other => return Err(format!("bad escape '{}'", *other as char)),
                    });
                    self.pos += 1;
                }
                Some(_) => {
                    let start = self.pos;
                    while self
                        .bytes
                        .get(self.pos)
                        .is_some_and(|b| *b != b'"' && *b != b'\\')
                    {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|e| e.to_string())?,
                    );
                }
                None => return Err("unterminated string".to_string()),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(format!("expected ',' or ']' at {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b'}') {
            self.pos += 1;
            return Ok(Json::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.eat(b':')?;
            fields.push((key, self.value()?));
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at {}", self.pos)),
            }
        }
    }
}
