//! End-to-end tests of the `sunmap` binary itself: exit codes, stdout
//! shape, and machine-readable artifacts. `CARGO_BIN_EXE_sunmap` points
//! at the compiled binary under test.

mod common;

use std::fs;
use std::path::PathBuf;

use common::{sunmap, temp_dir, Json, Parser};

fn topology_names(points: &[Json], key: &str) -> Vec<String> {
    points
        .iter()
        .filter_map(|p| Some(p.get(key)?.as_str()?.to_string()))
        .collect()
}

#[test]
fn explore_selects_a_topology() {
    let out = sunmap(&["explore", "vopd"]);
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8(out.stdout).unwrap();
    for name in ["Mesh", "Torus", "Hypercube", "Clos", "Butterfly"] {
        assert!(stdout.contains(name), "{name} missing:\n{stdout}");
    }
    assert!(stdout.contains("selected: "), "{stdout}");
}

#[test]
fn sweep_emits_parsable_csv_and_json() {
    let dir = temp_dir("sunmap_it_sweep");
    let out = sunmap(&[
        "sweep",
        "dsp",
        "--capacity",
        "1000",
        "--rates",
        "0.05,0.2",
        "--out",
        dir.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{out:?}");

    let json_text = fs::read_to_string(dir.join("sweep.json")).unwrap();
    let json = Parser::parse(&json_text).expect("sweep.json parses");
    assert_eq!(
        json.get("schema").and_then(Json::as_str),
        Some("sunmap-sweep/1")
    );
    let points = json.get("points").and_then(Json::as_array).unwrap();
    let names = topology_names(points, "topology");
    assert!(names.iter().any(|n| n == "Mesh"), "{names:?}");
    assert!(names.iter().any(|n| n == "Torus"), "{names:?}");
    // Every (topology, rate) cell is present.
    let libraries = names.len() / 2;
    assert_eq!(points.len(), libraries * 2);

    let csv = fs::read_to_string(dir.join("sweep.csv")).unwrap();
    assert_eq!(csv.lines().count(), points.len() + 1, "header + rows");
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn simulate_emits_parsable_json() {
    let dir = temp_dir("sunmap_it_simulate");
    let out = sunmap(&[
        "simulate",
        "dsp",
        "--capacity",
        "1000",
        "--out",
        dir.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{out:?}");
    let json_text = fs::read_to_string(dir.join("simulate.json")).unwrap();
    let json = Parser::parse(&json_text).expect("simulate.json parses");
    assert_eq!(
        json.get("schema").and_then(Json::as_str),
        Some("sunmap-simulate/1")
    );
    let topologies = json.get("topologies").and_then(Json::as_array).unwrap();
    let names = topology_names(topologies, "topology");
    for expected in ["Mesh", "Torus"] {
        assert!(names.iter().any(|n| n == expected), "{names:?}");
    }
    // Feasible rows carry measured latency numbers.
    assert!(topologies.iter().any(|t| {
        t.get("feasible") == Some(&Json::Bool(true))
            && matches!(t.get("avg_latency_cycles"), Some(Json::Number(v)) if *v > 0.0)
    }));
    let _ = fs::remove_dir_all(&dir);
}

/// The committed 20-job sample manifest (4 seed benchmarks + 16
/// synthetic workloads) the README documents and CI smoke-runs.
fn sample_manifest() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../examples/batch.manifest")
}

fn run_batch_to(dir: &std::path::Path, workers: &str, resume: bool) -> String {
    let manifest = sample_manifest();
    let mut args = vec![
        "batch",
        "--jobs",
        manifest.to_str().unwrap(),
        "--out",
        dir.to_str().unwrap(),
        "--workers",
        workers,
    ];
    if resume {
        args.push("--resume");
    }
    let out = sunmap(&args);
    assert!(out.status.success(), "{out:?}");
    fs::read_to_string(dir.join("batch.jsonl")).unwrap()
}

#[test]
fn batch_is_worker_invariant_resumable_and_parsable() {
    let dir = temp_dir("sunmap_it_batch");

    // ≥ 20 jobs: the 4 seed apps + 16 synthetic workloads.
    let baseline = run_batch_to(&dir, "1", false);
    assert_eq!(baseline.lines().count(), 20);

    // Every line is valid JSON with the batch schema and a winner or
    // an explicit null.
    for line in baseline.lines() {
        let json = Parser::parse(line).expect("batch line parses");
        assert_eq!(
            json.get("schema").and_then(Json::as_str),
            Some("sunmap-batch/1")
        );
        assert!(json.get("job").and_then(Json::as_str).is_some());
        assert!(json.get("winner").is_some(), "{line}");
        let topologies = json.get("topologies").and_then(Json::as_array).unwrap();
        assert_eq!(topologies.len(), 5);
    }
    // The seed apps lead the manifest; VOPD under MinPower selects the
    // butterfly (the paper's §6.1 headline).
    assert!(
        baseline
            .lines()
            .next()
            .unwrap()
            .contains("\"winner\":{\"topology\":\"Butterfly\""),
        "first line: {}",
        baseline.lines().next().unwrap()
    );

    // Byte-identical output at any worker count.
    for workers in ["2", "8"] {
        let rerun = run_batch_to(&dir, workers, false);
        assert_eq!(rerun, baseline, "--workers {workers} diverged");
    }

    // Kill-and-resume: truncate to a 7-line prefix plus a partial
    // trailing line, resume, and the bytes come back identical.
    let prefix_end = baseline
        .char_indices()
        .filter(|(_, c)| *c == '\n')
        .nth(6)
        .map(|(i, _)| i + 1)
        .unwrap();
    fs::write(
        dir.join("batch.jsonl"),
        format!("{}{{\"schema\":\"sunm", &baseline[..prefix_end]),
    )
    .unwrap();
    let resumed = run_batch_to(&dir, "4", true);
    assert_eq!(resumed, baseline, "kill-and-resume diverged");

    // A second resume over the complete file re-runs nothing.
    let out = sunmap(&[
        "batch",
        "--jobs",
        sample_manifest().to_str().unwrap(),
        "--out",
        dir.to_str().unwrap(),
        "--resume",
    ]);
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("0 run, 20 skipped"), "{stdout}");
    assert_eq!(
        fs::read_to_string(dir.join("batch.jsonl")).unwrap(),
        baseline
    );
    let _ = fs::remove_dir_all(&dir);
}

/// A small manifest (4 jobs) for the shard/distributed tests, written
/// into `dir`.
fn small_manifest(dir: &std::path::Path) -> PathBuf {
    fs::create_dir_all(dir).unwrap();
    let path = dir.join("small.manifest");
    fs::write(
        &path,
        "app dsp\napp synth:seed=3,cores=8\nobjective delay\nobjective power\ncapacity 1000\n",
    )
    .unwrap();
    path
}

#[test]
fn shard_outputs_concatenate_to_the_unsharded_file() {
    let dir = temp_dir("sunmap_it_shard");
    let manifest = small_manifest(&dir);

    let whole = dir.join("whole");
    let out = sunmap(&[
        "batch",
        "--jobs",
        manifest.to_str().unwrap(),
        "--out",
        whole.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{out:?}");
    let baseline = fs::read_to_string(whole.join("batch.jsonl")).unwrap();
    assert_eq!(baseline.lines().count(), 4);

    // 3 shards over 4 jobs: sizes 2, 1, 1 — every job exactly once,
    // and the in-order concatenation is byte-identical.
    let mut concatenated = String::new();
    for k in 1..=3 {
        let shard_out = dir.join(format!("shard{k}"));
        let shard = format!("{k}/3");
        let out = sunmap(&[
            "batch",
            "--jobs",
            manifest.to_str().unwrap(),
            "--out",
            shard_out.to_str().unwrap(),
            "--shard",
            &shard,
        ]);
        assert!(out.status.success(), "shard {k}: {out:?}");
        let stdout = String::from_utf8(out.stdout).unwrap();
        assert!(stdout.contains(&format!("[shard {k}/3]")), "{stdout}");
        concatenated.push_str(&fs::read_to_string(shard_out.join("batch.jsonl")).unwrap());
    }
    assert_eq!(
        concatenated, baseline,
        "concatenated shards must reproduce the unsharded bytes"
    );
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn distributed_batch_reproduces_the_single_process_bytes() {
    use std::io::BufRead as _;
    use std::process::{Command, Stdio};

    let dir = temp_dir("sunmap_it_dist_batch");
    let manifest = small_manifest(&dir);

    let whole = dir.join("whole");
    let out = sunmap(&[
        "batch",
        "--jobs",
        manifest.to_str().unwrap(),
        "--out",
        whole.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{out:?}");
    let baseline = fs::read_to_string(whole.join("batch.jsonl")).unwrap();

    let dist = dir.join("dist");
    let mut coordinator = Command::new(env!("CARGO_BIN_EXE_sunmap"))
        .args([
            "batch-coordinator",
            "--jobs",
            manifest.to_str().unwrap(),
            "--out",
            dist.to_str().unwrap(),
            "--listen",
            "127.0.0.1:0",
            "--grain",
            "1",
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("coordinator spawns");
    let mut stdout = std::io::BufReader::new(coordinator.stdout.take().unwrap());
    let mut line = String::new();
    stdout.read_line(&mut line).expect("coordinator announces");
    let addr = line
        .trim()
        .strip_prefix("sunmap-coordinator listening on ")
        .unwrap_or_else(|| panic!("unexpected first line: {line:?}"))
        .to_string();

    let workers: Vec<_> = (0..2)
        .map(|i| {
            Command::new(env!("CARGO_BIN_EXE_sunmap"))
                .args([
                    "batch-worker",
                    &addr,
                    "--jobs",
                    manifest.to_str().unwrap(),
                    "--name",
                    &format!("w{i}"),
                ])
                .stdout(Stdio::piped())
                .stderr(Stdio::piped())
                .spawn()
                .expect("worker spawns")
        })
        .collect();

    let status = coordinator.wait().expect("coordinator runs");
    assert!(status.success(), "coordinator failed");
    let mut rest = String::new();
    std::io::Read::read_to_string(&mut stdout, &mut rest).unwrap();
    assert!(
        rest.contains("\"schema\":\"sunmap-shard-metrics/1\""),
        "missing counters dump: {rest}"
    );
    for worker in workers {
        let out = worker.wait_with_output().expect("worker runs");
        assert!(
            out.status.success(),
            "worker failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
    }
    assert_eq!(
        fs::read_to_string(dist.join("batch.jsonl")).unwrap(),
        baseline,
        "distributed assembly must be byte-identical to a local run"
    );
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn batch_without_manifest_fails_cleanly() {
    let out = sunmap(&["batch"]);
    assert!(!out.status.success());
    assert!(String::from_utf8(out.stderr).unwrap().contains("--jobs"));

    let out = sunmap(&["batch", "--jobs", "/no/such.manifest"]);
    assert!(!out.status.success());
    assert!(String::from_utf8(out.stderr)
        .unwrap()
        .contains("cannot read manifest"));
}

/// Checks brace/paren balance of an emitted C++-style source.
fn assert_balanced(name: &str, content: &str) {
    let mut braces = 0i64;
    let mut parens = 0i64;
    for c in content.chars() {
        match c {
            '{' => braces += 1,
            '}' => braces -= 1,
            '(' => parens += 1,
            ')' => parens -= 1,
            _ => {}
        }
        assert!(braces >= 0 && parens >= 0, "{name}: closes before opens");
    }
    assert_eq!(braces, 0, "{name}: unbalanced braces");
    assert_eq!(parens, 0, "{name}: unbalanced parentheses");
}

#[test]
fn generate_emits_nonempty_wellformed_systemc() {
    let dir = temp_dir("sunmap_it_generate");
    let out = sunmap(&[
        "generate",
        "dsp",
        "--capacity",
        "1000",
        "--name",
        "dspnoc",
        "--out",
        dir.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{out:?}");

    let mut sources = 0;
    for entry in fs::read_dir(&dir).unwrap() {
        let path = entry.unwrap().path();
        let name = path.file_name().unwrap().to_string_lossy().to_string();
        let content = fs::read_to_string(&path).unwrap();
        assert!(!content.trim().is_empty(), "{name} is empty");
        if name.ends_with(".h") || name.ends_with(".cpp") {
            sources += 1;
            assert_balanced(&name, &content);
            assert!(
                content.contains("SC_MODULE") || content.contains("sc_main"),
                "{name} lacks SystemC structure"
            );
            assert!(content.contains("#include <systemc.h>"), "{name}");
        }
    }
    // At least a switch header, the network interface and the top level.
    assert!(sources >= 3, "only {sources} SystemC sources emitted");

    // The top level instantiates the network interface per mapped core
    // (the DSP filter has 6 cores).
    let top = fs::read_to_string(dir.join("top_dspnoc.cpp")).unwrap();
    assert_eq!(top.matches("network_interface ").count(), 6, "{top}");

    let dot = fs::read_to_string(dir.join("noc.dot")).unwrap();
    assert!(dot.starts_with("digraph"), "{dot}");
    assert_balanced("noc.dot", &dot);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn bad_invocations_fail_with_nonzero_exit() {
    let out = sunmap(&["frobnicate", "vopd"]);
    assert!(!out.status.success());
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("unknown command"), "{stderr}");

    let out = sunmap(&["explore", "/does/not/exist.app"]);
    assert!(!out.status.success());

    // Infeasible generation surfaces as a clean error, not a panic.
    let out = sunmap(&["generate", "vopd", "--capacity", "1"]);
    assert!(!out.status.success());
    assert!(String::from_utf8(out.stderr)
        .unwrap()
        .contains("no feasible topology"));
}

#[test]
fn help_prints_usage() {
    let out = sunmap(&["--help"]);
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("usage: sunmap"));
    assert!(stdout.contains("design-sweep"));
}
