//! End-to-end tests of the `sunmap serve` daemon through the real
//! binary: byte-identity with the one-shot CLI, warm-cache accounting,
//! graceful drain of in-flight jobs, and request-log replay.

mod common;

use std::fs;
use std::io::{BufRead, BufReader, Read};
use std::net::TcpStream;
use std::process::{Child, ChildStdout, Command, Stdio};
use std::time::{Duration, Instant};

use common::{sunmap, temp_dir, Json, Parser};
use sunmap::serve::{read_frame, report_slice, write_frame};

/// The daemon under test; killed on drop so a failed assertion never
/// leaks a background process.
struct Daemon {
    child: Child,
    stdout: BufReader<ChildStdout>,
    addr: String,
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
    }
}

impl Daemon {
    /// Spawns `sunmap serve` on a free port and waits for its
    /// flushed `listening on <addr>` line.
    fn spawn(log_path: &std::path::Path) -> Daemon {
        let mut child = Command::new(env!("CARGO_BIN_EXE_sunmap"))
            .args([
                "serve",
                "--listen",
                "127.0.0.1:0",
                "--workers",
                "2",
                "--cache",
                "4",
                "--log",
                log_path.to_str().unwrap(),
            ])
            .stdout(Stdio::piped())
            .stderr(Stdio::piped())
            .spawn()
            .expect("daemon spawns");
        let stdout = BufReader::new(child.stdout.take().expect("stdout piped"));
        let mut daemon = Daemon {
            child,
            stdout,
            addr: String::new(),
        };
        let mut line = String::new();
        daemon
            .stdout
            .read_line(&mut line)
            .expect("daemon announces its address");
        daemon.addr = line
            .trim()
            .strip_prefix("sunmap-serve listening on ")
            .unwrap_or_else(|| panic!("unexpected first line: {line:?}"))
            .to_string();
        daemon
    }

    /// Waits (bounded) for the daemon to exit cleanly and returns the
    /// rest of its stdout (the final metrics dump).
    fn wait(mut self) -> String {
        let deadline = Instant::now() + Duration::from_secs(120);
        loop {
            match self.child.try_wait().expect("wait works") {
                Some(status) => {
                    assert!(status.success(), "daemon exited with {status}");
                    break;
                }
                None if Instant::now() > deadline => {
                    let _ = self.child.kill();
                    panic!("daemon did not drain within the deadline");
                }
                None => std::thread::sleep(Duration::from_millis(20)),
            }
        }
        let mut rest = String::new();
        self.stdout
            .read_to_string(&mut rest)
            .expect("stdout drains");
        rest
    }
}

fn stdout_line(args: &[&str]) -> String {
    let out = sunmap(args);
    assert!(out.status.success(), "{args:?}: {out:?}");
    String::from_utf8(out.stdout).unwrap().trim().to_string()
}

#[test]
fn daemon_matches_one_shot_serves_warm_drains_and_replays() {
    let dir = temp_dir("sunmap_it_serve");
    fs::create_dir_all(&dir).unwrap();
    let log = dir.join("requests.jsonl");
    let daemon = Daemon::spawn(&log);
    let addr: &str = &daemon.addr.clone();

    // (a) The daemon's answer is byte-identical to the one-shot CLI
    // report for the same request.
    let one_shot = stdout_line(&["explore", "dsp", "--capacity", "1000", "--json"]);
    assert!(
        one_shot.starts_with("{\"schema\":\"sunmap-report/1\""),
        "{one_shot}"
    );
    let served = stdout_line(&["client", addr, "explore", "dsp", "--capacity", "1000"]);
    assert_eq!(served, one_shot, "daemon and one-shot bytes must match");

    // (b) The same topology again is a recorded cache hit.
    let served_again = stdout_line(&["client", addr, "explore", "dsp", "--capacity", "1000"]);
    assert_eq!(served_again, one_shot);
    let stats_line = stdout_line(&["client", addr, "stats"]);
    let stats = Parser::parse(&stats_line).expect("stats frame parses");
    let metrics = stats.get("metrics").expect("stats carries metrics");
    assert_eq!(
        metrics.get("schema").and_then(Json::as_str),
        Some("sunmap-serve-metrics/1")
    );
    let cache = metrics.get("cache").expect("cache section");
    assert!(
        cache.get("hits").and_then(Json::as_f64) >= Some(1.0),
        "{stats_line}"
    );
    assert!(
        metrics.get("evaluations").and_then(Json::as_f64) > Some(0.0),
        "{stats_line}"
    );

    // (c) Graceful drain: submit a long job over a raw connection,
    // then ask for shutdown from a second connection; the in-flight
    // job's full response must still arrive.
    let mut slow = TcpStream::connect(addr).expect("raw connect");
    write_frame(
        &mut slow,
        "{\"op\":\"explore\",\"request\":{\"app\":\"synth:seed=3,cores=64\"}}",
    )
    .expect("frame sent");
    std::thread::sleep(Duration::from_millis(150)); // let a worker pick it up
    let bye = stdout_line(&["client", addr, "shutdown"]);
    assert!(bye.contains("\"draining\":true"), "{bye}");
    let slow_response = read_frame(&mut slow)
        .expect("in-flight response readable")
        .expect("in-flight response arrives despite the drain");
    let slow_report = report_slice(&slow_response).expect("carries a report");
    assert!(
        slow_report.contains("\"app\":\"synth:seed=3,cores=64\""),
        "{slow_report}"
    );

    // The daemon exits cleanly and dumps a final metrics snapshot.
    let dump = daemon.wait();
    assert!(
        dump.contains("\"schema\":\"sunmap-serve-metrics/1\""),
        "{dump}"
    );
    assert!(dump.contains("\"explore\":3"), "{dump}");

    // (d) Replaying the request log through the one-shot path
    // reproduces every report byte-for-byte...
    let replay = stdout_line(&["replay", "--log", log.to_str().unwrap()]);
    assert!(replay.contains("replay ok: 3 request(s)"), "{replay}");

    // ...and a tampered log is rejected with a non-zero exit. The
    // first `capacity` on line one is the logged *request*'s: bumping
    // it makes the replayed report diverge from the logged bytes.
    let tampered =
        fs::read_to_string(&log)
            .unwrap()
            .replacen("\"capacity\":1000", "\"capacity\":1001", 1);
    fs::write(&log, tampered).unwrap();
    let out = sunmap(&["replay", "--log", log.to_str().unwrap()]);
    assert!(!out.status.success(), "tampered log must fail the replay");
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("mismatch"), "{stderr}");
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn table_prep_variants_share_bytes_and_split_the_cache_only_when_resolved_apart() {
    let dir = temp_dir("sunmap_it_serve_prep");
    fs::create_dir_all(&dir).unwrap();
    let log = dir.join("requests.jsonl");
    let daemon = Daemon::spawn(&log);
    let addr: &str = &daemon.addr.clone();

    // Cold build under the default `auto` preparation.
    let auto = stdout_line(&["client", addr, "explore", "dsp", "--capacity", "1000"]);
    // At seed-benchmark size `auto` resolves to `eager`, so an explicit
    // `--table-prep eager` must reuse the warm library (a cache hit)...
    let eager = stdout_line(&[
        "client",
        addr,
        "explore",
        "dsp",
        "--capacity",
        "1000",
        "--table-prep",
        "eager",
    ]);
    assert_eq!(eager, auto, "eager and auto must share bytes");
    // ...while `lazy` resolves differently: a second cold build (miss),
    // but the report bytes are invariant under the preparation knob.
    let lazy = stdout_line(&[
        "client",
        addr,
        "explore",
        "dsp",
        "--capacity",
        "1000",
        "--table-prep",
        "lazy",
    ]);
    assert_eq!(lazy, auto, "reports must not depend on table preparation");
    // The lazy library is cached under its own resolved variant and
    // serves the repeat warm — no cross-variant eviction.
    let lazy_again = stdout_line(&[
        "client",
        addr,
        "explore",
        "dsp",
        "--capacity",
        "1000",
        "--table-prep",
        "lazy",
    ]);
    assert_eq!(lazy_again, auto);

    let stats_line = stdout_line(&["client", addr, "stats"]);
    let stats = Parser::parse(&stats_line).expect("stats frame parses");
    let metrics = stats.get("metrics").expect("stats carries metrics");
    let cache = metrics.get("cache").expect("cache section");
    assert_eq!(
        cache.get("hits").and_then(Json::as_f64),
        Some(2.0),
        "{stats_line}"
    );
    assert_eq!(
        cache.get("misses").and_then(Json::as_f64),
        Some(2.0),
        "{stats_line}"
    );

    stdout_line(&["client", addr, "shutdown"]);
    daemon.wait();
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn client_against_no_daemon_fails_cleanly() {
    // Port 9 (discard) is almost never listening; connect must fail
    // with a clean error, not a panic or a hang.
    let out = sunmap(&["client", "127.0.0.1:9", "ping"]);
    assert!(!out.status.success());
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("cannot connect"), "{stderr}");
}
