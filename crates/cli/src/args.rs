//! Hand-rolled argument parsing for the `sunmap` binary (kept
//! dependency-free; the option surface is small).

use sunmap::request::{parse_engine, parse_swap, parse_table_prep, SimProbe};
use sunmap::sim::SimEngine;
use sunmap::{Objective, RoutingFunction, SwapStrategy, TablePrep};

/// Parsed command line.
#[derive(Debug, Clone, PartialEq)]
pub struct Cli {
    /// The subcommand to run.
    pub command: Command,
    /// Application source: a file path or a built-in benchmark name
    /// (`vopd`, `mpeg4`, `dsp`, `netproc`).
    pub app: String,
    /// Link capacity in MB/s.
    pub capacity: f64,
    /// Routing function.
    pub routing: RoutingFunction,
    /// Mapping objective.
    pub objective: Objective,
    /// Relax bandwidth feasibility (paper §6.2 mode).
    pub relax_bandwidth: bool,
    /// Include the octagon/star extension topologies.
    pub extended: bool,
    /// Output directory for `generate`, `simulate` and `sweep`.
    pub out_dir: String,
    /// Design name for `generate`.
    pub design_name: String,
    /// Trace intensity for `simulate` (flits/cycle for the heaviest
    /// commodity).
    pub intensity: f64,
    /// Injection rates for `sweep` (flits/cycle/terminal).
    pub rates: Vec<f64>,
    /// Synthetic pattern for `sweep` (`None` = each topology's
    /// adversarial pattern, paper §6.2).
    pub pattern: Option<String>,
    /// Sweep/batch worker threads (`0` = one per CPU). Results are
    /// bit-identical at any setting.
    pub workers: usize,
    /// Run the phase-4 simulation validation after `explore`.
    pub validate: bool,
    /// Manifest path for `batch` / `batch-coordinator` / `batch-worker`.
    pub jobs_path: String,
    /// Skip `batch` jobs already present in the output file.
    pub resume: bool,
    /// Run only the `k`-th of `n` contiguous manifest slices
    /// (`--shard k/n`, 1-based; concatenating the n outputs in order
    /// reproduces the unsharded file byte-for-byte).
    pub shard: Option<(usize, usize)>,
    /// Jobs per lease for `batch-coordinator`.
    pub grain: usize,
    /// Phase-3 swap strategy (`explore --json`, `client explore`,
    /// `batch` manifests override per-job).
    pub swap: SwapStrategy,
    /// Simulation engine for `simulate`, `sweep`, `explore --validate`
    /// and probes (`--engine auto|flat|event|reference`).
    pub engine: SimEngine,
    /// Route-table preparation policy
    /// (`--table-prep auto|eager|lazy|closed-form`).
    pub table_prep: TablePrep,
    /// Winner simulation probe for `explore --json` / `client explore`
    /// (`--probe <pattern> <rate> [top_k]`).
    pub probe: Option<SimProbe>,
    /// Print the one-shot JSON report instead of the table (`explore`).
    pub json: bool,
    /// Bind address for `serve`.
    pub listen: String,
    /// Candidate libraries kept warm (`serve` / `replay`).
    pub cache: usize,
    /// Request-replay log path (`serve --log` writes it, `replay --log`
    /// verifies it).
    pub log_path: String,
    /// Daemon address for `client` (positional).
    pub addr: String,
    /// Operation for `client` (positional).
    pub client_op: ClientOp,
}

/// The operation a `client` invocation sends to the daemon.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ClientOp {
    /// Submit an exploration request and print the raw report line.
    Explore,
    /// Fetch the live metrics snapshot.
    Stats,
    /// Liveness check.
    #[default]
    Ping,
    /// Ask the daemon to drain and exit.
    Shutdown,
}

/// The `sunmap` subcommands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Command {
    /// Phase 1+2: per-topology table and selection (optionally with the
    /// phase-4 validation).
    Explore,
    /// Full flow: explore, select and write SystemC sources.
    Generate,
    /// Fig. 8b: latency-vs-injection-rate curves (CSV + JSON).
    Sweep,
    /// Fig. 9 design-space sweeps (routing bandwidth + Pareto).
    DesignSweep,
    /// Trace-driven simulation of every feasible candidate (Fig. 10c),
    /// with a JSON report.
    Simulate,
    /// Batch exploration: a manifest-driven grid of applications ×
    /// configurations, sharded across workers, streamed as JSONL.
    Batch,
    /// Distributed batch: lease job ranges to `batch-worker` processes
    /// and assemble the byte-identical JSONL.
    BatchCoordinator,
    /// Distributed batch: compute leased ranges for a coordinator.
    BatchWorker,
    /// Warm-cache mapping daemon answering length-prefixed JSON frames.
    Serve,
    /// One frame against a running daemon (explore/stats/ping/shutdown).
    Client,
    /// Re-run a serve request log and verify byte-identical reports.
    Replay,
}

/// Parse errors with the usage line callers print.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseCliError(pub String);

impl std::fmt::Display for ParseCliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for ParseCliError {}

/// Usage text.
pub const USAGE: &str = "\
usage: sunmap <command> <app> [options]

commands:
  explore       map the application onto the topology library, print the table
  generate      full flow: explore, select, write SystemC sources
  simulate      trace-driven latency of every feasible candidate (+ JSON)
  sweep         latency-vs-injection-rate curves (Fig. 8b; CSV + JSON)
  design-sweep  routing-function bandwidth staircase + area-power Pareto front
  batch         run a manifest's application x configuration grid, streamed
                as JSONL (batch --jobs <manifest>; no <app> argument)
  batch-coordinator
                distributed batch: lease job ranges of the manifest to
                batch-worker processes over TCP, retry failed ranges, and
                assemble <out>/batch.jsonl byte-identically to a local run
                (batch-coordinator --jobs <manifest> [--listen <addr>]
                [--grain <n>] [--resume]; no <app>)
  batch-worker  distributed batch: connect to a coordinator, compute leased
                ranges of the SAME manifest, stream results back
                (batch-worker <addr> --jobs <manifest> [--name <s>])
  serve         warm-cache mapping daemon: length-prefixed JSON frames over
                TCP (serve [--listen <addr>] [--log <file>]; no <app>)
  client        send one frame to a daemon:
                client <addr> explore <app> [options] | stats | ping | shutdown
  replay        re-run a serve request log through the one-shot path and
                verify byte-identical reports (replay --log <file>)

<app> is a .app file (core/traffic lines), a built-in benchmark, or a
seeded synthetic workload spec:
  vopd | mpeg4 | dsp | netproc | synth:seed=<n>[,cores=..,locality=..,
  hotspot=..,degree=..,bwmin=..,bwmax=..]

options:
  --capacity <MB/s>     link bandwidth       (default 500)
  --routing <fn>        DO | MP | SM | SA    (default MP)
  --objective <obj>     delay|area|power|bandwidth (default delay)
  --relax-bandwidth     do not enforce link capacities
  --extended            add octagon and star to the library
  --out <dir>           output directory     (generate/simulate/sweep;
                        default sunmap-out)
  --name <name>         design name (generate) or worker name shown in
                        coordinator logs (batch-worker); default 'design'
  --intensity <f>       injection intensity  (simulate/explore --validate;
                        default 0.45)
  --validate            simulate winner + runner-up after explore (phase 4)
  --rates <r1,r2,..>    sweep injection rates (default 0.02..0.45)
  --pattern <name>      sweep pattern: uniform|transpose|bit-complement|
                        bit-reverse|tornado (default: per-topology adversary)
  --workers <n>         sweep/batch threads, 0 = one per CPU (default 0;
                        results identical at any setting)
  --jobs <manifest>     batch job manifest file (required for batch)
  --resume              batch/batch-coordinator: skip jobs already present
                        in the output file (<out>/batch.jsonl), append the
                        rest
  --shard <k>/<n>       batch: run only the k-th of n contiguous manifest
                        slices (1-based); concatenating the n shard outputs
                        in order reproduces the unsharded file exactly
  --grain <n>           batch-coordinator: jobs per lease (default 2)
  --swap <s>            auto|exhaustive|delta (default auto; explore --json
                        and client explore)
  --engine <e>          simulation engine: auto|flat|event|reference
                        (default auto: event-driven below load 0.15, flat
                        above; all engines are bit-identical — this is a
                        speed knob for simulate/sweep/explore --validate
                        and probes)
  --table-prep <p>      route-table preparation: auto|eager|lazy|closed-form
                        (default auto: eager up to 64 mappable vertices,
                        closed-form/lazy above; all variants answer
                        bit-identically — this is a speed/memory knob
                        for large topologies)
  --probe <pat> <rate> [k]
                        simulate the k best candidates (default 1: winner
                        only) under a synthetic pattern at <rate>
                        flits/cycle/terminal (explore --json,
                        client explore)
  --json                explore: print the one-shot report line
                        ({\"schema\":\"sunmap-report/1\",...}) instead of
                        the table
  --listen <addr>       serve bind address (default 127.0.0.1:7420;
                        port 0 picks a free port)
  --cache <n>           serve/replay: candidate libraries kept warm
                        (default 8)
  --log <file>          serve: append-only request-replay log;
                        replay: the log to verify (required)
";

impl Cli {
    /// Parses `args` (without the executable name).
    ///
    /// # Errors
    ///
    /// Returns a [`ParseCliError`] describing the first problem.
    pub fn parse<I, S>(args: I) -> Result<Cli, ParseCliError>
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let args: Vec<String> = args.into_iter().map(|s| s.as_ref().to_string()).collect();
        let mut it = args.iter();
        let command = match it.next().map(String::as_str) {
            Some("explore") => Command::Explore,
            Some("generate") => Command::Generate,
            Some("sweep") => Command::Sweep,
            Some("design-sweep") => Command::DesignSweep,
            Some("simulate") => Command::Simulate,
            Some("batch") => Command::Batch,
            Some("batch-coordinator") => Command::BatchCoordinator,
            Some("batch-worker") => Command::BatchWorker,
            Some("serve") => Command::Serve,
            Some("client") => Command::Client,
            Some("replay") => Command::Replay,
            Some(other) => return Err(ParseCliError(format!("unknown command '{other}'"))),
            None => return Err(ParseCliError("missing command".to_string())),
        };
        // `batch`/`serve`/`replay` take no positional application;
        // `client` takes an address and an operation first.
        let mut addr = String::new();
        let mut client_op = ClientOp::default();
        let app = match command {
            Command::Batch | Command::BatchCoordinator | Command::Serve | Command::Replay => {
                String::new()
            }
            Command::BatchWorker => {
                addr = it
                    .next()
                    .ok_or_else(|| {
                        ParseCliError("batch-worker needs a coordinator <addr>".to_string())
                    })?
                    .clone();
                String::new()
            }
            Command::Client => {
                addr = it
                    .next()
                    .ok_or_else(|| ParseCliError("client needs a daemon <addr>".to_string()))?
                    .clone();
                client_op = match it.next().map(String::as_str) {
                    Some("explore") => ClientOp::Explore,
                    Some("stats") => ClientOp::Stats,
                    Some("ping") => ClientOp::Ping,
                    Some("shutdown") => ClientOp::Shutdown,
                    Some(other) => {
                        return Err(ParseCliError(format!(
                            "unknown client operation '{other}' \
                             (valid: explore, stats, ping, shutdown)"
                        )))
                    }
                    None => {
                        return Err(ParseCliError(
                            "client needs an operation: explore, stats, ping or shutdown"
                                .to_string(),
                        ))
                    }
                };
                if client_op == ClientOp::Explore {
                    it.next()
                        .ok_or_else(|| ParseCliError("missing application".to_string()))?
                        .clone()
                } else {
                    String::new()
                }
            }
            _ => it
                .next()
                .ok_or_else(|| ParseCliError("missing application".to_string()))?
                .clone(),
        };
        let mut cli = Cli {
            command,
            app,
            capacity: 500.0,
            routing: RoutingFunction::MinPath,
            objective: Objective::MinDelay,
            relax_bandwidth: false,
            extended: false,
            out_dir: "sunmap-out".to_string(),
            design_name: "design".to_string(),
            intensity: 0.45,
            rates: vec![0.02, 0.05, 0.1, 0.15, 0.2, 0.25, 0.3, 0.35, 0.4, 0.45],
            pattern: None,
            workers: 0,
            validate: false,
            jobs_path: String::new(),
            resume: false,
            shard: None,
            grain: 2,
            swap: SwapStrategy::Auto,
            engine: SimEngine::Auto,
            table_prep: TablePrep::Auto,
            probe: None,
            json: false,
            listen: "127.0.0.1:7420".to_string(),
            cache: 8,
            log_path: String::new(),
            addr,
            client_op,
        };
        while let Some(flag) = it.next() {
            let mut value = |name: &str| {
                it.next()
                    .cloned()
                    .ok_or_else(|| ParseCliError(format!("{name} needs a value")))
            };
            match flag.as_str() {
                "--capacity" => {
                    cli.capacity = parse_f64(&value("--capacity")?)?;
                }
                // Routing/objective names parse through the same
                // helpers the batch manifest uses, so the two surfaces
                // cannot drift.
                "--routing" => {
                    cli.routing = sunmap::batch::parse_routing(&value("--routing")?)
                        .map_err(ParseCliError)?;
                }
                "--objective" => {
                    cli.objective = sunmap::batch::parse_objective(&value("--objective")?)
                        .map_err(ParseCliError)?;
                }
                "--relax-bandwidth" => cli.relax_bandwidth = true,
                "--extended" => cli.extended = true,
                "--out" => cli.out_dir = value("--out")?,
                "--name" => cli.design_name = value("--name")?,
                "--intensity" => cli.intensity = parse_f64(&value("--intensity")?)?,
                "--validate" => cli.validate = true,
                "--rates" => {
                    let list = value("--rates")?;
                    cli.rates = list
                        .split(',')
                        .map(|s| parse_f64(s.trim()))
                        .collect::<Result<Vec<f64>, _>>()?;
                    if cli.rates.is_empty() {
                        return Err(ParseCliError("--rates needs at least one rate".to_string()));
                    }
                }
                "--pattern" => {
                    use sunmap::traffic::patterns::TrafficPattern;
                    let name = value("--pattern")?;
                    if TrafficPattern::from_name(&name).is_none() {
                        return Err(ParseCliError(format!(
                            "unknown pattern '{name}' (valid: {})",
                            TrafficPattern::NAMES.join(", ")
                        )));
                    }
                    cli.pattern = Some(name.to_lowercase());
                }
                "--workers" => {
                    let text = value("--workers")?;
                    cli.workers = text
                        .parse()
                        .map_err(|_| ParseCliError(format!("'{text}' is not a worker count")))?;
                }
                "--jobs" => cli.jobs_path = value("--jobs")?,
                "--resume" => cli.resume = true,
                "--shard" => {
                    let text = value("--shard")?;
                    let parse_part = |part: Option<&str>| {
                        part.and_then(|p| p.trim().parse::<usize>().ok())
                            .filter(|&v| v > 0)
                    };
                    let mut parts = text.split('/');
                    let (k, n, extra) = (parts.next(), parts.next(), parts.next());
                    cli.shard = match (parse_part(k), parse_part(n), extra) {
                        (Some(k), Some(n), None) if k <= n => Some((k, n)),
                        _ => {
                            return Err(ParseCliError(format!(
                                "'{text}' is not a shard: --shard <k>/<n> with 1 <= k <= n"
                            )))
                        }
                    };
                }
                "--grain" => {
                    let text = value("--grain")?;
                    cli.grain = text.parse().ok().filter(|&g| g > 0).ok_or_else(|| {
                        ParseCliError(format!("'{text}' is not a lease grain (need >= 1)"))
                    })?;
                }
                "--swap" => {
                    cli.swap = parse_swap(&value("--swap")?).map_err(ParseCliError)?;
                }
                "--engine" => {
                    cli.engine = parse_engine(&value("--engine")?).map_err(ParseCliError)?;
                }
                "--table-prep" => {
                    cli.table_prep =
                        parse_table_prep(&value("--table-prep")?).map_err(ParseCliError)?;
                }
                "--probe" => {
                    let pattern = value("--probe")?;
                    let rate = value("--probe")?;
                    let mut spec = format!("{pattern} {rate}");
                    // A bare-integer third token is the optional top-k
                    // count; anything else belongs to the next flag.
                    let peeked = it
                        .clone()
                        .next()
                        .filter(|t| !t.is_empty() && t.chars().all(|c| c.is_ascii_digit()));
                    if peeked.is_some() {
                        spec.push(' ');
                        spec.push_str(it.next().expect("peeked token present"));
                    }
                    cli.probe = Some(SimProbe::parse(&spec).map_err(ParseCliError)?);
                }
                "--json" => cli.json = true,
                "--listen" => cli.listen = value("--listen")?,
                "--cache" => {
                    let text = value("--cache")?;
                    cli.cache = text
                        .parse()
                        .map_err(|_| ParseCliError(format!("'{text}' is not a cache size")))?;
                }
                "--log" => cli.log_path = value("--log")?,
                other => return Err(ParseCliError(format!("unknown option '{other}'"))),
            }
        }
        if !(cli.capacity.is_finite() && cli.capacity > 0.0) {
            return Err(ParseCliError("--capacity must be positive".to_string()));
        }
        if cli.rates.iter().any(|r| !r.is_finite() || *r < 0.0) {
            return Err(ParseCliError(
                "--rates must be non-negative numbers".to_string(),
            ));
        }
        if !cli.intensity.is_finite() || cli.intensity < 0.0 {
            return Err(ParseCliError(
                "--intensity must be a non-negative number".to_string(),
            ));
        }
        if matches!(
            cli.command,
            Command::Batch | Command::BatchCoordinator | Command::BatchWorker
        ) && cli.jobs_path.is_empty()
        {
            return Err(ParseCliError(
                "this command needs a manifest: --jobs <file>".to_string(),
            ));
        }
        if cli.command == Command::Replay && cli.log_path.is_empty() {
            return Err(ParseCliError(
                "replay needs a request log: --log <file>".to_string(),
            ));
        }
        Ok(cli)
    }
}

fn parse_f64(text: &str) -> Result<f64, ParseCliError> {
    text.parse()
        .map_err(|_| ParseCliError(format!("'{text}' is not a number")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimal_explore() {
        let cli = Cli::parse(["explore", "vopd"]).unwrap();
        assert_eq!(cli.command, Command::Explore);
        assert_eq!(cli.app, "vopd");
        assert_eq!(cli.capacity, 500.0);
        assert_eq!(cli.routing, RoutingFunction::MinPath);
    }

    #[test]
    fn all_options_parse() {
        let cli = Cli::parse([
            "generate",
            "my.app",
            "--capacity",
            "1000",
            "--routing",
            "sa",
            "--objective",
            "power",
            "--relax-bandwidth",
            "--extended",
            "--out",
            "/tmp/x",
            "--name",
            "demo",
            "--intensity",
            "0.3",
        ])
        .unwrap();
        assert_eq!(cli.command, Command::Generate);
        assert_eq!(cli.capacity, 1000.0);
        assert_eq!(cli.routing, RoutingFunction::SplitAllPaths);
        assert_eq!(cli.objective, Objective::MinPower);
        assert!(cli.relax_bandwidth);
        assert!(cli.extended);
        assert_eq!(cli.out_dir, "/tmp/x");
        assert_eq!(cli.design_name, "demo");
        assert_eq!(cli.intensity, 0.3);
    }

    #[test]
    fn errors_are_descriptive() {
        assert!(Cli::parse::<[&str; 0], &str>([])
            .unwrap_err()
            .0
            .contains("missing command"));
        assert!(Cli::parse(["frobnicate", "x"])
            .unwrap_err()
            .0
            .contains("unknown command"));
        assert!(Cli::parse(["explore"])
            .unwrap_err()
            .0
            .contains("missing application"));
        assert!(Cli::parse(["explore", "vopd", "--routing", "XY"])
            .unwrap_err()
            .0
            .contains("unknown routing"));
        assert!(Cli::parse(["explore", "vopd", "--capacity"])
            .unwrap_err()
            .0
            .contains("needs a value"));
        assert!(Cli::parse(["explore", "vopd", "--capacity", "-1"])
            .unwrap_err()
            .0
            .contains("positive"));
        assert!(Cli::parse(["explore", "vopd", "--wat"])
            .unwrap_err()
            .0
            .contains("unknown option"));
    }

    #[test]
    fn sweep_options_parse() {
        let cli = Cli::parse([
            "sweep",
            "netproc",
            "--rates",
            "0.05, 0.1,0.2",
            "--pattern",
            "Tornado",
            "--workers",
            "3",
        ])
        .unwrap();
        assert_eq!(cli.command, Command::Sweep);
        assert_eq!(cli.rates, vec![0.05, 0.1, 0.2]);
        assert_eq!(cli.pattern.as_deref(), Some("tornado"));
        assert_eq!(cli.workers, 3);
    }

    #[test]
    fn design_sweep_and_validate_parse() {
        let cli = Cli::parse(["design-sweep", "mpeg4"]).unwrap();
        assert_eq!(cli.command, Command::DesignSweep);
        let cli = Cli::parse(["explore", "vopd", "--validate"]).unwrap();
        assert!(cli.validate);
    }

    #[test]
    fn batch_options_parse() {
        let cli = Cli::parse([
            "batch",
            "--jobs",
            "grid.manifest",
            "--workers",
            "4",
            "--resume",
            "--out",
            "target/batch",
        ])
        .unwrap();
        assert_eq!(cli.command, Command::Batch);
        assert_eq!(cli.jobs_path, "grid.manifest");
        assert_eq!(cli.workers, 4);
        assert!(cli.resume);
        assert_eq!(cli.out_dir, "target/batch");
        assert!(cli.app.is_empty(), "batch takes no positional app");
    }

    #[test]
    fn shard_and_distributed_batch_parse() {
        let cli = Cli::parse(["batch", "--jobs", "g.manifest", "--shard", "2/3"]).unwrap();
        assert_eq!(cli.shard, Some((2, 3)));

        let cli = Cli::parse([
            "batch-coordinator",
            "--jobs",
            "g.manifest",
            "--listen",
            "127.0.0.1:0",
            "--grain",
            "4",
            "--resume",
        ])
        .unwrap();
        assert_eq!(cli.command, Command::BatchCoordinator);
        assert_eq!(cli.grain, 4);
        assert!(cli.resume);
        assert!(cli.app.is_empty(), "batch-coordinator takes no app");

        let cli = Cli::parse([
            "batch-worker",
            "127.0.0.1:7421",
            "--jobs",
            "g.manifest",
            "--name",
            "w1",
        ])
        .unwrap();
        assert_eq!(cli.command, Command::BatchWorker);
        assert_eq!(cli.addr, "127.0.0.1:7421");
        assert_eq!(cli.design_name, "w1");
    }

    #[test]
    fn shard_and_distributed_batch_errors() {
        for bad in ["0/3", "4/3", "2", "a/b", "1/2/3", "/"] {
            let err = Cli::parse(["batch", "--jobs", "g", "--shard", bad]).unwrap_err();
            assert!(err.0.contains("shard"), "{bad}: {}", err.0);
        }
        assert!(Cli::parse(["batch-coordinator"])
            .unwrap_err()
            .0
            .contains("--jobs"));
        assert!(Cli::parse(["batch-worker", "127.0.0.1:7421"])
            .unwrap_err()
            .0
            .contains("--jobs"));
        assert!(Cli::parse(["batch-worker"])
            .unwrap_err()
            .0
            .contains("coordinator <addr>"));
        assert!(
            Cli::parse(["batch-coordinator", "--jobs", "g", "--grain", "0"])
                .unwrap_err()
                .0
                .contains("lease grain")
        );
    }

    #[test]
    fn batch_requires_a_manifest() {
        assert!(Cli::parse(["batch"]).unwrap_err().0.contains("--jobs"));
        assert!(Cli::parse(["batch", "--resume"])
            .unwrap_err()
            .0
            .contains("--jobs"));
    }

    #[test]
    fn pattern_errors_list_valid_names() {
        let err = Cli::parse(["sweep", "vopd", "--pattern", "warp"]).unwrap_err();
        for name in sunmap::traffic::patterns::TrafficPattern::NAMES {
            assert!(err.0.contains(name), "'{name}' missing from: {}", err.0);
        }
        // Case-insensitive acceptance, normalised for reports.
        let cli = Cli::parse(["sweep", "vopd", "--pattern", "TORNADO"]).unwrap();
        assert_eq!(cli.pattern.as_deref(), Some("tornado"));
    }

    #[test]
    fn bad_sweep_options_error() {
        assert!(Cli::parse(["sweep", "vopd", "--rates", "0.1,x"])
            .unwrap_err()
            .0
            .contains("not a number"));
        assert!(Cli::parse(["sweep", "vopd", "--rates", "-0.1"])
            .unwrap_err()
            .0
            .contains("non-negative"));
        assert!(Cli::parse(["sweep", "vopd", "--pattern", "hotspot"])
            .unwrap_err()
            .0
            .contains("unknown pattern"));
        assert!(Cli::parse(["sweep", "vopd", "--workers", "many"])
            .unwrap_err()
            .0
            .contains("worker count"));
    }

    #[test]
    fn serve_client_and_replay_parse() {
        let cli = Cli::parse([
            "serve",
            "--listen",
            "127.0.0.1:0",
            "--workers",
            "3",
            "--cache",
            "4",
            "--log",
            "req.jsonl",
        ])
        .unwrap();
        assert_eq!(cli.command, Command::Serve);
        assert_eq!(cli.listen, "127.0.0.1:0");
        assert_eq!(cli.workers, 3);
        assert_eq!(cli.cache, 4);
        assert_eq!(cli.log_path, "req.jsonl");
        assert!(cli.app.is_empty(), "serve takes no positional app");

        let cli = Cli::parse([
            "client",
            "127.0.0.1:7420",
            "explore",
            "vopd",
            "--objective",
            "power",
            "--swap",
            "delta",
            "--probe",
            "uniform",
            "0.1",
        ])
        .unwrap();
        assert_eq!(cli.command, Command::Client);
        assert_eq!(cli.addr, "127.0.0.1:7420");
        assert_eq!(cli.client_op, ClientOp::Explore);
        assert_eq!(cli.app, "vopd");
        assert_eq!(cli.objective, Objective::MinPower);
        assert_eq!(cli.swap, SwapStrategy::DeltaPruned);
        assert_eq!(cli.probe.as_ref().unwrap().rate, 0.1);

        let cli = Cli::parse(["client", "127.0.0.1:7420", "shutdown"]).unwrap();
        assert_eq!(cli.client_op, ClientOp::Shutdown);
        assert!(cli.app.is_empty());

        let cli = Cli::parse(["replay", "--log", "req.jsonl"]).unwrap();
        assert_eq!(cli.command, Command::Replay);
        assert_eq!(cli.log_path, "req.jsonl");

        let cli = Cli::parse(["explore", "vopd", "--json"]).unwrap();
        assert!(cli.json);
    }

    #[test]
    fn serve_family_errors_are_descriptive() {
        assert!(Cli::parse(["client"])
            .unwrap_err()
            .0
            .contains("daemon <addr>"));
        assert!(Cli::parse(["client", "127.0.0.1:7420"])
            .unwrap_err()
            .0
            .contains("operation"));
        assert!(Cli::parse(["client", "127.0.0.1:7420", "warp"])
            .unwrap_err()
            .0
            .contains("unknown client operation"));
        assert!(Cli::parse(["client", "127.0.0.1:7420", "explore"])
            .unwrap_err()
            .0
            .contains("missing application"));
        assert!(Cli::parse(["replay"]).unwrap_err().0.contains("--log"));
        assert!(Cli::parse(["serve", "--cache", "lots"])
            .unwrap_err()
            .0
            .contains("cache size"));
        assert!(Cli::parse(["explore", "vopd", "--swap", "sideways"])
            .unwrap_err()
            .0
            .contains("auto, exhaustive, delta"));
        assert!(Cli::parse(["explore", "vopd", "--probe", "uniform"])
            .unwrap_err()
            .0
            .contains("needs a value"));
        assert!(Cli::parse(["explore", "vopd", "--probe", "warp", "0.1"])
            .unwrap_err()
            .0
            .contains("unknown pattern"));
    }

    #[test]
    fn engine_flag_parses_and_defaults_to_auto() {
        assert_eq!(
            Cli::parse(["simulate", "vopd"]).unwrap().engine,
            SimEngine::Auto
        );
        for (text, expected) in [
            ("auto", SimEngine::Auto),
            ("flat", SimEngine::Flat),
            ("event", SimEngine::EventDriven),
            ("Reference", SimEngine::Reference),
        ] {
            let cli = Cli::parse(["simulate", "vopd", "--engine", text]).unwrap();
            assert_eq!(cli.engine, expected, "{text}");
        }
        let err = Cli::parse(["sweep", "vopd", "--engine", "warp"]).unwrap_err();
        assert!(err.0.contains("auto, flat, event, reference"), "{}", err.0);
    }

    #[test]
    fn table_prep_flag_parses_and_defaults_to_auto() {
        assert_eq!(
            Cli::parse(["explore", "vopd"]).unwrap().table_prep,
            TablePrep::Auto
        );
        for (text, expected) in [
            ("auto", TablePrep::Auto),
            ("eager", TablePrep::Eager),
            ("lazy", TablePrep::Lazy),
            ("Closed-Form", TablePrep::ClosedForm),
        ] {
            let cli = Cli::parse(["explore", "vopd", "--table-prep", text]).unwrap();
            assert_eq!(cli.table_prep, expected, "{text}");
        }
        let err = Cli::parse(["explore", "vopd", "--table-prep", "dense"]).unwrap_err();
        assert!(
            err.0.contains("auto, eager, lazy, closed-form"),
            "{}",
            err.0
        );
    }

    #[test]
    fn probe_takes_an_optional_top_k() {
        let cli = Cli::parse(["explore", "vopd", "--probe", "uniform", "0.1"]).unwrap();
        assert_eq!(cli.probe.as_ref().unwrap().top_k, 1);
        // The third token is consumed only when it is a bare integer...
        let cli = Cli::parse([
            "explore", "vopd", "--probe", "uniform", "0.1", "3", "--json",
        ])
        .unwrap();
        assert_eq!(cli.probe.as_ref().unwrap().top_k, 3);
        assert!(cli.json);
        // ...so a following flag still parses as itself.
        let cli = Cli::parse(["explore", "vopd", "--probe", "uniform", "0.1", "--json"]).unwrap();
        assert_eq!(cli.probe.as_ref().unwrap().top_k, 1);
        assert!(cli.json);
        let err = Cli::parse(["explore", "vopd", "--probe", "uniform", "0.1", "0"]).unwrap_err();
        assert!(err.0.contains("at least 1"), "{}", err.0);
    }

    #[test]
    fn routing_names_are_case_insensitive() {
        for (text, expected) in [
            ("do", RoutingFunction::DimensionOrdered),
            ("Mp", RoutingFunction::MinPath),
            ("SM", RoutingFunction::SplitMinPaths),
            ("sA", RoutingFunction::SplitAllPaths),
        ] {
            let cli = Cli::parse(["explore", "vopd", "--routing", text]).unwrap();
            assert_eq!(cli.routing, expected);
        }
    }
}
