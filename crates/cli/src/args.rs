//! Hand-rolled argument parsing for the `sunmap` binary (kept
//! dependency-free; the option surface is small).

use sunmap::{Objective, RoutingFunction};

/// Parsed command line.
#[derive(Debug, Clone, PartialEq)]
pub struct Cli {
    /// The subcommand to run.
    pub command: Command,
    /// Application source: a file path or a built-in benchmark name
    /// (`vopd`, `mpeg4`, `dsp`, `netproc`).
    pub app: String,
    /// Link capacity in MB/s.
    pub capacity: f64,
    /// Routing function.
    pub routing: RoutingFunction,
    /// Mapping objective.
    pub objective: Objective,
    /// Relax bandwidth feasibility (paper §6.2 mode).
    pub relax_bandwidth: bool,
    /// Include the octagon/star extension topologies.
    pub extended: bool,
    /// Output directory for `generate`.
    pub out_dir: String,
    /// Design name for `generate`.
    pub design_name: String,
    /// Trace intensity for `simulate` (flits/cycle for the heaviest
    /// commodity).
    pub intensity: f64,
}

/// The `sunmap` subcommands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Command {
    /// Phase 1+2: per-topology table and selection.
    Explore,
    /// Full flow: explore, select and write SystemC sources.
    Generate,
    /// Fig. 9 design-space sweeps (routing bandwidth + Pareto).
    Sweep,
    /// Trace-driven simulation of every feasible candidate.
    Simulate,
}

/// Parse errors with the usage line callers print.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseCliError(pub String);

impl std::fmt::Display for ParseCliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for ParseCliError {}

/// Usage text.
pub const USAGE: &str = "\
usage: sunmap <command> <app> [options]

commands:
  explore    map the application onto the topology library, print the table
  generate   full flow: explore, select, write SystemC sources
  sweep      routing-function bandwidth staircase + area-power Pareto front
  simulate   trace-driven latency of every feasible candidate

<app> is a .app file (core/traffic lines) or a built-in benchmark:
  vopd | mpeg4 | dsp | netproc

options:
  --capacity <MB/s>     link bandwidth       (default 500)
  --routing <fn>        DO | MP | SM | SA    (default MP)
  --objective <obj>     delay|area|power|bandwidth (default delay)
  --relax-bandwidth     do not enforce link capacities
  --extended            add octagon and star to the library
  --out <dir>           output directory     (generate; default sunmap-out)
  --name <name>         design name          (generate; default 'design')
  --intensity <f>       injection intensity  (simulate; default 0.45)
";

impl Cli {
    /// Parses `args` (without the executable name).
    ///
    /// # Errors
    ///
    /// Returns a [`ParseCliError`] describing the first problem.
    pub fn parse<I, S>(args: I) -> Result<Cli, ParseCliError>
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let args: Vec<String> = args.into_iter().map(|s| s.as_ref().to_string()).collect();
        let mut it = args.iter();
        let command = match it.next().map(String::as_str) {
            Some("explore") => Command::Explore,
            Some("generate") => Command::Generate,
            Some("sweep") => Command::Sweep,
            Some("simulate") => Command::Simulate,
            Some(other) => return Err(ParseCliError(format!("unknown command '{other}'"))),
            None => return Err(ParseCliError("missing command".to_string())),
        };
        let app = it
            .next()
            .ok_or_else(|| ParseCliError("missing application".to_string()))?
            .clone();
        let mut cli = Cli {
            command,
            app,
            capacity: 500.0,
            routing: RoutingFunction::MinPath,
            objective: Objective::MinDelay,
            relax_bandwidth: false,
            extended: false,
            out_dir: "sunmap-out".to_string(),
            design_name: "design".to_string(),
            intensity: 0.45,
        };
        while let Some(flag) = it.next() {
            let mut value = |name: &str| {
                it.next()
                    .cloned()
                    .ok_or_else(|| ParseCliError(format!("{name} needs a value")))
            };
            match flag.as_str() {
                "--capacity" => {
                    cli.capacity = parse_f64(&value("--capacity")?)?;
                }
                "--routing" => {
                    cli.routing = match value("--routing")?.to_uppercase().as_str() {
                        "DO" => RoutingFunction::DimensionOrdered,
                        "MP" => RoutingFunction::MinPath,
                        "SM" => RoutingFunction::SplitMinPaths,
                        "SA" => RoutingFunction::SplitAllPaths,
                        other => return Err(ParseCliError(format!("unknown routing '{other}'"))),
                    };
                }
                "--objective" => {
                    cli.objective = match value("--objective")?.to_lowercase().as_str() {
                        "delay" => Objective::MinDelay,
                        "area" => Objective::MinArea,
                        "power" => Objective::MinPower,
                        "bandwidth" => Objective::MinBandwidth,
                        other => return Err(ParseCliError(format!("unknown objective '{other}'"))),
                    };
                }
                "--relax-bandwidth" => cli.relax_bandwidth = true,
                "--extended" => cli.extended = true,
                "--out" => cli.out_dir = value("--out")?,
                "--name" => cli.design_name = value("--name")?,
                "--intensity" => cli.intensity = parse_f64(&value("--intensity")?)?,
                other => return Err(ParseCliError(format!("unknown option '{other}'"))),
            }
        }
        if !(cli.capacity.is_finite() && cli.capacity > 0.0) {
            return Err(ParseCliError("--capacity must be positive".to_string()));
        }
        Ok(cli)
    }
}

fn parse_f64(text: &str) -> Result<f64, ParseCliError> {
    text.parse()
        .map_err(|_| ParseCliError(format!("'{text}' is not a number")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimal_explore() {
        let cli = Cli::parse(["explore", "vopd"]).unwrap();
        assert_eq!(cli.command, Command::Explore);
        assert_eq!(cli.app, "vopd");
        assert_eq!(cli.capacity, 500.0);
        assert_eq!(cli.routing, RoutingFunction::MinPath);
    }

    #[test]
    fn all_options_parse() {
        let cli = Cli::parse([
            "generate",
            "my.app",
            "--capacity",
            "1000",
            "--routing",
            "sa",
            "--objective",
            "power",
            "--relax-bandwidth",
            "--extended",
            "--out",
            "/tmp/x",
            "--name",
            "demo",
            "--intensity",
            "0.3",
        ])
        .unwrap();
        assert_eq!(cli.command, Command::Generate);
        assert_eq!(cli.capacity, 1000.0);
        assert_eq!(cli.routing, RoutingFunction::SplitAllPaths);
        assert_eq!(cli.objective, Objective::MinPower);
        assert!(cli.relax_bandwidth);
        assert!(cli.extended);
        assert_eq!(cli.out_dir, "/tmp/x");
        assert_eq!(cli.design_name, "demo");
        assert_eq!(cli.intensity, 0.3);
    }

    #[test]
    fn errors_are_descriptive() {
        assert!(Cli::parse::<[&str; 0], &str>([])
            .unwrap_err()
            .0
            .contains("missing command"));
        assert!(Cli::parse(["frobnicate", "x"])
            .unwrap_err()
            .0
            .contains("unknown command"));
        assert!(Cli::parse(["explore"])
            .unwrap_err()
            .0
            .contains("missing application"));
        assert!(Cli::parse(["explore", "vopd", "--routing", "XY"])
            .unwrap_err()
            .0
            .contains("unknown routing"));
        assert!(Cli::parse(["explore", "vopd", "--capacity"])
            .unwrap_err()
            .0
            .contains("needs a value"));
        assert!(Cli::parse(["explore", "vopd", "--capacity", "-1"])
            .unwrap_err()
            .0
            .contains("positive"));
        assert!(Cli::parse(["explore", "vopd", "--wat"])
            .unwrap_err()
            .0
            .contains("unknown option"));
    }

    #[test]
    fn routing_names_are_case_insensitive() {
        for (text, expected) in [
            ("do", RoutingFunction::DimensionOrdered),
            ("Mp", RoutingFunction::MinPath),
            ("SM", RoutingFunction::SplitMinPaths),
            ("sA", RoutingFunction::SplitAllPaths),
        ] {
            let cli = Cli::parse(["explore", "vopd", "--routing", text]).unwrap();
            assert_eq!(cli.routing, expected);
        }
    }
}
