//! `sunmap` — the SUNMAP flow as a command-line tool.
//!
//! ```text
//! sunmap explore vopd --validate
//! sunmap design-sweep mpeg4
//! sunmap generate dsp --capacity 1000 --out target/dsp-noc
//! sunmap simulate my_design.app --capacity 800 --intensity 0.4
//! sunmap sweep netproc --rates 0.05,0.1,0.2 --out target/netproc-sweep
//! ```
//!
//! See `sunmap --help` (or [`args::USAGE`]) for the full surface.

mod args;
mod commands;

use std::process::ExitCode;

use args::{Cli, USAGE};

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    if raw.iter().any(|a| a == "--help" || a == "-h") || raw.is_empty() {
        print!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    let cli = match Cli::parse(raw.iter().map(String::as_str)) {
        Ok(cli) => cli,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    match commands::run(&cli) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
