//! Subcommand implementations.

use std::error::Error;
use std::fs;
use std::path::Path;

use crate::args::{Cli, Command};
use sunmap::sim::{NocSimulator, SimConfig};
use sunmap::topology::builders;
use sunmap::traffic::{benchmarks, io, CoreGraph};
use sunmap::{
    pareto_exploration, routing_bandwidth_sweep, Constraints, Exploration, Sunmap, TopologyGraph,
};

type CliResult = Result<(), Box<dyn Error>>;

/// Dispatches a parsed command line.
pub fn run(cli: &Cli) -> CliResult {
    let app = load_app(&cli.app)?;
    match cli.command {
        Command::Explore => explore(cli, app),
        Command::Generate => generate(cli, app),
        Command::Sweep => sweep(cli, app),
        Command::Simulate => simulate(cli, app),
    }
}

/// Loads an application from a built-in name or a `.app` file.
pub fn load_app(source: &str) -> Result<CoreGraph, Box<dyn Error>> {
    Ok(match source {
        "vopd" => benchmarks::vopd(),
        "mpeg4" => benchmarks::mpeg4(),
        "dsp" => benchmarks::dsp_filter(),
        "netproc" => benchmarks::network_processor(100.0),
        path => {
            let text = fs::read_to_string(path)
                .map_err(|e| format!("cannot read application '{path}': {e}"))?;
            io::parse_app(&text)?
        }
    })
}

fn tool(cli: &Cli, app: CoreGraph) -> Sunmap {
    let mut builder = Sunmap::builder(app)
        .link_capacity(cli.capacity)
        .routing(cli.routing)
        .objective(cli.objective);
    if cli.relax_bandwidth {
        builder = builder.constraints(Constraints::relaxed_bandwidth());
    }
    builder.build()
}

fn library(cli: &Cli, cores: usize) -> Result<Vec<TopologyGraph>, Box<dyn Error>> {
    let mut lib = builders::standard_library(cores, cli.capacity)?;
    if cli.extended {
        if cores <= 8 {
            lib.push(builders::octagon(cli.capacity)?);
        }
        lib.push(builders::star(cores, cli.capacity)?);
    }
    Ok(lib)
}

fn explore_with_library(
    cli: &Cli,
    app: CoreGraph,
) -> Result<(Sunmap, Exploration), Box<dyn Error>> {
    let cores = app.core_count();
    let tool = tool(cli, app);
    let lib = library(cli, cores)?;
    let ex = tool.explore_library(lib);
    Ok((tool, ex))
}

fn explore(cli: &Cli, app: CoreGraph) -> CliResult {
    let (_, ex) = explore_with_library(cli, app)?;
    print!("{}", ex.table());
    match ex.best_candidate() {
        Some(best) => println!("selected: {}", best.kind),
        None => println!("no feasible topology under these constraints"),
    }
    Ok(())
}

fn generate(cli: &Cli, app: CoreGraph) -> CliResult {
    let (tool, ex) = explore_with_library(cli, app)?;
    print!("{}", ex.table());
    let best = ex
        .best_candidate()
        .ok_or("no feasible topology to generate")?;
    let design = tool.generate(best, &cli.design_name);
    let out = Path::new(&cli.out_dir);
    fs::create_dir_all(out)?;
    for f in &design.files {
        fs::write(out.join(&f.name), &f.content)?;
    }
    fs::write(out.join("noc.dot"), &design.dot)?;
    println!(
        "wrote {} SystemC files + noc.dot for the {} to {}",
        design.files.len(),
        best.kind,
        out.display()
    );
    Ok(())
}

fn sweep(cli: &Cli, app: CoreGraph) -> CliResult {
    let (rows, cols) = builders::grid_dims(app.core_count());
    let mesh = builders::mesh(rows, cols, cli.capacity)?;
    println!(
        "== minimum link bandwidth per routing function ({}) ==",
        mesh.kind()
    );
    for e in routing_bandwidth_sweep(&app, &mesh) {
        let fits = if e.min_bandwidth <= cli.capacity {
            format!("  <= fits {} MB/s links", cli.capacity)
        } else {
            String::new()
        };
        println!(
            "  {:<3} {:>9.1} MB/s{fits}",
            e.routing.abbrev(),
            e.min_bandwidth
        );
    }
    println!("\n== area-power Pareto front (mesh mappings) ==");
    let (points, front) = pareto_exploration(&app, &mesh);
    println!("{} candidate mappings evaluated; front:", points.len());
    for p in &front {
        println!("  {:>9.2} mm2 {:>9.1} mW   [{}]", p.x, p.y, p.label);
    }
    Ok(())
}

fn simulate(cli: &Cli, app: CoreGraph) -> CliResult {
    let (_, ex) = explore_with_library(cli, app.clone())?;
    println!(
        "{:<12} {:>10} {:>10} {:>9}",
        "topology", "lat (cy)", "packets", "delivery"
    );
    for c in &ex.candidates {
        match &c.outcome {
            Ok(mapping) => {
                let mut sim = NocSimulator::new(&c.graph, SimConfig::default());
                let stats = sim.run_trace(mapping.evaluation(), &app, cli.intensity);
                println!(
                    "{:<12} {:>10.1} {:>10} {:>8.0}%",
                    c.kind.name(),
                    stats.avg_latency,
                    stats.packets_delivered,
                    stats.delivery_ratio() * 100.0
                );
            }
            Err(_) => println!("{:<12} {:>10}", c.kind.name(), "infeasible"),
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::Cli;

    fn cli(words: &[&str]) -> Cli {
        Cli::parse(words.iter().copied()).unwrap()
    }

    #[test]
    fn builtin_apps_load() {
        for name in ["vopd", "mpeg4", "dsp", "netproc"] {
            let app = load_app(name).unwrap();
            assert!(app.core_count() >= 6, "{name}");
        }
        assert!(load_app("/does/not/exist.app").is_err());
    }

    #[test]
    fn explore_runs_on_builtin() {
        run(&cli(&["explore", "vopd"])).unwrap();
    }

    #[test]
    fn explore_extended_runs() {
        run(&cli(&[
            "explore",
            "dsp",
            "--capacity",
            "1000",
            "--extended",
        ]))
        .unwrap();
    }

    #[test]
    fn sweep_runs_on_mpeg4() {
        run(&cli(&["sweep", "mpeg4"])).unwrap();
    }

    #[test]
    fn generate_writes_files() {
        let dir = std::env::temp_dir().join("sunmap_cli_test_out");
        let _ = fs::remove_dir_all(&dir);
        run(&cli(&[
            "generate",
            "dsp",
            "--capacity",
            "1000",
            "--out",
            dir.to_str().unwrap(),
            "--name",
            "t",
        ]))
        .unwrap();
        assert!(dir.join("noc.dot").exists());
        assert!(dir.join("top_t.cpp").exists());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn app_file_round_trip_through_cli() {
        let dir = std::env::temp_dir().join("sunmap_cli_app_test");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("tiny.app");
        fs::write(&path, "core a 2.0\ncore b 2.0\ntraffic a b 100\n").unwrap();
        run(&cli(&["explore", path.to_str().unwrap()])).unwrap();
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn infeasible_generate_fails_cleanly() {
        let err = run(&cli(&["generate", "vopd", "--capacity", "1"])).unwrap_err();
        assert!(err.to_string().contains("no feasible topology"));
    }
}
