//! Subcommand implementations.

use std::error::Error;
use std::fs;
use std::io::Write as _;
use std::net::TcpStream;
use std::path::{Path, PathBuf};

use crate::args::{Cli, ClientOp, Command};
use sunmap::batch::{
    manifest_fingerprint, plan_resume, run_batch, shard_range, BatchJob, BatchManifest, ResumePlan,
};
use sunmap::request::{ConstraintMode, ExploreRequest, RequestRunner};
use sunmap::schema::{SERVE_SCHEMA, SIMULATE_SCHEMA};
use sunmap::serve::{read_frame, report_slice, serve, verify_replay, write_frame, ServeConfig};
use sunmap::shard::{run_coordinator, run_worker, CoordConfig};
use sunmap::sim::sweep::{injection_sweep, stats_json_fields, sweep_csv, sweep_json, SweepRequest};
use sunmap::sim::{adversarial_pattern, SimConfig, SimSession};
use sunmap::topology::builders;
use sunmap::traffic::patterns::TrafficPattern;
use sunmap::traffic::CoreGraph;
use sunmap::{
    pareto_exploration, routing_bandwidth_sweep, AppSource, Constraints, Exploration, Sunmap,
    TopologyGraph,
};

type CliResult = Result<(), Box<dyn Error>>;

/// Dispatches a parsed command line.
pub fn run(cli: &Cli) -> CliResult {
    match cli.command {
        Command::Batch => return batch(cli),
        Command::BatchCoordinator => return batch_coordinator(cli),
        Command::BatchWorker => return batch_worker(cli),
        Command::Serve => return serve_daemon(cli),
        Command::Replay => return replay(cli),
        Command::Client if cli.client_op != ClientOp::Explore => return client(cli, None),
        Command::Client => return client(cli, Some(explore_request(cli)?)),
        Command::Explore if cli.json => return explore_json(cli, &explore_request(cli)?),
        _ => {}
    }
    // Every remaining command takes one application, parsed through the
    // same `AppSource` path as batch manifests and serve frames.
    let app = AppSource::load(&cli.app)?;
    match cli.command {
        Command::Explore => explore(cli, app),
        Command::Generate => generate(cli, app),
        Command::Sweep => sweep(cli, app),
        Command::DesignSweep => design_sweep(cli, app),
        Command::Simulate => simulate(cli, app),
        Command::Batch
        | Command::BatchCoordinator
        | Command::BatchWorker
        | Command::Serve
        | Command::Client
        | Command::Replay => {
            unreachable!("dispatched above")
        }
    }
}

/// The [`ExploreRequest`] a command line describes — the same type a
/// batch manifest cell or a serve frame produces, so `explore --json`,
/// `client explore` and the daemon agree on defaults and validation by
/// construction.
fn explore_request(cli: &Cli) -> Result<ExploreRequest, Box<dyn Error>> {
    let app: AppSource = cli.app.parse()?;
    let mut req = ExploreRequest::new(app);
    req.objective = cli.objective;
    req.routing = cli.routing;
    req.capacity = cli.capacity;
    req.constraints = if cli.relax_bandwidth {
        ConstraintMode::Relaxed
    } else {
        ConstraintMode::Strict
    };
    req.swap = cli.swap;
    req.engine = cli.engine;
    req.table_prep = cli.table_prep;
    req.probe = cli.probe.clone();
    req.validate()?;
    Ok(req)
}

/// Default simulator configuration with the CLI-selected engine applied.
fn sim_config(cli: &Cli) -> SimConfig {
    SimConfig {
        engine: cli.engine,
        ..SimConfig::default()
    }
}

fn tool(cli: &Cli, app: CoreGraph) -> Sunmap {
    let mut builder = Sunmap::builder(app)
        .link_capacity(cli.capacity)
        .routing(cli.routing)
        .objective(cli.objective)
        .table_prep(cli.table_prep);
    if cli.relax_bandwidth {
        builder = builder.constraints(Constraints::relaxed_bandwidth());
    }
    builder.build()
}

fn library(cli: &Cli, cores: usize) -> Result<Vec<TopologyGraph>, Box<dyn Error>> {
    let mut lib = builders::standard_library(cores, cli.capacity)?;
    if cli.extended {
        if cores <= 8 {
            lib.push(builders::octagon(cli.capacity)?);
        }
        lib.push(builders::star(cores, cli.capacity)?);
    }
    Ok(lib)
}

fn explore_with_library(
    cli: &Cli,
    app: CoreGraph,
) -> Result<(Sunmap, Exploration), Box<dyn Error>> {
    let cores = app.core_count();
    let tool = tool(cli, app);
    let lib = library(cli, cores)?;
    let ex = tool.explore_library(lib);
    Ok((tool, ex))
}

/// `explore --json`: the one-shot report line, byte-identical to what
/// the daemon returns for the same request.
fn explore_json(cli: &Cli, req: &ExploreRequest) -> CliResult {
    let outcome = RequestRunner::new(cli.cache)
        .run(req)
        .map_err(|e| -> Box<dyn Error> { e.into() })?;
    println!("{}", outcome.line);
    Ok(())
}

/// `serve`: runs the daemon until a `shutdown` frame or SIGTERM drains
/// it, then dumps the final metrics snapshot.
fn serve_daemon(cli: &Cli) -> CliResult {
    let workers = if cli.workers == 0 {
        std::thread::available_parallelism().map_or(2, usize::from)
    } else {
        cli.workers
    };
    let config = ServeConfig {
        listen: cli.listen.clone(),
        workers,
        cache_entries: cli.cache,
        log_path: (!cli.log_path.is_empty()).then(|| PathBuf::from(&cli.log_path)),
    };
    let summary = serve(&config, |addr| {
        // Flushed before the first frame is accepted, so wrappers (and
        // the smoke script) can poll stdout for the bound address.
        println!("sunmap-serve listening on {addr}");
        let _ = std::io::stdout().flush();
    })?;
    println!("{}", summary.metrics_json);
    Ok(())
}

/// `client`: one frame against a running daemon. Explore responses
/// print only the raw report line (the daemon envelope's trailing
/// object), so piping to a file yields the same bytes as
/// `explore --json`.
fn client(cli: &Cli, request: Option<ExploreRequest>) -> CliResult {
    let mut stream = TcpStream::connect(&cli.addr)
        .map_err(|e| format!("cannot connect to {}: {e}", cli.addr))?;
    let frame = match (cli.client_op, &request) {
        (ClientOp::Explore, Some(req)) => {
            format!("{{\"op\":\"explore\",\"request\":{}}}", req.to_json())
        }
        (ClientOp::Stats, _) => "{\"op\":\"stats\"}".to_string(),
        (ClientOp::Ping, _) => "{\"op\":\"ping\"}".to_string(),
        (ClientOp::Shutdown, _) => "{\"op\":\"shutdown\"}".to_string(),
        (ClientOp::Explore, None) => unreachable!("run() builds the request for explore"),
    };
    write_frame(&mut stream, &frame)?;
    let response = read_frame(&mut stream)?.ok_or("daemon closed the connection")?;
    if !response.starts_with(&format!("{{\"schema\":\"{SERVE_SCHEMA}\",\"ok\":true")) {
        return Err(format!("daemon refused the request: {response}").into());
    }
    match cli.client_op {
        ClientOp::Explore => {
            let report = report_slice(&response).ok_or("response carries no report")?;
            println!("{report}");
        }
        _ => println!("{response}"),
    }
    Ok(())
}

/// `replay`: re-runs a serve request log through the one-shot path and
/// fails (non-zero exit) unless every report reproduces byte-for-byte.
fn replay(cli: &Cli) -> CliResult {
    let summary = verify_replay(Path::new(&cli.log_path), cli.cache)
        .map_err(|e| -> Box<dyn Error> { e.into() })?;
    println!(
        "replay ok: {} request(s) reproduced byte-identically from {}",
        summary.replayed, cli.log_path
    );
    Ok(())
}

fn explore(cli: &Cli, app: CoreGraph) -> CliResult {
    let (tool, mut ex) = explore_with_library(cli, app)?;
    if cli.validate {
        tool.validate(&mut ex, sim_config(cli), cli.intensity);
    }
    print!("{}", ex.table());
    match ex.best_candidate() {
        Some(best) => println!("selected: {}", best.kind),
        None => println!("no feasible topology under these constraints"),
    }
    Ok(())
}

fn generate(cli: &Cli, app: CoreGraph) -> CliResult {
    let (tool, ex) = explore_with_library(cli, app)?;
    print!("{}", ex.table());
    let best = ex
        .best_candidate()
        .ok_or("no feasible topology to generate")?;
    let design = tool.generate(best, &cli.design_name);
    let out = Path::new(&cli.out_dir);
    fs::create_dir_all(out)?;
    for f in &design.files {
        fs::write(out.join(&f.name), &f.content)?;
    }
    fs::write(out.join("noc.dot"), &design.dot)?;
    println!(
        "wrote {} SystemC files + noc.dot for the {} to {}",
        design.files.len(),
        best.kind,
        out.display()
    );
    Ok(())
}

/// Fig. 8(b): latency-versus-injection-rate curves for every topology
/// in the library under adversarial (or a chosen) synthetic traffic,
/// written as `sweep.csv` and `sweep.json` in the output directory.
fn sweep(cli: &Cli, app: CoreGraph) -> CliResult {
    let lib = library(cli, app.core_count())?;
    let pattern = cli
        .pattern
        .as_deref()
        .map(|name| TrafficPattern::from_name(name).expect("pattern validated at parse time"));
    let requests: Vec<SweepRequest<'_>> = lib
        .iter()
        .map(|g| SweepRequest {
            graph: g,
            pattern: pattern
                .clone()
                .unwrap_or_else(|| adversarial_pattern(g.kind())),
        })
        .collect();
    let points = injection_sweep(&requests, &cli.rates, sim_config(cli), cli.workers);
    let out = Path::new(&cli.out_dir);
    fs::create_dir_all(out)?;
    fs::write(out.join("sweep.csv"), sweep_csv(&points))?;
    fs::write(out.join("sweep.json"), sweep_json(&points))?;
    println!(
        "{:<12} {:<15} {:>6} {:>10} {:>9}",
        "topology", "pattern", "rate", "lat (cy)", "delivery"
    );
    for p in &points {
        println!(
            "{:<12} {:<15} {:>6} {:>10.1} {:>8.0}%",
            p.topology.name(),
            p.pattern,
            p.rate,
            p.stats.avg_latency,
            p.stats.delivery_ratio() * 100.0
        );
    }
    println!(
        "wrote {} points to {} (sweep.csv, sweep.json)",
        points.len(),
        out.display()
    );
    Ok(())
}

/// Batch exploration: runs the manifest's job grid across workers and
/// streams JSONL to `<out>/batch.jsonl`. With `--resume`, the existing
/// file's complete-line prefix is validated against the manifest (see
/// `sunmap::batch::plan_resume`), a partial trailing line is dropped,
/// and only the missing jobs run — because lines are always written in
/// job order, the resumed file is byte-identical to an uninterrupted
/// one.
fn batch(cli: &Cli) -> CliResult {
    let mut jobs = load_manifest_jobs(cli)?;
    if let Some((k, n)) = cli.shard {
        let range = shard_range(jobs.len(), k, n)?;
        jobs = jobs[range].to_vec();
    }
    let (path, plan) = open_batch_output(cli, &jobs)?;

    let remaining = &jobs[plan.completed_jobs..];
    let skipped = plan.completed_jobs;

    let mut file = fs::OpenOptions::new().append(true).open(&path)?;
    let mut write_error: Option<std::io::Error> = None;
    run_batch(remaining, cli.workers, |_, line| {
        write_error = writeln!(file, "{line}").and_then(|()| file.flush()).err();
        // A failed write (e.g. disk full) cancels the run instead
        // of computing results that can no longer be recorded.
        write_error.is_none()
    });
    if let Some(e) = write_error {
        return Err(format!("writing {}: {e}", path.display()).into());
    }
    let shard = match cli.shard {
        Some((k, n)) => format!(" [shard {k}/{n}]"),
        None => String::new(),
    };
    println!(
        "batch{shard}: {} jobs ({} run, {} skipped via --resume) -> {}",
        jobs.len(),
        remaining.len(),
        skipped,
        path.display()
    );
    Ok(())
}

fn load_manifest_jobs(cli: &Cli) -> Result<Vec<BatchJob>, Box<dyn Error>> {
    let text = fs::read_to_string(&cli.jobs_path)
        .map_err(|e| format!("cannot read manifest '{}': {e}", cli.jobs_path))?;
    let manifest = BatchManifest::parse(&text)?;
    Ok(manifest.jobs()?)
}

/// Prepares `<out>/batch.jsonl` for appending: honors `--resume` by
/// keeping the validated complete-line prefix, truncates otherwise.
fn open_batch_output(
    cli: &Cli,
    jobs: &[BatchJob],
) -> Result<(PathBuf, ResumePlan), Box<dyn Error>> {
    let out = Path::new(&cli.out_dir);
    fs::create_dir_all(out)?;
    let path = out.join("batch.jsonl");
    let plan = if cli.resume && path.exists() {
        let existing = fs::read_to_string(&path)?;
        let plan = plan_resume(jobs, &existing)
            .map_err(|e| format!("--resume on {}: {e}", path.display()))?;
        if plan.keep_bytes != existing.len() {
            fs::write(&path, &existing[..plan.keep_bytes])?;
        }
        plan
    } else {
        fs::write(&path, "")?;
        ResumePlan {
            keep_bytes: 0,
            completed_jobs: 0,
        }
    };
    Ok((path, plan))
}

/// `batch-coordinator`: leases the manifest's job ranges to connected
/// `batch-worker` processes and appends their results to
/// `<out>/batch.jsonl` strictly in job order, so the file is
/// byte-identical to a single-process `batch` run. A `SIGTERM` drain
/// leaves a clean prefix that `--resume` completes identically.
fn batch_coordinator(cli: &Cli) -> CliResult {
    let jobs = load_manifest_jobs(cli)?;
    let fingerprint = manifest_fingerprint(&jobs);
    let (path, plan) = open_batch_output(cli, &jobs)?;
    let config = CoordConfig {
        first_job: plan.completed_jobs,
        total_jobs: jobs.len(),
        grain: cli.grain,
        fingerprint,
        ..CoordConfig::default()
    };
    let mut file = fs::OpenOptions::new().append(true).open(&path)?;
    let mut write_error: Option<std::io::Error> = None;
    let outcome = run_coordinator(
        config,
        &cli.listen,
        |addr| {
            // Flushed before the first worker is accepted, so wrappers
            // (and the smoke script) can poll stdout for the address.
            println!("sunmap-coordinator listening on {addr}");
            let _ = std::io::stdout().flush();
        },
        |_, line| {
            write_error = writeln!(file, "{line}").and_then(|()| file.flush()).err();
            write_error.is_none()
        },
    );
    if let Some(e) = write_error {
        return Err(format!("writing {}: {e}", path.display()).into());
    }
    let summary = outcome?;
    let status = if summary.drained {
        " (drained; rerun with --resume to finish)"
    } else {
        ""
    };
    println!(
        "coordinator: {} of {} job(s) delivered this run, {} resumed{status} -> {}",
        summary.jobs_delivered,
        jobs.len() - plan.completed_jobs,
        plan.completed_jobs,
        path.display()
    );
    println!("{}", summary.counters.to_json());
    Ok(())
}

/// `batch-worker`: computes leased ranges of the same manifest for a
/// running coordinator until drained.
fn batch_worker(cli: &Cli) -> CliResult {
    let jobs = load_manifest_jobs(cli)?;
    let fingerprint = manifest_fingerprint(&jobs);
    let summary = run_worker(
        &jobs,
        &fingerprint,
        &cli.design_name,
        &cli.addr,
        WORKER_HEARTBEAT_INTERVAL_MS,
    )?;
    println!(
        "worker '{}': {} job(s) computed",
        cli.design_name, summary.jobs_computed
    );
    Ok(())
}

/// Heartbeat cadence for `batch-worker` — comfortably inside the
/// coordinator's default 30 s silence threshold.
const WORKER_HEARTBEAT_INTERVAL_MS: u64 = 5_000;

/// Fig. 9: routing-function bandwidth staircase and area-power Pareto
/// front on the application's mesh.
fn design_sweep(cli: &Cli, app: CoreGraph) -> CliResult {
    let (rows, cols) = builders::grid_dims(app.core_count());
    let mesh = builders::mesh(rows, cols, cli.capacity)?;
    println!(
        "== minimum link bandwidth per routing function ({}) ==",
        mesh.kind()
    );
    for e in routing_bandwidth_sweep(&app, &mesh) {
        let fits = if e.min_bandwidth <= cli.capacity {
            format!("  <= fits {} MB/s links", cli.capacity)
        } else {
            String::new()
        };
        println!(
            "  {:<3} {:>9.1} MB/s{fits}",
            e.routing.abbrev(),
            e.min_bandwidth
        );
    }
    println!("\n== area-power Pareto front (mesh mappings) ==");
    let (points, front) = pareto_exploration(&app, &mesh);
    println!("{} candidate mappings evaluated; front:", points.len());
    for p in &front {
        println!("  {:>9.2} mm2 {:>9.1} mW   [{}]", p.x, p.y, p.label);
    }
    Ok(())
}

/// Fig. 10(c): trace-driven latency of every feasible candidate, with a
/// JSON report (`simulate.json`) in the output directory.
fn simulate(cli: &Cli, app: CoreGraph) -> CliResult {
    use sunmap::sim::sweep::{json_number, json_string};
    let (_, ex) = explore_with_library(cli, app.clone())?;
    println!(
        "{:<12} {:>10} {:>10} {:>9}",
        "topology", "lat (cy)", "packets", "delivery"
    );
    let mut json = format!(
        "{{\"schema\":\"{SIMULATE_SCHEMA}\",\"app\":{},\"intensity\":{},\"topologies\":[",
        json_string(&cli.app),
        json_number(cli.intensity)
    );
    for (i, c) in ex.candidates.iter().enumerate() {
        if i > 0 {
            json.push(',');
        }
        match &c.outcome {
            Ok(mapping) => {
                let mut sim = SimSession::builder(&c.graph)
                    .config(sim_config(cli))
                    .build();
                let stats = sim.run_trace(mapping.evaluation(), &app, cli.intensity);
                println!(
                    "{:<12} {:>10.1} {:>10} {:>8.0}%",
                    c.kind.name(),
                    stats.avg_latency,
                    stats.packets_delivered,
                    stats.delivery_ratio() * 100.0
                );
                json.push_str(&format!(
                    "{{\"topology\":{},\"feasible\":true,{}}}",
                    json_string(c.kind.name()),
                    stats_json_fields(&stats)
                ));
            }
            Err(_) => {
                println!("{:<12} {:>10}", c.kind.name(), "infeasible");
                json.push_str(&format!(
                    "{{\"topology\":{},\"feasible\":false}}",
                    json_string(c.kind.name())
                ));
            }
        }
    }
    json.push_str("]}");
    let out = Path::new(&cli.out_dir);
    fs::create_dir_all(out)?;
    fs::write(out.join("simulate.json"), json)?;
    println!("wrote {}", out.join("simulate.json").display());
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::Cli;

    fn cli(words: &[&str]) -> Cli {
        Cli::parse(words.iter().copied()).unwrap()
    }

    #[test]
    fn builtin_apps_load() {
        for name in ["vopd", "mpeg4", "dsp", "netproc"] {
            let app = AppSource::load(name).unwrap();
            assert!(app.core_count() >= 6, "{name}");
        }
        assert!(AppSource::load("/does/not/exist.app").is_err());
        // Synthetic specs resolve anywhere an application name does.
        assert_eq!(
            AppSource::load("synth:seed=2,cores=9")
                .unwrap()
                .core_count(),
            9
        );
        assert!(AppSource::load("synth:cores=0").is_err());
    }

    #[test]
    fn batch_runs_resumes_and_streams_jsonl() {
        let dir = std::env::temp_dir().join("sunmap_cli_test_batch");
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        let manifest = dir.join("grid.manifest");
        fs::write(
            &manifest,
            "app dsp\napp synth:seed=1,cores=8\nobjective delay\ncapacity 1000\n",
        )
        .unwrap();
        let out = dir.join("out");
        let args = [
            "batch",
            "--jobs",
            manifest.to_str().unwrap(),
            "--out",
            out.to_str().unwrap(),
            "--workers",
            "2",
        ];
        run(&cli(&args)).unwrap();
        let full = fs::read_to_string(out.join("batch.jsonl")).unwrap();
        assert_eq!(full.lines().count(), 2);
        assert!(full.ends_with('\n'));

        // Kill-and-resume: keep only the first line (plus a partial
        // trailing fragment), then resume — final bytes identical.
        let first_line_end = full.find('\n').unwrap() + 1;
        fs::write(
            out.join("batch.jsonl"),
            format!("{}{{\"schema\":\"sunmap-ba", &full[..first_line_end]),
        )
        .unwrap();
        let mut resume_args = args.to_vec();
        resume_args.push("--resume");
        run(&cli(&resume_args)).unwrap();
        assert_eq!(fs::read_to_string(out.join("batch.jsonl")).unwrap(), full);

        // Resuming a complete file re-runs nothing and changes nothing.
        run(&cli(&resume_args)).unwrap();
        assert_eq!(fs::read_to_string(out.join("batch.jsonl")).unwrap(), full);

        // An output that is not a prefix of this manifest is refused
        // instead of silently extended out of order.
        fs::write(
            out.join("batch.jsonl"),
            "{\"schema\":\"sunmap-batch/1\",\"job\":\"other|1|min-delay|MP|strict\"}\n",
        )
        .unwrap();
        let err = run(&cli(&resume_args)).unwrap_err();
        assert!(err.to_string().contains("not a prefix"), "{err}");

        // A missing manifest is a clean error.
        assert!(run(&cli(&["batch", "--jobs", "/no/such.manifest"])).is_err());
        let _ = fs::remove_dir_all(&dir);
    }

    // Job-id escape decoding is covered by sunmap::batch's unit tests
    // (the extractor moved there with the shared resume planner).

    #[test]
    fn explore_runs_on_builtin() {
        run(&cli(&["explore", "vopd"])).unwrap();
    }

    #[test]
    fn explore_extended_runs() {
        run(&cli(&[
            "explore",
            "dsp",
            "--capacity",
            "1000",
            "--extended",
        ]))
        .unwrap();
    }

    #[test]
    fn design_sweep_runs_on_mpeg4() {
        run(&cli(&["design-sweep", "mpeg4"])).unwrap();
    }

    #[test]
    fn injection_sweep_writes_csv_and_json() {
        let dir = std::env::temp_dir().join("sunmap_cli_test_sweep");
        let _ = fs::remove_dir_all(&dir);
        run(&cli(&[
            "sweep",
            "dsp",
            "--capacity",
            "1000",
            "--rates",
            "0.05,0.2",
            "--workers",
            "2",
            "--out",
            dir.to_str().unwrap(),
        ]))
        .unwrap();
        let csv = fs::read_to_string(dir.join("sweep.csv")).unwrap();
        assert!(csv.starts_with("topology,pattern,rate"));
        assert!(csv.contains("Mesh,") && csv.contains("Torus,"));
        let json = fs::read_to_string(dir.join("sweep.json")).unwrap();
        assert!(json.contains("\"Mesh\"") && json.contains("\"rate\":0.2"));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn simulate_writes_json_report() {
        let dir = std::env::temp_dir().join("sunmap_cli_test_sim");
        let _ = fs::remove_dir_all(&dir);
        run(&cli(&[
            "simulate",
            "dsp",
            "--capacity",
            "1000",
            "--out",
            dir.to_str().unwrap(),
        ]))
        .unwrap();
        let json = fs::read_to_string(dir.join("simulate.json")).unwrap();
        assert!(json.starts_with("{\"schema\":\"sunmap-simulate/1\""));
        assert!(json.contains("\"feasible\":true"));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn simulate_report_is_identical_across_engines() {
        let mut reports = Vec::new();
        for engine in ["flat", "event", "reference", "auto"] {
            let dir = std::env::temp_dir().join(format!("sunmap_cli_test_engine_{engine}"));
            let _ = fs::remove_dir_all(&dir);
            run(&cli(&[
                "simulate",
                "dsp",
                "--capacity",
                "1000",
                "--engine",
                engine,
                "--out",
                dir.to_str().unwrap(),
            ]))
            .unwrap();
            reports.push(fs::read_to_string(dir.join("simulate.json")).unwrap());
            let _ = fs::remove_dir_all(&dir);
        }
        for other in &reports[1..] {
            assert_eq!(&reports[0], other, "engines must report identical bytes");
        }
    }

    #[test]
    fn explore_with_validation_annotates_table() {
        run(&cli(&[
            "explore",
            "dsp",
            "--capacity",
            "1000",
            "--validate",
        ]))
        .unwrap();
    }

    #[test]
    fn generate_writes_files() {
        let dir = std::env::temp_dir().join("sunmap_cli_test_out");
        let _ = fs::remove_dir_all(&dir);
        run(&cli(&[
            "generate",
            "dsp",
            "--capacity",
            "1000",
            "--out",
            dir.to_str().unwrap(),
            "--name",
            "t",
        ]))
        .unwrap();
        assert!(dir.join("noc.dot").exists());
        assert!(dir.join("top_t.cpp").exists());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn app_file_round_trip_through_cli() {
        let dir = std::env::temp_dir().join("sunmap_cli_app_test");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("tiny.app");
        fs::write(&path, "core a 2.0\ncore b 2.0\ntraffic a b 100\n").unwrap();
        run(&cli(&["explore", path.to_str().unwrap()])).unwrap();
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn infeasible_generate_fails_cleanly() {
        let err = run(&cli(&["generate", "vopd", "--capacity", "1"])).unwrap_err();
        assert!(err.to_string().contains("no feasible topology"));
    }
}
