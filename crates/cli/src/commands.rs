//! Subcommand implementations.

use std::error::Error;
use std::fs;
use std::io::Write as _;
use std::path::Path;

use crate::args::{Cli, Command};
use sunmap::batch::{plan_resume, resolve_app, run_batch, BatchManifest, ResumePlan};
use sunmap::sim::sweep::{injection_sweep, stats_json_fields, sweep_csv, sweep_json, SweepRequest};
use sunmap::sim::{adversarial_pattern, NocSimulator, SimConfig};
use sunmap::topology::builders;
use sunmap::traffic::patterns::TrafficPattern;
use sunmap::traffic::CoreGraph;
use sunmap::{
    pareto_exploration, routing_bandwidth_sweep, Constraints, Exploration, Sunmap, TopologyGraph,
};

type CliResult = Result<(), Box<dyn Error>>;

/// Dispatches a parsed command line.
pub fn run(cli: &Cli) -> CliResult {
    if cli.command == Command::Batch {
        return batch(cli);
    }
    let app = load_app(&cli.app)?;
    match cli.command {
        Command::Explore => explore(cli, app),
        Command::Generate => generate(cli, app),
        Command::Sweep => sweep(cli, app),
        Command::DesignSweep => design_sweep(cli, app),
        Command::Simulate => simulate(cli, app),
        Command::Batch => unreachable!("dispatched above"),
    }
}

/// Loads an application from a built-in name, a `synth:` spec or a
/// `.app` file — the shared resolver of `sunmap::batch`.
pub fn load_app(source: &str) -> Result<CoreGraph, Box<dyn Error>> {
    resolve_app(source).map_err(Into::into)
}

fn tool(cli: &Cli, app: CoreGraph) -> Sunmap {
    let mut builder = Sunmap::builder(app)
        .link_capacity(cli.capacity)
        .routing(cli.routing)
        .objective(cli.objective);
    if cli.relax_bandwidth {
        builder = builder.constraints(Constraints::relaxed_bandwidth());
    }
    builder.build()
}

fn library(cli: &Cli, cores: usize) -> Result<Vec<TopologyGraph>, Box<dyn Error>> {
    let mut lib = builders::standard_library(cores, cli.capacity)?;
    if cli.extended {
        if cores <= 8 {
            lib.push(builders::octagon(cli.capacity)?);
        }
        lib.push(builders::star(cores, cli.capacity)?);
    }
    Ok(lib)
}

fn explore_with_library(
    cli: &Cli,
    app: CoreGraph,
) -> Result<(Sunmap, Exploration), Box<dyn Error>> {
    let cores = app.core_count();
    let tool = tool(cli, app);
    let lib = library(cli, cores)?;
    let ex = tool.explore_library(lib);
    Ok((tool, ex))
}

fn explore(cli: &Cli, app: CoreGraph) -> CliResult {
    let (tool, mut ex) = explore_with_library(cli, app)?;
    if cli.validate {
        tool.validate(&mut ex, SimConfig::default(), cli.intensity);
    }
    print!("{}", ex.table());
    match ex.best_candidate() {
        Some(best) => println!("selected: {}", best.kind),
        None => println!("no feasible topology under these constraints"),
    }
    Ok(())
}

fn generate(cli: &Cli, app: CoreGraph) -> CliResult {
    let (tool, ex) = explore_with_library(cli, app)?;
    print!("{}", ex.table());
    let best = ex
        .best_candidate()
        .ok_or("no feasible topology to generate")?;
    let design = tool.generate(best, &cli.design_name);
    let out = Path::new(&cli.out_dir);
    fs::create_dir_all(out)?;
    for f in &design.files {
        fs::write(out.join(&f.name), &f.content)?;
    }
    fs::write(out.join("noc.dot"), &design.dot)?;
    println!(
        "wrote {} SystemC files + noc.dot for the {} to {}",
        design.files.len(),
        best.kind,
        out.display()
    );
    Ok(())
}

/// Fig. 8(b): latency-versus-injection-rate curves for every topology
/// in the library under adversarial (or a chosen) synthetic traffic,
/// written as `sweep.csv` and `sweep.json` in the output directory.
fn sweep(cli: &Cli, app: CoreGraph) -> CliResult {
    let lib = library(cli, app.core_count())?;
    let pattern = cli
        .pattern
        .as_deref()
        .map(|name| TrafficPattern::from_name(name).expect("pattern validated at parse time"));
    let requests: Vec<SweepRequest<'_>> = lib
        .iter()
        .map(|g| SweepRequest {
            graph: g,
            pattern: pattern
                .clone()
                .unwrap_or_else(|| adversarial_pattern(g.kind())),
        })
        .collect();
    let points = injection_sweep(&requests, &cli.rates, SimConfig::default(), cli.workers);
    let out = Path::new(&cli.out_dir);
    fs::create_dir_all(out)?;
    fs::write(out.join("sweep.csv"), sweep_csv(&points))?;
    fs::write(out.join("sweep.json"), sweep_json(&points))?;
    println!(
        "{:<12} {:<15} {:>6} {:>10} {:>9}",
        "topology", "pattern", "rate", "lat (cy)", "delivery"
    );
    for p in &points {
        println!(
            "{:<12} {:<15} {:>6} {:>10.1} {:>8.0}%",
            p.topology.name(),
            p.pattern,
            p.rate,
            p.stats.avg_latency,
            p.stats.delivery_ratio() * 100.0
        );
    }
    println!(
        "wrote {} points to {} (sweep.csv, sweep.json)",
        points.len(),
        out.display()
    );
    Ok(())
}

/// Batch exploration: runs the manifest's job grid across workers and
/// streams JSONL to `<out>/batch.jsonl`. With `--resume`, the existing
/// file's complete-line prefix is validated against the manifest (see
/// `sunmap::batch::plan_resume`), a partial trailing line is dropped,
/// and only the missing jobs run — because lines are always written in
/// job order, the resumed file is byte-identical to an uninterrupted
/// one.
fn batch(cli: &Cli) -> CliResult {
    let text = fs::read_to_string(&cli.jobs_path)
        .map_err(|e| format!("cannot read manifest '{}': {e}", cli.jobs_path))?;
    let manifest = BatchManifest::parse(&text)?;
    let jobs = manifest.jobs()?;
    let out = Path::new(&cli.out_dir);
    fs::create_dir_all(out)?;
    let path = out.join("batch.jsonl");

    let plan = if cli.resume && path.exists() {
        let existing = fs::read_to_string(&path)?;
        let plan = plan_resume(&jobs, &existing)
            .map_err(|e| format!("--resume on {}: {e}", path.display()))?;
        if plan.keep_bytes != existing.len() {
            fs::write(&path, &existing[..plan.keep_bytes])?;
        }
        plan
    } else {
        fs::write(&path, "")?;
        ResumePlan {
            keep_bytes: 0,
            completed_jobs: 0,
        }
    };

    let remaining = &jobs[plan.completed_jobs..];
    let skipped = plan.completed_jobs;

    let mut file = fs::OpenOptions::new().append(true).open(&path)?;
    let mut write_error: Option<std::io::Error> = None;
    run_batch(
        remaining,
        manifest.probe.as_ref(),
        cli.workers,
        |_, line| {
            write_error = writeln!(file, "{line}").and_then(|()| file.flush()).err();
            // A failed write (e.g. disk full) cancels the run instead
            // of computing results that can no longer be recorded.
            write_error.is_none()
        },
    );
    if let Some(e) = write_error {
        return Err(format!("writing {}: {e}", path.display()).into());
    }
    println!(
        "batch: {} jobs ({} run, {} skipped via --resume) -> {}",
        jobs.len(),
        remaining.len(),
        skipped,
        path.display()
    );
    Ok(())
}

/// Fig. 9: routing-function bandwidth staircase and area-power Pareto
/// front on the application's mesh.
fn design_sweep(cli: &Cli, app: CoreGraph) -> CliResult {
    let (rows, cols) = builders::grid_dims(app.core_count());
    let mesh = builders::mesh(rows, cols, cli.capacity)?;
    println!(
        "== minimum link bandwidth per routing function ({}) ==",
        mesh.kind()
    );
    for e in routing_bandwidth_sweep(&app, &mesh) {
        let fits = if e.min_bandwidth <= cli.capacity {
            format!("  <= fits {} MB/s links", cli.capacity)
        } else {
            String::new()
        };
        println!(
            "  {:<3} {:>9.1} MB/s{fits}",
            e.routing.abbrev(),
            e.min_bandwidth
        );
    }
    println!("\n== area-power Pareto front (mesh mappings) ==");
    let (points, front) = pareto_exploration(&app, &mesh);
    println!("{} candidate mappings evaluated; front:", points.len());
    for p in &front {
        println!("  {:>9.2} mm2 {:>9.1} mW   [{}]", p.x, p.y, p.label);
    }
    Ok(())
}

/// Fig. 10(c): trace-driven latency of every feasible candidate, with a
/// JSON report (`simulate.json`) in the output directory.
fn simulate(cli: &Cli, app: CoreGraph) -> CliResult {
    use sunmap::sim::sweep::{json_number, json_string};
    let (_, ex) = explore_with_library(cli, app.clone())?;
    println!(
        "{:<12} {:>10} {:>10} {:>9}",
        "topology", "lat (cy)", "packets", "delivery"
    );
    let mut json = format!(
        "{{\"schema\":\"sunmap-simulate/1\",\"app\":{},\"intensity\":{},\"topologies\":[",
        json_string(&cli.app),
        json_number(cli.intensity)
    );
    for (i, c) in ex.candidates.iter().enumerate() {
        if i > 0 {
            json.push(',');
        }
        match &c.outcome {
            Ok(mapping) => {
                let mut sim = NocSimulator::new(&c.graph, SimConfig::default());
                let stats = sim.run_trace(mapping.evaluation(), &app, cli.intensity);
                println!(
                    "{:<12} {:>10.1} {:>10} {:>8.0}%",
                    c.kind.name(),
                    stats.avg_latency,
                    stats.packets_delivered,
                    stats.delivery_ratio() * 100.0
                );
                json.push_str(&format!(
                    "{{\"topology\":{},\"feasible\":true,{}}}",
                    json_string(c.kind.name()),
                    stats_json_fields(&stats)
                ));
            }
            Err(_) => {
                println!("{:<12} {:>10}", c.kind.name(), "infeasible");
                json.push_str(&format!(
                    "{{\"topology\":{},\"feasible\":false}}",
                    json_string(c.kind.name())
                ));
            }
        }
    }
    json.push_str("]}");
    let out = Path::new(&cli.out_dir);
    fs::create_dir_all(out)?;
    fs::write(out.join("simulate.json"), json)?;
    println!("wrote {}", out.join("simulate.json").display());
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::Cli;

    fn cli(words: &[&str]) -> Cli {
        Cli::parse(words.iter().copied()).unwrap()
    }

    #[test]
    fn builtin_apps_load() {
        for name in ["vopd", "mpeg4", "dsp", "netproc"] {
            let app = load_app(name).unwrap();
            assert!(app.core_count() >= 6, "{name}");
        }
        assert!(load_app("/does/not/exist.app").is_err());
        // Synthetic specs resolve anywhere an application name does.
        assert_eq!(load_app("synth:seed=2,cores=9").unwrap().core_count(), 9);
        assert!(load_app("synth:cores=0").is_err());
    }

    #[test]
    fn batch_runs_resumes_and_streams_jsonl() {
        let dir = std::env::temp_dir().join("sunmap_cli_test_batch");
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        let manifest = dir.join("grid.manifest");
        fs::write(
            &manifest,
            "app dsp\napp synth:seed=1,cores=8\nobjective delay\ncapacity 1000\n",
        )
        .unwrap();
        let out = dir.join("out");
        let args = [
            "batch",
            "--jobs",
            manifest.to_str().unwrap(),
            "--out",
            out.to_str().unwrap(),
            "--workers",
            "2",
        ];
        run(&cli(&args)).unwrap();
        let full = fs::read_to_string(out.join("batch.jsonl")).unwrap();
        assert_eq!(full.lines().count(), 2);
        assert!(full.ends_with('\n'));

        // Kill-and-resume: keep only the first line (plus a partial
        // trailing fragment), then resume — final bytes identical.
        let first_line_end = full.find('\n').unwrap() + 1;
        fs::write(
            out.join("batch.jsonl"),
            format!("{}{{\"schema\":\"sunmap-ba", &full[..first_line_end]),
        )
        .unwrap();
        let mut resume_args = args.to_vec();
        resume_args.push("--resume");
        run(&cli(&resume_args)).unwrap();
        assert_eq!(fs::read_to_string(out.join("batch.jsonl")).unwrap(), full);

        // Resuming a complete file re-runs nothing and changes nothing.
        run(&cli(&resume_args)).unwrap();
        assert_eq!(fs::read_to_string(out.join("batch.jsonl")).unwrap(), full);

        // An output that is not a prefix of this manifest is refused
        // instead of silently extended out of order.
        fs::write(
            out.join("batch.jsonl"),
            "{\"schema\":\"sunmap-batch/1\",\"job\":\"other|1|min-delay|MP|strict\"}\n",
        )
        .unwrap();
        let err = run(&cli(&resume_args)).unwrap_err();
        assert!(err.to_string().contains("not a prefix"), "{err}");

        // A missing manifest is a clean error.
        assert!(run(&cli(&["batch", "--jobs", "/no/such.manifest"])).is_err());
        let _ = fs::remove_dir_all(&dir);
    }

    // Job-id escape decoding is covered by sunmap::batch's unit tests
    // (the extractor moved there with the shared resume planner).

    #[test]
    fn explore_runs_on_builtin() {
        run(&cli(&["explore", "vopd"])).unwrap();
    }

    #[test]
    fn explore_extended_runs() {
        run(&cli(&[
            "explore",
            "dsp",
            "--capacity",
            "1000",
            "--extended",
        ]))
        .unwrap();
    }

    #[test]
    fn design_sweep_runs_on_mpeg4() {
        run(&cli(&["design-sweep", "mpeg4"])).unwrap();
    }

    #[test]
    fn injection_sweep_writes_csv_and_json() {
        let dir = std::env::temp_dir().join("sunmap_cli_test_sweep");
        let _ = fs::remove_dir_all(&dir);
        run(&cli(&[
            "sweep",
            "dsp",
            "--capacity",
            "1000",
            "--rates",
            "0.05,0.2",
            "--workers",
            "2",
            "--out",
            dir.to_str().unwrap(),
        ]))
        .unwrap();
        let csv = fs::read_to_string(dir.join("sweep.csv")).unwrap();
        assert!(csv.starts_with("topology,pattern,rate"));
        assert!(csv.contains("Mesh,") && csv.contains("Torus,"));
        let json = fs::read_to_string(dir.join("sweep.json")).unwrap();
        assert!(json.contains("\"Mesh\"") && json.contains("\"rate\":0.2"));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn simulate_writes_json_report() {
        let dir = std::env::temp_dir().join("sunmap_cli_test_sim");
        let _ = fs::remove_dir_all(&dir);
        run(&cli(&[
            "simulate",
            "dsp",
            "--capacity",
            "1000",
            "--out",
            dir.to_str().unwrap(),
        ]))
        .unwrap();
        let json = fs::read_to_string(dir.join("simulate.json")).unwrap();
        assert!(json.starts_with("{\"schema\":\"sunmap-simulate/1\""));
        assert!(json.contains("\"feasible\":true"));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn explore_with_validation_annotates_table() {
        run(&cli(&[
            "explore",
            "dsp",
            "--capacity",
            "1000",
            "--validate",
        ]))
        .unwrap();
    }

    #[test]
    fn generate_writes_files() {
        let dir = std::env::temp_dir().join("sunmap_cli_test_out");
        let _ = fs::remove_dir_all(&dir);
        run(&cli(&[
            "generate",
            "dsp",
            "--capacity",
            "1000",
            "--out",
            dir.to_str().unwrap(),
            "--name",
            "t",
        ]))
        .unwrap();
        assert!(dir.join("noc.dot").exists());
        assert!(dir.join("top_t.cpp").exists());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn app_file_round_trip_through_cli() {
        let dir = std::env::temp_dir().join("sunmap_cli_app_test");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("tiny.app");
        fs::write(&path, "core a 2.0\ncore b 2.0\ntraffic a b 100\n").unwrap();
        run(&cli(&["explore", path.to_str().unwrap()])).unwrap();
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn infeasible_generate_fails_cleanly() {
        let err = run(&cli(&["generate", "vopd", "--capacity", "1"])).unwrap_err();
        assert!(err.to_string().contains("no feasible topology"));
    }
}
