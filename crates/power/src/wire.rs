//! Link (wire) power model from the Ho/Mai/Horowitz wiring parameters.

use crate::Technology;

/// Global-wire electrical parameters, calibrated at 0.1 µm from "The
/// Future of Wires" (Proc. IEEE, 2001): repeated global wires with
/// roughly constant delay per millimetre and capacitance per millimetre
/// dominated by sidewall coupling.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WireModel {
    /// Total switched capacitance per wire per millimetre, in farads
    /// (wire + repeater capacitance).
    pub cap_per_mm: f64,
    /// Signal activity factor (fraction of cycles a wire toggles when
    /// carrying saturated traffic).
    pub activity: f64,
}

impl WireModel {
    /// The calibration point used throughout the paper's experiments:
    /// ~0.4 pF/mm switched capacitance and 0.5 activity give roughly
    /// 0.3 pJ/bit/mm at 1.2 V — an order of magnitude below switch
    /// traversal energy, which is what makes the butterfly's longer
    /// links affordable (§6.1).
    pub fn um_0_10() -> Self {
        WireModel {
            cap_per_mm: 0.4e-12,
            activity: 0.5,
        }
    }

    /// Energy to move one bit across one millimetre of link, in joules.
    pub fn energy_per_bit_mm(&self, tech: Technology) -> f64 {
        self.activity * self.cap_per_mm * tech.voltage * tech.voltage * tech.length_scale()
    }
}

impl Default for WireModel {
    fn default() -> Self {
        WireModel::um_0_10()
    }
}

/// Average power of a link of `length_mm` carrying `traffic_mbs` MB/s,
/// in milliwatts.
///
/// # Examples
///
/// ```
/// use sunmap_power::{link_power, Technology, WireModel};
///
/// let t = Technology::um_0_10();
/// let w = WireModel::um_0_10();
/// let p = link_power(w, t, 500.0, 2.0);
/// assert!(p > 0.0 && p < 10.0);
/// ```
pub fn link_power(wire: WireModel, tech: Technology, traffic_mbs: f64, length_mm: f64) -> f64 {
    let bits_per_s = traffic_mbs * 1.0e6 * 8.0;
    wire.energy_per_bit_mm(tech) * length_mm * bits_per_s * 1.0e3 // W -> mW
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{switch_energy_per_bit, SwitchConfig};

    #[test]
    fn link_energy_magnitude() {
        let e = WireModel::um_0_10().energy_per_bit_mm(Technology::um_0_10());
        assert!(e > 0.1e-12 && e < 1.0e-12, "e = {e}");
    }

    #[test]
    fn link_power_linear_in_both_factors() {
        let t = Technology::um_0_10();
        let w = WireModel::um_0_10();
        let p = link_power(w, t, 100.0, 1.0);
        assert!((link_power(w, t, 200.0, 1.0) - 2.0 * p).abs() < 1e-12);
        assert!((link_power(w, t, 100.0, 3.0) - 3.0 * p).abs() < 1e-12);
    }

    #[test]
    fn switch_traversal_dominates_millimetre_links() {
        // The paper's §6.1 argument: "link power dissipation is much
        // lower than the switch power dissipation", so a 1.5x longer
        // link is a good trade for one fewer 5x5 switch hop.
        let t = Technology::um_0_10();
        let per_mm = WireModel::um_0_10().energy_per_bit_mm(t);
        let per_switch = switch_energy_per_bit(SwitchConfig::symmetric(5), t);
        assert!(per_switch > 5.0 * per_mm);
    }
}
