//! Area and power models for SUNMAP (paper §5).
//!
//! The paper develops analytical area models for ×pipes-style switches
//! (crossbar + buffers + control logic + pipeline registers), bit-energy
//! models in the style of the ORION tool, and link power from the wiring
//! parameters of Ho, Mai & Horowitz ("The Future of Wires"). This crate
//! re-implements those three model families with constants calibrated to
//! 0.1 µm technology so that the paper's *relative* results hold:
//! switch power dominates link power, and both area and energy grow
//! superlinearly with switch port count.
//!
//! * [`SwitchConfig`] describes one switch instance (ports, flit width,
//!   buffering, pipelining).
//! * [`switch_area`] / [`switch_energy_per_bit`] are the analytical
//!   models.
//! * [`WireModel`] gives per-millimetre link energy.
//! * [`AreaPowerLibrary`] memoises model evaluations per configuration,
//!   playing the role of the paper's pre-generated "area-power
//!   libraries for various switch configurations".
//!
//! # Examples
//!
//! ```
//! use sunmap_power::{AreaPowerLibrary, SwitchConfig, Technology};
//!
//! let mut lib = AreaPowerLibrary::new(Technology::um_0_10());
//! let five_by_five = SwitchConfig::symmetric(5);
//! let four_by_four = SwitchConfig::symmetric(4);
//! // Bigger switches cost more area and more energy per bit.
//! assert!(lib.area(five_by_five) > lib.area(four_by_four));
//! assert!(lib.energy_per_bit(five_by_five) > lib.energy_per_bit(four_by_four));
//! ```

mod library;
mod switch;
mod wire;

pub use library::{switch_power_from_energy, AreaPowerLibrary};
pub use switch::{switch_area, switch_energy_per_bit, switch_power, SwitchConfig};
pub use wire::{link_power, WireModel};

/// Process technology parameters. The paper's experiments assume 0.1 µm
/// technology; other nodes scale area quadratically and energy roughly
/// linearly with feature size (at constant voltage) times `V²`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Technology {
    /// Feature size in micrometres.
    pub feature_um: f64,
    /// Supply voltage in volts.
    pub voltage: f64,
    /// Operating frequency in MHz (used for leakage-free dynamic-power
    /// conversions where a clock is needed).
    pub frequency_mhz: f64,
}

impl Technology {
    /// The paper's 0.1 µm operating point.
    pub fn um_0_10() -> Self {
        Technology {
            feature_um: 0.10,
            voltage: 1.2,
            frequency_mhz: 1000.0,
        }
    }

    /// A 0.18 µm operating point (the ORION reference node), for
    /// technology-scaling studies.
    pub fn um_0_18() -> Self {
        Technology {
            feature_um: 0.18,
            voltage: 1.8,
            frequency_mhz: 500.0,
        }
    }

    /// Linear feature-size scale factor relative to the calibration node
    /// (0.1 µm).
    pub fn length_scale(&self) -> f64 {
        self.feature_um / 0.10
    }

    /// Area scale factor relative to the calibration node.
    pub fn area_scale(&self) -> f64 {
        self.length_scale() * self.length_scale()
    }

    /// Dynamic-energy scale factor relative to the calibration node:
    /// capacitance scales with feature size, energy with `C·V²`.
    pub fn energy_scale(&self) -> f64 {
        self.length_scale() * (self.voltage / 1.2) * (self.voltage / 1.2)
    }
}

impl Default for Technology {
    fn default() -> Self {
        Technology::um_0_10()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_paper_node() {
        let t = Technology::default();
        assert_eq!(t.feature_um, 0.10);
        assert_eq!(t.area_scale(), 1.0);
        assert_eq!(t.energy_scale(), 1.0);
    }

    #[test]
    fn coarser_node_scales_up() {
        let t = Technology::um_0_18();
        assert!(t.area_scale() > 3.0 && t.area_scale() < 3.5);
        assert!(t.energy_scale() > 1.0);
    }
}
