//! Memoised area-power library.

use std::collections::BTreeMap;

use crate::{switch_area, switch_energy_per_bit, SwitchConfig, Technology, WireModel};

/// A per-technology library of evaluated switch configurations — the
/// paper's "area-power libraries for various switch configurations for
/// different technology parameters", generated on demand and memoised.
///
/// # Examples
///
/// ```
/// use sunmap_power::{AreaPowerLibrary, SwitchConfig, Technology};
///
/// let mut lib = AreaPowerLibrary::new(Technology::um_0_10());
/// let cfg = SwitchConfig::symmetric(4);
/// let a1 = lib.area(cfg);
/// let a2 = lib.area(cfg); // served from the library
/// assert_eq!(a1, a2);
/// ```
#[derive(Debug, Clone)]
pub struct AreaPowerLibrary {
    tech: Technology,
    wire: WireModel,
    areas: BTreeMap<SwitchConfig, f64>,
    energies: BTreeMap<SwitchConfig, f64>,
}

impl AreaPowerLibrary {
    /// Creates a library for the given technology with the default wire
    /// model.
    pub fn new(tech: Technology) -> Self {
        AreaPowerLibrary {
            tech,
            wire: WireModel::default(),
            areas: BTreeMap::new(),
            energies: BTreeMap::new(),
        }
    }

    /// Creates a library with an explicit wire model.
    pub fn with_wire_model(tech: Technology, wire: WireModel) -> Self {
        AreaPowerLibrary {
            tech,
            wire,
            areas: BTreeMap::new(),
            energies: BTreeMap::new(),
        }
    }

    /// The library's technology node.
    pub fn technology(&self) -> Technology {
        self.tech
    }

    /// The library's wire model.
    pub fn wire_model(&self) -> WireModel {
        self.wire
    }

    /// Area of a switch configuration in mm² (memoised).
    pub fn area(&mut self, cfg: SwitchConfig) -> f64 {
        let tech = self.tech;
        *self
            .areas
            .entry(cfg)
            .or_insert_with(|| switch_area(cfg, tech))
    }

    /// Bit-traversal energy of a switch configuration in joules
    /// (memoised).
    pub fn energy_per_bit(&mut self, cfg: SwitchConfig) -> f64 {
        let tech = self.tech;
        *self
            .energies
            .entry(cfg)
            .or_insert_with(|| switch_energy_per_bit(cfg, tech))
    }

    /// Power of a switch carrying `traffic_mbs` MB/s, in mW.
    pub fn switch_power(&mut self, cfg: SwitchConfig, traffic_mbs: f64) -> f64 {
        switch_power_from_energy(self.energy_per_bit(cfg), traffic_mbs)
    }

    /// Power of a link of `length_mm` carrying `traffic_mbs` MB/s, in mW.
    pub fn link_power(&self, traffic_mbs: f64, length_mm: f64) -> f64 {
        crate::link_power(self.wire, self.tech, traffic_mbs, length_mm)
    }

    /// Number of distinct configurations evaluated so far.
    pub fn entries(&self) -> usize {
        self.areas.len().max(self.energies.len())
    }
}

/// Switch power (mW) from a precomputed bit-traversal energy — the
/// exact expression [`AreaPowerLibrary::switch_power`] evaluates,
/// factored out so callers that cache `energy_per_bit` (the mapping
/// engine's fast path) cannot drift from the library's formula.
pub fn switch_power_from_energy(energy_per_bit: f64, traffic_mbs: f64) -> f64 {
    energy_per_bit * traffic_mbs * 8.0e6 * 1.0e3
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memoisation_is_transparent() {
        let mut lib = AreaPowerLibrary::new(Technology::um_0_10());
        let cfg = SwitchConfig::symmetric(6);
        assert_eq!(lib.entries(), 0);
        let a = lib.area(cfg);
        assert_eq!(lib.entries(), 1);
        assert_eq!(lib.area(cfg), a);
        assert_eq!(lib.entries(), 1);
        assert_eq!(a, crate::switch_area(cfg, Technology::um_0_10()));
    }

    #[test]
    fn switch_power_matches_free_function() {
        let mut lib = AreaPowerLibrary::new(Technology::um_0_10());
        let cfg = SwitchConfig::symmetric(5);
        let via_lib = lib.switch_power(cfg, 750.0);
        let direct = crate::switch_power(cfg, Technology::um_0_10(), 750.0);
        assert!((via_lib - direct).abs() < 1e-9);
    }

    #[test]
    fn link_power_uses_configured_wire_model() {
        let hot_wire = WireModel {
            cap_per_mm: 0.8e-12,
            activity: 0.5,
        };
        let cold = AreaPowerLibrary::new(Technology::um_0_10());
        let hot = AreaPowerLibrary::with_wire_model(Technology::um_0_10(), hot_wire);
        assert!(hot.link_power(100.0, 1.0) > cold.link_power(100.0, 1.0));
    }
}
