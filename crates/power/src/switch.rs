//! Analytical switch area and bit-energy models.

use crate::Technology;

/// Configuration of one ×pipes-style switch instance.
///
/// The paper's models "take into account the nuances of individual
/// switch configurations ... (like accounting for pipeline registers,
/// cross points, etc.)" — the knobs here are the ones those nuances
/// depend on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SwitchConfig {
    /// Number of input ports (network plus local/core ports).
    pub in_ports: usize,
    /// Number of output ports.
    pub out_ports: usize,
    /// Flit width in bits.
    pub flit_width: u32,
    /// Input-buffer depth in flits.
    pub buffer_depth: u32,
    /// Output pipeline register stages.
    pub pipeline_stages: u32,
}

impl SwitchConfig {
    /// A `p x p` switch with the default 32-bit flits, 4-flit input
    /// buffers and one output pipeline stage (the ×pipes defaults).
    pub fn symmetric(p: usize) -> Self {
        SwitchConfig {
            in_ports: p,
            out_ports: p,
            flit_width: 32,
            buffer_depth: 4,
            pipeline_stages: 1,
        }
    }

    /// An `in x out` switch with the default datapath parameters.
    pub fn new(in_ports: usize, out_ports: usize) -> Self {
        SwitchConfig {
            in_ports,
            out_ports,
            flit_width: 32,
            buffer_depth: 4,
            pipeline_stages: 1,
        }
    }
}

// Calibration constants at 0.1 µm. Units: mm² per bit-equivalent of the
// respective structure. Chosen so that a 5x5, 32-bit, 4-flit-deep switch
// comes out near 0.74 mm² and a 4x4 near 0.54 mm², matching the
// magnitudes the paper's VOPD totals imply.
const AREA_CROSSPOINT: f64 = 4.0e-4; // per crossbar bit-crosspoint
const AREA_BUFFER_BIT: f64 = 4.0e-4; // per buffer storage bit
const AREA_LOGIC_BIT: f64 = 3.0e-4; // control/arbitration per port-bit
const AREA_PIPE_BIT: f64 = 4.0e-4; // pipeline register per bit-stage

// Bit-energy constants at 0.1 µm, joules per bit. The port-linear term
// models buffer read/write plus arbitration; the port-product term
// models crossbar traversal capacitance.
const ENERGY_PORT_LINEAR: f64 = 0.40e-12; // per (in+out) port
const ENERGY_CROSSBAR: f64 = 0.135e-12; // per in*out product unit
const ENERGY_BUFFER_DEPTH: f64 = 0.02e-12; // per flit of buffer depth

/// Area of a switch in mm²: crossbar cross-points, input buffers,
/// control logic and pipeline registers (paper §5).
///
/// # Examples
///
/// ```
/// use sunmap_power::{switch_area, SwitchConfig, Technology};
///
/// let t = Technology::um_0_10();
/// let a55 = switch_area(SwitchConfig::symmetric(5), t);
/// assert!(a55 > 0.6 && a55 < 0.9, "5x5 area {a55} out of range");
/// ```
pub fn switch_area(cfg: SwitchConfig, tech: Technology) -> f64 {
    let w = cfg.flit_width as f64;
    let crossbar = AREA_CROSSPOINT * cfg.in_ports as f64 * cfg.out_ports as f64 * w;
    let buffers = AREA_BUFFER_BIT * cfg.in_ports as f64 * cfg.buffer_depth as f64 * w;
    let logic = AREA_LOGIC_BIT * (cfg.in_ports + cfg.out_ports) as f64 * w;
    let pipes = AREA_PIPE_BIT * cfg.pipeline_stages as f64 * cfg.out_ports as f64 * w;
    (crossbar + buffers + logic + pipes) * tech.area_scale()
}

/// Energy to move one bit through a switch (buffer write + read,
/// arbitration, crossbar traversal), in joules — the ORION-style
/// bit-energy model.
pub fn switch_energy_per_bit(cfg: SwitchConfig, tech: Technology) -> f64 {
    let ports = (cfg.in_ports + cfg.out_ports) as f64;
    let product = (cfg.in_ports * cfg.out_ports) as f64;
    let e = ENERGY_PORT_LINEAR * ports
        + ENERGY_CROSSBAR * product
        + ENERGY_BUFFER_DEPTH * cfg.buffer_depth as f64;
    e * tech.energy_scale()
}

/// Average power of a switch carrying `traffic_mbs` MB/s of aggregate
/// throughput, in milliwatts.
///
/// # Examples
///
/// ```
/// use sunmap_power::{switch_power, SwitchConfig, Technology};
///
/// let t = Technology::um_0_10();
/// let p = switch_power(SwitchConfig::symmetric(5), t, 1000.0);
/// assert!(p > 0.0);
/// // Power is linear in traffic.
/// assert!((switch_power(SwitchConfig::symmetric(5), t, 2000.0) - 2.0 * p).abs() < 1e-9);
/// ```
pub fn switch_power(cfg: SwitchConfig, tech: Technology, traffic_mbs: f64) -> f64 {
    let bits_per_s = traffic_mbs * 1.0e6 * 8.0;
    switch_energy_per_bit(cfg, tech) * bits_per_s * 1.0e3 // W -> mW
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn area_monotone_in_every_knob() {
        let t = Technology::um_0_10();
        let base = SwitchConfig::symmetric(4);
        let a = switch_area(base, t);
        assert!(
            switch_area(
                SwitchConfig {
                    in_ports: 5,
                    ..base
                },
                t
            ) > a
        );
        assert!(
            switch_area(
                SwitchConfig {
                    out_ports: 5,
                    ..base
                },
                t
            ) > a
        );
        assert!(
            switch_area(
                SwitchConfig {
                    flit_width: 64,
                    ..base
                },
                t
            ) > a
        );
        assert!(
            switch_area(
                SwitchConfig {
                    buffer_depth: 8,
                    ..base
                },
                t
            ) > a
        );
        assert!(
            switch_area(
                SwitchConfig {
                    pipeline_stages: 2,
                    ..base
                },
                t
            ) > a
        );
    }

    #[test]
    fn energy_grows_superlinearly_with_ports() {
        let t = Technology::um_0_10();
        let e4 = switch_energy_per_bit(SwitchConfig::symmetric(4), t);
        let e8 = switch_energy_per_bit(SwitchConfig::symmetric(8), t);
        // Doubling ports more than doubles the per-bit energy
        // (crossbar term is quadratic).
        assert!(e8 > 2.0 * e4);
    }

    #[test]
    fn calibration_magnitudes() {
        let t = Technology::um_0_10();
        // A 5x5 32-bit switch: mid-to-high single-digit pJ/bit at 0.1 µm.
        let e = switch_energy_per_bit(SwitchConfig::symmetric(5), t);
        assert!(e > 2.0e-12 && e < 12.0e-12, "e = {e}");
        let a = switch_area(SwitchConfig::symmetric(5), t);
        assert!(a > 0.3 && a < 1.5, "a = {a}");
    }

    #[test]
    fn technology_scaling_applies() {
        let fine = Technology::um_0_10();
        let coarse = Technology::um_0_18();
        let cfg = SwitchConfig::symmetric(5);
        assert!(switch_area(cfg, coarse) > 3.0 * switch_area(cfg, fine));
        assert!(switch_energy_per_bit(cfg, coarse) > switch_energy_per_bit(cfg, fine));
    }

    #[test]
    fn power_is_zero_for_idle_switch() {
        let t = Technology::um_0_10();
        assert_eq!(switch_power(SwitchConfig::symmetric(5), t, 0.0), 0.0);
    }

    #[test]
    fn asymmetric_configs_supported() {
        let t = Technology::um_0_10();
        let c = SwitchConfig::new(4, 3);
        assert!(switch_area(c, t) > 0.0);
        assert!(switch_area(c, t) < switch_area(SwitchConfig::new(4, 4), t));
    }
}
