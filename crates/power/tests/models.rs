//! Model-consistency tests for the area/power libraries.

use sunmap_power::{
    link_power, switch_area, switch_energy_per_bit, switch_power, AreaPowerLibrary, SwitchConfig,
    Technology, WireModel,
};

#[test]
fn paper_magnitudes_hold_at_0_1_um() {
    let t = Technology::um_0_10();
    // A 3x4 mesh's worth of switches (paper VOPD) lands in single-digit
    // mm² — small next to ~50 mm² of cores, as Fig. 3d implies.
    let mut total = 0.0;
    for p in [3, 3, 3, 3, 4, 4, 4, 4, 4, 4, 5, 5usize] {
        total += switch_area(SwitchConfig::symmetric(p), t);
    }
    assert!(total > 3.0 && total < 12.0, "mesh switch area {total}");
    // VOPD-scale traffic through 2.25 hops of such switches: hundreds
    // of mW (paper: 372 mW for the mesh).
    let per_switch = switch_power(SwitchConfig::symmetric(4), t, 3838.0);
    let design = per_switch * 2.25;
    assert!(design > 100.0 && design < 1000.0, "power {design}");
}

#[test]
fn energy_decomposition_is_additive_in_buffer_depth() {
    let t = Technology::um_0_10();
    let base = SwitchConfig::symmetric(4);
    let deeper = SwitchConfig {
        buffer_depth: 8,
        ..base
    };
    let delta = switch_energy_per_bit(deeper, t) - switch_energy_per_bit(base, t);
    let delta2 = switch_energy_per_bit(
        SwitchConfig {
            buffer_depth: 12,
            ..base
        },
        t,
    ) - switch_energy_per_bit(deeper, t);
    assert!((delta - delta2).abs() < 1e-18, "buffer term must be linear");
}

#[test]
fn area_is_linear_in_flit_width() {
    let t = Technology::um_0_10();
    let w32 = switch_area(SwitchConfig::symmetric(5), t);
    let w64 = switch_area(
        SwitchConfig {
            flit_width: 64,
            ..SwitchConfig::symmetric(5)
        },
        t,
    );
    assert!((w64 / w32 - 2.0).abs() < 1e-9);
}

#[test]
fn library_is_consistent_with_free_functions_across_configs() {
    let t = Technology::um_0_18();
    let mut lib = AreaPowerLibrary::new(t);
    for p in 2..=8 {
        for (inp, outp) in [(p, p), (p, p + 1), (p + 1, p)] {
            let cfg = SwitchConfig::new(inp, outp);
            assert_eq!(lib.area(cfg), switch_area(cfg, t));
            assert_eq!(lib.energy_per_bit(cfg), switch_energy_per_bit(cfg, t));
        }
    }
    assert!(lib.entries() >= 21);
}

#[test]
fn wire_energy_ordering_vs_switch_sizes() {
    // Even a 10 mm wire costs less per bit than two 5x5 switch
    // traversals — the §6.1 argument that longer butterfly links are a
    // good trade for one fewer hop.
    let t = Technology::um_0_10();
    let wire10mm = WireModel::um_0_10().energy_per_bit_mm(t) * 10.0;
    let two_switches = 2.0 * switch_energy_per_bit(SwitchConfig::symmetric(5), t);
    assert!(wire10mm < two_switches);
}

#[test]
fn link_power_zero_for_zero_length_or_traffic() {
    let t = Technology::um_0_10();
    let w = WireModel::um_0_10();
    assert_eq!(link_power(w, t, 0.0, 5.0), 0.0);
    assert_eq!(link_power(w, t, 500.0, 0.0), 0.0);
}

#[test]
fn technology_presets_are_internally_consistent() {
    let fine = Technology::um_0_10();
    let coarse = Technology::um_0_18();
    assert!(coarse.length_scale() > fine.length_scale());
    assert!((fine.length_scale() - 1.0).abs() < 1e-12);
    assert!((coarse.length_scale() - 1.8).abs() < 1e-12);
    // Area scales quadratically with feature size.
    assert!((coarse.area_scale() - 1.8 * 1.8).abs() < 1e-9);
}
