//! Structural netlist of the generated NoC.

use sunmap_topology::{NodeId, NodeKind, TopologyGraph};
use sunmap_traffic::{CoreGraph, CoreId};

/// One instantiated component of the design.
#[derive(Debug, Clone, PartialEq)]
pub enum Component {
    /// A switch soft macro with the given port counts.
    Switch {
        /// Instance name, e.g. `sw_n4`.
        name: String,
        /// The topology vertex this switch implements.
        node: NodeId,
        /// Input port count (network + local).
        inputs: usize,
        /// Output port count.
        outputs: usize,
    },
    /// A network interface connecting one core to its switch.
    NetworkInterface {
        /// Instance name, e.g. `ni_vld`.
        name: String,
        /// The core behind this NI.
        core: CoreId,
    },
    /// A core stub (the user's IP block, black-boxed).
    Core {
        /// Instance name (the core's name).
        name: String,
        /// The application core.
        core: CoreId,
    },
}

impl Component {
    /// Instance name of the component.
    pub fn name(&self) -> &str {
        match self {
            Component::Switch { name, .. }
            | Component::NetworkInterface { name, .. }
            | Component::Core { name, .. } => name,
        }
    }
}

/// Physical class of a connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkKind {
    /// Switch-to-switch network channel.
    Network,
    /// NI-to-switch (or switch-to-NI) attach link.
    Attach,
    /// Core-to-NI local binding.
    Local,
}

/// A directed connection between two component ports.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Connection {
    /// Index of the driving component in [`Netlist::components`].
    pub from: usize,
    /// Output port index on the driver.
    pub from_port: usize,
    /// Index of the receiving component.
    pub to: usize,
    /// Input port index on the receiver.
    pub to_port: usize,
    /// Link class.
    pub kind: LinkKind,
}

/// The full structural design: components plus port-level connections.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Netlist {
    /// All instantiated components.
    pub components: Vec<Component>,
    /// All directed connections.
    pub connections: Vec<Connection>,
}

impl Netlist {
    /// Number of switch instances.
    pub fn switch_count(&self) -> usize {
        self.components
            .iter()
            .filter(|c| matches!(c, Component::Switch { .. }))
            .count()
    }

    /// Number of network interfaces (= mapped cores).
    pub fn ni_count(&self) -> usize {
        self.components
            .iter()
            .filter(|c| matches!(c, Component::NetworkInterface { .. }))
            .count()
    }

    /// Number of connections of a given kind.
    pub fn connection_count(&self, kind: LinkKind) -> usize {
        self.connections.iter().filter(|c| c.kind == kind).count()
    }

    /// The distinct switch configurations used, as sorted
    /// `(inputs, outputs)` pairs — one soft-macro specialisation each.
    pub fn switch_configs(&self) -> Vec<(usize, usize)> {
        let mut cfgs: Vec<(usize, usize)> = self
            .components
            .iter()
            .filter_map(|c| match c {
                Component::Switch {
                    inputs, outputs, ..
                } => Some((*inputs, *outputs)),
                _ => None,
            })
            .collect();
        cfgs.sort_unstable();
        cfgs.dedup();
        cfgs
    }
}

/// Builds the structural netlist for `placement` of `app` on `g`:
/// one switch per topology switch vertex, one NI per mapped core, core
/// stubs, and port-numbered connections for every channel.
pub fn build_netlist(
    g: &TopologyGraph,
    app: &CoreGraph,
    placement: &sunmap_mapping::Placement,
) -> Netlist {
    let mut nl = Netlist::default();
    // Indexed by node id; `usize::MAX` marks non-switch vertices.
    let mut switch_index = vec![usize::MAX; g.node_count()];
    // Per-switch running port counters for deterministic port numbers.
    let mut next_in = vec![0usize; g.node_count()];
    let mut next_out = vec![0usize; g.node_count()];

    for (s, inputs, outputs) in g.switch_radices() {
        switch_index[s.index()] = nl.components.len();
        nl.components.push(Component::Switch {
            name: format!("sw_{s}"),
            node: s,
            inputs,
            outputs,
        });
    }

    // Network channels between switches.
    for (_, edge) in g.edges() {
        if g.node_kind(edge.src) != NodeKind::Switch || g.node_kind(edge.dst) != NodeKind::Switch {
            continue;
        }
        let from = switch_index[edge.src.index()];
        let to = switch_index[edge.dst.index()];
        let from_port = next_out[edge.src.index()];
        next_out[edge.src.index()] += 1;
        let to_port = next_in[edge.dst.index()];
        next_in[edge.dst.index()] += 1;
        nl.connections.push(Connection {
            from,
            from_port,
            to,
            to_port,
            kind: LinkKind::Network,
        });
    }

    // Cores, NIs and attach links.
    for (core_id, core) in app.cores() {
        let node = placement.node_of(core_id);
        let ni_index = nl.components.len();
        nl.components.push(Component::NetworkInterface {
            name: format!("ni_{}", core.name),
            core: core_id,
        });
        let core_index = nl.components.len();
        nl.components.push(Component::Core {
            name: core.name.clone(),
            core: core_id,
        });
        nl.connections.push(Connection {
            from: core_index,
            from_port: 0,
            to: ni_index,
            to_port: 0,
            kind: LinkKind::Local,
        });
        nl.connections.push(Connection {
            from: ni_index,
            from_port: 1,
            to: core_index,
            to_port: 1,
            kind: LinkKind::Local,
        });
        let ingress = g
            .ingress_switch(node)
            .expect("mapped vertex has an ingress");
        let egress = g.egress_switch(node).expect("mapped vertex has an egress");
        let in_port = next_in[ingress.index()];
        next_in[ingress.index()] += 1;
        nl.connections.push(Connection {
            from: ni_index,
            from_port: 0,
            to: switch_index[ingress.index()],
            to_port: in_port,
            kind: LinkKind::Attach,
        });
        let out_port = next_out[egress.index()];
        next_out[egress.index()] += 1;
        nl.connections.push(Connection {
            from: switch_index[egress.index()],
            from_port: out_port,
            to: ni_index,
            to_port: 1,
            kind: LinkKind::Attach,
        });
    }
    nl
}

#[cfg(test)]
mod tests {
    use super::*;
    use sunmap_mapping::Placement;
    use sunmap_topology::builders;
    use sunmap_traffic::benchmarks;

    fn mesh_netlist() -> Netlist {
        let g = builders::mesh(3, 4, 500.0).unwrap();
        let app = benchmarks::vopd();
        let p = Placement::new(g.mappable_nodes()[..12].to_vec(), &g).unwrap();
        build_netlist(&g, &app, &p)
    }

    #[test]
    fn component_counts_match_design() {
        let nl = mesh_netlist();
        assert_eq!(nl.switch_count(), 12);
        assert_eq!(nl.ni_count(), 12);
        // 12 switches + 12 NIs + 12 cores.
        assert_eq!(nl.components.len(), 36);
    }

    #[test]
    fn connection_counts_match_design() {
        let nl = mesh_netlist();
        // 17 channels x 2 directions.
        assert_eq!(nl.connection_count(LinkKind::Network), 34);
        // One NI->switch and one switch->NI per core.
        assert_eq!(nl.connection_count(LinkKind::Attach), 24);
        assert_eq!(nl.connection_count(LinkKind::Local), 24);
    }

    #[test]
    fn port_numbers_stay_within_declared_radix() {
        let nl = mesh_netlist();
        for conn in &nl.connections {
            if let Component::Switch { outputs, .. } = &nl.components[conn.from] {
                assert!(conn.from_port < *outputs, "output port overflow");
            }
            if let Component::Switch { inputs, .. } = &nl.components[conn.to] {
                assert!(conn.to_port < *inputs, "input port overflow");
            }
        }
    }

    #[test]
    fn butterfly_netlist_uses_uniform_switches() {
        let g = builders::butterfly(4, 2, 500.0).unwrap();
        let app = benchmarks::vopd();
        let p = Placement::new(g.mappable_nodes()[..12].to_vec(), &g).unwrap();
        let nl = build_netlist(&g, &app, &p);
        // "all the switches are 4x4" (paper §6.1).
        assert_eq!(nl.switch_configs(), vec![(4, 4)]);
    }

    #[test]
    fn mesh_netlist_has_heterogeneous_switches() {
        let nl = mesh_netlist();
        // 3x3 corners, 4x4 edges, 5x5 inner (paper §6.1: "the direct
        // topologies have 5x5 switches").
        assert_eq!(nl.switch_configs(), vec![(3, 3), (4, 4), (5, 5)]);
    }
}
