//! Network component generation for SUNMAP (paper phase 3).
//!
//! The paper's third phase hands the chosen topology and mapping to the
//! ×pipesCompiler, which instantiates SystemC soft macros for switches,
//! links and network interfaces and stitches them into a simulatable
//! design. This crate is the equivalent generator (see DESIGN.md for
//! the substitution note): it builds a structural [`Netlist`] from a
//! mapping and emits
//!
//! * SystemC-style C++ source files ([`emit_systemc`]) with one module
//!   per switch configuration, a network-interface module and a
//!   top-level that instantiates and binds everything, and
//! * a Graphviz view ([`emit_dot`]) of the generated network.
//!
//! The emitted SystemC is *structural documentation* of the design —
//! cycle-accurate simulation happens in `sunmap_sim` — but it follows
//! the ×pipes conventions (flit ports, credit signals, per-stage
//! pipelining parameters) closely enough to read like the real output.
//!
//! # Examples
//!
//! ```
//! use sunmap_gen::{build_netlist, emit_systemc};
//! use sunmap_mapping::{Mapper, MapperConfig};
//! use sunmap_topology::builders;
//! use sunmap_traffic::benchmarks;
//!
//! let mesh = builders::mesh(2, 3, 1000.0)?;
//! let dsp = benchmarks::dsp_filter();
//! let mapping = Mapper::new(&mesh, &dsp, MapperConfig::default()).run()?;
//! let netlist = build_netlist(&mesh, &dsp, mapping.placement());
//! let files = emit_systemc(&netlist, "dsp_design");
//! assert!(files.iter().any(|f| f.name == "top_dsp_design.cpp"));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

mod netlist;
mod systemc;

pub use netlist::{build_netlist, Component, Connection, LinkKind, Netlist};
pub use systemc::{emit_dot, emit_systemc, SourceFile};
