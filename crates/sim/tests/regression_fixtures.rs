//! Old-path regression fixtures: `LatencyStats` values captured from
//! the pre-rebuild engine (the `Rc`-path implementation this PR
//! replaced), hardcoded here. The flat AND event-driven engines must
//! reproduce every field bit for bit — this guards both rebuilds
//! against behavioral drift even if `reference` itself is ever touched.
//!
//! All fixtures use `SimConfig::fast()` (seed 42) unless noted.

use sunmap_mapping::{Mapper, MapperConfig};
use sunmap_sim::{adversarial_pattern, LatencyStats, SimConfig, SimEngine, SimSession};
use sunmap_topology::builders;
use sunmap_traffic::benchmarks;
use sunmap_traffic::patterns::TrafficPattern;
use sunmap_traffic::CoreGraph;

/// The engines the fixtures pin. `Reference` is the source the values
/// were captured from; it is re-checked too, so a fixture mismatch
/// distinguishes "reference drifted" from "rebuild drifted".
const ENGINES: [SimEngine; 3] = [
    SimEngine::Reference,
    SimEngine::Flat,
    SimEngine::EventDriven,
];

#[allow(clippy::too_many_arguments)]
fn stats(
    avg_latency: f64,
    max_latency: u64,
    packets_offered: usize,
    packets_delivered: usize,
    throughput: f64,
    max_link_utilization: f64,
    mean_link_utilization: f64,
) -> LatencyStats {
    LatencyStats {
        avg_latency,
        max_latency,
        packets_offered,
        packets_delivered,
        throughput,
        measured_cycles: 1000,
        max_link_utilization,
        mean_link_utilization,
    }
}

fn assert_synthetic_fixture(
    g: &sunmap_topology::TopologyGraph,
    config: SimConfig,
    pattern: &TrafficPattern,
    rate: f64,
    fixture: &LatencyStats,
) {
    for engine in ENGINES {
        let got = SimSession::builder(g)
            .config(SimConfig { engine, ..config })
            .build()
            .run_synthetic(pattern, rate);
        assert_eq!(
            &got,
            fixture,
            "{} at rate {rate} drifted on the {} engine",
            g.kind(),
            engine.name()
        );
    }
}

#[test]
fn synthetic_adversarial_fixtures() {
    // (builder index in standard_library(16), rate) => captured stats.
    let expected: &[(usize, f64, LatencyStats)] = &[
        // Mesh 4x4, bit-complement.
        (
            0,
            0.05,
            stats(22.195, 37, 200, 200, 0.05, 0.136, 0.0654791666666667),
        ),
        (
            0,
            0.30,
            stats(
                30.00247320692498,
                156,
                1213,
                1213,
                0.30325,
                0.754,
                0.4053124999999999,
            ),
        ),
        // Torus 4x4, tornado.
        (
            1,
            0.05,
            stats(17.53, 26, 200, 200, 0.05, 0.136, 0.034906250000000014),
        ),
        (
            1,
            0.30,
            stats(
                23.788953009068425,
                97,
                1213,
                1213,
                0.30325,
                0.751,
                0.2103125,
            ),
        ),
        // Hypercube dim 4, transpose.
        (
            2,
            0.05,
            stats(17.0, 26, 154, 154, 0.0385, 0.144, 0.025593750000000005),
        ),
        (
            2,
            0.30,
            stats(
                21.232258064516127,
                75,
                930,
                930,
                0.2325,
                0.696,
                0.15535937500000002,
            ),
        ),
        // Clos 4,4,4, transpose.
        (
            3,
            0.05,
            stats(
                14.138686131386862,
                17,
                137,
                137,
                0.03425,
                0.064,
                0.03425000000000002,
            ),
        ),
        (
            3,
            0.30,
            stats(16.037585421412302, 37, 878, 878, 0.2195, 0.28, 0.2209375),
        ),
        // Butterfly 4-ary 2-fly, tornado.
        (
            4,
            0.05,
            stats(10.269035532994923, 14, 197, 197, 0.04925, 0.16, 0.0490625),
        ),
        (
            4,
            0.30,
            stats(
                21.889823380992432,
                182,
                1189,
                1189,
                0.29725,
                0.918,
                0.30156249999999996,
            ),
        ),
    ];
    let library = builders::standard_library(16, 500.0).unwrap();
    for (idx, rate, fixture) in expected {
        let g = &library[*idx];
        assert_synthetic_fixture(
            g,
            SimConfig::fast(),
            &adversarial_pattern(g.kind()),
            *rate,
            fixture,
        );
    }
}

#[test]
fn synthetic_uniform_fixture() {
    let g = builders::mesh(4, 4, 500.0).unwrap();
    assert_synthetic_fixture(
        &g,
        SimConfig::fast(),
        &TrafficPattern::UniformRandom,
        0.05,
        &stats(
            17.269035532994923,
            33,
            197,
            197,
            0.04925,
            0.08,
            0.044937500000000026,
        ),
    );
}

#[test]
fn trace_vopd_fixture() {
    let g = builders::mesh(3, 4, 500.0).unwrap();
    let app = benchmarks::vopd();
    let mapping = Mapper::new(&g, &app, MapperConfig::default())
        .run()
        .unwrap();
    let fixture = stats(
        11.49512987012987,
        21,
        616,
        616,
        0.20533333333333334,
        0.354,
        0.08841176470588238,
    );
    for engine in ENGINES {
        let got = SimSession::builder(&g)
            .config(SimConfig {
                engine,
                ..SimConfig::fast()
            })
            .build()
            .run_trace(mapping.evaluation(), &app, 0.35);
        assert_eq!(
            got,
            fixture,
            "vopd trace drifted on the {} engine",
            engine.name()
        );
    }
}

#[test]
fn non_default_config_fixture() {
    let g = builders::torus(4, 4, 500.0).unwrap();
    let config = SimConfig {
        packet_flits: 6,
        buffer_depth: 2,
        switch_pipeline: 1,
        seed: 7,
        ..SimConfig::fast()
    };
    assert_synthetic_fixture(
        &g,
        config,
        &TrafficPattern::Transpose,
        0.15,
        &stats(
            14.33228840125392,
            41,
            319,
            319,
            0.119625,
            0.418,
            0.077921875,
        ),
    );
}

/// Event-engine trace fixtures for the four seed applications, captured
/// from the event engine itself (and cross-checked against reference ==
/// flat by `flat_equivalence.rs`). These pin the event engine's output
/// directly, so a wheel/active-set regression cannot hide behind an
/// equally wrong oracle comparison.
#[test]
fn event_engine_seed_app_fixtures() {
    let apps: [(&str, CoreGraph, usize, usize, LatencyStats); 4] = [
        (
            "vopd",
            benchmarks::vopd(),
            3,
            4,
            stats(
                11.204322200392927,
                18,
                509,
                509,
                0.16966666666666666,
                0.324,
                0.07211764705882352,
            ),
        ),
        (
            "mpeg4",
            benchmarks::mpeg4(),
            3,
            4,
            stats(
                10.685294117647059,
                19,
                340,
                340,
                0.11333333333333333,
                0.324,
                0.04241176470588235,
            ),
        ),
        (
            "dsp",
            benchmarks::dsp_filter(),
            2,
            3,
            stats(
                10.873684210526315,
                19,
                285,
                285,
                0.19,
                0.323,
                0.08985714285714286,
            ),
        ),
        // 16 cores: the only seed app that fills a 4x4 grid, and at
        // intensity 0.3 the only fixture exercising the event engine
        // deep into the wheel (heavy contention, avg latency ~119).
        (
            "netproc",
            benchmarks::network_processor(100.0),
            4,
            4,
            stats(
                118.62517521726942,
                433,
                3567,
                3567,
                0.89175,
                0.821,
                0.49518750000000017,
            ),
        ),
    ];
    for (name, app, rows, cols, fixture) in &apps {
        let g = builders::mesh(*rows, *cols, 1000.0).unwrap();
        let mapping = Mapper::new(&g, app, MapperConfig::default()).run().unwrap();
        let got = SimSession::builder(&g)
            .config(SimConfig {
                engine: SimEngine::EventDriven,
                ..SimConfig::fast()
            })
            .build()
            .run_trace(mapping.evaluation(), app, 0.3);
        assert_eq!(&got, fixture, "{name} event-engine trace fixture drifted");
    }
}
