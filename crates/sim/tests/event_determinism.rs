//! The event engine's determinism contract: same seed → bit-identical
//! stats across repeated runs, session reuse, and any sweep worker
//! count. The flat engine earned these guarantees in its own PR; the
//! event engine must hold them too, because batch resume and the serve
//! cache both hash simulation output.

use sunmap_sim::{sweep, SimConfig, SimEngine, SimSession};
use sunmap_topology::builders;
use sunmap_traffic::patterns::TrafficPattern;

fn event_config() -> SimConfig {
    SimConfig {
        engine: SimEngine::EventDriven,
        ..SimConfig::fast()
    }
}

#[test]
fn same_seed_repeats_bit_identically() {
    let g = builders::mesh(4, 4, 500.0).unwrap();
    let run = || {
        SimSession::builder(&g)
            .config(event_config())
            .build()
            .run_synthetic(&TrafficPattern::UniformRandom, 0.1)
    };
    let first = run();
    assert_eq!(first, run(), "fresh sessions with one seed diverged");
}

#[test]
fn session_reuse_resets_all_event_state() {
    // Re-running inside one session exercises `reset()`: stale wheel
    // events, active-set bits or moved flags from the previous run
    // would break this.
    let g = builders::torus(4, 4, 500.0).unwrap();
    let mut session = SimSession::builder(&g).config(event_config()).build();
    let first = session.run_synthetic(&TrafficPattern::Tornado, 0.2);
    for _ in 0..3 {
        assert_eq!(
            first,
            session.run_synthetic(&TrafficPattern::Tornado, 0.2),
            "session reuse leaked state between runs"
        );
    }
    // Interleave a different workload, then return to the original.
    session.run_synthetic(&TrafficPattern::UniformRandom, 0.05);
    assert_eq!(
        first,
        session.run_synthetic(&TrafficPattern::Tornado, 0.2),
        "a different interleaved run perturbed the next result"
    );
}

#[test]
fn sweep_is_worker_count_invariant_on_the_event_engine() {
    let graphs = [
        builders::mesh(4, 4, 500.0).unwrap(),
        builders::torus(4, 4, 500.0).unwrap(),
    ];
    let requests: Vec<sweep::SweepRequest<'_>> = graphs
        .iter()
        .map(|g| sweep::SweepRequest {
            graph: g,
            pattern: sunmap_sim::adversarial_pattern(g.kind()),
        })
        .collect();
    let rates = [0.01, 0.05, 0.12, 0.3];
    let one = sweep::injection_sweep(&requests, &rates, event_config(), 1);
    assert_eq!(one.len(), 8);
    for workers in [2, 8] {
        let many = sweep::injection_sweep(&requests, &rates, event_config(), workers);
        assert_eq!(one, many, "{workers} workers diverged on the event engine");
    }
    // The rendered bytes (what batch/serve hash) must match too.
    assert_eq!(
        sweep::sweep_csv(&one),
        sweep::sweep_csv(&sweep::injection_sweep(
            &requests,
            &rates,
            event_config(),
            8
        )),
    );
}

#[test]
fn auto_engine_sweep_is_worker_count_invariant() {
    // Auto resolves per rate, so one sweep mixes both indexed engines.
    let graphs = [builders::mesh(4, 4, 500.0).unwrap()];
    let requests = [sweep::SweepRequest {
        graph: &graphs[0],
        pattern: TrafficPattern::UniformRandom,
    }];
    let rates = [0.05, 0.3];
    let one = sweep::injection_sweep(&requests, &rates, SimConfig::fast(), 1);
    for workers in [2, 8] {
        let many = sweep::injection_sweep(&requests, &rates, SimConfig::fast(), workers);
        assert_eq!(one, many, "{workers} workers diverged under Auto");
    }
}
