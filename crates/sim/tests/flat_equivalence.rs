//! The flat engine's contract: for any seed, topology, pattern, rate
//! and configuration, its [`LatencyStats`] are bit-identical to the
//! pre-rebuild engine's (kept as [`sunmap_sim::reference`]). The two
//! implementations share nothing but the `SimConfig` type, so agreement
//! here pins the RNG consumption order, the arbitration order, the
//! bubble-rule spacing and the timing model all at once.

use sunmap_mapping::{Mapper, MapperConfig};
use sunmap_sim::{adversarial_pattern, reference, NocSimulator, SimConfig};
use sunmap_topology::builders;
use sunmap_traffic::benchmarks;
use sunmap_traffic::patterns::TrafficPattern;

fn assert_synthetic_equivalent(
    g: &sunmap_topology::TopologyGraph,
    config: SimConfig,
    pattern: &TrafficPattern,
    rate: f64,
) {
    let mut old = reference::NocSimulator::new(g, config);
    let mut new = NocSimulator::new(g, config);
    let a = old.run_synthetic(pattern, rate);
    let b = new.run_synthetic(pattern, rate);
    assert_eq!(
        a,
        b,
        "{} {} rate {rate}: reference and flat engines diverged",
        g.kind(),
        pattern.name()
    );
}

#[test]
fn standard_library_adversarial_rates() {
    for g in builders::standard_library(16, 500.0).unwrap() {
        let pattern = adversarial_pattern(g.kind());
        for rate in [0.05, 0.2, 0.45] {
            assert_synthetic_equivalent(&g, SimConfig::fast(), &pattern, rate);
        }
    }
}

#[test]
fn uniform_random_consumes_rng_identically() {
    // UniformRandom draws from the RNG for every destination, and the
    // indirect topologies draw again per path pick — the strictest
    // check that the flat engine consumes randomness in the reference
    // order.
    for g in builders::standard_library(12, 500.0).unwrap() {
        assert_synthetic_equivalent(&g, SimConfig::fast(), &TrafficPattern::UniformRandom, 0.15);
    }
}

#[test]
fn every_pattern_on_mesh_and_clos() {
    let patterns = [
        TrafficPattern::UniformRandom,
        TrafficPattern::Transpose,
        TrafficPattern::BitComplement,
        TrafficPattern::BitReverse,
        TrafficPattern::Tornado,
        TrafficPattern::Hotspot {
            target: 3,
            per_mille: 300,
        },
        TrafficPattern::Permutation((0..16).rev().collect()),
    ];
    let mesh = builders::mesh(4, 4, 500.0).unwrap();
    let clos = builders::clos(4, 4, 4, 500.0).unwrap();
    for pattern in &patterns {
        assert_synthetic_equivalent(&mesh, SimConfig::fast(), pattern, 0.1);
        assert_synthetic_equivalent(&clos, SimConfig::fast(), pattern, 0.1);
    }
}

#[test]
fn extension_topologies_agree() {
    let octagon = builders::octagon(500.0).unwrap();
    let star = builders::star(8, 500.0).unwrap();
    for g in [&octagon, &star] {
        assert_synthetic_equivalent(g, SimConfig::fast(), &adversarial_pattern(g.kind()), 0.1);
    }
}

#[test]
fn config_knobs_preserve_equivalence() {
    let g = builders::torus(4, 4, 500.0).unwrap();
    let configs = [
        SimConfig {
            packet_flits: 1,
            ..SimConfig::fast()
        },
        SimConfig {
            packet_flits: 6,
            buffer_depth: 2,
            ..SimConfig::fast()
        },
        SimConfig {
            switch_pipeline: 0,
            ..SimConfig::fast()
        },
        SimConfig {
            buffer_depth: 1,
            seed: 1234,
            ..SimConfig::fast()
        },
        SimConfig {
            drain_cycles: 0,
            ..SimConfig::fast()
        },
    ];
    for config in configs {
        assert_synthetic_equivalent(&g, config, &TrafficPattern::Tornado, 0.25);
    }
}

#[test]
fn saturated_network_agrees() {
    let g = builders::mesh(3, 3, 500.0).unwrap();
    assert_synthetic_equivalent(&g, SimConfig::fast(), &TrafficPattern::BitComplement, 0.9);
}

#[test]
fn trace_mode_agrees_on_mapped_benchmarks() {
    for (app, rows, cols) in [(benchmarks::vopd(), 3, 4), (benchmarks::dsp_filter(), 2, 3)] {
        let g = builders::mesh(rows, cols, 1000.0).unwrap();
        let mapping = Mapper::new(&g, &app, MapperConfig::default())
            .run()
            .unwrap();
        for intensity in [0.1, 0.45] {
            let mut old = reference::NocSimulator::new(&g, SimConfig::fast());
            let mut new = NocSimulator::new(&g, SimConfig::fast());
            let a = old.run_trace(mapping.evaluation(), &app, intensity);
            let b = new.run_trace(mapping.evaluation(), &app, intensity);
            assert_eq!(a, b, "trace intensity {intensity} diverged");
        }
    }
}

#[test]
fn trace_mode_agrees_with_split_routing() {
    // Split routing produces multi-path route sets, exercising the
    // weighted path pick.
    use sunmap_mapping::RoutingFunction;
    let g = builders::mesh(3, 4, 1000.0).unwrap();
    let app = benchmarks::vopd();
    let config = MapperConfig {
        routing: RoutingFunction::SplitMinPaths,
        ..MapperConfig::default()
    };
    let mapping = Mapper::new(&g, &app, config).run().unwrap();
    let mut old = reference::NocSimulator::new(&g, SimConfig::fast());
    let mut new = NocSimulator::new(&g, SimConfig::fast());
    assert_eq!(
        old.run_trace(mapping.evaluation(), &app, 0.4),
        new.run_trace(mapping.evaluation(), &app, 0.4),
    );
}
