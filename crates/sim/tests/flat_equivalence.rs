//! The engine equivalence contract: for any seed, topology, pattern,
//! rate and configuration, the flat and event-driven engines produce
//! [`LatencyStats`] bit-identical to the pre-rebuild engine's (kept as
//! [`sunmap_sim::reference`]). The implementations share nothing but
//! the `SimConfig` type, so agreement here pins the RNG consumption
//! order, the arbitration order, the bubble-rule spacing and the
//! timing model all at once — three ways.
//!
//! Set `SIM_EQUIV_CASES=<n>` to sweep `n` extra injection rates per
//! case on top of the defaults (`make sim-equiv` wires this up).

use sunmap_mapping::{Evaluation, Mapper, MapperConfig};
use sunmap_sim::{adversarial_pattern, SimConfig, SimEngine, SimSession};
use sunmap_topology::builders;
use sunmap_traffic::benchmarks;
use sunmap_traffic::patterns::TrafficPattern;
use sunmap_traffic::CoreGraph;

const ENGINES: [SimEngine; 3] = [
    SimEngine::Reference,
    SimEngine::Flat,
    SimEngine::EventDriven,
];

/// Extra rates requested through the `SIM_EQUIV_CASES` env knob:
/// `n` evenly spaced rates in (0, 0.5], deterministic, no RNG.
fn extra_rates() -> Vec<f64> {
    let n: usize = std::env::var("SIM_EQUIV_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0);
    (1..=n).map(|i| 0.5 * i as f64 / n as f64).collect()
}

fn assert_synthetic_equivalent(
    g: &sunmap_topology::TopologyGraph,
    config: SimConfig,
    pattern: &TrafficPattern,
    rate: f64,
) {
    let run = |engine: SimEngine| {
        SimSession::builder(g)
            .config(SimConfig { engine, ..config })
            .build()
            .run_synthetic(pattern, rate)
    };
    let reference = run(SimEngine::Reference);
    for engine in [SimEngine::Flat, SimEngine::EventDriven] {
        assert_eq!(
            reference,
            run(engine),
            "{} {} rate {rate}: reference and {} engines diverged",
            g.kind(),
            pattern.name(),
            engine.name()
        );
    }
}

fn assert_trace_equivalent(
    g: &sunmap_topology::TopologyGraph,
    config: SimConfig,
    eval: &Evaluation,
    app: &CoreGraph,
    intensity: f64,
) {
    let run = |engine: SimEngine| {
        SimSession::builder(g)
            .config(SimConfig { engine, ..config })
            .build()
            .run_trace(eval, app, intensity)
    };
    let reference = run(SimEngine::Reference);
    for engine in [SimEngine::Flat, SimEngine::EventDriven] {
        assert_eq!(
            reference,
            run(engine),
            "trace intensity {intensity}: reference and {} engines diverged",
            engine.name()
        );
    }
}

#[test]
fn standard_library_adversarial_rates() {
    let extra = extra_rates();
    for g in builders::standard_library(16, 500.0).unwrap() {
        let pattern = adversarial_pattern(g.kind());
        for rate in [0.05, 0.2, 0.45].iter().chain(extra.iter()) {
            assert_synthetic_equivalent(&g, SimConfig::fast(), &pattern, *rate);
        }
    }
}

#[test]
fn uniform_random_consumes_rng_identically() {
    // UniformRandom draws from the RNG for every destination, and the
    // indirect topologies draw again per path pick — the strictest
    // check that the indexed engines consume randomness in the
    // reference order.
    for g in builders::standard_library(12, 500.0).unwrap() {
        assert_synthetic_equivalent(&g, SimConfig::fast(), &TrafficPattern::UniformRandom, 0.15);
    }
}

#[test]
fn every_pattern_on_mesh_and_clos() {
    let patterns = [
        TrafficPattern::UniformRandom,
        TrafficPattern::Transpose,
        TrafficPattern::BitComplement,
        TrafficPattern::BitReverse,
        TrafficPattern::Tornado,
        TrafficPattern::Hotspot {
            target: 3,
            per_mille: 300,
        },
        TrafficPattern::Permutation((0..16).rev().collect()),
    ];
    let mesh = builders::mesh(4, 4, 500.0).unwrap();
    let clos = builders::clos(4, 4, 4, 500.0).unwrap();
    for pattern in &patterns {
        assert_synthetic_equivalent(&mesh, SimConfig::fast(), pattern, 0.1);
        assert_synthetic_equivalent(&clos, SimConfig::fast(), pattern, 0.1);
    }
}

#[test]
fn extension_topologies_agree() {
    let octagon = builders::octagon(500.0).unwrap();
    let star = builders::star(8, 500.0).unwrap();
    for g in [&octagon, &star] {
        assert_synthetic_equivalent(g, SimConfig::fast(), &adversarial_pattern(g.kind()), 0.1);
    }
}

#[test]
fn config_knobs_preserve_equivalence() {
    let g = builders::torus(4, 4, 500.0).unwrap();
    let configs = [
        SimConfig {
            packet_flits: 1,
            ..SimConfig::fast()
        },
        SimConfig {
            packet_flits: 6,
            buffer_depth: 2,
            ..SimConfig::fast()
        },
        SimConfig {
            switch_pipeline: 0,
            ..SimConfig::fast()
        },
        SimConfig {
            buffer_depth: 1,
            seed: 1234,
            ..SimConfig::fast()
        },
        SimConfig {
            drain_cycles: 0,
            ..SimConfig::fast()
        },
    ];
    for config in configs {
        assert_synthetic_equivalent(&g, config, &TrafficPattern::Tornado, 0.25);
    }
}

#[test]
fn saturated_network_agrees() {
    let g = builders::mesh(3, 3, 500.0).unwrap();
    assert_synthetic_equivalent(&g, SimConfig::fast(), &TrafficPattern::BitComplement, 0.9);
}

#[test]
fn low_load_regime_agrees() {
    // The regime the event engine's Auto threshold targets: almost
    // every edge idle, so most cycles touch a handful of active sets.
    let g = builders::mesh(4, 4, 500.0).unwrap();
    for rate in [0.01, 0.05] {
        assert_synthetic_equivalent(&g, SimConfig::fast(), &TrafficPattern::UniformRandom, rate);
    }
}

#[test]
fn trace_mode_agrees_on_mapped_benchmarks() {
    let extra = extra_rates();
    for (app, rows, cols) in [(benchmarks::vopd(), 3, 4), (benchmarks::dsp_filter(), 2, 3)] {
        let g = builders::mesh(rows, cols, 1000.0).unwrap();
        let mapping = Mapper::new(&g, &app, MapperConfig::default())
            .run()
            .unwrap();
        for intensity in [0.1, 0.45].iter().chain(extra.iter()) {
            assert_trace_equivalent(
                &g,
                SimConfig::fast(),
                mapping.evaluation(),
                &app,
                *intensity,
            );
        }
    }
}

#[test]
fn trace_mode_agrees_with_split_routing() {
    // Split routing produces multi-path route sets, exercising the
    // weighted path pick.
    use sunmap_mapping::RoutingFunction;
    let g = builders::mesh(3, 4, 1000.0).unwrap();
    let app = benchmarks::vopd();
    let config = MapperConfig {
        routing: RoutingFunction::SplitMinPaths,
        ..MapperConfig::default()
    };
    let mapping = Mapper::new(&g, &app, config).run().unwrap();
    assert_trace_equivalent(&g, SimConfig::fast(), mapping.evaluation(), &app, 0.4);
}

#[test]
fn zero_rate_is_empty_on_every_engine() {
    // Degenerate rate 0 (no packets at all) — offered/delivered
    // bookkeeping included.
    let g = builders::mesh(3, 3, 500.0).unwrap();
    let run = |engine: SimEngine| {
        SimSession::builder(&g)
            .config(SimConfig {
                engine,
                ..SimConfig::fast()
            })
            .build()
            .run_synthetic(&TrafficPattern::Tornado, 0.0)
    };
    let reference = run(ENGINES[0]);
    assert_eq!(reference.packets_delivered, 0);
    for engine in &ENGINES[1..] {
        assert_eq!(reference, run(*engine));
    }
}
