//! Behavioural tests of the NoC simulator: queueing effects, parameter
//! sensitivity and conservation properties.

use sunmap_sim::{adversarial_pattern, SimConfig, SimSession};
use sunmap_topology::builders;
use sunmap_traffic::patterns::TrafficPattern;

fn cfg() -> SimConfig {
    SimConfig {
        warmup_cycles: 300,
        measure_cycles: 2_000,
        drain_cycles: 2_000,
        ..SimConfig::default()
    }
}

#[test]
fn deeper_buffers_do_not_reduce_throughput() {
    let g = builders::mesh(4, 4, 500.0).unwrap();
    let rate = 0.35;
    let shallow = {
        let mut c = cfg();
        c.buffer_depth = 1;
        let mut sim = SimSession::builder(&g).config(c).build();
        sim.run_synthetic(&TrafficPattern::UniformRandom, rate)
    };
    let deep = {
        let mut c = cfg();
        c.buffer_depth = 8;
        let mut sim = SimSession::builder(&g).config(c).build();
        sim.run_synthetic(&TrafficPattern::UniformRandom, rate)
    };
    assert!(
        deep.throughput >= shallow.throughput * 0.95,
        "deep {} vs shallow {}",
        deep.throughput,
        shallow.throughput
    );
}

#[test]
fn longer_packets_increase_latency() {
    let g = builders::mesh(3, 3, 500.0).unwrap();
    let short = {
        let mut c = cfg();
        c.packet_flits = 2;
        let mut sim = SimSession::builder(&g).config(c).build();
        sim.run_synthetic(&TrafficPattern::UniformRandom, 0.1)
    };
    let long = {
        let mut c = cfg();
        c.packet_flits = 8;
        let mut sim = SimSession::builder(&g).config(c).build();
        sim.run_synthetic(&TrafficPattern::UniformRandom, 0.1)
    };
    assert!(
        long.avg_latency > short.avg_latency + 3.0,
        "serialization must show: long {} vs short {}",
        long.avg_latency,
        short.avg_latency
    );
}

#[test]
fn deeper_pipelines_increase_latency_linearly_ish() {
    let g = builders::mesh(3, 3, 500.0).unwrap();
    let mut prev = 0.0;
    for pipe in [0u64, 2, 4] {
        let mut c = cfg();
        c.switch_pipeline = pipe;
        let mut sim = SimSession::builder(&g).config(c).build();
        let s = sim.run_synthetic(&TrafficPattern::UniformRandom, 0.05);
        assert!(
            s.avg_latency > prev,
            "pipeline {pipe} latency {} not above previous {prev}",
            s.avg_latency
        );
        prev = s.avg_latency;
    }
}

#[test]
fn delivered_never_exceeds_offered() {
    for g in builders::standard_library(16, 500.0).unwrap() {
        let mut sim = SimSession::builder(&g).config(cfg()).build();
        for rate in [0.1, 0.5, 0.9] {
            let s = sim.run_synthetic(&adversarial_pattern(g.kind()), rate);
            assert!(
                s.packets_delivered <= s.packets_offered,
                "{}: {s}",
                g.kind()
            );
        }
    }
}

#[test]
fn clos_beats_butterfly_under_tornado_at_high_load() {
    // The §6.2 path-diversity story, isolated to the two indirect
    // topologies under the same pattern.
    let clos = builders::clos(4, 4, 4, 500.0).unwrap();
    let bfly = builders::butterfly(4, 2, 500.0).unwrap();
    let rate = 0.4;
    let mut sim = SimSession::builder(&clos).config(cfg()).build();
    let c = sim.run_synthetic(&TrafficPattern::Tornado, rate);
    let mut sim = SimSession::builder(&bfly).config(cfg()).build();
    let b = sim.run_synthetic(&TrafficPattern::Tornado, rate);
    assert!(
        c.avg_latency < b.avg_latency / 2.0,
        "clos {c} should dominate butterfly {b} under tornado"
    );
}

#[test]
fn uniform_traffic_is_fair_across_terminals() {
    // With symmetric topology and pattern, delivery stays near 100%
    // below saturation — no terminal starves.
    let g = builders::torus(4, 4, 500.0).unwrap();
    let mut sim = SimSession::builder(&g).config(cfg()).build();
    let s = sim.run_synthetic(&TrafficPattern::UniformRandom, 0.2);
    assert!(s.delivery_ratio() > 0.98, "{s}");
}

#[test]
fn drain_period_lets_in_flight_packets_finish() {
    let g = builders::mesh(3, 3, 500.0).unwrap();
    let no_drain = {
        let mut c = cfg();
        c.drain_cycles = 0;
        let mut sim = SimSession::builder(&g).config(c).build();
        sim.run_synthetic(&TrafficPattern::UniformRandom, 0.1)
    };
    let with_drain = {
        let mut sim = SimSession::builder(&g).config(cfg()).build();
        sim.run_synthetic(&TrafficPattern::UniformRandom, 0.1)
    };
    assert!(with_drain.delivery_ratio() >= no_drain.delivery_ratio());
    assert!(with_drain.delivery_ratio() > 0.99);
}

#[test]
fn terminal_count_matches_mappable_nodes() {
    for g in builders::standard_library(12, 500.0).unwrap() {
        let sim = SimSession::builder(&g).config(cfg()).build();
        assert_eq!(sim.terminal_count(), g.mappable_nodes().len());
    }
}

#[test]
fn utilization_tracks_injection_rate() {
    let g = builders::mesh(4, 4, 500.0).unwrap();
    let mut sim = SimSession::builder(&g).config(cfg()).build();
    let low = sim.run_synthetic(&TrafficPattern::UniformRandom, 0.05);
    let mut sim = SimSession::builder(&g).config(cfg()).build();
    let high = sim.run_synthetic(&TrafficPattern::UniformRandom, 0.25);
    assert!(low.max_link_utilization <= 1.0 + 1e-9);
    assert!(high.mean_link_utilization > low.mean_link_utilization);
    assert!(high.max_link_utilization > low.max_link_utilization);
}

#[test]
fn adversarial_patterns_show_higher_imbalance_than_uniform() {
    // Tornado funnels whole ingress groups onto single butterfly stage
    // links; uniform spreads. The imbalance ratio exposes this.
    let g = builders::butterfly(4, 2, 500.0).unwrap();
    let mut sim = SimSession::builder(&g).config(cfg()).build();
    let uniform = sim.run_synthetic(&TrafficPattern::UniformRandom, 0.15);
    let mut sim = SimSession::builder(&g).config(cfg()).build();
    let tornado = sim.run_synthetic(&TrafficPattern::Tornado, 0.15);
    assert!(
        tornado.load_imbalance() > uniform.load_imbalance(),
        "tornado {} vs uniform {}",
        tornado.load_imbalance(),
        uniform.load_imbalance()
    );
}

#[test]
fn clos_balances_better_than_mesh_under_its_adversary() {
    // The §6.2 mechanism made visible: per-channel load spread.
    let clos = builders::clos(4, 4, 4, 500.0).unwrap();
    let mesh = builders::mesh(4, 4, 500.0).unwrap();
    let mut sim = SimSession::builder(&clos).config(cfg()).build();
    let c = sim.run_synthetic(&adversarial_pattern(clos.kind()), 0.3);
    let mut sim = SimSession::builder(&mesh).config(cfg()).build();
    let m = sim.run_synthetic(&adversarial_pattern(mesh.kind()), 0.3);
    assert!(
        c.max_link_utilization < m.max_link_utilization,
        "clos max util {} should undercut mesh {}",
        c.max_link_utilization,
        m.max_link_utilization
    );
}
