//! The flat, allocation-free cycle engine.
//!
//! A simulated cycle is a tight scan over dense arrays:
//!
//! * **flits are `Copy` records** (40 bytes: route id, hop index,
//!   packet id, next-edge demand, timestamps, flags) instead of heap
//!   nodes holding an `Rc<[NodeId]>` path — the per-edge ring-buffer
//!   slab is the flit pool, indexed by `edge × slot`;
//! * **per-edge input buffers are ring buffers** carved out of one
//!   dense `Vec<Flit>` with `head`/`len` arrays, not
//!   `Vec<VecDeque<Flit>>`;
//! * **routes are resolved once per pair** through the mapper's
//!   [`RouteTable`] and compiled into a [`RoutePlan`] — a flat arena of
//!   per-hop records with the edge id, the bubble-rule space
//!   requirement and the arrival-latency increment precomputed, so the
//!   arbitration loop never touches the graph, never recomputes a turn
//!   axis and never hashes a pair key.
//!
//! The engine is behaviorally identical to the original implementation
//! (kept as [`crate::reference`]): same RNG consumption order, same
//! index-ordered arbitration, same timing — for any seed the
//! [`LatencyStats`] match bit for bit. `tests/flat_equivalence.rs`
//! enforces this across topologies, patterns, rates and configs, and
//! `tests/regression_fixtures.rs` pins values captured from the
//! pre-rebuild engine.

use std::collections::VecDeque;
use std::sync::Arc;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::LatencyStats;
use sunmap_mapping::{Evaluation, RouteTable, RoutingFunction};
use sunmap_topology::{EdgeId, NodeCoords, NodeId, NodeKind, TopologyGraph, TopologyKind};
use sunmap_traffic::patterns::TrafficPattern;
use sunmap_traffic::CoreGraph;

/// Per-pair cap on enumerated minimum paths for synthetic routing on
/// indirect topologies (the adaptive-routing fan-out of paper §6.2).
pub const SIM_PATH_CAP: usize = 8;

/// Which cycle engine a [`SimSession`](crate::SimSession) drives.
///
/// Every engine produces **bit-identical** [`LatencyStats`] for the
/// same seed — `tests/flat_equivalence.rs` proves the three-way
/// equivalence (reference == flat == event-driven) across topologies,
/// patterns, rates and trace mode — so the choice is purely about
/// speed:
///
/// * [`Flat`](SimEngine::Flat) scans every edge's dense state each
///   cycle; fastest at medium-to-high load, but per-cycle cost grows
///   with topology size even when the network is nearly idle.
/// * [`EventDriven`](SimEngine::EventDriven) maintains active sets of
///   edges with queued head flits plus an event wheel for in-flight
///   hop completions, so a cycle with `k` active elements costs
///   `O(k)` instead of `O(V + E)` — the low-load / large-network
///   engine.
/// * [`Reference`](SimEngine::Reference) is the original pre-rebuild
///   implementation ([`crate::reference`]), kept as the behavioral
///   oracle. Slow; useful for differential debugging only.
/// * [`Auto`](SimEngine::Auto) (the default) picks per run: the
///   event-driven engine below
///   [`AUTO_EVENT_MAX_LOAD`](SimEngine::AUTO_EVENT_MAX_LOAD) offered
///   flits/cycle/terminal, the flat engine at or above it.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum SimEngine {
    /// Pick per run by offered load (see the type-level docs).
    #[default]
    Auto,
    /// The flat dense-scan engine ([`NocSimulator`]).
    Flat,
    /// The active-set + event-wheel engine.
    EventDriven,
    /// The pre-rebuild oracle ([`crate::reference`]).
    Reference,
}

impl SimEngine {
    /// Offered load (flits/cycle/terminal) below which [`Auto`]
    /// resolves to the event-driven engine. At 0.15 and above, enough
    /// edges hold flits each cycle that the flat engine's dense scan
    /// wins back its simplicity.
    ///
    /// [`Auto`]: SimEngine::Auto
    pub const AUTO_EVENT_MAX_LOAD: f64 = 0.15;

    /// Resolves `Auto` against an offered load (the injection rate in
    /// synthetic mode, the trace intensity in trace mode); the three
    /// concrete engines return themselves.
    pub fn resolve(self, load: f64) -> SimEngine {
        match self {
            SimEngine::Auto => {
                if load < Self::AUTO_EVENT_MAX_LOAD {
                    SimEngine::EventDriven
                } else {
                    SimEngine::Flat
                }
            }
            other => other,
        }
    }

    /// Parses a CLI / manifest / request spelling.
    pub fn parse(s: &str) -> Option<SimEngine> {
        match s {
            "auto" => Some(SimEngine::Auto),
            "flat" => Some(SimEngine::Flat),
            "event" => Some(SimEngine::EventDriven),
            "reference" => Some(SimEngine::Reference),
            _ => None,
        }
    }

    /// The canonical spelling accepted by [`SimEngine::parse`].
    pub fn name(self) -> &'static str {
        match self {
            SimEngine::Auto => "auto",
            SimEngine::Flat => "flat",
            SimEngine::EventDriven => "event",
            SimEngine::Reference => "reference",
        }
    }

    /// Route-plan layout class: the flat and event-driven engines (and
    /// `Auto`, which only ever resolves to one of them) share the
    /// compiled [`RoutePlan`] arena byte for byte, so they form one
    /// class; the reference engine resolves routes live and never
    /// consumes a plan, so a plan compiled under it must not be
    /// silently reused by the indexed engines (see
    /// [`RoutePlan::compatible`]).
    pub(crate) fn plan_class(self) -> u8 {
        match self {
            SimEngine::Auto | SimEngine::Flat | SimEngine::EventDriven => 0,
            SimEngine::Reference => 1,
        }
    }
}

/// Simulator parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimConfig {
    /// Flits per packet (head + body + tail).
    pub packet_flits: usize,
    /// Input-buffer depth per link, in flits (credits).
    pub buffer_depth: usize,
    /// Extra cycles a flit spends traversing a switch. ×pipes switches
    /// are deeply pipelined (crossing one costs several cycles), which
    /// is why switch-hop count dominates NoC latency in the paper; the
    /// default of 3 models a four-cycle switch.
    pub switch_pipeline: u64,
    /// Cycles simulated before measurement starts.
    pub warmup_cycles: u64,
    /// Cycles during which injected packets are measured.
    pub measure_cycles: u64,
    /// Extra cycles after the window so in-flight packets can finish.
    pub drain_cycles: u64,
    /// RNG seed (simulations are deterministic per seed).
    pub seed: u64,
    /// Which cycle engine runs the simulation. Purely a speed knob:
    /// every engine is bit-identical for the same seed.
    pub engine: SimEngine,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            packet_flits: 4,
            buffer_depth: 4,
            switch_pipeline: 3,
            warmup_cycles: 1_000,
            measure_cycles: 5_000,
            drain_cycles: 5_000,
            seed: 42,
            engine: SimEngine::Auto,
        }
    }
}

impl SimConfig {
    /// A short configuration for unit tests and doc examples.
    pub fn fast() -> Self {
        SimConfig {
            warmup_cycles: 200,
            measure_cycles: 1_000,
            drain_cycles: 1_000,
            ..SimConfig::default()
        }
    }
}

pub(crate) const F_HEAD: u8 = 1;
pub(crate) const F_TAIL: u8 = 2;
pub(crate) const F_MEASURED: u8 = 4;

/// "No packet owns this output" sentinel for the wormhole allocator.
pub(crate) const NO_OWNER: u32 = u32::MAX;

/// "This flit is at its final node" sentinel for [`Flit::next_edge`].
pub(crate) const NO_EDGE: u32 = u32::MAX;

/// One flit in flight: 40 bytes, `Copy`, no indirection. The path is a
/// route id into the [`RoutePlan`]; `hop` indexes the route's steps.
/// The edge the flit wants next and the downstream space its transfer
/// needs are denormalised into the record when it is (re)queued, so the
/// arbitration scan compares plain fields without touching the plan.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Flit {
    pub(crate) ready_at: u64,
    pub(crate) inject_cycle: u64,
    pub(crate) route: u32,
    pub(crate) packet: u32,
    /// The edge this flit's next step crosses (`NO_EDGE` at the final
    /// node).
    pub(crate) next_edge: u32,
    /// Downstream slots its transfer requires (1 for body flits, the
    /// step's bubble-rule space for head flits).
    pub(crate) required: u32,
    pub(crate) hop: u16,
    pub(crate) flags: u8,
}

impl Flit {
    pub(crate) const EMPTY: Flit = Flit {
        ready_at: 0,
        inject_cycle: 0,
        route: 0,
        packet: 0,
        next_edge: NO_EDGE,
        required: 1,
        hop: 0,
        flags: 0,
    };
}

/// One precompiled hop of a route: everything the transfer loop needs,
/// resolved at plan-build time.
#[derive(Debug, Clone, Copy)]
pub(crate) struct HopStep {
    /// The directed edge this step crosses.
    pub(crate) edge: u32,
    /// Cycles added to `ready_at` on arrival (link + downstream switch
    /// pipeline; attach links are NI wires folded into the switch).
    pub(crate) ready_add: u64,
    /// Free downstream space a *head* flit needs: one packet, or two
    /// when entering a new ring (injection or axis turn — the bubble
    /// condition keeping torus rings deadlock-free).
    pub(crate) head_space: u32,
    /// Whether a flit finishing this step leaves the network at a core
    /// port (indirect-topology egress) instead of entering the buffer.
    pub(crate) eject_at_dst: bool,
}

/// A route in the plan: a span of [`HopStep`]s.
#[derive(Debug, Clone, Copy)]
pub(crate) struct RouteSpan {
    pub(crate) first_step: u32,
    pub(crate) step_count: u16,
    /// The source vertex is a switch (injection pays its pipeline).
    pub(crate) start_at_switch: bool,
}

/// Flat arena of compiled routes.
#[derive(Debug, Default)]
pub(crate) struct RouteArena {
    pub(crate) steps: Vec<HopStep>,
    pub(crate) routes: Vec<RouteSpan>,
}

/// Hot per-node simulator state (see the `nodes` field docs).
#[derive(Debug, Clone, Copy)]
struct NodeState {
    /// Wanted-edge bitmap by `edge_local` position: bit set when some
    /// queued head flit (ready *or* still pending) wants that outgoing
    /// edge. In steady state most switches hold *some* flit, so a busy
    /// count alone filters little — the bitmap dismisses an unwanted
    /// edge with one test. Pending heads keep their bit set (they will
    /// become eligible by time alone, with no event to hook); the
    /// readiness timestamp is checked in the arbitration scan.
    mask: u64,
    /// Nonempty queues (injection or buffer) at this node; the
    /// transfer scan skips every edge whose source node counts zero.
    /// Pure bookkeeping: skipped edges could not have moved a flit,
    /// so arbitration order is unchanged.
    busy: u32,
}

impl NodeState {
    const EMPTY: NodeState = NodeState { mask: 0, busy: 0 };
}

/// FNV-1a hash of a graph's directed edge list, capacities included
/// (the same identity check the mapper's `RouteTable` uses).
fn edge_fingerprint(g: &TopologyGraph) -> u64 {
    let mut hash: u64 = 0xCBF2_9CE4_8422_2325;
    let mut mix = |word: u64| {
        for byte in word.to_le_bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
    };
    for (_, e) in g.edges() {
        mix(e.src.index() as u64);
        mix(e.dst.index() as u64);
        mix(e.capacity.to_bits());
    }
    hash
}

/// Axis of movement of the step `u -> v`, used to detect when a packet
/// turns into a new ring (grid column/row, hypercube dimension). `None`
/// for stage networks, which are acyclic anyway.
fn axis_of(g: &TopologyGraph, u: NodeId, v: NodeId) -> Option<u32> {
    match (g.coords(u), g.coords(v)) {
        (NodeCoords::Grid { row: r1, .. }, NodeCoords::Grid { row: r2, .. }) => {
            Some(if r1 == r2 { 0 } else { 1 })
        }
        (NodeCoords::Hyper { label: a }, NodeCoords::Hyper { label: b }) => {
            Some(2 + (a ^ b).trailing_zeros())
        }
        _ => None,
    }
}

impl RouteArena {
    /// Compiles the route `nodes`/`edges` (with `edges[i]` connecting
    /// `nodes[i]` to `nodes[i+1]`) and returns its route id.
    fn push_route(
        &mut self,
        g: &TopologyGraph,
        config: &SimConfig,
        nodes: &[NodeId],
        edges: &[EdgeId],
    ) -> u32 {
        debug_assert_eq!(nodes.len(), edges.len() + 1);
        let pf = config.packet_flits as u32;
        let first_step = self.steps.len() as u32;
        for (i, &e) in edges.iter().enumerate() {
            let (u, v) = (nodes[i], nodes[i + 1]);
            let attach =
                g.node_kind(u) == NodeKind::CorePort || g.node_kind(v) == NodeKind::CorePort;
            let ready_add = if attach {
                config.switch_pipeline
            } else {
                1 + config.switch_pipeline
            };
            let ring_entry = i == 0 || axis_of(g, nodes[i - 1], u) != axis_of(g, u, v);
            let head_space = if ring_entry { 2 * pf } else { pf };
            let eject_at_dst = i + 1 == edges.len() && g.node_kind(v) == NodeKind::CorePort;
            self.steps.push(HopStep {
                edge: e.index() as u32,
                ready_add,
                head_space,
                eject_at_dst,
            });
        }
        self.routes.push(RouteSpan {
            first_step,
            step_count: edges.len() as u16,
            start_at_switch: g.node_kind(nodes[0]) == NodeKind::Switch,
        });
        (self.routes.len() - 1) as u32
    }

    /// Compiles a route given as an edge sequence (the mapper
    /// [`RouteTable`]'s cached representation).
    fn push_edge_route(&mut self, g: &TopologyGraph, config: &SimConfig, edges: &[EdgeId]) -> u32 {
        let mut nodes = Vec::with_capacity(edges.len() + 1);
        nodes.push(g.edge(edges[0]).src);
        for &e in edges {
            nodes.push(g.edge(e).dst);
        }
        self.push_route(g, config, &nodes, edges)
    }
}

/// The compiled per-pair routes of one topology under one simulator
/// configuration: built once (through the mapper's [`RouteTable`]) and
/// shareable across simulators — the sweep driver builds one plan per
/// topology and hands clones of the `Arc` to every rate worker.
#[derive(Debug)]
pub struct RoutePlan {
    pub(crate) arena: RouteArena,
    /// Terminal-pair table: `pair_offsets[t*n+d]..pair_offsets[t*n+d+1]`
    /// indexes `route_ids`.
    pair_offsets: Vec<u32>,
    route_ids: Vec<u32>,
    /// Identity of the compiled-for graph: kind, shape and an FNV-1a
    /// fingerprint of the full directed edge list, so
    /// [`RoutePlan::compatible`] rejects a merely same-shaped graph
    /// whose edge ids mean different physical links.
    kind: TopologyKind,
    edge_fingerprint: u64,
    terminal_count: usize,
    edge_count: usize,
    /// Direct topologies take the single dimension-ordered route; on
    /// indirect ones the simulator picks uniformly among the set.
    pub(crate) direct: bool,
    packet_flits: usize,
    switch_pipeline: u64,
    /// Layout class of the engine this plan was compiled under (see
    /// [`SimEngine::plan_class`]).
    engine_class: u8,
}

impl RoutePlan {
    /// Compiles the synthetic-traffic routes of `g` under `config`:
    /// dimension-ordered on direct topologies (deadlock-free with the
    /// bubble rule), all minimum paths (capped at [`SIM_PATH_CAP`]) on
    /// the acyclic multistage networks. Pair enumeration and caching go
    /// through the mapper's `table`, so a table prepared by the
    /// exploration flow is reused as-is.
    ///
    /// # Panics
    ///
    /// Panics if `table` was built for a different graph.
    pub fn synthetic(g: &TopologyGraph, table: &mut RouteTable, config: &SimConfig) -> RoutePlan {
        let direct = g.kind().is_direct();
        if direct {
            table.prepare(g, RoutingFunction::DimensionOrdered);
        } else {
            table.prepare_sim_routes(g, SIM_PATH_CAP);
        }
        let terminals = table.mappable_nodes().to_vec();
        let n = terminals.len();
        let mut arena = RouteArena::default();
        let mut pair_offsets = Vec::with_capacity(n * n + 1);
        let mut route_ids = Vec::new();
        pair_offsets.push(0u32);
        for &a in &terminals {
            for &b in &terminals {
                if a != b {
                    if direct {
                        if let Some(p) = table.dimension_ordered_route(a, b).as_ref() {
                            route_ids.push(arena.push_edge_route(g, config, p.edges()));
                        }
                    } else {
                        for p in table.sim_route_set(a, b).iter() {
                            route_ids.push(arena.push_edge_route(g, config, p.edges()));
                        }
                    }
                }
                pair_offsets.push(route_ids.len() as u32);
            }
        }
        RoutePlan {
            arena,
            pair_offsets,
            route_ids,
            kind: g.kind(),
            edge_fingerprint: edge_fingerprint(g),
            terminal_count: n,
            edge_count: g.edge_count(),
            direct,
            packet_flits: config.packet_flits,
            switch_pipeline: config.switch_pipeline,
            engine_class: config.engine.plan_class(),
        }
    }

    /// Compiles a trace plan from a mapping evaluation's chosen paths
    /// (no pair table; routes are addressed by id).
    pub(crate) fn trace(
        g: &TopologyGraph,
        config: &SimConfig,
        eval: &Evaluation,
    ) -> (RoutePlan, Vec<Trace>) {
        let adj = g.adjacency_matrix();
        let mut arena = RouteArena::default();
        let mut traces = Vec::with_capacity(eval.routes.len());
        let mut term_of = vec![u32::MAX; g.node_count()];
        for (i, t) in g.mappable_nodes().iter().enumerate() {
            term_of[t.index()] = i as u32;
        }
        for r in &eval.routes {
            let mut routes = Vec::with_capacity(r.paths.len());
            for (p, f) in &r.paths {
                let edges: Vec<EdgeId> = p
                    .windows(2)
                    .map(|w| {
                        adj.edge_between(w[0], w[1])
                            .expect("evaluated routes follow topology edges")
                    })
                    .collect();
                routes.push((arena.push_route(g, config, p, &edges), *f));
            }
            traces.push(Trace {
                terminal: term_of[r.src_node.index()] as usize,
                packet_prob: 0.0, // filled by the caller (needs intensity)
                bandwidth: r.commodity.bandwidth,
                routes,
            });
        }
        let plan = RoutePlan {
            arena,
            pair_offsets: Vec::new(),
            route_ids: Vec::new(),
            kind: g.kind(),
            edge_fingerprint: edge_fingerprint(g),
            terminal_count: g.mappable_nodes().len(),
            edge_count: g.edge_count(),
            direct: g.kind().is_direct(),
            packet_flits: config.packet_flits,
            switch_pipeline: config.switch_pipeline,
            engine_class: config.engine.plan_class(),
        };
        (plan, traces)
    }

    #[inline]
    pub(crate) fn routes_for(&self, src_terminal: usize, dst_terminal: usize) -> &[u32] {
        let p = src_terminal * self.terminal_count + dst_terminal;
        let lo = self.pair_offsets[p] as usize;
        let hi = self.pair_offsets[p + 1] as usize;
        &self.route_ids[lo..hi]
    }

    /// The FNV-1a fingerprint of the edge list this plan was compiled
    /// for, folded with the engine layout class where the class affects
    /// plan layout. For every plan the indexed engines (`Auto`, `Flat`,
    /// `EventDriven`) compile, the class term is zero and the value
    /// equals the mapper `RouteTable::fingerprint` of the same graph,
    /// so warm caches can key tables and plans together; a plan
    /// compiled under the reference engine hashes differently and can
    /// never collide into an indexed-engine cache slot.
    pub fn fingerprint(&self) -> u64 {
        self.edge_fingerprint ^ (u64::from(self.engine_class) * 0x9E37_79B9_7F4A_7C15)
    }

    /// Whether this plan was compiled for `g` under `config`: same
    /// topology kind, shape, directed edge list (endpoints and
    /// capacities, order-sensitive), timing-relevant parameters and
    /// engine layout class — a plan compiled under one engine class is
    /// never silently reused by another (the indexed engines `Auto`,
    /// `Flat` and `EventDriven` share one class and one arena layout;
    /// the reference engine is its own class).
    pub fn compatible(&self, g: &TopologyGraph, config: &SimConfig) -> bool {
        self.kind == g.kind()
            && self.terminal_count == g.mappable_nodes().len()
            && self.edge_count == g.edge_count()
            && self.edge_fingerprint == edge_fingerprint(g)
            && self.packet_flits == config.packet_flits
            && self.switch_pipeline == config.switch_pipeline
            && self.engine_class == config.engine.plan_class()
    }
}

/// One trace-driven commodity: injection probability plus its weighted
/// compiled routes.
#[derive(Debug)]
pub(crate) struct Trace {
    pub(crate) terminal: usize,
    pub(crate) packet_prob: f64,
    pub(crate) bandwidth: f64,
    pub(crate) routes: Vec<(u32, f64)>,
}

/// The flit-level simulator. Create one per run; it borrows the
/// topology graph and owns all queues.
///
/// See the [crate documentation](crate) for the model and an example.
#[derive(Debug)]
pub struct NocSimulator<'a> {
    graph: &'a TopologyGraph,
    config: SimConfig,
    rng: SmallRng,
    terminals: Vec<NodeId>,
    /// Cached synthetic route plan (built on first use, or supplied).
    plan: Option<Arc<RoutePlan>>,

    // Static per-graph arrays.
    /// Source node index per edge.
    edge_src: Vec<u32>,
    /// Destination node index per edge.
    edge_dst: Vec<u32>,
    /// Node index of each terminal.
    term_node: Vec<u32>,
    /// Whether each edge is a network link (for utilisation stats).
    edge_is_net: Vec<bool>,
    /// Flattened candidate-source lists per node: sources
    /// `ns_items[ns_offsets[v]..ns_offsets[v+1]]` compete for outputs
    /// of node `v`. Encoded: `< terminal_count` = injection queue,
    /// otherwise `item - terminal_count` = edge buffer.
    ns_offsets: Vec<u32>,
    ns_items: Vec<u32>,

    // Ring buffers: one slab, `cap` slots per edge.
    cap: u32,
    ring_slots: Vec<Flit>,
    ring_head: Vec<u32>,
    ring_len: Vec<u32>,
    /// Denormalised head-flit metadata per ring (valid when
    /// `ring_len > 0`, maintained on every head change): the head's
    /// `ready_at` and whether it is at its final node. The per-cycle
    /// eject scan reads only these dense arrays and touches the flit
    /// slab just to pop.
    ring_ready: Vec<u64>,
    ring_final: Vec<bool>,

    /// Injection queue per terminal (unbounded; flits are `Copy`, the
    /// deques are reused across runs without reallocating).
    inject: Vec<VecDeque<Flit>>,
    /// Wormhole output allocation per edge (`NO_OWNER` = free).
    owner: Vec<u32>,
    /// Round-robin pointer per edge.
    rr: Vec<u32>,
    /// Per-source "released a flit this cycle" flags (terminals then
    /// edges).
    source_moved: Vec<bool>,
    /// Hot per-node state, one record per node so the transfer loop's
    /// per-edge fast path touches a single cache line.
    nodes: Vec<NodeState>,
    /// Denormalised head-flit mirror per source, aligned with
    /// `ns_items`: the edge the head wants (`NO_EDGE` = empty source
    /// or a flit at its final node), its packet id, space requirement,
    /// readiness timestamp and wanted-edge mask bit. Updated
    /// **synchronously at every queue-head change** (pop, eject, push
    /// onto an empty queue), so the entries always equal what the
    /// reference engine would read live from the heads — there is no
    /// staleness window, and the per-edge arbitration scan compares
    /// plain integers. Sources that already released a flit this cycle
    /// are excluded via `source_moved`.
    want_edge: Vec<u32>,
    want_packet: Vec<u32>,
    want_required: Vec<u32>,
    want_ready: Vec<u64>,
    want_bit: Vec<u64>,
    /// Source id → its slot in `ns_items` (each source appears once).
    source_slot: Vec<u32>,
    /// Position of each edge within its source node's outgoing list
    /// (`u8::MAX` when beyond the 64 mask bits — such nodes fall back
    /// to always scanning).
    edge_local: Vec<u8>,

    next_packet: u32,
    now: u64,
    latencies: Vec<u64>,
    offered: usize,
    /// Flits transferred per edge during the measurement window.
    edge_flits: Vec<u64>,
    /// Injected-but-not-ejected flits; lets the drain loop stop early
    /// once the network is empty (no observable effect on statistics).
    in_flight: u64,
}

impl<'a> NocSimulator<'a> {
    /// Creates a simulator over `graph` with terminals at its mappable
    /// nodes. The synthetic route plan is compiled on first use.
    ///
    /// Deprecated: build a [`SimSession`](crate::SimSession) instead —
    /// it sets engine selection, plan reuse and trace mode in one
    /// place. This constructor always runs the flat engine, ignoring
    /// [`SimConfig::engine`].
    #[deprecated(
        since = "0.2.0",
        note = "build a `SimSession` (`SimSession::builder(graph).config(config).build()`); \
                this constructor always runs the flat engine, ignoring `SimConfig::engine`"
    )]
    pub fn new(graph: &'a TopologyGraph, config: SimConfig) -> Self {
        Self::build(graph, config, None)
    }

    /// Creates a simulator reusing a precompiled route `plan`.
    ///
    /// Deprecated: build a [`SimSession`](crate::SimSession) with
    /// [`plan`](crate::SimSessionBuilder::plan) instead.
    ///
    /// # Panics
    ///
    /// Panics if `plan` is not [`compatible`](RoutePlan::compatible)
    /// with `graph` and `config`.
    #[deprecated(
        since = "0.2.0",
        note = "build a `SimSession` (`SimSession::builder(graph).config(config).plan(plan).build()`); \
                this constructor always runs the flat engine, ignoring `SimConfig::engine`"
    )]
    pub fn with_plan(graph: &'a TopologyGraph, config: SimConfig, plan: Arc<RoutePlan>) -> Self {
        assert!(
            plan.compatible(graph, &config),
            "route plan compiled for a different graph or configuration"
        );
        Self::build(graph, config, Some(plan))
    }

    pub(crate) fn build(
        graph: &'a TopologyGraph,
        config: SimConfig,
        plan: Option<Arc<RoutePlan>>,
    ) -> Self {
        let terminals = graph.mappable_nodes().to_vec();
        let terms = terminals.len();
        let edge_count = graph.edge_count();
        // Candidate sources per node, in the reference order: injection
        // queues first (terminal order), then input buffers (edge
        // order).
        let mut per_node: Vec<Vec<u32>> = vec![Vec::new(); graph.node_count()];
        for (i, t) in terminals.iter().enumerate() {
            per_node[t.index()].push(i as u32);
        }
        let mut edge_src = vec![0u32; edge_count];
        let mut edge_dst = vec![0u32; edge_count];
        let mut edge_is_net = vec![false; edge_count];
        for (eid, edge) in graph.edges() {
            per_node[edge.dst.index()].push((terms + eid.index()) as u32);
            edge_src[eid.index()] = edge.src.index() as u32;
            edge_dst[eid.index()] = edge.dst.index() as u32;
            edge_is_net[eid.index()] = edge.is_network_link();
        }
        let term_node: Vec<u32> = terminals.iter().map(|t| t.index() as u32).collect();
        let mut out_degree_so_far = vec![0usize; graph.node_count()];
        let mut edge_local = vec![u8::MAX; edge_count];
        for (eid, edge) in graph.edges() {
            let pos = out_degree_so_far[edge.src.index()];
            out_degree_so_far[edge.src.index()] += 1;
            if pos < 64 {
                edge_local[eid.index()] = pos as u8;
            }
        }
        let mut ns_offsets = Vec::with_capacity(graph.node_count() + 1);
        let mut ns_items = Vec::new();
        ns_offsets.push(0u32);
        for list in &per_node {
            ns_items.extend_from_slice(list);
            ns_offsets.push(ns_items.len() as u32);
        }
        let mut source_slot = vec![0u32; terms + edge_count];
        for (k, &s) in ns_items.iter().enumerate() {
            source_slot[s as usize] = k as u32;
        }
        let cap = (config.buffer_depth * config.packet_flits) as u32;
        NocSimulator {
            graph,
            rng: SmallRng::seed_from_u64(config.seed),
            terminals,
            plan,
            edge_src,
            edge_dst,
            term_node,
            edge_is_net,
            ns_offsets,
            ns_items,
            cap,
            ring_slots: vec![Flit::EMPTY; edge_count * cap as usize],
            ring_head: vec![0; edge_count],
            ring_len: vec![0; edge_count],
            ring_ready: vec![0; edge_count],
            ring_final: vec![false; edge_count],
            inject: (0..terms).map(|_| VecDeque::new()).collect(),
            owner: vec![NO_OWNER; edge_count],
            rr: vec![0; edge_count],
            source_moved: vec![false; terms + edge_count],
            nodes: vec![NodeState::EMPTY; graph.node_count()],
            want_edge: vec![NO_EDGE; terms + edge_count],
            want_packet: vec![0; terms + edge_count],
            want_required: vec![1; terms + edge_count],
            want_ready: vec![0; terms + edge_count],
            want_bit: vec![0; terms + edge_count],
            source_slot,
            edge_local,
            next_packet: 0,
            now: 0,
            latencies: Vec::new(),
            offered: 0,
            edge_flits: vec![0; edge_count],
            in_flight: 0,
            config,
        }
    }

    /// Number of terminals (injection points).
    pub fn terminal_count(&self) -> usize {
        self.terminals.len()
    }

    /// The synthetic route plan, compiling it on first use.
    fn synthetic_plan(&mut self) -> Arc<RoutePlan> {
        if self.plan.is_none() {
            let mut table = RouteTable::new(self.graph);
            self.plan = Some(Arc::new(RoutePlan::synthetic(
                self.graph,
                &mut table,
                &self.config,
            )));
        }
        self.plan.as_ref().expect("plan just built").clone()
    }

    /// Runs a synthetic-traffic simulation: every terminal injects
    /// packets as a Bernoulli process of `injection_rate` flits per
    /// cycle, destinations drawn from `pattern`, routes drawn uniformly
    /// from the minimum paths.
    pub fn run_synthetic(&mut self, pattern: &TrafficPattern, injection_rate: f64) -> LatencyStats {
        let plan = self.synthetic_plan();
        self.reset();
        let n = self.terminals.len();
        let packet_prob = (injection_rate / self.config.packet_flits as f64).clamp(0.0, 1.0);
        let total =
            self.config.warmup_cycles + self.config.measure_cycles + self.config.drain_cycles;
        let inject_until = self.config.warmup_cycles + self.config.measure_cycles;
        while self.now < total {
            self.eject();
            if self.now < inject_until {
                for t in 0..n {
                    if self.rng.gen_bool(packet_prob) {
                        let Some(dst) = pattern.destination(t, n, &mut self.rng) else {
                            continue;
                        };
                        let ids = plan.routes_for(t, dst);
                        if ids.is_empty() {
                            continue;
                        }
                        let rid = if plan.direct {
                            ids[0]
                        } else {
                            ids[self.rng.gen_range(0..ids.len())]
                        };
                        self.inject_packet(t, rid, &plan);
                    }
                }
            } else if self.in_flight == 0 {
                // Injection is over and the network is drained: the
                // remaining cycles cannot change any statistic.
                break;
            }
            self.transfer(&plan);
            self.now += 1;
        }
        self.stats()
    }

    /// Runs a trace-driven simulation of a mapped application: each
    /// commodity injects packets at a rate proportional to its bandwidth
    /// demand, scaled so the heaviest commodity injects `intensity`
    /// flits per cycle, over the paths the mapping evaluation selected.
    pub fn run_trace(
        &mut self,
        eval: &Evaluation,
        app: &CoreGraph,
        intensity: f64,
    ) -> LatencyStats {
        let (plan, mut traces) = RoutePlan::trace(self.graph, &self.config, eval);
        let plan = Arc::new(plan);
        let max_bw = app
            .commodities()
            .first()
            .map(|c| c.bandwidth)
            .unwrap_or(1.0);
        for tr in &mut traces {
            tr.packet_prob = (intensity * tr.bandwidth / max_bw / self.config.packet_flits as f64)
                .clamp(0.0, 1.0);
        }
        self.reset();
        let total =
            self.config.warmup_cycles + self.config.measure_cycles + self.config.drain_cycles;
        let inject_until = self.config.warmup_cycles + self.config.measure_cycles;
        while self.now < total {
            self.eject();
            if self.now < inject_until {
                for tr in &traces {
                    if self.rng.gen_bool(tr.packet_prob) {
                        let pick: f64 = self.rng.gen_range(0.0..1.0);
                        let mut acc = 0.0;
                        let mut chosen = tr.routes.last().expect("commodity has a route").0;
                        for &(rid, f) in &tr.routes {
                            acc += f;
                            if pick <= acc {
                                chosen = rid;
                                break;
                            }
                        }
                        self.inject_packet(tr.terminal, chosen, &plan);
                    }
                }
            } else if self.in_flight == 0 {
                break;
            }
            self.transfer(&plan);
            self.now += 1;
        }
        self.stats()
    }

    fn reset(&mut self) {
        self.ring_head.fill(0);
        self.ring_len.fill(0);
        for q in &mut self.inject {
            q.clear();
        }
        self.owner.fill(NO_OWNER);
        self.rr.fill(0);
        self.nodes.fill(NodeState::EMPTY);
        self.want_edge.fill(NO_EDGE);
        self.want_bit.fill(0);
        self.next_packet = 0;
        self.now = 0;
        self.latencies.clear();
        self.offered = 0;
        self.edge_flits.fill(0);
        self.in_flight = 0;
        self.rng = SmallRng::seed_from_u64(self.config.seed);
    }

    fn inject_packet(&mut self, terminal: usize, route: u32, plan: &RoutePlan) {
        let measured = self.now >= self.config.warmup_cycles
            && self.now < self.config.warmup_cycles + self.config.measure_cycles;
        if measured {
            self.offered += 1;
        }
        let packet = self.next_packet;
        self.next_packet += 1;
        // The head flit pays the source-switch pipeline before it can
        // leave (injection goes through the local switch for direct
        // topologies; core ports are plain wires).
        let ready_at = if plan.arena.routes[route as usize].start_at_switch {
            self.now + self.config.switch_pipeline
        } else {
            self.now
        };
        let pf = self.config.packet_flits;
        let base = if measured { F_MEASURED } else { 0 };
        let fresh_head = self.inject[terminal].is_empty();
        if fresh_head {
            self.nodes[self.term_node[terminal] as usize].busy += 1;
        }
        let span = plan.arena.routes[route as usize];
        let (next_edge, head_space) = if span.step_count == 0 {
            (NO_EDGE, 1)
        } else {
            let step = plan.arena.steps[span.first_step as usize];
            (step.edge, step.head_space)
        };
        for i in 0..pf {
            let mut flags = base;
            let mut required = 1;
            if i == 0 {
                flags |= F_HEAD;
                required = head_space;
            }
            if i + 1 == pf {
                flags |= F_TAIL;
            }
            self.inject[terminal].push_back(Flit {
                ready_at,
                inject_cycle: self.now,
                route,
                packet,
                next_edge,
                required,
                hop: 0,
                flags,
            });
        }
        self.in_flight += pf as u64;
        if fresh_head {
            self.update_source_desire(terminal as u32, self.term_node[terminal] as usize);
        }
    }

    /// The head flit of encoded source `s`, if any.
    #[inline]
    fn source_head(&self, s: u32) -> Option<&Flit> {
        let s = s as usize;
        let terms = self.terminals.len();
        if s < terms {
            self.inject[s].front()
        } else {
            let b = s - terms;
            if self.ring_len[b] == 0 {
                None
            } else {
                Some(&self.ring_slots[b * self.cap as usize + self.ring_head[b] as usize])
            }
        }
    }

    /// Mirrors source `s`'s (possibly new) head flit into its desire
    /// entry and refolds `node`'s wanted-edge bitmap from its sources'
    /// cached bits. Called at every queue-head change, so the entries
    /// always match a live read of the heads.
    fn update_source_desire(&mut self, s: u32, node: usize) {
        let k = self.source_slot[s as usize] as usize;
        match self.source_head(s).copied() {
            Some(head) => {
                self.want_edge[k] = head.next_edge;
                self.want_packet[k] = head.packet;
                self.want_required[k] = head.required;
                self.want_ready[k] = head.ready_at;
                self.want_bit[k] = if head.next_edge == NO_EDGE {
                    0
                } else {
                    // A flit at this node always wants one of the
                    // node's outgoing edges.
                    let l = self.edge_local[head.next_edge as usize];
                    if l < 64 {
                        1u64 << l
                    } else {
                        u64::MAX
                    }
                };
            }
            None => {
                self.want_edge[k] = NO_EDGE;
                self.want_bit[k] = 0;
            }
        }
        let s0 = self.ns_offsets[node] as usize;
        let s1 = self.ns_offsets[node + 1] as usize;
        let mut mask = 0u64;
        for kk in s0..s1 {
            mask |= self.want_bit[kk];
        }
        self.nodes[node].mask = mask;
    }

    fn pop_source(&mut self, s: u32) -> Flit {
        let s = s as usize;
        let terms = self.terminals.len();
        if s < terms {
            let node = self.term_node[s] as usize;
            let flit = self.inject[s].pop_front().expect("candidate head exists");
            if self.inject[s].is_empty() {
                self.nodes[node].busy -= 1;
            }
            self.update_source_desire(s as u32, node);
            flit
        } else {
            let b = s - terms;
            let node = self.edge_dst[b] as usize;
            let cap = self.cap;
            let flit = self.ring_slots[b * cap as usize + self.ring_head[b] as usize];
            self.ring_head[b] = (self.ring_head[b] + 1) % cap;
            self.ring_len[b] -= 1;
            if self.ring_len[b] == 0 {
                self.nodes[node].busy -= 1;
            } else {
                self.sync_ring_head(b);
            }
            self.update_source_desire((terms + b) as u32, node);
            flit
        }
    }

    /// Refreshes the denormalised head metadata of ring `b` (which must
    /// be nonempty).
    #[inline]
    fn sync_ring_head(&mut self, b: usize) {
        let head = &self.ring_slots[b * self.cap as usize + self.ring_head[b] as usize];
        self.ring_ready[b] = head.ready_at;
        self.ring_final[b] = head.next_edge == NO_EDGE;
    }

    fn eject(&mut self) {
        if self.in_flight == 0 {
            return;
        }
        let cap = self.cap as usize;
        for e in 0..self.ring_len.len() {
            // Dense-array pre-check; the flit slab is only touched for
            // an actual ejection.
            if self.ring_len[e] == 0 || !self.ring_final[e] || self.ring_ready[e] > self.now {
                continue;
            }
            let head = self.ring_slots[e * cap + self.ring_head[e] as usize];
            self.ring_head[e] = (self.ring_head[e] + 1) % self.cap;
            self.ring_len[e] -= 1;
            let node = self.edge_dst[e] as usize;
            if self.ring_len[e] == 0 {
                self.nodes[node].busy -= 1;
            } else {
                self.sync_ring_head(e);
            }
            self.update_source_desire((self.terminals.len() + e) as u32, node);
            self.in_flight -= 1;
            if head.flags & F_TAIL != 0 && head.flags & F_MEASURED != 0 {
                self.latencies.push(self.now - head.inject_cycle);
            }
        }
    }

    fn transfer(&mut self, plan: &RoutePlan) {
        // One flit per edge per cycle; a source queue also releases at
        // most one flit per cycle. Virtual cut-through with bubble flow
        // control (see HopStep::head_space).
        if self.in_flight == 0 {
            return;
        }
        self.source_moved.fill(false);
        let measure_window = self.now >= self.config.warmup_cycles
            && self.now < self.config.warmup_cycles + self.config.measure_cycles;
        for e in 0..self.edge_src.len() {
            let node = self.edge_src[e] as usize;
            let state = self.nodes[node];
            // No queue at the source node holds a flit: nothing could
            // cross this edge, skip the arbitration scan entirely.
            // (busy > 0 implies the node has sources.)
            if state.busy == 0 {
                continue;
            }
            // No queued head (ready or pending) wants this edge: one
            // bit test instead of a source scan.
            let l = self.edge_local[e];
            let wanted = if l < 64 {
                state.mask & (1u64 << l) != 0
            } else {
                state.mask == u64::MAX
            };
            if !wanted {
                continue;
            }
            let free = self.cap - self.ring_len[e];
            if free == 0 {
                continue;
            }
            let s0 = self.ns_offsets[node] as usize;
            let s1 = self.ns_offsets[node + 1] as usize;
            let n_src = s1 - s0;
            let eu = e as u32;
            let eligible = |sim: &Self, k: usize| -> bool {
                sim.want_edge[k] == eu
                    && sim.want_ready[k] <= sim.now
                    && free >= sim.want_required[k]
                    && !sim.source_moved[sim.ns_items[k] as usize]
            };
            let chosen = if self.owner[e] != NO_OWNER {
                let pid = self.owner[e];
                (s0..s1).find(|&k| self.want_packet[k] == pid && eligible(self, k))
            } else {
                let start = self.rr[e] as usize % n_src;
                // Circular scan from `start` without a per-step modulo
                // (start + j stays below 2·n_src, one conditional
                // subtract wraps it).
                (0..n_src)
                    .map(|j| {
                        let mut k = start + j;
                        if k >= n_src {
                            k -= n_src;
                        }
                        s0 + k
                    })
                    .find(|&k| eligible(self, k))
            };
            let Some(k) = chosen else { continue };
            let src_slot = self.ns_items[k];
            let mut flit = self.pop_source(src_slot);
            self.source_moved[src_slot as usize] = true;
            if measure_window {
                self.edge_flits[e] += 1;
            }
            self.rr[e] = self.rr[e].wrapping_add(1);
            let is_tail = flit.flags & F_TAIL != 0;
            self.owner[e] = if is_tail { NO_OWNER } else { flit.packet };
            let route = plan.arena.routes[flit.route as usize];
            let step = plan.arena.steps[route.first_step as usize + flit.hop as usize];
            flit.hop += 1;
            // A flit reaching its destination core port leaves the
            // network right here: the egress attach link is an NI wire,
            // not a buffered channel.
            if u32::from(flit.hop) == u32::from(route.step_count) && step.eject_at_dst {
                self.in_flight -= 1;
                if is_tail && flit.flags & F_MEASURED != 0 {
                    self.latencies.push(self.now - flit.inject_cycle);
                }
                continue;
            }
            if u32::from(flit.hop) < u32::from(route.step_count) {
                let next = plan.arena.steps[route.first_step as usize + flit.hop as usize];
                flit.next_edge = next.edge;
                flit.required = if flit.flags & F_HEAD != 0 {
                    next.head_space
                } else {
                    1
                };
            } else {
                flit.next_edge = NO_EDGE;
            }
            flit.ready_at = self.now + step.ready_add;
            let cap = self.cap;
            let idx = e * cap as usize + ((self.ring_head[e] + self.ring_len[e]) % cap) as usize;
            self.ring_slots[idx] = flit;
            let was_empty = self.ring_len[e] == 0;
            self.ring_len[e] += 1;
            if was_empty {
                let dst = self.edge_dst[e] as usize;
                self.nodes[dst].busy += 1;
                self.ring_ready[e] = flit.ready_at;
                self.ring_final[e] = flit.next_edge == NO_EDGE;
                // The ring gained a head flit mid-cycle; with a
                // zero-cycle arrival increment it can already be
                // eligible at a later edge this same cycle, exactly
                // like the reference engine's live head reads.
                self.update_source_desire((self.terminals.len() + e) as u32, dst);
            }
        }
    }

    fn stats(&self) -> LatencyStats {
        let delivered = self.latencies.len();
        let avg = if delivered == 0 {
            0.0
        } else {
            self.latencies.iter().sum::<u64>() as f64 / delivered as f64
        };
        let window = self.config.measure_cycles.max(1) as f64;
        let mut max_util = 0.0f64;
        let mut util_sum = 0.0f64;
        let mut network_edges = 0usize;
        for e in 0..self.edge_flits.len() {
            if !self.edge_is_net[e] {
                continue;
            }
            let util = self.edge_flits[e] as f64 / window;
            max_util = max_util.max(util);
            util_sum += util;
            network_edges += 1;
        }
        LatencyStats {
            avg_latency: avg,
            max_latency: self.latencies.iter().copied().max().unwrap_or(0),
            packets_offered: self.offered,
            packets_delivered: delivered,
            throughput: delivered as f64 * self.config.packet_flits as f64
                / (self.config.measure_cycles as f64 * self.terminals.len().max(1) as f64),
            measured_cycles: self.config.measure_cycles,
            max_link_utilization: max_util,
            mean_link_utilization: if network_edges > 0 {
                util_sum / network_edges as f64
            } else {
                0.0
            },
        }
    }
}

#[cfg(test)]
mod tests {
    // These unit tests pin the flat engine through its direct
    // constructors on purpose; engine selection is covered by
    // `session::tests` and the three-way equivalence suite.
    #![allow(deprecated)]

    use super::*;
    use sunmap_mapping::{Mapper, MapperConfig};
    use sunmap_topology::builders;
    use sunmap_traffic::benchmarks;

    #[test]
    fn zero_rate_delivers_nothing() {
        let g = builders::mesh(3, 3, 500.0).unwrap();
        let mut sim = NocSimulator::new(&g, SimConfig::fast());
        let stats = sim.run_synthetic(&TrafficPattern::UniformRandom, 0.0);
        assert_eq!(stats.packets_offered, 0);
        assert_eq!(stats.packets_delivered, 0);
    }

    #[test]
    fn low_load_delivers_everything() {
        let g = builders::mesh(3, 3, 500.0).unwrap();
        let mut sim = NocSimulator::new(&g, SimConfig::fast());
        let stats = sim.run_synthetic(&TrafficPattern::UniformRandom, 0.02);
        assert!(stats.packets_offered > 0);
        assert!(
            stats.delivery_ratio() > 0.99,
            "low load must not saturate: {stats}"
        );
        assert!(
            stats.avg_latency > 4.0 && stats.avg_latency < 30.0,
            "{stats}"
        );
    }

    #[test]
    fn latency_rises_with_load() {
        let g = builders::mesh(4, 4, 500.0).unwrap();
        let mut sim = NocSimulator::new(&g, SimConfig::fast());
        let low = sim.run_synthetic(&TrafficPattern::UniformRandom, 0.05);
        let high = sim.run_synthetic(&TrafficPattern::UniformRandom, 0.35);
        assert!(
            high.avg_latency > low.avg_latency,
            "high {high} vs low {low}"
        );
    }

    #[test]
    fn same_seed_runs_are_bit_identical() {
        // The determinism regression test: two same-seed runs on one
        // simulator (plan cached) and on a fresh simulator must agree
        // exactly. Everything in the engine is index-ordered; nothing
        // iterates a hash map.
        let g = builders::torus(3, 3, 500.0).unwrap();
        let mut sim = NocSimulator::new(&g, SimConfig::fast());
        let a = sim.run_synthetic(&TrafficPattern::Tornado, 0.1);
        let b = sim.run_synthetic(&TrafficPattern::Tornado, 0.1);
        let mut fresh = NocSimulator::new(&g, SimConfig::fast());
        let c = fresh.run_synthetic(&TrafficPattern::Tornado, 0.1);
        assert_eq!(a, b);
        assert_eq!(a, c);
    }

    #[test]
    fn trace_same_seed_runs_are_bit_identical() {
        let g = builders::mesh(3, 4, 500.0).unwrap();
        let app = benchmarks::vopd();
        let mapping = Mapper::new(&g, &app, MapperConfig::default())
            .run()
            .unwrap();
        let run = || {
            let mut sim = NocSimulator::new(&g, SimConfig::fast());
            sim.run_trace(mapping.evaluation(), &app, 0.3)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn different_seeds_differ() {
        let g = builders::mesh(3, 3, 500.0).unwrap();
        let mut cfg = SimConfig::fast();
        let mut sim = NocSimulator::new(&g, cfg);
        let a = sim.run_synthetic(&TrafficPattern::UniformRandom, 0.1);
        cfg.seed = 7;
        let mut sim = NocSimulator::new(&g, cfg);
        let b = sim.run_synthetic(&TrafficPattern::UniformRandom, 0.1);
        assert_ne!(a, b);
    }

    #[test]
    fn butterfly_and_clos_terminals_work() {
        for g in [
            builders::butterfly(4, 2, 500.0).unwrap(),
            builders::clos(4, 4, 4, 500.0).unwrap(),
        ] {
            let mut sim = NocSimulator::new(&g, SimConfig::fast());
            assert_eq!(sim.terminal_count(), 16);
            let stats = sim.run_synthetic(&TrafficPattern::UniformRandom, 0.05);
            assert!(stats.packets_delivered > 0, "{}: {stats}", g.kind());
        }
    }

    #[test]
    fn trace_driven_vopd_runs() {
        let g = builders::mesh(3, 4, 500.0).unwrap();
        let app = benchmarks::vopd();
        let mapping = Mapper::new(&g, &app, MapperConfig::default())
            .run()
            .unwrap();
        let mut sim = NocSimulator::new(&g, SimConfig::fast());
        let stats = sim.run_trace(mapping.evaluation(), &app, 0.2);
        assert!(stats.packets_delivered > 0);
        assert!(stats.avg_latency > 0.0);
    }

    #[test]
    fn saturation_shows_undelivered_backlog() {
        let g = builders::mesh(3, 3, 500.0).unwrap();
        let mut sim = NocSimulator::new(&g, SimConfig::fast());
        let stats = sim.run_synthetic(&TrafficPattern::BitComplement, 0.9);
        assert!(
            stats.saturated() || stats.avg_latency > 50.0,
            "bit-complement at 0.9 flits/cy should swamp a 3x3 mesh: {stats}"
        );
    }

    #[test]
    fn shared_plan_matches_owned_plan() {
        let g = builders::clos(4, 4, 4, 500.0).unwrap();
        let config = SimConfig::fast();
        let mut table = RouteTable::new(&g);
        let plan = Arc::new(RoutePlan::synthetic(&g, &mut table, &config));
        let mut shared = NocSimulator::with_plan(&g, config, plan);
        let mut owned = NocSimulator::new(&g, config);
        assert_eq!(
            shared.run_synthetic(&TrafficPattern::Transpose, 0.2),
            owned.run_synthetic(&TrafficPattern::Transpose, 0.2),
        );
    }

    #[test]
    #[should_panic(expected = "different graph")]
    fn mismatched_plan_is_rejected() {
        let a = builders::mesh(3, 3, 500.0).unwrap();
        let b = builders::mesh(4, 4, 500.0).unwrap();
        let config = SimConfig::fast();
        let mut table = RouteTable::new(&a);
        let plan = Arc::new(RoutePlan::synthetic(&a, &mut table, &config));
        let _ = NocSimulator::with_plan(&b, config, plan);
    }

    #[test]
    fn compatible_rejects_same_shape_different_edges_and_config() {
        // Same kind, node count and edge count, different capacities:
        // the edge fingerprint must reject (edge ids would index
        // different physical links).
        let a = builders::mesh(3, 4, 500.0).unwrap();
        let b = builders::mesh(3, 4, 400.0).unwrap();
        let config = SimConfig::fast();
        let mut table = RouteTable::new(&a);
        let plan = RoutePlan::synthetic(&a, &mut table, &config);
        assert!(plan.compatible(&a, &config));
        assert!(!plan.compatible(&b, &config));
        // Transposed grid: same counts, different kind parameters.
        let c = builders::mesh(4, 3, 500.0).unwrap();
        assert!(!plan.compatible(&c, &config));
        // Timing-relevant config drift is rejected too.
        let other = SimConfig {
            packet_flits: 2,
            ..config
        };
        assert!(!plan.compatible(&a, &other));
    }
}
