//! One-stop simulation sessions: engine selection, plan reuse and
//! trace mode configured in a single builder.

use std::sync::Arc;

use crate::engine::{NocSimulator, RoutePlan, SimConfig, SimEngine};
use crate::event::EventSimulator;
use crate::{reference, LatencyStats};
use sunmap_mapping::{Evaluation, RouteTable};
use sunmap_topology::TopologyGraph;
use sunmap_traffic::patterns::TrafficPattern;
use sunmap_traffic::CoreGraph;

/// Builder for a [`SimSession`]: `graph → config → optional plan →
/// build()`. Obtained from [`SimSession::builder`].
#[derive(Debug)]
pub struct SimSessionBuilder<'a> {
    graph: &'a TopologyGraph,
    config: SimConfig,
    plan: Option<Arc<RoutePlan>>,
}

impl<'a> SimSessionBuilder<'a> {
    /// Sets the simulator parameters, including the engine choice
    /// ([`SimConfig::engine`]). Defaults to [`SimConfig::default`].
    pub fn config(mut self, config: SimConfig) -> Self {
        self.config = config;
        self
    }

    /// Reuses a precompiled synthetic route [`RoutePlan`] (the sweep
    /// and probe drivers compile one per topology and share it across
    /// runs). Ignored by the reference engine, which resolves routes
    /// live.
    pub fn plan(mut self, plan: Arc<RoutePlan>) -> Self {
        self.plan = Some(plan);
        self
    }

    /// Builds the session.
    ///
    /// # Panics
    ///
    /// Panics if a supplied plan is not
    /// [`compatible`](RoutePlan::compatible) with the graph and
    /// config — including a plan compiled under a different engine
    /// layout class, which must never be silently reused.
    pub fn build(self) -> SimSession<'a> {
        if let Some(plan) = &self.plan {
            assert!(
                plan.compatible(self.graph, &self.config),
                "route plan compiled for a different graph, engine or configuration"
            );
        }
        SimSession {
            graph: self.graph,
            config: self.config,
            plan: self.plan,
            flat: None,
            event: None,
            reference: None,
        }
    }
}

/// A simulation session over one topology: owns the (lazily created)
/// engines, shares one compiled route plan across them, and dispatches
/// each run to the engine [`SimConfig::engine`] selects — resolving
/// [`SimEngine::Auto`] per run from the offered load.
///
/// Every engine produces bit-identical [`LatencyStats`] for the same
/// seed (see [`SimEngine`]), so re-running with a different engine is
/// purely a speed decision.
///
/// # Examples
///
/// ```
/// use sunmap_sim::{SimConfig, SimEngine, SimSession};
/// use sunmap_topology::builders;
/// use sunmap_traffic::patterns::TrafficPattern;
///
/// let mesh = builders::mesh(4, 4, 500.0)?;
/// let config = SimConfig {
///     engine: SimEngine::EventDriven,
///     ..SimConfig::fast()
/// };
/// let mut session = SimSession::builder(&mesh).config(config).build();
/// let stats = session.run_synthetic(&TrafficPattern::UniformRandom, 0.05);
/// assert!(stats.packets_delivered > 0);
/// # Ok::<(), sunmap_topology::TopologyError>(())
/// ```
#[derive(Debug)]
pub struct SimSession<'a> {
    graph: &'a TopologyGraph,
    config: SimConfig,
    plan: Option<Arc<RoutePlan>>,
    flat: Option<NocSimulator<'a>>,
    event: Option<EventSimulator<'a>>,
    reference: Option<reference::NocSimulator<'a>>,
}

impl<'a> SimSession<'a> {
    /// Starts building a session over `graph`.
    pub fn builder(graph: &'a TopologyGraph) -> SimSessionBuilder<'a> {
        SimSessionBuilder {
            graph,
            config: SimConfig::default(),
            plan: None,
        }
    }

    /// The session's configuration.
    pub fn config(&self) -> SimConfig {
        self.config
    }

    /// Number of terminals (injection points).
    pub fn terminal_count(&self) -> usize {
        self.graph.mappable_nodes().len()
    }

    /// The concrete engine a run at `load` flits/cycle/terminal would
    /// use (resolves [`SimEngine::Auto`]; never returns it).
    pub fn engine_for(&self, load: f64) -> SimEngine {
        self.config.engine.resolve(load)
    }

    /// The session's synthetic route plan, compiling it on first use
    /// and sharing it across the indexed engines. The reference engine
    /// never consumes it, so a reference-engine session does not
    /// compile one.
    fn synthetic_plan(&mut self) -> Arc<RoutePlan> {
        if self.plan.is_none() {
            let mut table = RouteTable::new(self.graph);
            self.plan = Some(Arc::new(RoutePlan::synthetic(
                self.graph,
                &mut table,
                &self.config,
            )));
        }
        self.plan.as_ref().expect("plan just built").clone()
    }

    /// Runs a synthetic-traffic simulation on the engine resolved for
    /// `injection_rate` (see [`NocSimulator::run_synthetic`] for the
    /// traffic model; all engines share it bit for bit).
    pub fn run_synthetic(&mut self, pattern: &TrafficPattern, injection_rate: f64) -> LatencyStats {
        match self.config.engine.resolve(injection_rate) {
            SimEngine::Flat | SimEngine::Auto => {
                let plan = self.synthetic_plan();
                let (graph, config) = (self.graph, self.config);
                self.flat
                    .get_or_insert_with(|| NocSimulator::build(graph, config, Some(plan)))
                    .run_synthetic(pattern, injection_rate)
            }
            SimEngine::EventDriven => {
                let plan = self.synthetic_plan();
                let (graph, config) = (self.graph, self.config);
                self.event
                    .get_or_insert_with(|| EventSimulator::build(graph, config, Some(plan)))
                    .run_synthetic(pattern, injection_rate)
            }
            SimEngine::Reference => {
                let (graph, config) = (self.graph, self.config);
                self.reference
                    .get_or_insert_with(|| reference::NocSimulator::new(graph, config))
                    .run_synthetic(pattern, injection_rate)
            }
        }
    }

    /// Runs a trace-driven simulation of a mapped application on the
    /// engine resolved for `intensity` (see
    /// [`NocSimulator::run_trace`] for the traffic model).
    pub fn run_trace(
        &mut self,
        eval: &Evaluation,
        app: &CoreGraph,
        intensity: f64,
    ) -> LatencyStats {
        match self.config.engine.resolve(intensity) {
            SimEngine::Flat | SimEngine::Auto => {
                let (graph, config) = (self.graph, self.config);
                self.flat
                    .get_or_insert_with(|| NocSimulator::build(graph, config, None))
                    .run_trace(eval, app, intensity)
            }
            SimEngine::EventDriven => {
                let (graph, config) = (self.graph, self.config);
                self.event
                    .get_or_insert_with(|| EventSimulator::build(graph, config, None))
                    .run_trace(eval, app, intensity)
            }
            SimEngine::Reference => {
                let (graph, config) = (self.graph, self.config);
                self.reference
                    .get_or_insert_with(|| reference::NocSimulator::new(graph, config))
                    .run_trace(eval, app, intensity)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sunmap_topology::builders;

    #[test]
    fn auto_resolves_by_load_threshold() {
        let g = builders::mesh(3, 3, 500.0).unwrap();
        let session = SimSession::builder(&g).build();
        assert_eq!(session.engine_for(0.01), SimEngine::EventDriven);
        assert_eq!(session.engine_for(0.5), SimEngine::Flat);
        let flat = SimSession::builder(&g)
            .config(SimConfig {
                engine: SimEngine::Flat,
                ..SimConfig::fast()
            })
            .build();
        assert_eq!(flat.engine_for(0.01), SimEngine::Flat);
    }

    #[test]
    fn engines_agree_through_the_session() {
        let g = builders::torus(3, 3, 500.0).unwrap();
        let run = |engine: SimEngine, rate: f64| {
            let config = SimConfig {
                engine,
                ..SimConfig::fast()
            };
            SimSession::builder(&g)
                .config(config)
                .build()
                .run_synthetic(&TrafficPattern::Tornado, rate)
        };
        for rate in [0.05, 0.3] {
            let flat = run(SimEngine::Flat, rate);
            assert_eq!(flat, run(SimEngine::EventDriven, rate));
            assert_eq!(flat, run(SimEngine::Reference, rate));
            assert_eq!(flat, run(SimEngine::Auto, rate));
        }
    }

    #[test]
    fn auto_switches_engines_within_one_session() {
        // One session crossing the Auto threshold exercises both lazily
        // created engines against each other.
        let g = builders::mesh(3, 3, 500.0).unwrap();
        let mut auto = SimSession::builder(&g).config(SimConfig::fast()).build();
        let low = auto.run_synthetic(&TrafficPattern::UniformRandom, 0.05);
        let high = auto.run_synthetic(&TrafficPattern::UniformRandom, 0.3);
        let mut flat = SimSession::builder(&g)
            .config(SimConfig {
                engine: SimEngine::Flat,
                ..SimConfig::fast()
            })
            .build();
        assert_eq!(
            low,
            flat.run_synthetic(&TrafficPattern::UniformRandom, 0.05)
        );
        assert_eq!(
            high,
            flat.run_synthetic(&TrafficPattern::UniformRandom, 0.3)
        );
    }

    #[test]
    #[should_panic(expected = "different graph, engine or configuration")]
    fn cross_engine_plan_reuse_is_rejected() {
        use sunmap_mapping::RouteTable;
        let g = builders::mesh(3, 3, 500.0).unwrap();
        let ref_config = SimConfig {
            engine: SimEngine::Reference,
            ..SimConfig::fast()
        };
        let mut table = RouteTable::new(&g);
        let plan = Arc::new(RoutePlan::synthetic(&g, &mut table, &ref_config));
        // A plan compiled under the reference engine's layout class
        // must not be silently consumed by the indexed engines.
        let _ = SimSession::builder(&g)
            .config(SimConfig {
                engine: SimEngine::Flat,
                ..SimConfig::fast()
            })
            .plan(plan)
            .build();
    }
}
