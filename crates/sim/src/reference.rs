//! The pre-rebuild simulation engine, kept verbatim as the behavioral
//! oracle for the flat engine in [`crate::engine`].
//!
//! This is the original `Rc`-path, `VecDeque`-buffer implementation.
//! It allocates on the hot path (an `Rc<[NodeId]>` clone per flit, a
//! `HashMap` path cache) and walks the graph's edge iterator every
//! cycle, which is why it was replaced — but its *semantics* are the
//! contract: the equivalence suite in `tests/flat_equivalence.rs`
//! asserts the flat engine's [`LatencyStats`] are bit-identical to this
//! engine's for the same seed, and the `sim_speed` bench group measures
//! the rebuild's speedup against it. Do not optimise this module.

// lint:allow(hash-iter): frozen oracle module, kept byte-for-byte as the equivalence baseline
use std::collections::{HashMap, VecDeque};
use std::rc::Rc;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::{LatencyStats, SimConfig};
use sunmap_mapping::Evaluation;
use sunmap_topology::{dimension_order, paths, NodeId, NodeKind, TopologyGraph};
use sunmap_traffic::patterns::TrafficPattern;
use sunmap_traffic::CoreGraph;

#[derive(Debug, Clone)]
struct Flit {
    packet: u64,
    inject_cycle: u64,
    path: Rc<[NodeId]>,
    /// Index into `path` of the node this flit currently occupies.
    hop: usize,
    is_head: bool,
    is_tail: bool,
    ready_at: u64,
    measured: bool,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Source {
    /// The injection queue of terminal `t` (index into `terminals`).
    Inject(usize),
    /// The input buffer fed by edge `e`.
    Buffer(usize),
}

/// The flit-level simulator. Create one per run; it borrows the
/// topology graph and owns all queues.
///
/// See the [crate documentation](crate) for the model and an example.
#[derive(Debug)]
pub struct NocSimulator<'a> {
    graph: &'a TopologyGraph,
    config: SimConfig,
    rng: SmallRng,
    terminals: Vec<NodeId>,
    /// Input buffer per directed edge (flits that crossed the edge).
    buffers: Vec<VecDeque<Flit>>,
    /// Injection queue per terminal.
    inject_queues: Vec<VecDeque<Flit>>,
    /// Wormhole output allocation per edge.
    owner: Vec<Option<u64>>,
    /// Round-robin pointer per edge.
    rr: Vec<usize>,
    /// Candidate flit sources at each node (indexed by node id).
    node_sources: Vec<Vec<Source>>,
    /// Minimum-path cache for synthetic routing.
    // lint:allow(hash-iter): frozen oracle — keyed cache, never iterated
    path_cache: HashMap<(NodeId, NodeId), Vec<Rc<[NodeId]>>>,
    next_packet: u64,
    now: u64,
    latencies: Vec<u64>,
    offered: usize,
    /// Flits transferred per edge during the measurement window.
    edge_flits: Vec<u64>,
}

impl<'a> NocSimulator<'a> {
    /// Creates a simulator over `graph` with terminals at its mappable
    /// nodes.
    pub fn new(graph: &'a TopologyGraph, config: SimConfig) -> Self {
        let terminals = graph.mappable_nodes().to_vec();
        let mut node_sources = vec![Vec::new(); graph.node_count()];
        for (i, t) in terminals.iter().enumerate() {
            node_sources[t.index()].push(Source::Inject(i));
        }
        for (eid, edge) in graph.edges() {
            node_sources[edge.dst.index()].push(Source::Buffer(eid.index()));
        }
        NocSimulator {
            graph,
            rng: SmallRng::seed_from_u64(config.seed),
            terminals,
            buffers: vec![VecDeque::new(); graph.edge_count()],
            inject_queues: Vec::new(),
            owner: vec![None; graph.edge_count()],
            rr: vec![0; graph.edge_count()],
            node_sources,
            // lint:allow(hash-iter): frozen oracle — keyed cache, never iterated
            path_cache: HashMap::new(),
            next_packet: 0,
            now: 0,
            latencies: Vec::new(),
            offered: 0,
            edge_flits: vec![0; graph.edge_count()],
            config,
        }
    }

    /// Number of terminals (injection points).
    pub fn terminal_count(&self) -> usize {
        self.terminals.len()
    }

    /// Runs a synthetic-traffic simulation: every terminal injects
    /// packets as a Bernoulli process of `injection_rate` flits per
    /// cycle, destinations drawn from `pattern`, routes drawn uniformly
    /// from the minimum paths.
    pub fn run_synthetic(&mut self, pattern: &TrafficPattern, injection_rate: f64) -> LatencyStats {
        self.reset();
        let n = self.terminals.len();
        let packet_prob = injection_rate / self.config.packet_flits as f64;
        let total =
            self.config.warmup_cycles + self.config.measure_cycles + self.config.drain_cycles;
        let inject_until = self.config.warmup_cycles + self.config.measure_cycles;
        while self.now < total {
            self.eject();
            if self.now < inject_until {
                for t in 0..n {
                    if self.rng.gen_bool(packet_prob.clamp(0.0, 1.0)) {
                        let Some(dst) = pattern.destination(t, n, &mut self.rng) else {
                            continue;
                        };
                        let src_node = self.terminals[t];
                        let dst_node = self.terminals[dst];
                        if let Some(path) = self.pick_min_path(src_node, dst_node) {
                            self.inject(t, path);
                        }
                    }
                }
            }
            self.transfer();
            self.now += 1;
        }
        self.stats()
    }

    /// Runs a trace-driven simulation of a mapped application: each
    /// commodity injects packets at a rate proportional to its bandwidth
    /// demand, scaled so the heaviest commodity injects `intensity`
    /// flits per cycle, over the paths the mapping evaluation selected.
    pub fn run_trace(
        &mut self,
        eval: &Evaluation,
        app: &CoreGraph,
        intensity: f64,
    ) -> LatencyStats {
        self.reset();
        let max_bw = app
            .commodities()
            .first()
            .map(|c| c.bandwidth)
            .unwrap_or(1.0);
        // Per commodity: source terminal index, packet probability and
        // weighted route choices.
        struct Trace {
            terminal: usize,
            packet_prob: f64,
            routes: Vec<(Rc<[NodeId]>, f64)>,
        }
        // lint:allow(hash-iter): frozen oracle — keyed lookup of terminal indices, never iterated
        let term_index: HashMap<NodeId, usize> = self
            .terminals
            .iter()
            .enumerate()
            .map(|(i, n)| (*n, i))
            .collect();
        let traces: Vec<Trace> = eval
            .routes
            .iter()
            .map(|r| Trace {
                terminal: term_index[&r.src_node],
                packet_prob: (intensity * r.commodity.bandwidth
                    / max_bw
                    / self.config.packet_flits as f64)
                    .clamp(0.0, 1.0),
                routes: r
                    .paths
                    .iter()
                    .map(|(p, f)| (Rc::from(p.as_slice()), *f))
                    .collect(),
            })
            .collect();
        let total =
            self.config.warmup_cycles + self.config.measure_cycles + self.config.drain_cycles;
        let inject_until = self.config.warmup_cycles + self.config.measure_cycles;
        while self.now < total {
            self.eject();
            if self.now < inject_until {
                for tr in &traces {
                    if self.rng.gen_bool(tr.packet_prob) {
                        let pick: f64 = self.rng.gen_range(0.0..1.0);
                        let mut acc = 0.0;
                        let mut chosen = tr.routes.last().expect("commodity has a route").0.clone();
                        for (p, f) in &tr.routes {
                            acc += f;
                            if pick <= acc {
                                chosen = p.clone();
                                break;
                            }
                        }
                        self.inject(tr.terminal, chosen);
                    }
                }
            }
            self.transfer();
            self.now += 1;
        }
        self.stats()
    }

    fn reset(&mut self) {
        self.buffers = vec![VecDeque::new(); self.graph.edge_count()];
        self.inject_queues = vec![VecDeque::new(); self.terminals.len()];
        self.owner = vec![None; self.graph.edge_count()];
        self.rr = vec![0; self.graph.edge_count()];
        self.next_packet = 0;
        self.now = 0;
        self.latencies.clear();
        self.offered = 0;
        self.edge_flits = vec![0; self.graph.edge_count()];
        self.rng = SmallRng::seed_from_u64(self.config.seed);
    }

    /// Route selection for synthetic traffic, deadlock-free by
    /// construction: dimension-ordered routes on direct topologies
    /// (acyclic channel dependencies together with bubble flow control
    /// on torus rings), a random minimum path on the acyclic multistage
    /// networks — which is precisely what gives the Clos its
    /// path-diversity advantage in the paper's §6.2 study.
    fn pick_min_path(&mut self, src: NodeId, dst: NodeId) -> Option<Rc<[NodeId]>> {
        if src == dst {
            return None;
        }
        let graph = self.graph;
        if graph.kind().is_direct() {
            let options = self.path_cache.entry((src, dst)).or_insert_with(|| {
                dimension_order::route(graph, src, dst)
                    .into_iter()
                    .map(|p| Rc::from(p.as_slice()))
                    .collect()
            });
            return options.first().cloned();
        }
        let options = self.path_cache.entry((src, dst)).or_insert_with(|| {
            paths::all_shortest_paths(graph, src, dst, None, 8)
                .into_iter()
                .map(|p| Rc::from(p.as_slice()))
                .collect()
        });
        if options.is_empty() {
            return None;
        }
        let i = self.rng.gen_range(0..options.len());
        Some(options[i].clone())
    }

    /// Axis of movement of the step `u -> v`, used to detect when a
    /// packet turns into a new ring (grid column/row, hypercube
    /// dimension). `None` for stage networks, which are acyclic anyway.
    fn axis_of(&self, u: NodeId, v: NodeId) -> Option<u32> {
        use sunmap_topology::NodeCoords;
        match (self.graph.coords(u), self.graph.coords(v)) {
            (NodeCoords::Grid { row: r1, .. }, NodeCoords::Grid { row: r2, .. }) => {
                Some(if r1 == r2 { 0 } else { 1 })
            }
            (NodeCoords::Hyper { label: a }, NodeCoords::Hyper { label: b }) => {
                Some(2 + (a ^ b).trailing_zeros())
            }
            _ => None,
        }
    }

    fn inject(&mut self, terminal: usize, path: Rc<[NodeId]>) {
        let measured = self.now >= self.config.warmup_cycles
            && self.now < self.config.warmup_cycles + self.config.measure_cycles;
        if measured {
            self.offered += 1;
        }
        let pid = self.next_packet;
        self.next_packet += 1;
        // The head flit pays the source-switch pipeline before it can
        // leave (injection goes through the local switch for direct
        // topologies; core ports are plain wires).
        let ready = if self.graph.node_kind(path[0]) == NodeKind::Switch {
            self.now + self.config.switch_pipeline
        } else {
            self.now
        };
        for i in 0..self.config.packet_flits {
            self.inject_queues[terminal].push_back(Flit {
                packet: pid,
                inject_cycle: self.now,
                path: path.clone(),
                hop: 0,
                is_head: i == 0,
                is_tail: i + 1 == self.config.packet_flits,
                ready_at: ready,
                measured,
            });
        }
    }

    fn eject(&mut self) {
        for buf in &mut self.buffers {
            let Some(head) = buf.front() else { continue };
            if head.ready_at > self.now || head.hop + 1 != head.path.len() {
                continue;
            }
            let flit = buf.pop_front().expect("head exists");
            if flit.is_tail && flit.measured {
                self.latencies.push(self.now - flit.inject_cycle);
            }
        }
    }

    fn transfer(&mut self) {
        // One flit per edge per cycle; a source queue also releases at
        // most one flit per cycle.
        let terms = self.terminals.len();
        let mut source_moved = vec![false; terms + self.graph.edge_count()];
        let moved_key = |s: Source| match s {
            Source::Inject(t) => t,
            Source::Buffer(b) => terms + b,
        };
        // Virtual cut-through with bubble flow control: a head flit
        // needs space for the whole packet downstream (so tails always
        // drain behind their head), and a head *entering a new ring*
        // (injection or axis turn) must additionally leave one packet
        // of free space — the classic bubble condition that keeps torus
        // rings deadlock-free.
        let pf = self.config.packet_flits;
        let cap = self.config.buffer_depth * pf;
        for (eid, edge) in self.graph.edges() {
            let e = eid.index();
            let free = cap.saturating_sub(self.buffers[e].len());
            if free == 0 {
                continue;
            }
            let srcs = &self.node_sources[edge.src.index()];
            if srcs.is_empty() {
                continue;
            }
            // Find candidate sources whose head flit wants edge `e` now
            // and fits under the VCT/bubble space rule.
            let candidate_ok = |sim: &Self, s: Source| -> Option<u64> {
                let head = match s {
                    Source::Inject(t) => sim.inject_queues[t].front(),
                    Source::Buffer(b) => sim.buffers[b].front(),
                }?;
                if head.ready_at > sim.now {
                    return None;
                }
                if head.hop + 1 >= head.path.len() {
                    return None;
                }
                if head.path[head.hop + 1] != edge.dst || head.path[head.hop] != edge.src {
                    return None;
                }
                let required = if !head.is_head {
                    1
                } else {
                    let ring_entry = match s {
                        Source::Inject(_) => true,
                        Source::Buffer(_) => {
                            head.hop > 0
                                && sim.axis_of(head.path[head.hop - 1], head.path[head.hop])
                                    != sim.axis_of(head.path[head.hop], head.path[head.hop + 1])
                        }
                    };
                    if ring_entry {
                        2 * pf
                    } else {
                        pf
                    }
                };
                (free >= required).then_some(head.packet)
            };
            let chosen = if let Some(pid) = self.owner[e] {
                srcs.iter()
                    .copied()
                    .find(|s| !source_moved[moved_key(*s)] && candidate_ok(self, *s) == Some(pid))
            } else {
                let start = self.rr[e] % srcs.len();
                (0..srcs.len())
                    .map(|k| srcs[(start + k) % srcs.len()])
                    .find(|s| !source_moved[moved_key(*s)] && candidate_ok(self, *s).is_some())
            };
            let Some(src_slot) = chosen else { continue };
            let mut flit = match src_slot {
                Source::Inject(t) => self.inject_queues[t].pop_front(),
                Source::Buffer(b) => self.buffers[b].pop_front(),
            }
            .expect("candidate head exists");
            source_moved[moved_key(src_slot)] = true;
            if self.now >= self.config.warmup_cycles
                && self.now < self.config.warmup_cycles + self.config.measure_cycles
            {
                self.edge_flits[e] += 1;
            }
            self.rr[e] = self.rr[e].wrapping_add(1);
            self.owner[e] = if flit.is_tail {
                None
            } else {
                Some(flit.packet)
            };
            flit.hop += 1;
            let arrived = flit.path[flit.hop];
            // A flit reaching its destination core port leaves the
            // network right here: the egress attach link is an NI wire,
            // not a buffered channel.
            if flit.hop + 1 == flit.path.len()
                && self.graph.node_kind(arrived) == NodeKind::CorePort
            {
                if flit.is_tail && flit.measured {
                    self.latencies.push(self.now - flit.inject_cycle);
                }
                continue;
            }
            // Network links cost one cycle plus the downstream switch
            // pipeline; ingress attach links (from a core port) are short
            // NI wires folded into the adjacent switch traversal, so
            // indirect topologies are not double-charged for their
            // explicit port vertices.
            flit.ready_at = if g_is_attach(self.graph, edge.src, arrived) {
                self.now + self.config.switch_pipeline
            } else {
                self.now + 1 + self.config.switch_pipeline
            };
            self.buffers[e].push_back(flit);
        }
    }

    fn stats(&self) -> LatencyStats {
        let delivered = self.latencies.len();
        let avg = if delivered == 0 {
            0.0
        } else {
            self.latencies.iter().sum::<u64>() as f64 / delivered as f64
        };
        let window = self.config.measure_cycles.max(1) as f64;
        let mut max_util = 0.0f64;
        let mut util_sum = 0.0f64;
        let mut network_edges = 0usize;
        for (eid, edge) in self.graph.edges() {
            if !edge.is_network_link() {
                continue;
            }
            let util = self.edge_flits[eid.index()] as f64 / window;
            max_util = max_util.max(util);
            util_sum += util;
            network_edges += 1;
        }
        LatencyStats {
            avg_latency: avg,
            max_latency: self.latencies.iter().copied().max().unwrap_or(0),
            packets_offered: self.offered,
            packets_delivered: delivered,
            throughput: delivered as f64 * self.config.packet_flits as f64
                / (self.config.measure_cycles as f64 * self.terminals.len().max(1) as f64),
            measured_cycles: self.config.measure_cycles,
            max_link_utilization: max_util,
            mean_link_utilization: if network_edges > 0 {
                util_sum / network_edges as f64
            } else {
                0.0
            },
        }
    }
}

/// Whether the step `src -> dst` is a core-attach link (one endpoint is
/// a core port).
fn g_is_attach(g: &TopologyGraph, src: NodeId, dst: NodeId) -> bool {
    g.node_kind(src) == NodeKind::CorePort || g.node_kind(dst) == NodeKind::CorePort
}

#[cfg(test)]
mod tests {
    use super::*;
    use sunmap_mapping::{Mapper, MapperConfig};
    use sunmap_topology::builders;
    use sunmap_traffic::benchmarks;

    #[test]
    fn zero_rate_delivers_nothing() {
        let g = builders::mesh(3, 3, 500.0).unwrap();
        let mut sim = NocSimulator::new(&g, SimConfig::fast());
        let stats = sim.run_synthetic(&TrafficPattern::UniformRandom, 0.0);
        assert_eq!(stats.packets_offered, 0);
        assert_eq!(stats.packets_delivered, 0);
    }

    #[test]
    fn low_load_delivers_everything() {
        let g = builders::mesh(3, 3, 500.0).unwrap();
        let mut sim = NocSimulator::new(&g, SimConfig::fast());
        let stats = sim.run_synthetic(&TrafficPattern::UniformRandom, 0.02);
        assert!(stats.packets_offered > 0);
        assert!(
            stats.delivery_ratio() > 0.99,
            "low load must not saturate: {stats}"
        );
        // Zero-load-ish latency: a couple of switch traversals plus
        // serialization of a 4-flit packet.
        assert!(
            stats.avg_latency > 4.0 && stats.avg_latency < 30.0,
            "{stats}"
        );
    }

    #[test]
    fn latency_rises_with_load() {
        let g = builders::mesh(4, 4, 500.0).unwrap();
        let mut sim = NocSimulator::new(&g, SimConfig::fast());
        let low = sim.run_synthetic(&TrafficPattern::UniformRandom, 0.05);
        let mut sim = NocSimulator::new(&g, SimConfig::fast());
        let high = sim.run_synthetic(&TrafficPattern::UniformRandom, 0.35);
        assert!(
            high.avg_latency > low.avg_latency,
            "high {high} vs low {low}"
        );
    }

    #[test]
    fn simulation_is_deterministic_per_seed() {
        let g = builders::torus(3, 3, 500.0).unwrap();
        let run = || {
            let mut sim = NocSimulator::new(&g, SimConfig::fast());
            sim.run_synthetic(&TrafficPattern::Tornado, 0.1)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn different_seeds_differ() {
        let g = builders::mesh(3, 3, 500.0).unwrap();
        let mut cfg = SimConfig::fast();
        let mut sim = NocSimulator::new(&g, cfg);
        let a = sim.run_synthetic(&TrafficPattern::UniformRandom, 0.1);
        cfg.seed = 7;
        let mut sim = NocSimulator::new(&g, cfg);
        let b = sim.run_synthetic(&TrafficPattern::UniformRandom, 0.1);
        assert_ne!(a, b);
    }

    #[test]
    fn butterfly_and_clos_terminals_work() {
        for g in [
            builders::butterfly(4, 2, 500.0).unwrap(),
            builders::clos(4, 4, 4, 500.0).unwrap(),
        ] {
            let mut sim = NocSimulator::new(&g, SimConfig::fast());
            assert_eq!(sim.terminal_count(), 16);
            let stats = sim.run_synthetic(&TrafficPattern::UniformRandom, 0.05);
            assert!(stats.packets_delivered > 0, "{}: {stats}", g.kind());
        }
    }

    #[test]
    fn trace_driven_vopd_runs() {
        let g = builders::mesh(3, 4, 500.0).unwrap();
        let app = benchmarks::vopd();
        let mapping = Mapper::new(&g, &app, MapperConfig::default())
            .run()
            .unwrap();
        let mut sim = NocSimulator::new(&g, SimConfig::fast());
        let stats = sim.run_trace(mapping.evaluation(), &app, 0.2);
        assert!(stats.packets_delivered > 0);
        assert!(stats.avg_latency > 0.0);
    }

    #[test]
    fn saturation_shows_undelivered_backlog() {
        let g = builders::mesh(3, 3, 500.0).unwrap();
        let mut sim = NocSimulator::new(&g, SimConfig::fast());
        let stats = sim.run_synthetic(&TrafficPattern::BitComplement, 0.9);
        assert!(
            stats.saturated() || stats.avg_latency > 50.0,
            "bit-complement at 0.9 flits/cy should swamp a 3x3 mesh: {stats}"
        );
    }
}
