//! Simulation statistics.

/// Latency and throughput measured over the simulation window.
#[derive(Debug, Clone, PartialEq)]
pub struct LatencyStats {
    /// Mean packet latency in cycles (injection of the head flit to
    /// ejection of the tail flit), over delivered measured packets.
    pub avg_latency: f64,
    /// Worst delivered-packet latency in cycles.
    pub max_latency: u64,
    /// Packets injected during the measurement window.
    pub packets_offered: usize,
    /// Of those, packets fully delivered before the simulation ended.
    pub packets_delivered: usize,
    /// Delivered flits per cycle per terminal during measurement — the
    /// accepted throughput.
    pub throughput: f64,
    /// Measurement window length in cycles.
    pub measured_cycles: u64,
    /// Busiest network channel's utilisation during measurement
    /// (flits per cycle, at most 1.0): where the hot spot is.
    pub max_link_utilization: f64,
    /// Mean utilisation over all network channels: how evenly the
    /// topology spreads the load.
    pub mean_link_utilization: f64,
}

impl LatencyStats {
    /// Ratio of the busiest channel's load to the average: 1.0 means a
    /// perfectly balanced network; large values mean a hot spot (the
    /// butterfly's single-path funnels, a mesh bisection).
    pub fn load_imbalance(&self) -> f64 {
        if self.mean_link_utilization <= 0.0 {
            return 1.0;
        }
        self.max_link_utilization / self.mean_link_utilization
    }

    /// Fraction of measured packets that were delivered; below ~1.0 the
    /// network is saturated and `avg_latency` underestimates the true
    /// (unbounded) latency.
    pub fn delivery_ratio(&self) -> f64 {
        if self.packets_offered == 0 {
            return 1.0;
        }
        self.packets_delivered as f64 / self.packets_offered as f64
    }

    /// Whether the run shows saturation (significant undelivered
    /// backlog).
    pub fn saturated(&self) -> bool {
        self.delivery_ratio() < 0.9
    }
}

impl std::fmt::Display for LatencyStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "avg {:.1} cy, max {} cy, {}/{} packets, {:.4} flits/cy/term",
            self.avg_latency,
            self.max_latency,
            self.packets_delivered,
            self.packets_offered,
            self.throughput
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivery_ratio_and_saturation() {
        let mut s = LatencyStats {
            avg_latency: 20.0,
            max_latency: 55,
            packets_offered: 100,
            packets_delivered: 100,
            throughput: 0.1,
            measured_cycles: 1000,
            max_link_utilization: 0.5,
            mean_link_utilization: 0.2,
        };
        assert_eq!(s.delivery_ratio(), 1.0);
        assert!(!s.saturated());
        s.packets_delivered = 50;
        assert!(s.saturated());
        s.packets_offered = 0;
        assert_eq!(s.delivery_ratio(), 1.0);
    }

    #[test]
    fn load_imbalance_ratio() {
        let mut s = LatencyStats {
            avg_latency: 10.0,
            max_latency: 20,
            packets_offered: 10,
            packets_delivered: 10,
            throughput: 0.1,
            measured_cycles: 100,
            max_link_utilization: 0.8,
            mean_link_utilization: 0.2,
        };
        assert_eq!(s.load_imbalance(), 4.0);
        s.mean_link_utilization = 0.0;
        assert_eq!(s.load_imbalance(), 1.0);
    }

    #[test]
    fn display_is_informative() {
        let s = LatencyStats {
            avg_latency: 12.5,
            max_latency: 40,
            packets_offered: 10,
            packets_delivered: 9,
            throughput: 0.05,
            measured_cycles: 500,
            max_link_utilization: 0.4,
            mean_link_utilization: 0.1,
        };
        let txt = s.to_string();
        assert!(txt.contains("12.5"));
        assert!(txt.contains("9/10"));
    }
}
