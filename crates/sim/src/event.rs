//! The event-driven active-set cycle engine.
//!
//! The flat engine ([`crate::engine`]) visits every edge's dense state
//! each cycle, so a cycle costs `O(V + E)` even when one flit is in
//! flight — exactly the regime that dominates the paper's Fig. 8(b)
//! curves (most of the x-axis is low load) and any 256+-core grid.
//! This engine makes a cycle cost `O(k)` in the number of active
//! elements instead:
//!
//! * **active sets** ([`ActiveSet`], a two-level dense bitset iterated
//!   in ascending index order) track the edges with at least one
//!   *ready* queued head flit wanting them, and the rings whose head
//!   flit is final and ready to eject. Both sets are maintained
//!   incrementally at every enqueue, dequeue and head change — the
//!   event-driven extension of the flat engine's denormalised
//!   head-flit mirror;
//! * an **event wheel** ([`WheelEvent`]) wakes the bookkeeping for
//!   in-flight hop completions: a head flit whose `ready_at` is still
//!   in the future is *not* kept in any scanned set — a wheel slot
//!   fires at exactly its readiness cycle and re-inserts it. The wheel
//!   needs only `switch_pipeline + 2` slots because no per-hop latency
//!   increment exceeds `switch_pipeline + 1` cycles.
//!
//! Tie-breaking and arbitration order are **bit-identical** to the
//! flat engine: both transfer and eject walk their sets in ascending
//! edge-id order (the order the flat engine's `for e in 0..edges`
//! scans impose), the per-edge round-robin/owner arbitration is the
//! same code shape, and the RNG is consumed in exactly the same order
//! (the per-terminal injection loop is untouched — it is inherently
//! `O(terminals)` and identical across all three engines). Mid-cycle
//! activations are preserved too: the set iterator re-reads live words
//! after each element, so a ring that gains its first flit while edge
//! `e` transfers can make a later edge `e' > e` eligible in the same
//! cycle, exactly like the flat engine's live head reads.
//!
//! `tests/flat_equivalence.rs` enforces the three-way equivalence
//! (reference == flat == event) across topologies, patterns, rates and
//! trace mode; `tests/regression_fixtures.rs` replays the pinned
//! fixtures through this engine bit for bit.

use std::collections::VecDeque;
use std::sync::Arc;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::engine::{Flit, RoutePlan, SimConfig, F_HEAD, F_MEASURED, F_TAIL, NO_EDGE, NO_OWNER};
use crate::LatencyStats;
use sunmap_mapping::{Evaluation, RouteTable};
use sunmap_topology::{NodeId, TopologyGraph};
use sunmap_traffic::patterns::TrafficPattern;
use sunmap_traffic::CoreGraph;

/// A two-level dense bitset over `0..n` supporting O(1) insert/remove
/// and sorted ascending iteration in `O(k + words visited)`. The
/// summary level marks nonzero words, so scanning an almost-empty set
/// over a large universe touches a handful of cache lines.
#[derive(Debug)]
struct ActiveSet {
    words: Vec<u64>,
    /// `summary[w >> 6]` bit `w & 63` set iff `words[w] != 0`.
    summary: Vec<u64>,
}

impl ActiveSet {
    fn new(n: usize) -> Self {
        let nw = n.div_ceil(64).max(1);
        ActiveSet {
            words: vec![0; nw],
            summary: vec![0; nw.div_ceil(64)],
        }
    }

    #[inline]
    fn insert(&mut self, i: usize) {
        let w = i >> 6;
        self.words[w] |= 1u64 << (i & 63);
        self.summary[w >> 6] |= 1u64 << (w & 63);
    }

    #[inline]
    fn remove(&mut self, i: usize) {
        let w = i >> 6;
        self.words[w] &= !(1u64 << (i & 63));
        if self.words[w] == 0 {
            self.summary[w >> 6] &= !(1u64 << (w & 63));
        }
    }

    fn clear(&mut self) {
        self.words.fill(0);
        self.summary.fill(0);
    }

    /// Smallest set element `>= from`, reading the live words — an
    /// element inserted mid-iteration at a position above the cursor
    /// is observed, matching the flat engine's in-cycle activations.
    #[inline]
    fn first_at_least(&self, from: usize) -> Option<usize> {
        let nw = self.words.len();
        let mut w = from >> 6;
        if w >= nw {
            return None;
        }
        let rem = self.words[w] & (!0u64 << (from & 63));
        if rem != 0 {
            return Some((w << 6) + rem.trailing_zeros() as usize);
        }
        w += 1;
        let mut sw = w >> 6;
        while sw < self.summary.len() {
            let mask = if sw == w >> 6 {
                !0u64 << (w & 63)
            } else {
                !0u64
            };
            let s = self.summary[sw] & mask;
            if s != 0 {
                let wi = (sw << 6) + s.trailing_zeros() as usize;
                let word = self.words[wi];
                debug_assert_ne!(word, 0, "summary bit set for an empty word");
                return Some((wi << 6) + word.trailing_zeros() as usize);
            }
            sw += 1;
        }
        None
    }
}

/// One scheduled wake-up. Both kinds carry a generation stamp taken
/// when they were scheduled; a fired event whose stamp no longer
/// matches is stale (the head it described changed first) and is
/// dropped — validation costs O(1) and stale events are bounded by
/// the number of head changes, i.e. by traffic.
#[derive(Debug, Clone, Copy)]
enum WheelEvent {
    /// Source slot `slot`'s pending head becomes ready: count it into
    /// its wanted edge's active entry.
    Want { slot: u32, gen: u32 },
    /// Ring `ring`'s final head becomes ready: it can eject.
    Eject { ring: u32, gen: u32 },
}

/// The event-driven flit-level simulator. Crate-private: built and
/// driven through [`crate::SimSession`] with
/// [`SimEngine::EventDriven`](crate::SimEngine::EventDriven).
#[derive(Debug)]
pub(crate) struct EventSimulator<'a> {
    graph: &'a TopologyGraph,
    config: SimConfig,
    rng: SmallRng,
    terminals: Vec<NodeId>,
    plan: Option<Arc<RoutePlan>>,

    // Static per-graph arrays (the flat engine's layout; no per-node
    // busy/mask state — the active sets replace it).
    edge_src: Vec<u32>,
    edge_is_net: Vec<bool>,
    ns_offsets: Vec<u32>,
    ns_items: Vec<u32>,

    // Ring buffers: one slab, `cap` slots per edge.
    cap: u32,
    ring_slots: Vec<Flit>,
    ring_head: Vec<u32>,
    ring_len: Vec<u32>,
    ring_ready: Vec<u64>,
    ring_final: Vec<bool>,

    inject: Vec<VecDeque<Flit>>,
    owner: Vec<u32>,
    rr: Vec<u32>,
    source_moved: Vec<bool>,
    /// Sources flagged in `source_moved` this cycle, so clearing the
    /// flags costs O(moved) instead of an O(sources) fill.
    moved_log: Vec<u32>,

    // Denormalised head-flit mirror per source (flat-engine twin).
    want_edge: Vec<u32>,
    want_packet: Vec<u32>,
    want_required: Vec<u32>,
    want_ready: Vec<u64>,
    source_slot: Vec<u32>,

    // Event-driven state.
    /// Per source slot: whether its (ready) head is currently counted
    /// in `want_ready_count[want_edge]`.
    counted: Vec<bool>,
    /// Per source slot: bumped at every head change; stale wheel
    /// events carry an older stamp and are dropped.
    desire_gen: Vec<u32>,
    /// Per ring: bumped at every head change (same invalidation role).
    ring_gen: Vec<u32>,
    /// Per edge: number of *ready* queued heads wanting it; the edge
    /// is in `active_edges` iff nonzero.
    want_ready_count: Vec<u32>,
    /// Edges with at least one ready head wanting them, iterated in
    /// ascending edge order by the transfer scan.
    active_edges: ActiveSet,
    /// Rings whose head flit is final and ready, iterated in ascending
    /// edge order by the eject scan.
    eject_ready: ActiveSet,
    /// Event wheel: slot `cycle % wheel.len()` holds the events firing
    /// at `cycle`. `switch_pipeline + 2` slots cover every possible
    /// in-flight completion delay.
    wheel: Vec<Vec<WheelEvent>>,

    next_packet: u32,
    now: u64,
    latencies: Vec<u64>,
    offered: usize,
    edge_flits: Vec<u64>,
    in_flight: u64,
}

impl<'a> EventSimulator<'a> {
    pub(crate) fn build(
        graph: &'a TopologyGraph,
        config: SimConfig,
        plan: Option<Arc<RoutePlan>>,
    ) -> Self {
        let terminals = graph.mappable_nodes().to_vec();
        let terms = terminals.len();
        let edge_count = graph.edge_count();
        let mut per_node: Vec<Vec<u32>> = vec![Vec::new(); graph.node_count()];
        for (i, t) in terminals.iter().enumerate() {
            per_node[t.index()].push(i as u32);
        }
        let mut edge_src = vec![0u32; edge_count];
        let mut edge_is_net = vec![false; edge_count];
        for (eid, edge) in graph.edges() {
            per_node[edge.dst.index()].push((terms + eid.index()) as u32);
            edge_src[eid.index()] = edge.src.index() as u32;
            edge_is_net[eid.index()] = edge.is_network_link();
        }
        let mut ns_offsets = Vec::with_capacity(graph.node_count() + 1);
        let mut ns_items = Vec::new();
        ns_offsets.push(0u32);
        for list in &per_node {
            ns_items.extend_from_slice(list);
            ns_offsets.push(ns_items.len() as u32);
        }
        let mut source_slot = vec![0u32; terms + edge_count];
        for (k, &s) in ns_items.iter().enumerate() {
            source_slot[s as usize] = k as u32;
        }
        let cap = (config.buffer_depth * config.packet_flits) as u32;
        let wheel_slots = (config.switch_pipeline + 2) as usize;
        EventSimulator {
            graph,
            rng: SmallRng::seed_from_u64(config.seed),
            terminals,
            plan,
            edge_src,
            edge_is_net,
            ns_offsets,
            ns_items,
            cap,
            ring_slots: vec![Flit::EMPTY; edge_count * cap as usize],
            ring_head: vec![0; edge_count],
            ring_len: vec![0; edge_count],
            ring_ready: vec![0; edge_count],
            ring_final: vec![false; edge_count],
            inject: (0..terms).map(|_| VecDeque::new()).collect(),
            owner: vec![NO_OWNER; edge_count],
            rr: vec![0; edge_count],
            source_moved: vec![false; terms + edge_count],
            moved_log: Vec::new(),
            want_edge: vec![NO_EDGE; terms + edge_count],
            want_packet: vec![0; terms + edge_count],
            want_required: vec![1; terms + edge_count],
            want_ready: vec![0; terms + edge_count],
            source_slot,
            counted: vec![false; terms + edge_count],
            desire_gen: vec![0; terms + edge_count],
            ring_gen: vec![0; edge_count],
            want_ready_count: vec![0; edge_count],
            active_edges: ActiveSet::new(edge_count),
            eject_ready: ActiveSet::new(edge_count),
            wheel: (0..wheel_slots).map(|_| Vec::new()).collect(),
            next_packet: 0,
            now: 0,
            latencies: Vec::new(),
            offered: 0,
            edge_flits: vec![0; edge_count],
            in_flight: 0,
            config,
        }
    }

    /// The synthetic route plan, compiling it on first use.
    fn synthetic_plan(&mut self) -> Arc<RoutePlan> {
        if self.plan.is_none() {
            let mut table = RouteTable::new(self.graph);
            self.plan = Some(Arc::new(RoutePlan::synthetic(
                self.graph,
                &mut table,
                &self.config,
            )));
        }
        self.plan.as_ref().expect("plan just built").clone()
    }

    /// Runs a synthetic-traffic simulation; same contract — and same
    /// RNG consumption order — as the flat engine's `run_synthetic`.
    pub(crate) fn run_synthetic(
        &mut self,
        pattern: &TrafficPattern,
        injection_rate: f64,
    ) -> LatencyStats {
        let plan = self.synthetic_plan();
        self.reset();
        let n = self.terminals.len();
        let packet_prob = (injection_rate / self.config.packet_flits as f64).clamp(0.0, 1.0);
        let total =
            self.config.warmup_cycles + self.config.measure_cycles + self.config.drain_cycles;
        let inject_until = self.config.warmup_cycles + self.config.measure_cycles;
        while self.now < total {
            self.drain_wheel();
            self.eject();
            if self.now < inject_until {
                for t in 0..n {
                    if self.rng.gen_bool(packet_prob) {
                        let Some(dst) = pattern.destination(t, n, &mut self.rng) else {
                            continue;
                        };
                        let ids = plan.routes_for(t, dst);
                        if ids.is_empty() {
                            continue;
                        }
                        let rid = if plan.direct {
                            ids[0]
                        } else {
                            ids[self.rng.gen_range(0..ids.len())]
                        };
                        self.inject_packet(t, rid, &plan);
                    }
                }
            } else if self.in_flight == 0 {
                break;
            }
            self.transfer(&plan);
            self.now += 1;
        }
        self.stats()
    }

    /// Runs a trace-driven simulation; same contract as the flat
    /// engine's `run_trace`.
    pub(crate) fn run_trace(
        &mut self,
        eval: &Evaluation,
        app: &CoreGraph,
        intensity: f64,
    ) -> LatencyStats {
        let (plan, mut traces) = RoutePlan::trace(self.graph, &self.config, eval);
        let plan = Arc::new(plan);
        let max_bw = app
            .commodities()
            .first()
            .map(|c| c.bandwidth)
            .unwrap_or(1.0);
        for tr in &mut traces {
            tr.packet_prob = (intensity * tr.bandwidth / max_bw / self.config.packet_flits as f64)
                .clamp(0.0, 1.0);
        }
        self.reset();
        let total =
            self.config.warmup_cycles + self.config.measure_cycles + self.config.drain_cycles;
        let inject_until = self.config.warmup_cycles + self.config.measure_cycles;
        while self.now < total {
            self.drain_wheel();
            self.eject();
            if self.now < inject_until {
                for tr in &traces {
                    if self.rng.gen_bool(tr.packet_prob) {
                        let pick: f64 = self.rng.gen_range(0.0..1.0);
                        let mut acc = 0.0;
                        let mut chosen = tr.routes.last().expect("commodity has a route").0;
                        for &(rid, f) in &tr.routes {
                            acc += f;
                            if pick <= acc {
                                chosen = rid;
                                break;
                            }
                        }
                        self.inject_packet(tr.terminal, chosen, &plan);
                    }
                }
            } else if self.in_flight == 0 {
                break;
            }
            self.transfer(&plan);
            self.now += 1;
        }
        self.stats()
    }

    fn reset(&mut self) {
        self.ring_head.fill(0);
        self.ring_len.fill(0);
        for q in &mut self.inject {
            q.clear();
        }
        self.owner.fill(NO_OWNER);
        self.rr.fill(0);
        self.want_edge.fill(NO_EDGE);
        self.counted.fill(false);
        self.desire_gen.fill(0);
        self.ring_gen.fill(0);
        self.want_ready_count.fill(0);
        self.active_edges.clear();
        self.eject_ready.clear();
        for slot in &mut self.wheel {
            slot.clear();
        }
        // The per-cycle clearing is log-driven, so a run that ended
        // mid-log must not leak moved flags into the next run.
        self.source_moved.fill(false);
        self.moved_log.clear();
        self.next_packet = 0;
        self.now = 0;
        self.latencies.clear();
        self.offered = 0;
        self.edge_flits.fill(0);
        self.in_flight = 0;
        self.rng = SmallRng::seed_from_u64(self.config.seed);
    }

    /// Schedules `ev` for cycle `at` (which must be within the wheel
    /// horizon: `at - now <= switch_pipeline + 1`).
    #[inline]
    fn schedule(&mut self, at: u64, ev: WheelEvent) {
        debug_assert!(at > self.now && at - self.now < self.wheel.len() as u64);
        let w = (at % self.wheel.len() as u64) as usize;
        self.wheel[w].push(ev);
    }

    /// Fires the events scheduled for this cycle, moving now-ready
    /// heads into the scanned sets. Runs before the eject phase so an
    /// ejection becoming ready this cycle happens this cycle — exactly
    /// when the flat engine's dense scan would have seen it.
    fn drain_wheel(&mut self) {
        let w = (self.now % self.wheel.len() as u64) as usize;
        if self.wheel[w].is_empty() {
            return;
        }
        let mut events = std::mem::take(&mut self.wheel[w]);
        for ev in events.drain(..) {
            match ev {
                WheelEvent::Want { slot, gen } => {
                    let k = slot as usize;
                    if self.desire_gen[k] == gen {
                        debug_assert!(
                            self.want_edge[k] != NO_EDGE
                                && self.want_ready[k] == self.now
                                && !self.counted[k]
                        );
                        self.count_ready(k);
                    }
                }
                WheelEvent::Eject { ring, gen } => {
                    let b = ring as usize;
                    if self.ring_gen[b] == gen {
                        debug_assert!(
                            self.ring_len[b] > 0
                                && self.ring_final[b]
                                && self.ring_ready[b] == self.now
                        );
                        self.eject_ready.insert(b);
                    }
                }
            }
        }
        // Hand the drained Vec's allocation back to the slot.
        self.wheel[w] = events;
    }

    /// Counts slot `k`'s ready head into its wanted edge, activating
    /// the edge when it is the first.
    #[inline]
    fn count_ready(&mut self, k: usize) {
        self.counted[k] = true;
        let e = self.want_edge[k] as usize;
        if self.want_ready_count[e] == 0 {
            self.active_edges.insert(e);
        }
        self.want_ready_count[e] += 1;
    }

    fn inject_packet(&mut self, terminal: usize, route: u32, plan: &RoutePlan) {
        let measured = self.now >= self.config.warmup_cycles
            && self.now < self.config.warmup_cycles + self.config.measure_cycles;
        if measured {
            self.offered += 1;
        }
        let packet = self.next_packet;
        self.next_packet += 1;
        let ready_at = if plan.arena.routes[route as usize].start_at_switch {
            self.now + self.config.switch_pipeline
        } else {
            self.now
        };
        let pf = self.config.packet_flits;
        let base = if measured { F_MEASURED } else { 0 };
        let fresh_head = self.inject[terminal].is_empty();
        let span = plan.arena.routes[route as usize];
        let (next_edge, head_space) = if span.step_count == 0 {
            (NO_EDGE, 1)
        } else {
            let step = plan.arena.steps[span.first_step as usize];
            (step.edge, step.head_space)
        };
        for i in 0..pf {
            let mut flags = base;
            let mut required = 1;
            if i == 0 {
                flags |= F_HEAD;
                required = head_space;
            }
            if i + 1 == pf {
                flags |= F_TAIL;
            }
            self.inject[terminal].push_back(Flit {
                ready_at,
                inject_cycle: self.now,
                route,
                packet,
                next_edge,
                required,
                hop: 0,
                flags,
            });
        }
        self.in_flight += pf as u64;
        if fresh_head {
            self.update_source_desire(terminal as u32);
        }
    }

    /// The head flit of encoded source `s`, if any.
    #[inline]
    fn source_head(&self, s: u32) -> Option<&Flit> {
        let s = s as usize;
        let terms = self.terminals.len();
        if s < terms {
            self.inject[s].front()
        } else {
            let b = s - terms;
            if self.ring_len[b] == 0 {
                None
            } else {
                Some(&self.ring_slots[b * self.cap as usize + self.ring_head[b] as usize])
            }
        }
    }

    /// Mirrors source `s`'s (possibly new) head flit into its desire
    /// entry, retiring the old head's active-set contribution and
    /// either counting the new head immediately (ready) or scheduling
    /// its readiness on the wheel (pending). Called at every
    /// queue-head change, so the sets always match what the flat
    /// engine's per-node bitmap would report.
    fn update_source_desire(&mut self, s: u32) {
        let k = self.source_slot[s as usize] as usize;
        self.desire_gen[k] = self.desire_gen[k].wrapping_add(1);
        if self.counted[k] {
            self.counted[k] = false;
            let e = self.want_edge[k] as usize;
            self.want_ready_count[e] -= 1;
            if self.want_ready_count[e] == 0 {
                self.active_edges.remove(e);
            }
        }
        match self.source_head(s).copied() {
            Some(head) => {
                self.want_edge[k] = head.next_edge;
                self.want_packet[k] = head.packet;
                self.want_required[k] = head.required;
                self.want_ready[k] = head.ready_at;
                if head.next_edge != NO_EDGE {
                    if head.ready_at <= self.now {
                        self.count_ready(k);
                    } else {
                        let gen = self.desire_gen[k];
                        self.schedule(
                            head.ready_at,
                            WheelEvent::Want {
                                slot: k as u32,
                                gen,
                            },
                        );
                    }
                }
            }
            None => {
                self.want_edge[k] = NO_EDGE;
            }
        }
    }

    /// Refreshes ring `b`'s denormalised head metadata *and* its eject
    /// bookkeeping (set membership or a wheel wake-up). `b` must be
    /// nonempty.
    #[inline]
    fn sync_ring_head(&mut self, b: usize) {
        self.ring_gen[b] = self.ring_gen[b].wrapping_add(1);
        let head = self.ring_slots[b * self.cap as usize + self.ring_head[b] as usize];
        self.ring_ready[b] = head.ready_at;
        self.ring_final[b] = head.next_edge == NO_EDGE;
        if self.ring_final[b] {
            if head.ready_at <= self.now {
                self.eject_ready.insert(b);
            } else {
                self.eject_ready.remove(b);
                let gen = self.ring_gen[b];
                self.schedule(
                    head.ready_at,
                    WheelEvent::Eject {
                        ring: b as u32,
                        gen,
                    },
                );
            }
        } else {
            self.eject_ready.remove(b);
        }
    }

    fn pop_source(&mut self, s: u32) -> Flit {
        let s = s as usize;
        let terms = self.terminals.len();
        if s < terms {
            let flit = self.inject[s].pop_front().expect("candidate head exists");
            self.update_source_desire(s as u32);
            flit
        } else {
            let b = s - terms;
            let cap = self.cap;
            let flit = self.ring_slots[b * cap as usize + self.ring_head[b] as usize];
            self.ring_head[b] = (self.ring_head[b] + 1) % cap;
            self.ring_len[b] -= 1;
            if self.ring_len[b] == 0 {
                self.ring_gen[b] = self.ring_gen[b].wrapping_add(1);
                self.eject_ready.remove(b);
            } else {
                self.sync_ring_head(b);
            }
            self.update_source_desire((terms + b) as u32);
            flit
        }
    }

    /// Ejects every ready final head, walking only the rings in the
    /// eject set — ascending edge order, one pop per ring per cycle,
    /// identical to the flat engine's dense scan.
    fn eject(&mut self) {
        if self.in_flight == 0 {
            return;
        }
        let cap = self.cap as usize;
        let mut next = self.eject_ready.first_at_least(0);
        while let Some(e) = next {
            debug_assert!(
                self.ring_len[e] > 0 && self.ring_final[e] && self.ring_ready[e] <= self.now,
                "eject set holds only ready final heads"
            );
            let head = self.ring_slots[e * cap + self.ring_head[e] as usize];
            self.ring_head[e] = (self.ring_head[e] + 1) % self.cap;
            self.ring_len[e] -= 1;
            if self.ring_len[e] == 0 {
                self.ring_gen[e] = self.ring_gen[e].wrapping_add(1);
                self.eject_ready.remove(e);
            } else {
                self.sync_ring_head(e);
            }
            self.update_source_desire((self.terminals.len() + e) as u32);
            self.in_flight -= 1;
            if head.flags & F_TAIL != 0 && head.flags & F_MEASURED != 0 {
                self.latencies.push(self.now - head.inject_cycle);
            }
            // Advance strictly past `e`: a new final-and-ready head on
            // this ring keeps its bit but must wait for next cycle's
            // scan, matching the flat engine's single pass.
            next = self.eject_ready.first_at_least(e + 1);
        }
    }

    /// Transfers at most one flit per active edge, walking only the
    /// edges with a ready wanting head — ascending edge order with the
    /// flat engine's exact owner/round-robin arbitration.
    fn transfer(&mut self, plan: &RoutePlan) {
        if self.in_flight == 0 {
            return;
        }
        for &s in &self.moved_log {
            self.source_moved[s as usize] = false;
        }
        self.moved_log.clear();
        let measure_window = self.now >= self.config.warmup_cycles
            && self.now < self.config.warmup_cycles + self.config.measure_cycles;
        let mut next = self.active_edges.first_at_least(0);
        while let Some(e) = next {
            let free = self.cap - self.ring_len[e];
            if free == 0 {
                next = self.active_edges.first_at_least(e + 1);
                continue;
            }
            let node = self.edge_src[e] as usize;
            let s0 = self.ns_offsets[node] as usize;
            let s1 = self.ns_offsets[node + 1] as usize;
            let n_src = s1 - s0;
            let eu = e as u32;
            let eligible = |sim: &Self, k: usize| -> bool {
                sim.want_edge[k] == eu
                    && sim.want_ready[k] <= sim.now
                    && free >= sim.want_required[k]
                    && !sim.source_moved[sim.ns_items[k] as usize]
            };
            let chosen = if self.owner[e] != NO_OWNER {
                let pid = self.owner[e];
                (s0..s1).find(|&k| self.want_packet[k] == pid && eligible(self, k))
            } else {
                let start = self.rr[e] as usize % n_src;
                (0..n_src)
                    .map(|j| {
                        let mut k = start + j;
                        if k >= n_src {
                            k -= n_src;
                        }
                        s0 + k
                    })
                    .find(|&k| eligible(self, k))
            };
            let Some(k) = chosen else {
                next = self.active_edges.first_at_least(e + 1);
                continue;
            };
            let src_slot = self.ns_items[k];
            let mut flit = self.pop_source(src_slot);
            self.source_moved[src_slot as usize] = true;
            self.moved_log.push(src_slot);
            if measure_window {
                self.edge_flits[e] += 1;
            }
            self.rr[e] = self.rr[e].wrapping_add(1);
            let is_tail = flit.flags & F_TAIL != 0;
            self.owner[e] = if is_tail { NO_OWNER } else { flit.packet };
            let route = plan.arena.routes[flit.route as usize];
            let step = plan.arena.steps[route.first_step as usize + flit.hop as usize];
            flit.hop += 1;
            if u32::from(flit.hop) == u32::from(route.step_count) && step.eject_at_dst {
                self.in_flight -= 1;
                if is_tail && flit.flags & F_MEASURED != 0 {
                    self.latencies.push(self.now - flit.inject_cycle);
                }
                next = self.active_edges.first_at_least(e + 1);
                continue;
            }
            if u32::from(flit.hop) < u32::from(route.step_count) {
                let next_step = plan.arena.steps[route.first_step as usize + flit.hop as usize];
                flit.next_edge = next_step.edge;
                flit.required = if flit.flags & F_HEAD != 0 {
                    next_step.head_space
                } else {
                    1
                };
            } else {
                flit.next_edge = NO_EDGE;
            }
            flit.ready_at = self.now + step.ready_add;
            let cap = self.cap;
            let idx = e * cap as usize + ((self.ring_head[e] + self.ring_len[e]) % cap) as usize;
            let was_empty = self.ring_len[e] == 0;
            self.ring_slots[idx] = flit;
            self.ring_len[e] += 1;
            if was_empty {
                // The ring gained a head flit mid-cycle; with a
                // zero-cycle arrival increment it can already be
                // eligible at a later edge this same cycle — the live
                // set re-read below observes the activation, exactly
                // like the flat engine's dense scan.
                self.sync_ring_head(e);
                self.update_source_desire((self.terminals.len() + e) as u32);
            }
            next = self.active_edges.first_at_least(e + 1);
        }
    }

    fn stats(&self) -> LatencyStats {
        let delivered = self.latencies.len();
        let avg = if delivered == 0 {
            0.0
        } else {
            self.latencies.iter().sum::<u64>() as f64 / delivered as f64
        };
        let window = self.config.measure_cycles.max(1) as f64;
        let mut max_util = 0.0f64;
        let mut util_sum = 0.0f64;
        let mut network_edges = 0usize;
        for e in 0..self.edge_flits.len() {
            if !self.edge_is_net[e] {
                continue;
            }
            let util = self.edge_flits[e] as f64 / window;
            max_util = max_util.max(util);
            util_sum += util;
            network_edges += 1;
        }
        LatencyStats {
            avg_latency: avg,
            max_latency: self.latencies.iter().copied().max().unwrap_or(0),
            packets_offered: self.offered,
            packets_delivered: delivered,
            throughput: delivered as f64 * self.config.packet_flits as f64
                / (self.config.measure_cycles as f64 * self.terminals.len().max(1) as f64),
            measured_cycles: self.config.measure_cycles,
            max_link_utilization: max_util,
            mean_link_utilization: if network_edges > 0 {
                util_sum / network_edges as f64
            } else {
                0.0
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn active_set_sorted_iteration_and_live_reread() {
        let mut set = ActiveSet::new(300);
        for i in [5usize, 64, 65, 130, 299] {
            set.insert(i);
        }
        let mut seen = Vec::new();
        let mut next = set.first_at_least(0);
        while let Some(i) = next {
            seen.push(i);
            if i == 64 {
                // Mid-iteration insertion above the cursor is observed.
                set.insert(100);
            }
            next = set.first_at_least(i + 1);
        }
        assert_eq!(seen, [5, 64, 65, 100, 130, 299]);
        set.remove(65);
        set.remove(5);
        assert_eq!(set.first_at_least(0), Some(64));
        assert_eq!(set.first_at_least(131), Some(299));
        assert_eq!(set.first_at_least(300), None);
        set.clear();
        assert_eq!(set.first_at_least(0), None);
    }

    #[test]
    fn active_set_summary_tracks_word_emptiness() {
        let mut set = ActiveSet::new(4096);
        set.insert(4095);
        assert_eq!(set.first_at_least(0), Some(4095));
        set.remove(4095);
        assert_eq!(set.first_at_least(0), None);
    }
}
