//! Injection-rate sweep driver: the latency-versus-load curves of paper
//! Fig. 8(b), run across rates and topologies on scoped threads.
//!
//! Every `(topology, rate)` job owns an independent simulator seeded
//! from its [`SimConfig`], and the per-topology [`RoutePlan`] is
//! compiled once and shared by `Arc` across that topology's rate
//! workers. Results are written positionally, so the output is
//! **bit-identical for any worker count** — one thread, one per job, or
//! anything in between.

use std::sync::Arc;

use crate::engine::{RoutePlan, SimConfig, SimEngine};
use crate::session::SimSession;
use crate::{adversarial_pattern, LatencyStats};
use sunmap_mapping::RouteTable;
use sunmap_topology::{TopologyGraph, TopologyKind};
use sunmap_traffic::patterns::TrafficPattern;

/// One topology to sweep, with the pattern driving it.
#[derive(Debug)]
pub struct SweepRequest<'a> {
    /// The network under test.
    pub graph: &'a TopologyGraph,
    /// The synthetic destination pattern its generators follow.
    pub pattern: TrafficPattern,
}

/// One measured point of a latency-versus-injection-rate curve.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPoint {
    /// Which topology this point belongs to.
    pub topology: TopologyKind,
    /// Pattern name (e.g. `tornado`).
    pub pattern: String,
    /// Offered load in flits per cycle per terminal.
    pub rate: f64,
    /// The measured statistics.
    pub stats: LatencyStats,
}

/// Sweeps `rates` over every request, fanning the `requests × rates`
/// job grid out across at most `workers` scoped threads (`0` = one per
/// available CPU). Points come back grouped by request, then by rate —
/// the same order and the same bit-exact values at any worker count.
///
/// # Examples
///
/// ```
/// use sunmap_sim::{sweep, SimConfig};
/// use sunmap_topology::builders;
/// use sunmap_traffic::patterns::TrafficPattern;
///
/// let mesh = builders::mesh(4, 4, 500.0)?;
/// let requests = [sweep::SweepRequest {
///     graph: &mesh,
///     pattern: TrafficPattern::BitComplement,
/// }];
/// let points = sweep::injection_sweep(&requests, &[0.02, 0.1], SimConfig::fast(), 0);
/// assert_eq!(points.len(), 2);
/// assert!(points[1].stats.avg_latency >= points[0].stats.avg_latency);
/// # Ok::<(), sunmap_topology::TopologyError>(())
/// ```
pub fn injection_sweep(
    requests: &[SweepRequest<'_>],
    rates: &[f64],
    config: SimConfig,
    workers: usize,
) -> Vec<SweepPoint> {
    // Compile each topology's route plan once, up front (cheap next to
    // the simulations, and shared by every rate worker). The reference
    // engine resolves routes live and never consumes a plan.
    let plans: Vec<Option<Arc<RoutePlan>>> = requests
        .iter()
        .map(|r| {
            (config.engine != SimEngine::Reference).then(|| {
                let mut table = RouteTable::new(r.graph);
                Arc::new(RoutePlan::synthetic(r.graph, &mut table, &config))
            })
        })
        .collect();
    let jobs: Vec<(usize, usize)> = (0..requests.len())
        .flat_map(|g| (0..rates.len()).map(move |r| (g, r)))
        .collect();
    let workers = effective_workers(workers, jobs.len());
    let run_job = |&(g, r): &(usize, usize)| -> SweepPoint {
        let req = &requests[g];
        let mut builder = SimSession::builder(req.graph).config(config);
        if let Some(plan) = &plans[g] {
            builder = builder.plan(plan.clone());
        }
        let mut sim = builder.build();
        let stats = sim.run_synthetic(&req.pattern, rates[r]);
        SweepPoint {
            topology: req.graph.kind(),
            pattern: req.pattern.name().to_string(),
            rate: rates[r],
            stats,
        }
    };
    if workers <= 1 || jobs.len() <= 1 {
        return jobs.iter().map(run_job).collect();
    }
    let chunk = jobs.len().div_ceil(workers);
    let mut out = Vec::with_capacity(jobs.len());
    std::thread::scope(|s| {
        let handles: Vec<_> = jobs
            .chunks(chunk)
            .map(|chunk_jobs| {
                let run_job = &run_job;
                s.spawn(move || chunk_jobs.iter().map(run_job).collect::<Vec<_>>())
            })
            .collect();
        for h in handles {
            out.extend(h.join().expect("sweep worker panicked"));
        }
    });
    out
}

/// [`injection_sweep`] with each topology driven by its classic
/// adversarial pattern (paper §6.2).
pub fn adversarial_sweep(
    graphs: &[TopologyGraph],
    rates: &[f64],
    config: SimConfig,
    workers: usize,
) -> Vec<SweepPoint> {
    let requests: Vec<SweepRequest<'_>> = graphs
        .iter()
        .map(|g| SweepRequest {
            graph: g,
            pattern: adversarial_pattern(g.kind()),
        })
        .collect();
    injection_sweep(&requests, rates, config, workers)
}

fn effective_workers(requested: usize, jobs: usize) -> usize {
    let cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let w = if requested == 0 { cpus } else { requested };
    w.min(jobs).max(1)
}

/// Renders sweep points as a CSV table (one row per point) — the
/// Fig. 8(b) curve data.
pub fn sweep_csv(points: &[SweepPoint]) -> String {
    use std::fmt::Write as _;
    let mut out = String::from(
        "topology,pattern,rate,avg_latency_cycles,max_latency_cycles,\
         throughput_flits_per_cycle,delivery_ratio,packets_offered,\
         packets_delivered,max_link_utilization,mean_link_utilization\n",
    );
    for p in points {
        let _ = writeln!(
            out,
            "{},{},{},{},{},{},{},{},{},{},{}",
            p.topology.name(),
            p.pattern,
            p.rate,
            p.stats.avg_latency,
            p.stats.max_latency,
            p.stats.throughput,
            p.stats.delivery_ratio(),
            p.stats.packets_offered,
            p.stats.packets_delivered,
            p.stats.max_link_utilization,
            p.stats.mean_link_utilization,
        );
    }
    out
}

/// The wire schema identifier stamped on every sweep JSON document.
pub const SWEEP_SCHEMA: &str = "sunmap-sweep/1";

/// Renders sweep points as JSON:
/// `{"schema":"sunmap-sweep/1","points":[...]}`.
pub fn sweep_json(points: &[SweepPoint]) -> String {
    use std::fmt::Write as _;
    let mut out = format!("{{\"schema\":\"{SWEEP_SCHEMA}\",\"points\":[");
    for (i, p) in points.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"topology\":{},\"pattern\":{},\"rate\":{},{}}}",
            json_string(p.topology.name()),
            json_string(&p.pattern),
            json_number(p.rate),
            stats_json_fields(&p.stats),
        );
    }
    out.push_str("]}");
    out
}

/// The shared JSON rendering of one [`LatencyStats`] (an object body
/// without braces, so callers can prepend identifying fields).
pub fn stats_json_fields(stats: &LatencyStats) -> String {
    format!(
        "\"avg_latency_cycles\":{},\"max_latency_cycles\":{},\
         \"packets_offered\":{},\"packets_delivered\":{},\
         \"throughput_flits_per_cycle\":{},\"delivery_ratio\":{},\
         \"max_link_utilization\":{},\"mean_link_utilization\":{}",
        json_number(stats.avg_latency),
        stats.max_latency,
        stats.packets_offered,
        stats.packets_delivered,
        json_number(stats.throughput),
        json_number(stats.delivery_ratio()),
        json_number(stats.max_link_utilization),
        json_number(stats.mean_link_utilization),
    )
}

/// Escapes `s` as a JSON string literal (quotes included).
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use std::fmt::Write as _;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Formats an `f64` as a JSON number (JSON has no NaN/Infinity; those
/// render as `null`).
pub fn json_number(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sunmap_topology::builders;

    fn tiny_requests(graphs: &[TopologyGraph]) -> Vec<SweepRequest<'_>> {
        graphs
            .iter()
            .map(|g| SweepRequest {
                graph: g,
                pattern: adversarial_pattern(g.kind()),
            })
            .collect()
    }

    #[test]
    fn sweep_is_worker_count_invariant() {
        let graphs = vec![
            builders::mesh(3, 3, 500.0).unwrap(),
            builders::torus(3, 3, 500.0).unwrap(),
        ];
        let rates = [0.02, 0.1, 0.25];
        let requests = tiny_requests(&graphs);
        let one = injection_sweep(&requests, &rates, SimConfig::fast(), 1);
        assert_eq!(one.len(), 6);
        for workers in [2, 3, 6] {
            let many = injection_sweep(&requests, &rates, SimConfig::fast(), workers);
            assert_eq!(one, many, "{workers} workers diverged");
        }
    }

    #[test]
    fn points_are_grouped_by_topology_then_rate() {
        let graphs = vec![
            builders::mesh(3, 3, 500.0).unwrap(),
            builders::torus(3, 3, 500.0).unwrap(),
        ];
        let points = adversarial_sweep(&graphs, &[0.05, 0.2], SimConfig::fast(), 0);
        let labels: Vec<(String, f64)> = points
            .iter()
            .map(|p| (p.topology.name().to_string(), p.rate))
            .collect();
        assert_eq!(
            labels,
            [
                ("Mesh".to_string(), 0.05),
                ("Mesh".to_string(), 0.2),
                ("Torus".to_string(), 0.05),
                ("Torus".to_string(), 0.2),
            ]
        );
    }

    #[test]
    fn csv_has_header_and_one_row_per_point() {
        let graphs = vec![builders::mesh(3, 3, 500.0).unwrap()];
        let points = adversarial_sweep(&graphs, &[0.05, 0.2], SimConfig::fast(), 1);
        let csv = sweep_csv(&points);
        let lines: Vec<&str> = csv.trim_end().lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("topology,pattern,rate"));
        assert!(lines[1].starts_with("Mesh,bit-complement,0.05,"));
    }

    #[test]
    fn json_escaping_and_numbers() {
        assert_eq!(json_string("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
        assert_eq!(json_number(0.5), "0.5");
        assert_eq!(json_number(f64::NAN), "null");
    }

    #[test]
    fn json_output_mentions_every_topology() {
        let graphs = vec![
            builders::mesh(3, 3, 500.0).unwrap(),
            builders::torus(3, 3, 500.0).unwrap(),
        ];
        let points = adversarial_sweep(&graphs, &[0.05], SimConfig::fast(), 1);
        let json = sweep_json(&points);
        assert!(json.starts_with("{\"schema\":\"sunmap-sweep/1\""));
        assert!(json.contains("\"Mesh\"") && json.contains("\"Torus\""));
        assert!(json.ends_with("]}"));
    }
}
