//! Flit-level cycle-based NoC simulator for SUNMAP.
//!
//! The paper validates its mappings by generating the chosen network in
//! SystemC (×pipes soft macros) and simulating it cycle-accurately
//! (§6.2, §6.4). This crate is the Rust substitute for that substrate
//! (see DESIGN.md): a wormhole-routed, input-buffered, credit-flow
//! simulator operating on the same [`TopologyGraph`]s the mapper uses.
//!
//! Model summary:
//!
//! * packets of `packet_flits` flits, source-routed along either random
//!   minimum paths (synthetic mode) or the paths chosen by a mapping
//!   evaluation (trace mode);
//! * one flit per link per cycle; per-edge input buffers of
//!   `buffer_depth` flits; transfers blocked when the downstream buffer
//!   is full (credit flow control);
//! * wormhole output allocation: once a packet's head flit wins an
//!   output link, the link stays allocated until the tail passes;
//! * round-robin arbitration among the input ports (and the local
//!   injection queue) competing for an output link;
//! * an extra pipeline cycle per switch traversal, matching the
//!   multi-cycle switches of ×pipes.
//!
//! Statistics are collected for packets injected inside the measurement
//! window, reproducing the latency-versus-injection-rate methodology of
//! paper Fig. 8(b) and the per-topology latency bars of Fig. 10(c).
//!
//! Three interchangeable engines share the model, selected through
//! [`SimEngine`] on [`SimConfig`] and driven through a [`SimSession`]:
//! the flat-array engine of [`engine`] (`Copy` flits in dense per-edge
//! ring buffers, per-pair routes compiled once — through the mapper's
//! [`RouteTable`](sunmap_mapping::RouteTable) — into a shareable
//! [`RoutePlan`]), the event-driven active-set engine (`O(k)` per
//! cycle in the number of active elements — the low-load /
//! large-network engine), and the pre-rebuild [`reference`](mod@reference)
//! engine, the behavioral oracle the three-way equivalence tests and
//! the `sim_speed` bench compare against. All three are bit-identical
//! per seed; simulations are deterministic (everything is
//! index-ordered; no hash-map iteration anywhere), and [`sweep`] fans
//! rate×topology grids out across scoped threads with bit-identical
//! results at any worker count.
//!
//! # Examples
//!
//! ```
//! use sunmap_sim::{SimConfig, SimSession};
//! use sunmap_topology::builders;
//! use sunmap_traffic::patterns::TrafficPattern;
//!
//! let mesh = builders::mesh(4, 4, 500.0)?;
//! // SimConfig::default() selects SimEngine::Auto: event-driven at
//! // this low load, flat once the offered load crosses the threshold.
//! let mut session = SimSession::builder(&mesh).config(SimConfig::fast()).build();
//! let stats = session.run_synthetic(&TrafficPattern::UniformRandom, 0.05);
//! assert!(stats.packets_delivered > 0);
//! assert!(stats.avg_latency >= 4.0); // at least serialization + a hop
//! # Ok::<(), sunmap_topology::TopologyError>(())
//! ```

pub mod engine;
mod event;
pub mod reference;
mod session;
mod stats;
pub mod sweep;

pub use engine::{NocSimulator, RoutePlan, SimConfig, SimEngine, SIM_PATH_CAP};
pub use session::{SimSession, SimSessionBuilder};
pub use stats::LatencyStats;
pub use sweep::{adversarial_sweep, injection_sweep, SweepPoint, SweepRequest};

use sunmap_topology::TopologyGraph;
use sunmap_topology::TopologyKind;
use sunmap_traffic::patterns::TrafficPattern;

/// Picks the classic adversarial pattern for a topology (paper §6.2:
/// "traffic generators generate adversarial traffic pattern for each
/// topology"):
///
/// * **mesh** — bit-complement, which shoves every flow across the
///   bisection;
/// * **torus** — tornado, marching almost half-way around every ring so
///   the wrap channels cannot help;
/// * **hypercube** — transpose, the classic e-cube adversary (the
///   motivating example for Valiant routing);
/// * **butterfly** — tornado, whose shifted destinations collapse whole
///   ingress groups onto single inter-stage links (bit-reversal, by
///   contrast, is *benign* on a 2-stage butterfly);
/// * **Clos** — transpose; with random middle-stage selection the Clos
///   equalises any permutation, which is exactly the point of §6.2.
pub fn adversarial_pattern(kind: TopologyKind) -> TrafficPattern {
    match kind {
        TopologyKind::Mesh { .. } => TrafficPattern::BitComplement,
        TopologyKind::Torus { .. } => TrafficPattern::Tornado,
        TopologyKind::Hypercube { .. } => TrafficPattern::Transpose,
        TopologyKind::Clos { .. } => TrafficPattern::Transpose,
        TopologyKind::Butterfly { .. } => TrafficPattern::Tornado,
        // Extension topologies: the octagon is ring-like (tornado); the
        // star has no adversary beyond its per-port channels (uniform).
        TopologyKind::Octagon => TrafficPattern::Tornado,
        TopologyKind::Star { .. } | TopologyKind::Custom { .. } => TrafficPattern::UniformRandom,
    }
}

/// Convenience: sweep injection rates on one topology under a pattern,
/// returning `(rate, avg_latency)` pairs — one Fig. 8(b) curve. The
/// route plan is compiled once and shared across the rates; for
/// multi-topology or multi-threaded sweeps use [`sweep::injection_sweep`].
pub fn latency_sweep(
    graph: &TopologyGraph,
    config: SimConfig,
    pattern: &TrafficPattern,
    rates: &[f64],
) -> Vec<(f64, f64)> {
    let mut session = SimSession::builder(graph).config(config).build();
    rates
        .iter()
        .map(|&rate| {
            let stats = session.run_synthetic(pattern, rate);
            (rate, stats.avg_latency)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sunmap_topology::builders;

    #[test]
    fn adversarial_patterns_are_topology_specific() {
        let lib = builders::standard_library(16, 500.0).unwrap();
        let names: Vec<_> = lib
            .iter()
            .map(|g| adversarial_pattern(g.kind()).name())
            .collect();
        assert_eq!(
            names,
            [
                "bit-complement",
                "tornado",
                "transpose",
                "transpose",
                "tornado"
            ]
        );
    }

    #[test]
    fn latency_sweep_is_monotone_at_low_rates() {
        let g = builders::mesh(3, 3, 500.0).unwrap();
        // A longer window and well-separated load points keep the
        // comparison above sampling noise (short windows at very low
        // rates measure only a handful of packets).
        let config = SimConfig {
            measure_cycles: 4_000,
            ..SimConfig::fast()
        };
        let curve = latency_sweep(
            &g,
            config,
            &sunmap_traffic::patterns::TrafficPattern::UniformRandom,
            &[0.02, 0.45],
        );
        assert_eq!(curve.len(), 2);
        assert!(
            curve[1].1 >= curve[0].1,
            "latency should not fall with load: {curve:?}"
        );
    }
}
