//! Equivalence suite for route-table preparation strategies.
//!
//! The contract (see [`sunmap_mapping::TablePrep`]): `Lazy` and
//! `ClosedForm` preparation change *when* per-pair routing state is
//! computed, never *what* is computed. Every answer a [`RouteTable`]
//! gives — hop distances, the adjacency matrix, quadrant vertex sets,
//! enumerated path sets, simulator route sets — must be bit-identical
//! to the eager dense preparation (the original implementation, kept
//! as the oracle), and a full [`Mapper`] run under any preparation
//! must produce the same placement, the same [`CostReport`]s and the
//! same observed report sequence. Properties draw from every standard
//! topology builder and all four routing functions.
//!
//! Set `TABLE_EQUIV_CASES=<n>` to sweep `n` extra synthetic seeds per
//! scale tier on top of the defaults (`make table-equiv` wires this
//! up).

use proptest::prelude::*;
use sunmap_mapping::{
    Constraints, CostReport, Mapper, MapperConfig, MappingError, Objective, RouteTable,
    RoutingFunction, TablePrep,
};
use sunmap_topology::{builders, NodeId, TopologyGraph};
use sunmap_traffic::synthetic::SyntheticSpec;
use sunmap_traffic::CoreGraph;

/// The five standard topologies, sized for `cores` cores.
fn topology(idx: usize, cores: usize) -> TopologyGraph {
    let mut library = builders::standard_library(cores, 500.0).expect("library builds");
    library.swap_remove(idx % 5)
}

fn routing(idx: usize) -> RoutingFunction {
    RoutingFunction::ALL[idx % 4]
}

/// The non-eager strategies under test. An explicit `ClosedForm`
/// request degrades to `Lazy` on topologies without a closed form,
/// so both rows are meaningful on every library member.
const VARIANTS: [TablePrep; 2] = [TablePrep::Lazy, TablePrep::ClosedForm];

/// Extra synthetic seeds requested through the `TABLE_EQUIV_CASES`
/// env knob: `n` extra deterministic seeds per scale tier.
fn extra_seeds() -> Vec<u64> {
    let n: u64 = std::env::var("TABLE_EQUIV_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0);
    (1..=n).map(|i| 1_000 + i).collect()
}

/// Asserts that `table` answers every per-pair query over `g`'s
/// mappable vertices bit-identically to the `eager` oracle, for the
/// store `rf` uses plus the routing-independent probes.
fn assert_tables_agree(
    g: &TopologyGraph,
    rf: RoutingFunction,
    eager: &RouteTable,
    table: &RouteTable,
) -> Result<(), TestCaseError> {
    // Adjacency is built identically by construction; prove it anyway.
    for a in g.nodes() {
        for b in g.nodes() {
            prop_assert_eq!(
                eager.adjacency().edge_between(a, b),
                table.adjacency().edge_between(a, b)
            );
        }
    }
    let mappable: Vec<NodeId> = g.mappable_nodes().to_vec();
    for &a in &mappable {
        for &b in &mappable {
            if a == b {
                continue;
            }
            prop_assert_eq!(eager.hop_distance(a, b), table.hop_distance(a, b));
            match rf {
                RoutingFunction::DimensionOrdered => {
                    prop_assert_eq!(
                        &*eager.dimension_ordered_route(a, b),
                        &*table.dimension_ordered_route(a, b)
                    );
                }
                RoutingFunction::MinPath => {
                    prop_assert_eq!(&*eager.quadrant_pair(a, b), &*table.quadrant_pair(a, b));
                }
                RoutingFunction::SplitMinPaths => {
                    prop_assert_eq!(&*eager.split_min_paths(a, b), &*table.split_min_paths(a, b));
                }
                RoutingFunction::SplitAllPaths => {
                    prop_assert_eq!(&*eager.split_all_paths(a, b), &*table.split_all_paths(a, b));
                }
            }
            prop_assert_eq!(&*eager.sim_route_set(a, b), &*table.sim_route_set(a, b));
        }
    }
    Ok(())
}

/// A synthetic application from generated spec parameters. Goes
/// through the `synth:` text form so the suite exercises the same
/// entry point the CLI and batch manifests use.
fn synthetic_app(seed: u64, cores: usize, locality_pct: u8, hotspot_pct: u8) -> CoreGraph {
    let spec: SyntheticSpec = format!(
        "synth:seed={seed},cores={cores},locality=0.{locality:02},hotspot=0.{hotspot:02}",
        locality = locality_pct % 100,
        hotspot = hotspot_pct % 50,
    )
    .parse()
    .expect("generated spec is valid");
    spec.generate()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// Every per-pair answer under lazy and closed-form preparation is
    /// bit-identical to the eager oracle, across all topologies and
    /// routing functions — and laziness is real: nothing materialises
    /// until queried, while the oracle holds all `m²` pairs.
    #[test]
    fn table_answers_match_eager_oracle(
        topo in 0usize..5,
        rf in 0usize..4,
        cores in 6usize..=14,
    ) {
        let g = topology(topo, cores);
        let rf = routing(rf);
        let m = g.mappable_nodes().len();

        let mut eager = RouteTable::with_prep(&g, TablePrep::Eager);
        prop_assert_eq!(eager.prep(), TablePrep::Eager);
        eager.prepare(&g, rf);
        eager.prepare_sim_routes(&g, 4);
        prop_assert_eq!(eager.materialized_pairs(rf), m * m);

        for prep in VARIANTS {
            let mut table = RouteTable::with_prep(&g, prep);
            prop_assert_eq!(table.prep(), prep.resolve(g.kind(), m));
            table.prepare(&g, rf);
            table.prepare_sim_routes(&g, 4);
            // Lazy stores start empty — that is the point.
            prop_assert_eq!(table.materialized_pairs(rf), 0);
            assert_tables_agree(&g, rf, &eager, &table)?;
            // The sweep above touched every off-diagonal pair once;
            // memoisation retains each exactly once.
            prop_assert_eq!(table.materialized_pairs(rf), m * m - m);
        }
    }

    /// A full mapper run — greedy seed, swap search, floorplan, cost
    /// report — is invariant under the table-preparation knob: same
    /// placement, same report, same evaluation count, same observed
    /// report sequence, same error on infeasible instances.
    #[test]
    fn mapper_runs_identical_across_preps(
        topo in 0usize..5,
        rf in 0usize..4,
        obj in 0usize..4,
        seed in 0u64..1_000_000,
        cores in 6usize..=14,
        locality in 0u8..100,
        hotspot in 0u8..50,
        relaxed in 0usize..2,
    ) {
        let g = topology(topo, cores);
        let app = synthetic_app(seed, cores, locality, hotspot);
        prop_assume!(app.edge_count() > 0);
        let config = |prep| MapperConfig {
            routing: routing(rf),
            objective: [
                Objective::MinDelay,
                Objective::MinArea,
                Objective::MinPower,
                Objective::MinBandwidth,
            ][obj % 4],
            constraints: if relaxed == 1 {
                Constraints::relaxed_bandwidth()
            } else {
                Constraints::default()
            },
            max_swap_passes: 1,
            table_prep: prep,
            ..MapperConfig::default()
        };

        let mut oracle_observed: Vec<CostReport> = Vec::new();
        let oracle = Mapper::new(&g, &app, config(TablePrep::Eager))
            .run_observed(|r| oracle_observed.push(r.clone()));

        for prep in VARIANTS {
            let mut observed = Vec::new();
            let run = Mapper::new(&g, &app, config(prep))
                .run_observed(|r| observed.push(r.clone()));
            prop_assert_eq!(&observed, &oracle_observed);
            match (&oracle, &run) {
                (Ok(a), Ok(b)) => {
                    prop_assert_eq!(a.placement().assignment(), b.placement().assignment());
                    prop_assert_eq!(a.report(), b.report());
                    prop_assert_eq!(a.evaluated_candidates(), b.evaluated_candidates());
                }
                (Err(MappingError::NoFeasibleMapping(a)),
                 Err(MappingError::NoFeasibleMapping(b))) => {
                    prop_assert_eq!(a, b);
                }
                (Err(a), Err(b)) => prop_assert_eq!(a.to_string(), b.to_string()),
                (a, b) => {
                    return Err(TestCaseError::fail(format!(
                        "{}: outcome mismatch: eager ok={} vs ok={}",
                        prep.name(), a.is_ok(), b.is_ok()
                    )));
                }
            }
        }
    }
}

/// The scale-tier acceptance case: seeded synthetic workloads on
/// meshes across the `Auto` threshold (64 cores resolves `Eager`,
/// 100 cores resolves `ClosedForm`). Every preparation strategy must
/// reproduce the eager winner bit for bit at every tier, for both a
/// deterministic and a quadrant-driven routing function.
/// `TABLE_EQUIV_CASES=<n>` soaks `n` extra seeds per tier.
#[test]
fn scale_tiers_agree_with_eager_oracle() {
    for (cores, side) in [(64usize, 8usize), (100, 10)] {
        let g = builders::mesh(side, side, 500.0).expect("mesh builds");
        let mut seeds = vec![7u64];
        seeds.extend(extra_seeds());
        for seed in seeds {
            let spec: SyntheticSpec = format!("synth:seed={seed},cores={cores}")
                .parse()
                .expect("valid spec");
            let app = spec.generate();
            for routing in [RoutingFunction::DimensionOrdered, RoutingFunction::MinPath] {
                let config = |prep| MapperConfig {
                    routing,
                    objective: Objective::MinDelay,
                    constraints: Constraints::relaxed_bandwidth(),
                    max_swap_passes: 1,
                    table_prep: prep,
                    ..MapperConfig::default()
                };
                let oracle = Mapper::new(&g, &app, config(TablePrep::Eager))
                    .run()
                    .expect("synthetic workload maps under relaxed bandwidth");
                for prep in [TablePrep::Auto, TablePrep::Lazy, TablePrep::ClosedForm] {
                    let run = Mapper::new(&g, &app, config(prep))
                        .run()
                        .expect("synthetic workload maps under relaxed bandwidth");
                    assert_eq!(
                        oracle.placement().assignment(),
                        run.placement().assignment(),
                        "seed {seed} cores {cores} {routing} {}: placements diverged",
                        prep.name()
                    );
                    assert_eq!(
                        oracle.report(),
                        run.report(),
                        "seed {seed} cores {cores} {routing} {}: reports diverged",
                        prep.name()
                    );
                    assert_eq!(
                        oracle.evaluated_candidates(),
                        run.evaluated_candidates(),
                        "seed {seed} cores {cores} {routing} {}: counts diverged",
                        prep.name()
                    );
                }
            }
        }
    }
}

/// A mapper run under lazy preparation must not enumerate the whole
/// `m × m` pair space at scale — only commodity pairs and swap-delta
/// pairs materialise. (The memory/time win the knob exists for.)
#[test]
fn lazy_preparation_stays_sparse_at_scale() {
    let g = builders::mesh(10, 10, 500.0).expect("mesh builds");
    let spec: SyntheticSpec = "synth:seed=7,cores=100".parse().expect("valid spec");
    let app = spec.generate();
    let config = MapperConfig {
        routing: RoutingFunction::DimensionOrdered,
        objective: Objective::MinDelay,
        constraints: Constraints::relaxed_bandwidth(),
        max_swap_passes: 1,
        table_prep: TablePrep::Lazy,
        ..MapperConfig::default()
    };
    let mut table = RouteTable::with_prep(&g, TablePrep::Lazy);
    Mapper::new(&g, &app, config)
        .with_route_table(&mut table)
        .run()
        .expect("synthetic workload maps under relaxed bandwidth");
    let m = g.mappable_nodes().len();
    let touched = table.materialized_pairs(RoutingFunction::DimensionOrdered);
    assert!(
        touched < m * m / 2,
        "lazy table materialised {touched} of {} pairs — not sparse",
        m * m
    );
}
