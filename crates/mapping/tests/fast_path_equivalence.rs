//! Equivalence suite for the cached evaluation fast path.
//!
//! The contract (see `sunmap_mapping::engine`): for every placement,
//! [`EvalEngine::evaluate_report`] is bit-identical to the reference
//! [`evaluate`], and the mapper's engine-driven parallel swap search
//! returns exactly what a sequential reference search (the paper's
//! plain Fig. 5 loop over the reference evaluator) returns — same
//! assignments, same reports, same candidate counts, same observed
//! report sequence. Properties draw from every standard topology
//! builder, all four routing functions, all four objectives and both
//! constraint regimes.

use proptest::prelude::*;
use sunmap_mapping::{
    evaluate, Constraints, CostReport, EvalEngine, Mapper, MapperConfig, MappingError, Objective,
    Placement, RouteTable, RoutingFunction, SwapStrategy,
};
use sunmap_power::{AreaPowerLibrary, Technology};
use sunmap_topology::{builders, TopologyGraph};
use sunmap_traffic::CoreGraph;

/// The five standard topologies, sized for 12 cores as in the paper.
fn topology(idx: usize) -> TopologyGraph {
    let mut library = builders::standard_library(12, 500.0).expect("library builds");
    library.swap_remove(idx % 5)
}

fn routing(idx: usize) -> RoutingFunction {
    RoutingFunction::ALL[idx % 4]
}

fn objective(idx: usize) -> Objective {
    [
        Objective::MinDelay,
        Objective::MinArea,
        Objective::MinPower,
        Objective::MinBandwidth,
    ][idx % 4]
}

fn constraints(relaxed: bool) -> Constraints {
    if relaxed {
        Constraints::relaxed_bandwidth()
    } else {
        Constraints::default()
    }
}

/// Builds an application from generated (src, dst, bandwidth) triples,
/// skipping self-edges (parallel demands accumulate, as in the API).
fn build_app(cores: usize, edges: &[(usize, usize, f64)]) -> CoreGraph {
    let mut app = CoreGraph::new();
    let ids: Vec<_> = (0..cores)
        .map(|i| app.add_core(format!("c{i}"), 0.5 + (i % 5) as f64))
        .collect();
    for &(s, d, bw) in edges {
        let (s, d) = (s % cores, d % cores);
        if s != d {
            app.add_traffic(ids[s], ids[d], bw).expect("valid demand");
        }
    }
    app
}

/// Deterministic Fisher–Yates permutation of the first `take` mappable
/// nodes, seeded by `seed` (SplitMix64 steps).
fn random_placement(g: &TopologyGraph, take: usize, mut seed: u64) -> Placement {
    let mut next = move || {
        seed = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = seed;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    let mut nodes = g.mappable_nodes().to_vec();
    for i in (1..nodes.len()).rev() {
        let j = (next() % (i as u64 + 1)) as usize;
        nodes.swap(i, j);
    }
    nodes.truncate(take);
    Placement::new(nodes, g).expect("permutation of mappable nodes is valid")
}

/// The pre-engine sequential search: phase 1's greedy seed, then plain
/// steepest-descent passes over all vertex pairs, every candidate
/// scored by the reference evaluator. Returns what `Mapper::run`
/// returned before the fast path existed, plus the observed reports.
#[allow(clippy::type_complexity)]
fn reference_search(
    g: &TopologyGraph,
    app: &CoreGraph,
    config: MapperConfig,
) -> (
    Result<(Placement, CostReport), MappingError>,
    Vec<CostReport>,
    usize,
) {
    let mut observed = Vec::new();
    let mut lib = AreaPowerLibrary::new(Technology::um_0_10());
    let initial = Mapper::new(g, app, config).greedy_placement();
    let mut best = match evaluate(
        g,
        app,
        initial,
        config.routing,
        &mut lib,
        &config.constraints,
    ) {
        Ok(eval) => eval,
        Err(e) => return (Err(e), observed, 0),
    };
    observed.push(best.report.clone());
    let mut evaluated = 1usize;
    let nodes = g.mappable_nodes().to_vec();
    for _pass in 0..config.max_swap_passes {
        let mut best_swap = None;
        for i in 0..nodes.len() {
            for j in i + 1..nodes.len() {
                let mut candidate = best.placement.clone();
                if !candidate.swap_nodes(nodes[i], nodes[j]) {
                    continue;
                }
                let Ok(eval) = evaluate(
                    g,
                    app,
                    candidate,
                    config.routing,
                    &mut lib,
                    &config.constraints,
                ) else {
                    continue;
                };
                observed.push(eval.report.clone());
                evaluated += 1;
                let improves_on: &sunmap_mapping::Evaluation =
                    best_swap.as_ref().map_or(&best, |b| b);
                if eval
                    .report
                    .better_than(&improves_on.report, config.objective)
                {
                    best_swap = Some(eval);
                }
            }
        }
        match best_swap {
            Some(better) => best = better,
            None => break,
        }
    }
    let outcome = if best.report.feasible() {
        Ok((best.placement, best.report))
    } else {
        Err(MappingError::NoFeasibleMapping(Box::new(best.report)))
    };
    (outcome, observed, evaluated)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// `EvalEngine::evaluate_report` ≡ `evaluate(..).report`, bit for
    /// bit, on random placements across all topologies and routing
    /// functions — including identical error behaviour.
    #[test]
    fn report_matches_reference(
        topo in 0usize..5,
        rf in 0usize..4,
        cores in 2usize..=12,
        edges in proptest::collection::vec((0usize..12, 0usize..12, 5.0f64..400.0), 1..18),
        seed in 0u64..1_000_000,
        relaxed in 0usize..2,
    ) {
        let g = topology(topo);
        let app = build_app(cores, &edges);
        prop_assume!(app.edge_count() > 0);
        let routing = routing(rf);
        let constraints = constraints(relaxed == 1);
        let placement = random_placement(&g, cores, seed);

        let mut table = RouteTable::new(&g);
        table.prepare(&g, routing);
        let mut lib = AreaPowerLibrary::new(Technology::um_0_10());
        let engine = EvalEngine::new(&g, &app, &table, routing, &mut lib, &constraints);
        let mut scratch = engine.new_scratch();

        let fast = engine.evaluate_report(&placement, &mut scratch);
        let reference = evaluate(
            &g,
            &app,
            placement.clone(),
            routing,
            &mut lib,
            &constraints,
        );
        match (fast, reference) {
            (Ok(f), Ok(r)) => prop_assert_eq!(f, r.report),
            (Err(MappingError::Unroutable { src: fs, dst: fd }),
             Err(MappingError::Unroutable { src: rs, dst: rd })) => {
                prop_assert_eq!((fs, fd), (rs, rd));
            }
            (f, r) => {
                return Err(TestCaseError::fail(format!(
                    "outcome mismatch: fast {f:?} vs reference {}",
                    r.map(|e| format!("{:?}", e.report)).unwrap_or_else(|e| e.to_string())
                )));
            }
        }
        // A second evaluation through the same scratch must not be
        // polluted by the first (lazy resets are per-call).
        let placement2 = random_placement(&g, cores, seed ^ 0xABCD_EF01);
        let fast2 = engine.evaluate_report(&placement2, &mut scratch).ok();
        let ref2 = evaluate(&g, &app, placement2, routing, &mut lib, &constraints)
            .ok()
            .map(|e| e.report);
        prop_assert_eq!(fast2, ref2);
    }

    /// The engine-driven (cached, parallel) mapper returns exactly what
    /// the sequential reference search returns: same placement, same
    /// report, same evaluation count, same observed report sequence.
    #[test]
    fn mapper_matches_reference_search(
        topo in 0usize..5,
        rf in 0usize..4,
        obj in 0usize..4,
        cores in 2usize..=10,
        edges in proptest::collection::vec((0usize..10, 0usize..10, 5.0f64..400.0), 1..14),
        relaxed in 0usize..2,
        passes in 1usize..=2,
    ) {
        let g = topology(topo);
        let app = build_app(cores, &edges);
        prop_assume!(app.edge_count() > 0);
        let config = MapperConfig {
            routing: routing(rf),
            objective: objective(obj),
            constraints: constraints(relaxed == 1),
            max_swap_passes: passes,
            swap_strategy: SwapStrategy::Exhaustive,
            ..MapperConfig::default()
        };

        let mut fast_observed = Vec::new();
        let fast = Mapper::new(&g, &app, config).run_observed(|r| fast_observed.push(r.clone()));
        let (reference, ref_observed, ref_evaluated) = reference_search(&g, &app, config);

        prop_assert_eq!(&fast_observed, &ref_observed);
        match (fast, reference) {
            (Ok(mapping), Ok((placement, report))) => {
                prop_assert_eq!(mapping.placement().assignment(), placement.assignment());
                prop_assert_eq!(mapping.report(), &report);
                prop_assert_eq!(mapping.evaluated_candidates(), ref_evaluated);
            }
            (Err(MappingError::NoFeasibleMapping(f)),
             Err(MappingError::NoFeasibleMapping(r))) => {
                prop_assert_eq!(*f, *r);
            }
            (Err(MappingError::Unroutable { src: fs, dst: fd }),
             Err(MappingError::Unroutable { src: rs, dst: rd })) => {
                prop_assert_eq!((fs, fd), (rs, rd));
            }
            (f, r) => {
                return Err(TestCaseError::fail(format!(
                    "outcome mismatch: fast {:?} vs reference {:?}",
                    f.map(|m| m.report().clone()).map_err(|e| e.to_string()),
                    r.map(|(_, rep)| rep).map_err(|e| e.to_string())
                )));
            }
        }
    }

    /// The incremental swap-delta search (pre-bounds, dimension-ordered
    /// deltas, bounded evaluations with early exit) returns exactly
    /// what the exhaustive sweep returns — same final placement, same
    /// report, same error — across all topologies × routing functions ×
    /// objectives × constraint regimes. Only the evaluation count may
    /// shrink (pruned candidates are proven non-winners).
    #[test]
    fn delta_pruned_search_matches_exhaustive(
        topo in 0usize..5,
        rf in 0usize..4,
        obj in 0usize..4,
        cores in 2usize..=10,
        edges in proptest::collection::vec((0usize..10, 0usize..10, 5.0f64..400.0), 1..14),
        relaxed in 0usize..2,
        passes in 1usize..=2,
    ) {
        let g = topology(topo);
        let app = build_app(cores, &edges);
        prop_assume!(app.edge_count() > 0);
        let config = |strategy| MapperConfig {
            routing: routing(rf),
            objective: objective(obj),
            constraints: constraints(relaxed == 1),
            max_swap_passes: passes,
            swap_strategy: strategy,
            ..MapperConfig::default()
        };

        let exhaustive = Mapper::new(&g, &app, config(SwapStrategy::Exhaustive)).run();
        let pruned = Mapper::new(&g, &app, config(SwapStrategy::DeltaPruned)).run();
        match (exhaustive, pruned) {
            (Ok(full), Ok(delta)) => {
                prop_assert_eq!(full.placement().assignment(), delta.placement().assignment());
                prop_assert_eq!(full.report(), delta.report());
                prop_assert!(delta.evaluated_candidates() <= full.evaluated_candidates());
            }
            (Err(MappingError::NoFeasibleMapping(f)),
             Err(MappingError::NoFeasibleMapping(d))) => {
                prop_assert_eq!(*f, *d);
            }
            (Err(f), Err(d)) => prop_assert_eq!(f.to_string(), d.to_string()),
            (f, d) => {
                return Err(TestCaseError::fail(format!(
                    "outcome mismatch: exhaustive ok={} vs delta-pruned ok={}",
                    f.is_ok(), d.is_ok()
                )));
            }
        }
    }

    /// Reusing one route table across routing functions and repeated
    /// runs (the sweep/exploration pattern) changes nothing.
    #[test]
    fn route_table_reuse_is_transparent(
        topo in 0usize..5,
        cores in 2usize..=10,
        edges in proptest::collection::vec((0usize..10, 0usize..10, 5.0f64..400.0), 1..10),
    ) {
        let g = topology(topo);
        let app = build_app(cores, &edges);
        prop_assume!(app.edge_count() > 0);
        let mut table = RouteTable::new(&g);
        for rf in RoutingFunction::ALL {
            let config = MapperConfig {
                routing: rf,
                objective: Objective::MinDelay,
                constraints: Constraints::relaxed_bandwidth(),
                max_swap_passes: 1,
                ..MapperConfig::default()
            };
            let shared = Mapper::new(&g, &app, config)
                .with_route_table(&mut table)
                .run();
            let fresh = Mapper::new(&g, &app, config).run();
            match (shared, fresh) {
                (Ok(a), Ok(b)) => {
                    prop_assert_eq!(a.placement().assignment(), b.placement().assignment());
                    prop_assert_eq!(a.report(), b.report());
                }
                (Err(a), Err(b)) => prop_assert_eq!(a.to_string(), b.to_string()),
                (a, b) => {
                    return Err(TestCaseError::fail(format!(
                        "reuse mismatch: {:?} vs {:?}",
                        a.is_ok(), b.is_ok()
                    )));
                }
            }
        }
    }
}

/// The ISSUE-5 acceptance case: a 64-core seeded synthetic application
/// on an 8×8 mesh. The delta-pruned sweep (what `SwapStrategy::Auto`
/// selects at this size) must reproduce the exhaustive sweep's winner
/// report and placement bit for bit, for both a load-dependent and a
/// placement-independent routing function under both a delay and a
/// power objective.
#[test]
fn delta_pruned_matches_exhaustive_on_64_core_synthetic_mesh() {
    use sunmap_topology::builders;
    use sunmap_traffic::synthetic::SyntheticSpec;

    let spec: SyntheticSpec = "synth:seed=7,cores=64".parse().expect("valid spec");
    let app = spec.generate();
    let g = builders::mesh(8, 8, 500.0).expect("mesh builds");
    for (routing, objective) in [
        (RoutingFunction::MinPath, Objective::MinDelay),
        (RoutingFunction::MinPath, Objective::MinPower),
        (RoutingFunction::DimensionOrdered, Objective::MinDelay),
        (RoutingFunction::DimensionOrdered, Objective::MinPower),
    ] {
        let config = |strategy| MapperConfig {
            routing,
            objective,
            constraints: Constraints::relaxed_bandwidth(),
            max_swap_passes: 1,
            swap_strategy: strategy,
            ..MapperConfig::default()
        };
        let full = Mapper::new(&g, &app, config(SwapStrategy::Exhaustive))
            .run()
            .expect("synthetic workload maps under relaxed bandwidth");
        let delta = Mapper::new(&g, &app, config(SwapStrategy::DeltaPruned))
            .run()
            .expect("synthetic workload maps under relaxed bandwidth");
        assert_eq!(
            full.placement().assignment(),
            delta.placement().assignment(),
            "{routing} {objective}: placements diverged"
        );
        assert_eq!(
            full.report(),
            delta.report(),
            "{routing} {objective}: winner reports diverged"
        );
        assert!(
            delta.evaluated_candidates() < full.evaluated_candidates(),
            "{routing} {objective}: pruning did not reduce evaluations"
        );
        // Auto resolves to the delta engine at this size.
        let auto = Mapper::new(&g, &app, config(SwapStrategy::Auto))
            .run()
            .expect("synthetic workload maps under relaxed bandwidth");
        assert_eq!(auto.evaluated_candidates(), delta.evaluated_candidates());
        assert_eq!(auto.report(), delta.report());
    }
}
