//! Cross-objective and cross-routing behaviour of the mapping engine.

use sunmap_mapping::{
    evaluate, Constraints, Mapper, MapperConfig, Objective, Placement, RoutingFunction,
};
use sunmap_power::{AreaPowerLibrary, Technology};
use sunmap_topology::builders;
use sunmap_traffic::benchmarks;

#[test]
fn min_bandwidth_objective_minimises_max_link_load() {
    let g = builders::mesh(3, 4, 500.0).unwrap();
    let app = benchmarks::vopd();
    let bw_cfg = MapperConfig {
        constraints: Constraints::relaxed_bandwidth(),
        ..MapperConfig::new(RoutingFunction::MinPath, Objective::MinBandwidth)
    };
    let delay_cfg = MapperConfig {
        constraints: Constraints::relaxed_bandwidth(),
        ..MapperConfig::new(RoutingFunction::MinPath, Objective::MinDelay)
    };
    let bw = Mapper::new(&g, &app, bw_cfg).run().unwrap();
    let delay = Mapper::new(&g, &app, delay_cfg).run().unwrap();
    assert!(
        bw.report().max_link_load <= delay.report().max_link_load + 1e-6,
        "min-bandwidth {} worse than min-delay {}",
        bw.report().max_link_load,
        delay.report().max_link_load
    );
}

#[test]
fn min_area_objective_never_loses_on_area() {
    let g = builders::butterfly(4, 2, 500.0).unwrap();
    let app = benchmarks::vopd();
    let area = Mapper::new(
        &g,
        &app,
        MapperConfig::new(RoutingFunction::MinPath, Objective::MinArea),
    )
    .run()
    .unwrap();
    let power = Mapper::new(
        &g,
        &app,
        MapperConfig::new(RoutingFunction::MinPath, Objective::MinPower),
    )
    .run()
    .unwrap();
    assert!(area.report().design_area <= power.report().design_area + 1e-9);
}

#[test]
fn dimension_ordered_routing_maps_the_vopd() {
    // DO is the most restrictive function; VOPD still fits a mesh.
    let g = builders::mesh(3, 4, 500.0).unwrap();
    let app = benchmarks::vopd();
    let mapping = Mapper::new(
        &g,
        &app,
        MapperConfig::new(RoutingFunction::DimensionOrdered, Objective::MinDelay),
    )
    .run()
    .expect("VOPD fits a mesh under XY routing");
    assert!(mapping.report().feasible());
    // DO routes are minimal, so delay matches min-path-grade results.
    assert!(mapping.report().avg_hops < 3.0);
}

#[test]
fn routing_freedom_orders_max_link_load_on_fixed_placement() {
    // On the *same* placement: DO >= MP >= SM >= SA in achievable
    // max load (more freedom never hurts).
    let g = builders::mesh(3, 4, 500.0).unwrap();
    let app = benchmarks::mpeg4();
    let placement = Placement::new(g.mappable_nodes()[..12].to_vec(), &g).unwrap();
    let mut lib = AreaPowerLibrary::new(Technology::um_0_10());
    let relaxed = Constraints::relaxed_bandwidth();
    let mut loads = Vec::new();
    for rf in RoutingFunction::ALL {
        let eval = evaluate(&g, &app, placement.clone(), rf, &mut lib, &relaxed).unwrap();
        loads.push(eval.report.max_link_load);
    }
    assert!(
        loads[0] >= loads[1] - 1e-6,
        "DO {} < MP {}",
        loads[0],
        loads[1]
    );
    assert!(
        loads[1] >= loads[2] - 1e-6,
        "MP {} < SM {}",
        loads[1],
        loads[2]
    );
    assert!(
        loads[2] >= loads[3] - 1e-6,
        "SM {} < SA {}",
        loads[2],
        loads[3]
    );
}

#[test]
fn area_constraint_rejects_tight_budgets() {
    let g = builders::mesh(3, 4, 500.0).unwrap();
    let app = benchmarks::vopd();
    // VOPD cores alone are 50 mm²: a 40 mm² budget is impossible.
    let cfg = MapperConfig {
        constraints: Constraints::with_max_area(40.0),
        ..MapperConfig::default()
    };
    assert!(Mapper::new(&g, &app, cfg).run().is_err());
    // A 80 mm² budget is comfortable.
    let cfg = MapperConfig {
        constraints: Constraints::with_max_area(80.0),
        ..MapperConfig::default()
    };
    let mapping = Mapper::new(&g, &app, cfg).run().unwrap();
    assert!(mapping.report().design_area <= 80.0);
}

#[test]
fn swap_passes_zero_matches_pure_greedy() {
    let g = builders::torus(3, 4, 500.0).unwrap();
    let app = benchmarks::vopd();
    let cfg = MapperConfig {
        max_swap_passes: 0,
        ..MapperConfig::default()
    };
    let m = Mapper::new(&g, &app, cfg).run().unwrap();
    // Exactly one evaluation: the greedy seed.
    assert_eq!(m.evaluated_candidates(), 1);
}

#[test]
fn mapping_all_benchmarks_on_their_best_topologies() {
    // Smoke coverage of the four paper applications end to end.
    let cases: Vec<(sunmap_traffic::CoreGraph, f64, RoutingFunction)> = vec![
        (benchmarks::vopd(), 500.0, RoutingFunction::MinPath),
        (benchmarks::mpeg4(), 500.0, RoutingFunction::SplitAllPaths),
        (benchmarks::dsp_filter(), 1000.0, RoutingFunction::MinPath),
        (
            benchmarks::network_processor(50.0),
            500.0,
            RoutingFunction::SplitMinPaths,
        ),
    ];
    for (app, cap, rf) in cases {
        let mut any = false;
        for g in builders::standard_library(app.core_count(), cap).unwrap() {
            if let Ok(m) = Mapper::new(&g, &app, MapperConfig::new(rf, Objective::MinDelay)).run() {
                assert!(m.report().feasible());
                any = true;
            }
        }
        assert!(any, "at least one topology must carry each benchmark");
    }
}

#[test]
fn evaluation_is_objective_independent() {
    // evaluate() measures; the objective only matters for search. The
    // same placement must yield identical reports whichever objective
    // later consumes them.
    let g = builders::mesh(3, 3, 500.0).unwrap();
    let app = benchmarks::dsp_filter();
    let placement = Placement::new(g.mappable_nodes()[..6].to_vec(), &g).unwrap();
    let mut lib = AreaPowerLibrary::new(Technology::um_0_10());
    let e1 = evaluate(
        &g,
        &app,
        placement.clone(),
        RoutingFunction::MinPath,
        &mut lib,
        &Constraints::default(),
    )
    .unwrap();
    let e2 = evaluate(
        &g,
        &app,
        placement,
        RoutingFunction::MinPath,
        &mut lib,
        &Constraints::default(),
    )
    .unwrap();
    assert_eq!(e1.report, e2.report);
}

#[test]
fn scales_to_a_64_core_soc() {
    // Scalability smoke test: a synthetic 64-core SoC with local +
    // hub traffic maps onto an 8x8 mesh with the greedy seed alone
    // (swap refinement disabled to keep the test quick).
    let mut app = sunmap_traffic::CoreGraph::new();
    let ids: Vec<_> = (0..64)
        .map(|i| app.add_core(format!("tile{i}"), 1.5))
        .collect();
    for i in 0..64usize {
        app.add_traffic(ids[i], ids[(i + 1) % 64], 50.0).unwrap();
        if i != 0 {
            app.add_traffic(ids[i], ids[0], 5.0).unwrap(); // light hub
        }
    }
    let g = builders::mesh(8, 8, 500.0).unwrap();
    let cfg = MapperConfig {
        max_swap_passes: 0,
        ..MapperConfig::default()
    };
    let mapping = Mapper::new(&g, &app, cfg)
        .run()
        .expect("64-core greedy mapping");
    let r = mapping.report();
    assert!(r.feasible());
    assert!(r.avg_hops >= 2.0);
    // Greedy placement keeps the ring local: far below the 5.33 hops a
    // random placement would average on an 8x8 mesh.
    assert!(
        r.avg_hops < 4.0,
        "greedy ring placement too loose: {}",
        r.avg_hops
    );
}
