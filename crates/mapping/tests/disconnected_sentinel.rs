//! Regression suite for the `UNREACHABLE_HOPS` sentinel (ISSUE 5
//! audit): the route table marks unreachable pairs with `u32::MAX`,
//! and the greedy phase-1/2 placement cost must treat them exactly
//! like the reference's `hop_distance(..).unwrap_or(usize::MAX / 2)` —
//! widened to `f64` *before* any summation, so accumulating several
//! sentinel costs can never wrap and silently prefer a disconnected
//! vertex over a connected one.

use sunmap_mapping::{
    evaluate, Constraints, EvalEngine, Mapper, MapperConfig, MappingError, Placement, RouteTable,
    RoutingFunction,
};
use sunmap_power::{AreaPowerLibrary, Technology};
use sunmap_topology::{paths, CustomTopologyBuilder, NodeId, TopologyGraph};
use sunmap_traffic::CoreGraph;

/// Two islands: a 4-switch clique with four ports (high-degree, where
/// the greedy seed lands) and a disconnected 2-switch pair with two
/// ports. Returns the graph and the port partition (island A, island
/// B), in `mappable_nodes` order.
fn two_islands() -> (TopologyGraph, Vec<NodeId>, Vec<NodeId>) {
    let mut b = CustomTopologyBuilder::new("two-islands");
    let a: Vec<_> = (0..4).map(|_| b.add_switch()).collect();
    for i in 0..4 {
        for j in i + 1..4 {
            b.add_link(a[i], a[j], 500.0).unwrap();
        }
    }
    let c0 = b.add_switch();
    let c1 = b.add_switch();
    b.add_link(c0, c1, 500.0).unwrap();
    for &s in &a {
        b.add_port(s).unwrap();
    }
    b.add_port(c0).unwrap();
    b.add_port(c1).unwrap();
    let g = b.build().unwrap();
    let ports: Vec<NodeId> = g.mappable_nodes().to_vec();
    assert_eq!(ports.len(), 6);
    let island_a = ports[..4].to_vec();
    let island_b = ports[4..].to_vec();
    // Sanity: the islands really are mutually unreachable.
    assert!(paths::hop_distance(&g, island_a[0], island_b[0]).is_none());
    assert!(paths::hop_distance(&g, island_a[0], island_a[3]).is_some());
    (g, island_a, island_b)
}

/// A core that talks to `n` already-placed partners accumulates `n`
/// sentinel distances when probed on the disconnected island. With the
/// reference's `usize::MAX / 2` cost widened to f64 that sum stays
/// astronomically large; a `u32` wrap would instead make three
/// sentinels look *cheap* and pull the core across the cut.
#[test]
fn greedy_never_prefers_disconnected_vertices() {
    let (g, island_a, island_b) = two_islands();
    let mut app = CoreGraph::new();
    let cores: Vec<_> = (0..4).map(|i| app.add_core(format!("c{i}"), 1.0)).collect();
    // c3 communicates with all three others: by the time it places,
    // every island-B candidate costs three sentinel distances.
    app.add_traffic(cores[0], cores[1], 100.0).unwrap();
    app.add_traffic(cores[1], cores[2], 90.0).unwrap();
    app.add_traffic(cores[3], cores[0], 80.0).unwrap();
    app.add_traffic(cores[3], cores[1], 70.0).unwrap();
    app.add_traffic(cores[3], cores[2], 60.0).unwrap();

    let placement = Mapper::new(&g, &app, MapperConfig::default()).greedy_placement();
    for (i, &node) in placement.assignment().iter().enumerate() {
        assert!(
            island_a.contains(&node),
            "core {i} landed on disconnected island B ({node:?})",
        );
        assert!(!island_b.contains(&node));
    }
}

/// The table-backed greedy distances must reproduce the reference
/// `hop_distance(..).unwrap_or(usize::MAX / 2)` behaviour: the greedy
/// placement built through a `RouteTable` equals one built through a
/// fresh mapper (which builds its own), and both route/evaluate
/// exactly like the reference on the connected island.
#[test]
fn table_greedy_matches_reference_on_disconnected_graph() {
    let (g, island_a, _) = two_islands();
    let mut app = CoreGraph::new();
    let c: Vec<_> = (0..3).map(|i| app.add_core(format!("s{i}"), 1.0)).collect();
    app.add_traffic(c[0], c[1], 120.0).unwrap();
    app.add_traffic(c[1], c[2], 50.0).unwrap();

    let mut table = RouteTable::new(&g);
    let via_table = Mapper::new(&g, &app, MapperConfig::default())
        .with_route_table(&mut table)
        .greedy_placement();
    let fresh = Mapper::new(&g, &app, MapperConfig::default()).greedy_placement();
    assert_eq!(via_table.assignment(), fresh.assignment());
    for &node in via_table.assignment() {
        assert!(island_a.contains(&node), "greedy crossed the cut");
    }

    // The full run maps feasibly inside the island, and the fast path
    // agrees with the reference bit for bit here too.
    let mapping = Mapper::new(&g, &app, MapperConfig::default())
        .run()
        .expect("3 cores fit the connected island");
    let mut lib = AreaPowerLibrary::new(Technology::um_0_10());
    let reference = evaluate(
        &g,
        &app,
        mapping.placement().clone(),
        RoutingFunction::MinPath,
        &mut lib,
        &Constraints::default(),
    )
    .expect("winner re-evaluates");
    assert_eq!(&reference.report, mapping.report());
}

/// When the application cannot fit inside one island, some commodity
/// must cross the cut and the run reports `Unroutable` — identically
/// through the reference evaluator and the cached engine.
#[test]
fn cross_island_commodities_error_identically() {
    let (g, island_a, island_b) = two_islands();
    let mut app = CoreGraph::new();
    let c: Vec<_> = (0..2).map(|i| app.add_core(format!("x{i}"), 1.0)).collect();
    app.add_traffic(c[0], c[1], 100.0).unwrap();

    // Force a placement across the cut.
    let placement = Placement::new(vec![island_a[0], island_b[0]], &g).unwrap();
    let routing = RoutingFunction::MinPath;
    let mut table = RouteTable::new(&g);
    table.prepare(&g, routing);
    let mut lib = AreaPowerLibrary::new(Technology::um_0_10());
    let constraints = Constraints::default();
    let engine = EvalEngine::new(&g, &app, &table, routing, &mut lib, &constraints);
    let mut scratch = engine.new_scratch();

    let fast = engine.evaluate_report(&placement, &mut scratch);
    let reference = evaluate(&g, &app, placement, routing, &mut lib, &constraints);
    match (fast, reference) {
        (
            Err(MappingError::Unroutable { src: fs, dst: fd }),
            Err(MappingError::Unroutable { src: rs, dst: rd }),
        ) => assert_eq!((fs, fd), (rs, rd)),
        (f, r) => panic!(
            "expected identical Unroutable errors, got fast {:?} / reference {:?}",
            f.map(|_| ()),
            r.map(|_| ())
        ),
    }
}
