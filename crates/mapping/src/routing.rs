//! The four routing functions of SUNMAP.

use sunmap_topology::{dimension_order, paths, quadrant, NodeId, TopologyGraph};

/// How a commodity's traffic is carried between its mapped endpoints
/// (paper §1: "dimension ordered, minimum-path, traffic splitting
/// across minimum-paths, traffic splitting across all paths").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum RoutingFunction {
    /// One deterministic dimension-ordered path (XY / e-cube).
    DimensionOrdered,
    /// One congestion-aware minimum path found by Dijkstra on the
    /// commodity's quadrant graph (the paper Fig. 5 algorithm).
    #[default]
    MinPath,
    /// Traffic split equally across every minimum path inside the
    /// quadrant graph.
    SplitMinPaths,
    /// Traffic split equally across all simple paths inside the
    /// quadrant graph (minimum paths plus bounded detours).
    SplitAllPaths,
}

impl RoutingFunction {
    /// The four functions in the paper's order (the Fig. 9a x-axis).
    pub const ALL: [RoutingFunction; 4] = [
        RoutingFunction::DimensionOrdered,
        RoutingFunction::MinPath,
        RoutingFunction::SplitMinPaths,
        RoutingFunction::SplitAllPaths,
    ];

    /// Paper abbreviation: DO, MP, SM, SA.
    pub fn abbrev(&self) -> &'static str {
        match self {
            RoutingFunction::DimensionOrdered => "DO",
            RoutingFunction::MinPath => "MP",
            RoutingFunction::SplitMinPaths => "SM",
            RoutingFunction::SplitAllPaths => "SA",
        }
    }
}

impl std::fmt::Display for RoutingFunction {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.abbrev())
    }
}

/// Hop-dominant Dijkstra cost: minimum-hop routes win, current load
/// breaks ties so consecutive commodities spread out (paper Fig. 5
/// step 6 increments edge weights by the routed bandwidth).
pub(crate) const HOP_COST: f64 = 1.0e9;

/// Caps keeping path enumeration tractable; quadrants of on-chip
/// networks are small so these are rarely binding.
pub(crate) const MAX_SPLIT_PATHS: usize = 32;
pub(crate) const DETOUR_SLACK: usize = 2;
/// Granularity of split-traffic routing: each commodity is divided into
/// this many equal chunks, assigned greedily to the candidate path with
/// the smallest resulting bottleneck load (min-max water filling).
pub(crate) const SPLIT_CHUNKS: usize = 16;

/// Routes one commodity of `bandwidth` MB/s from `src` to `dst` (mapped
/// vertices of `g`) under `routing`, given the link loads accumulated so
/// far (indexed by edge id, MB/s). Returns the used paths with the
/// traffic fraction carried by each (fractions sum to 1), or `None` if
/// no route exists.
///
/// Split-traffic functions divide the commodity into equal chunks and
/// assign each chunk to the candidate path that minimises the maximum
/// link load — so splitting is load-aware rather than blind.
///
/// # Examples
///
/// ```
/// use sunmap_mapping::{route_commodity, RoutingFunction};
/// use sunmap_topology::builders;
///
/// let g = builders::mesh(3, 3, 500.0)?;
/// let a = g.switch_at_grid(0, 0).unwrap();
/// let b = g.switch_at_grid(2, 2).unwrap();
/// let loads = vec![0.0; g.edge_count()];
/// let split =
///     route_commodity(&g, a, b, RoutingFunction::SplitMinPaths, &loads, 480.0).unwrap();
/// assert!(split.len() > 1, "corner-to-corner traffic spreads out");
/// let total: f64 = split.iter().map(|(_, f)| f).sum();
/// assert!((total - 1.0).abs() < 1e-9);
/// # Ok::<(), sunmap_topology::TopologyError>(())
/// ```
pub fn route_commodity(
    g: &TopologyGraph,
    src: NodeId,
    dst: NodeId,
    routing: RoutingFunction,
    loads: &[f64],
    bandwidth: f64,
) -> Option<Vec<(Vec<NodeId>, f64)>> {
    debug_assert_eq!(loads.len(), g.edge_count());
    if src == dst {
        return Some(vec![(vec![src], 1.0)]);
    }
    match routing {
        RoutingFunction::DimensionOrdered => {
            let path = dimension_order::route(g, src, dst).ok()?;
            Some(vec![(path, 1.0)])
        }
        RoutingFunction::MinPath => {
            let q = quadrant::quadrant_set(g, src, dst);
            let (_, path) =
                paths::dijkstra(g, src, dst, Some(&q), |e| HOP_COST + loads[e.index()])?;
            Some(vec![(path, 1.0)])
        }
        RoutingFunction::SplitMinPaths => {
            let q = quadrant::quadrant_set(g, src, dst);
            let all = paths::all_shortest_paths(g, src, dst, Some(&q), MAX_SPLIT_PATHS);
            min_max_split(g, all, loads, bandwidth)
        }
        RoutingFunction::SplitAllPaths => {
            // "All paths" searches the whole NoC graph (not just the
            // quadrant): adjacent endpoints have a degenerate quadrant,
            // yet spreading their traffic over detours is exactly what
            // this function is for (the paper's MPEG4 study).
            let min_len = paths::shortest_path(g, src, dst, None)?.len();
            let all =
                paths::all_simple_paths(g, src, dst, None, min_len + DETOUR_SLACK, MAX_SPLIT_PATHS);
            min_max_split(g, all, loads, bandwidth)
        }
    }
}

/// Greedy min-max water filling: chunks of the commodity go, one at a
/// time, onto the best candidate path. A chunk prefers the *shortest*
/// path that stays within link capacities — traffic only spills onto
/// detours once the direct routes are full, which keeps the average hop
/// count close to minimum-path routing (the paper's mesh stays near 2.5
/// hops even under split routing). When every candidate would exceed
/// capacity, the chunk goes wherever the bottleneck load stays lowest.
fn min_max_split(
    g: &TopologyGraph,
    candidates: Vec<Vec<NodeId>>,
    loads: &[f64],
    bandwidth: f64,
) -> Option<Vec<(Vec<NodeId>, f64)>> {
    if candidates.is_empty() {
        return None;
    }
    if candidates.len() == 1 {
        return Some(vec![(
            candidates.into_iter().next().expect("one path"),
            1.0,
        )]);
    }
    // Bottlenecks are judged on network links only: the infinite-capacity
    // core-attach edges are shared by every candidate and would mask the
    // differences that matter.
    let edge_lists: Vec<Vec<usize>> = candidates
        .iter()
        .map(|p| {
            paths::path_edges(g, p)
                .into_iter()
                .filter(|e| g.edge(*e).is_network_link())
                .map(|e| e.index())
                .collect()
        })
        .collect();
    let mut local = loads.to_vec();
    let mut chunks_per_path = Vec::new();
    assign_chunks(
        |e| g.edge(sunmap_topology::EdgeId(e)).capacity,
        candidates.len(),
        |i| edge_lists[i].as_slice(),
        &mut local,
        bandwidth,
        &mut chunks_per_path,
    );
    Some(
        candidates
            .into_iter()
            .zip(chunks_per_path)
            .filter(|(_, n)| *n > 0)
            .map(|(p, n)| (p, n as f64 / SPLIT_CHUNKS as f64))
            .collect(),
    )
}

/// Core of the min-max water filling, shared by [`min_max_split`] and
/// the cached fast path ([`crate::EvalEngine`]) so both assign chunks
/// with bit-identical arithmetic. `capacity_of(e)` yields an edge's
/// bandwidth capacity; `edges_of(i)` yields candidate `i`'s
/// *network-link* edge indices; `local` must hold the current link
/// loads at every candidate edge (other entries are never touched) and
/// is mutated as chunks land; `chunks_per_path` receives one count per
/// candidate.
pub(crate) fn assign_chunks<'e>(
    capacity_of: impl Fn(usize) -> f64,
    count: usize,
    edges_of: impl Fn(usize) -> &'e [usize],
    local: &mut [f64],
    bandwidth: f64,
    chunks_per_path: &mut Vec<usize>,
) {
    debug_assert!(count <= MAX_SPLIT_PATHS, "candidate enumeration is capped");
    let chunk = bandwidth.max(f64::MIN_POSITIVE) / SPLIT_CHUNKS as f64;
    chunks_per_path.clear();
    chunks_per_path.resize(count, 0);
    let mut ranks = [(false, 0usize, 0.0f64); MAX_SPLIT_PATHS];
    for _ in 0..SPLIT_CHUNKS {
        // Rank every candidate once per chunk, in one pass over its
        // edges (the former closure-based min_by recomputed ranks per
        // comparison, with separate over/bottleneck passes).
        for (i, rank) in ranks.iter_mut().enumerate().take(count) {
            let edges = edges_of(i);
            let mut over = false;
            let mut bottleneck = 0.0f64;
            for &e in edges {
                let would_be = local[e] + chunk;
                over |= would_be > capacity_of(e) * (1.0 + 1e-9);
                bottleneck = bottleneck.max(would_be);
            }
            *rank = (over, edges.len(), bottleneck);
        }
        let best = (0..count)
            .min_by(|&a, &b| {
                let (oa, la, ba) = ranks[a];
                let (ob, lb, bb) = ranks[b];
                oa.cmp(&ob)
                    .then_with(|| {
                        if oa {
                            // All over capacity: minimise the bottleneck,
                            // then prefer shorter.
                            ba.total_cmp(&bb).then_with(|| la.cmp(&lb))
                        } else {
                            // Within capacity: prefer shorter, then the
                            // lower bottleneck.
                            la.cmp(&lb).then_with(|| ba.total_cmp(&bb))
                        }
                    })
                    .then_with(|| a.cmp(&b))
            })
            .expect("candidates are non-empty");
        chunks_per_path[best] += 1;
        for &e in edges_of(best) {
            local[e] += chunk;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sunmap_topology::builders;

    fn zero_loads(g: &TopologyGraph) -> Vec<f64> {
        vec![0.0; g.edge_count()]
    }

    #[test]
    fn min_path_avoids_loaded_links() {
        let g = builders::mesh(3, 3, 500.0).unwrap();
        let a = g.switch_at_grid(0, 0).unwrap();
        let b = g.switch_at_grid(1, 1).unwrap();
        let mid_top = g.switch_at_grid(0, 1).unwrap();
        let mut loads = zero_loads(&g);
        // Load the edge (0,0)->(0,1) heavily: the route must go down
        // first instead.
        let e = g.find_edge(a, mid_top).unwrap();
        loads[e.index()] = 400.0;
        let routed = route_commodity(&g, a, b, RoutingFunction::MinPath, &loads, 100.0).unwrap();
        assert_eq!(routed.len(), 1);
        let path = &routed[0].0;
        assert_eq!(path.len(), 3, "still a minimum path");
        assert!(!path.contains(&mid_top), "congested corner avoided");
    }

    #[test]
    fn split_all_contains_split_min_paths() {
        let g = builders::mesh(3, 3, 500.0).unwrap();
        let a = g.switch_at_grid(0, 0).unwrap();
        let b = g.switch_at_grid(1, 2).unwrap();
        let loads = zero_loads(&g);
        let sm = route_commodity(&g, a, b, RoutingFunction::SplitMinPaths, &loads, 100.0).unwrap();
        let sa = route_commodity(&g, a, b, RoutingFunction::SplitAllPaths, &loads, 100.0).unwrap();
        assert!(sa.len() >= sm.len());
        for (p, _) in &sm {
            assert!(sa.iter().any(|(q, _)| q == p), "min path missing from SA");
        }
    }

    #[test]
    fn fractions_always_sum_to_one() {
        let g = builders::torus(3, 3, 500.0).unwrap();
        let a = g.switch_at_grid(0, 0).unwrap();
        let b = g.switch_at_grid(2, 2).unwrap();
        let loads = zero_loads(&g);
        for rf in RoutingFunction::ALL {
            let routed = route_commodity(&g, a, b, rf, &loads, 100.0).unwrap();
            let sum: f64 = routed.iter().map(|(_, f)| f).sum();
            assert!((sum - 1.0).abs() < 1e-9, "{rf} fractions sum to {sum}");
        }
    }

    #[test]
    fn butterfly_has_no_split_diversity() {
        // "As the butterfly network has no path diversity, it is unable
        // to support [split traffic]" — all four functions collapse to
        // the single path.
        let g = builders::butterfly(4, 2, 500.0).unwrap();
        let a = g.port(0).unwrap();
        let b = g.port(13).unwrap();
        let loads = zero_loads(&g);
        for rf in RoutingFunction::ALL {
            let routed = route_commodity(&g, a, b, rf, &loads, 100.0).unwrap();
            assert_eq!(routed.len(), 1, "{rf} found diversity in a butterfly");
        }
    }

    #[test]
    fn clos_split_uses_every_middle_switch() {
        let g = builders::clos(4, 2, 4, 500.0).unwrap();
        let a = g.port(0).unwrap();
        let b = g.port(7).unwrap();
        let loads = zero_loads(&g);
        let routed =
            route_commodity(&g, a, b, RoutingFunction::SplitMinPaths, &loads, 100.0).unwrap();
        assert_eq!(routed.len(), 4, "one path per middle switch");
    }

    #[test]
    fn self_commodity_is_local() {
        let g = builders::mesh(2, 2, 500.0).unwrap();
        let a = g.switch_at_grid(0, 0).unwrap();
        let loads = zero_loads(&g);
        let routed = route_commodity(&g, a, a, RoutingFunction::MinPath, &loads, 100.0).unwrap();
        assert_eq!(routed, vec![(vec![a], 1.0)]);
    }

    #[test]
    fn abbreviations_match_paper() {
        let abbrevs: Vec<_> = RoutingFunction::ALL.iter().map(|r| r.abbrev()).collect();
        assert_eq!(abbrevs, ["DO", "MP", "SM", "SA"]);
    }
}
