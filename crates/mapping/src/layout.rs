//! Relative-placement generation: where cores and switches sit on the
//! floorplan grid for each topology family.
//!
//! The paper's floorplanner consumes "the relative positions of the
//! cores and switches" implied by the mapping (§5). This module derives
//! those positions:
//!
//! * **mesh / torus** — the natural tile grid, each tile holding a core
//!   block and its switch block side by side;
//! * **hypercube** — switches arranged on a `2^(n/2) x 2^(n-n/2)` grid
//!   by splitting the binary label, then tiled like a mesh;
//! * **Clos / butterfly** — switch stages form middle columns with the
//!   core blocks in columns flanking them, which is what makes indirect
//!   links longer than direct ones (the paper measured ~1.5x for the
//!   butterfly).

use crate::Placement;
use sunmap_floorplan::{BlockId, BlockSpec, RelativePlacement};
use sunmap_topology::{NodeCoords, NodeId, TopologyGraph, TopologyKind};
use sunmap_traffic::{CoreGraph, CoreId};

/// The relative placement plus lookup tables from topology vertices and
/// cores to their floorplan blocks. Both tables are flat vectors (node-
/// and core-indexed) rather than maps: the evaluation hot loop probes
/// them for every loaded link of every candidate placement.
#[derive(Debug, Clone)]
pub struct LayoutBlocks {
    /// Blocks on the floorplan grid.
    pub placement: RelativePlacement,
    /// Node-indexed switch blocks (`None` for non-switch vertices).
    pub switch_block: Vec<Option<BlockId>>,
    /// Core-indexed blocks (`None` for unplaced cores).
    pub core_block: Vec<Option<BlockId>>,
}

impl LayoutBlocks {
    /// The floorplan block of the vertex a core or port occupies: for a
    /// mapped core its core block, for a bare switch its switch block.
    pub fn block_of_node(&self, p: &Placement, node: NodeId) -> Option<BlockId> {
        if let Some(core) = p.core_at(node) {
            return self.core_block[core.index()];
        }
        self.switch_block[node.index()]
    }

    /// Number of switch blocks placed.
    pub fn switch_block_count(&self) -> usize {
        self.switch_block.iter().flatten().count()
    }

    /// Number of core blocks placed.
    pub fn core_block_count(&self) -> usize {
        self.core_block.iter().flatten().count()
    }
}

/// Builds the relative placement for `placement` of `app` onto `g`,
/// with per-switch block areas in `switch_areas` (mm², from the area
/// library), indexed by node id.
///
/// # Panics
///
/// Panics if `switch_areas` is shorter than the graph's node count —
/// callers size every switch via
/// [`sunmap_topology::TopologyGraph::switch_radices`].
pub fn layout_blocks(
    g: &TopologyGraph,
    app: &CoreGraph,
    placement: &Placement,
    switch_areas: &[f64],
) -> LayoutBlocks {
    match g.kind() {
        TopologyKind::Mesh { .. } | TopologyKind::Torus { .. } | TopologyKind::Octagon => {
            // Octagon switches carry perimeter grid coordinates, so the
            // tile layout applies unchanged.
            direct_layout(g, app, placement, switch_areas, grid_slot_of_grid)
        }
        TopologyKind::Hypercube { dim } => {
            let half = dim / 2;
            direct_layout(
                g,
                app,
                placement,
                switch_areas,
                move |coords| match coords {
                    NodeCoords::Hyper { label } => (
                        (label >> half) as usize,
                        (label & ((1 << half) - 1)) as usize,
                    ),
                    other => panic!("expected hypercube coords, found {other}"),
                },
            )
        }
        TopologyKind::Clos { .. } | TopologyKind::Butterfly { .. } | TopologyKind::Star { .. } => {
            indirect_layout(g, app, placement, switch_areas)
        }
        TopologyKind::Custom { .. } => custom_layout(g, app, placement, switch_areas),
    }
}

fn grid_slot_of_grid(coords: NodeCoords) -> (usize, usize) {
    match coords {
        NodeCoords::Grid { row, col } => (row, col),
        other => panic!("expected grid coords, found {other}"),
    }
}

fn direct_layout(
    g: &TopologyGraph,
    app: &CoreGraph,
    placement: &Placement,
    switch_areas: &[f64],
    slot: impl Fn(NodeCoords) -> (usize, usize),
) -> LayoutBlocks {
    let mut rp = RelativePlacement::new();
    let mut switch_block = vec![None; g.node_count()];
    let mut core_block = vec![None; app.core_count()];
    for s in g.switches() {
        let (row, col) = slot(g.coords(s));
        let area = switch_areas[s.index()];
        let id = rp.add_block(BlockSpec::soft(format!("sw_{s}"), area), row, 2 * col + 1);
        switch_block[s.index()] = Some(id);
        if let Some(core) = placement.core_at(s) {
            let spec = core_spec(app, core);
            let cid = rp.add_block(spec, row, 2 * col);
            core_block[core.index()] = Some(cid);
        }
    }
    LayoutBlocks {
        placement: rp,
        switch_block,
        core_block,
    }
}

fn core_spec(app: &CoreGraph, core: CoreId) -> BlockSpec {
    let c = app.core(core);
    if c.soft {
        BlockSpec::soft(c.name.clone(), c.area)
    } else {
        BlockSpec::hard(c.name.clone(), c.area)
    }
}

fn indirect_layout(
    g: &TopologyGraph,
    app: &CoreGraph,
    placement: &Placement,
    switch_areas: &[f64],
) -> LayoutBlocks {
    let ports = g.core_ports().count();
    let stages = 1 + g
        .switches()
        .filter_map(|s| match g.coords(s) {
            NodeCoords::Stage { stage, .. } => Some(stage),
            _ => None,
        })
        .max()
        .unwrap_or(0);
    let mut stage_size = vec![0usize; stages];
    for s in g.switches() {
        if let NodeCoords::Stage { stage, .. } = g.coords(s) {
            stage_size[stage] += 1;
        }
    }
    let max_stage = stage_size.iter().copied().max().unwrap_or(1);
    // Layout rows: enough for the tallest stage and a near-square core
    // arrangement.
    let rows = ((ports as f64).sqrt().ceil() as usize)
        .max(max_stage)
        .max(1);
    let core_cols = ports.div_ceil(rows);
    let left_cols = core_cols.div_ceil(2);

    let mut rp = RelativePlacement::new();
    let mut switch_block = vec![None; g.node_count()];
    let mut core_block = vec![None; app.core_count()];

    // Core ports flank the switch stages: left columns, then stages,
    // then right columns.
    for port in g.core_ports() {
        let Some(core) = placement.core_at(port) else {
            continue;
        };
        let NodeCoords::Port { index } = g.coords(port) else {
            continue;
        };
        let core_col = index / rows;
        let row = index % rows;
        let col = if core_col < left_cols {
            core_col
        } else {
            core_col + stages
        };
        let id = rp.add_block(core_spec(app, core), row, col);
        core_block[core.index()] = Some(id);
    }
    for s in g.switches() {
        let NodeCoords::Stage { stage, index } = g.coords(s) else {
            continue;
        };
        let col = left_cols + stage;
        let row = index * rows / stage_size[stage];
        let id = rp.add_block(
            BlockSpec::soft(format!("sw_{s}"), switch_areas[s.index()]),
            row,
            col,
        );
        switch_block[s.index()] = Some(id);
    }
    LayoutBlocks {
        placement: rp,
        switch_block,
        core_block,
    }
}

/// Layout for user-defined heterogeneous topologies: switches sit on
/// their builder-declared grid slots; each switch's mapped cores stack
/// in the column to its left. Rows are expanded by the largest port
/// count so stacked cores never collide with neighbouring tiles.
fn custom_layout(
    g: &TopologyGraph,
    app: &CoreGraph,
    placement: &Placement,
    switch_areas: &[f64],
) -> LayoutBlocks {
    let mut ports_of: Vec<Vec<NodeId>> = vec![Vec::new(); g.node_count()];
    for port in g.core_ports() {
        if let Ok(sw) = g.ingress_switch(port) {
            ports_of[sw.index()].push(port);
        }
    }
    let expand = ports_of.iter().map(Vec::len).max().unwrap_or(1).max(1);

    let mut rp = RelativePlacement::new();
    let mut switch_block = vec![None; g.node_count()];
    let mut core_block = vec![None; app.core_count()];
    for s in g.switches() {
        let NodeCoords::Grid { row, col } = g.coords(s) else {
            continue;
        };
        let id = rp.add_block(
            BlockSpec::soft(format!("sw_{s}"), switch_areas[s.index()]),
            row * expand,
            2 * col + 1,
        );
        switch_block[s.index()] = Some(id);
        let mut stacked = 0usize;
        for port in &ports_of[s.index()] {
            let Some(core) = placement.core_at(*port) else {
                continue;
            };
            let cid = rp.add_block(core_spec(app, core), row * expand + stacked, 2 * col);
            core_block[core.index()] = Some(cid);
            stacked += 1;
        }
    }
    LayoutBlocks {
        placement: rp,
        switch_block,
        core_block,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sunmap_power::{switch_area, SwitchConfig, Technology};
    use sunmap_topology::builders;
    use sunmap_traffic::benchmarks;

    fn areas(g: &TopologyGraph) -> Vec<f64> {
        let mut areas = vec![0.0; g.node_count()];
        for (s, i, o) in g.switch_radices() {
            areas[s.index()] = switch_area(SwitchConfig::new(i, o), Technology::um_0_10());
        }
        areas
    }

    fn identity_placement(g: &TopologyGraph, n: usize) -> Placement {
        Placement::new(g.mappable_nodes()[..n].to_vec(), g).unwrap()
    }

    #[test]
    fn mesh_layout_places_every_switch_and_core() {
        let g = builders::mesh(3, 4, 500.0).unwrap();
        let app = benchmarks::vopd();
        let p = identity_placement(&g, 12);
        let lb = layout_blocks(&g, &app, &p, &areas(&g));
        assert_eq!(lb.switch_block_count(), 12);
        assert_eq!(lb.core_block_count(), 12);
        assert_eq!(lb.placement.block_count(), 24);
        lb.placement.floorplan().expect("mesh layout floorplans");
    }

    #[test]
    fn partial_mapping_leaves_empty_tiles() {
        let g = builders::mesh(4, 4, 500.0).unwrap();
        let app = benchmarks::vopd();
        let p = identity_placement(&g, 12);
        let lb = layout_blocks(&g, &app, &p, &areas(&g));
        assert_eq!(lb.switch_block_count(), 16);
        assert_eq!(lb.core_block_count(), 12);
    }

    #[test]
    fn butterfly_layout_floorplans_without_collisions() {
        let g = builders::butterfly(4, 2, 500.0).unwrap();
        let app = benchmarks::vopd();
        let p = identity_placement(&g, 12);
        let lb = layout_blocks(&g, &app, &p, &areas(&g));
        assert_eq!(lb.switch_block_count(), 8);
        assert_eq!(lb.core_block_count(), 12);
        let fp = lb
            .placement
            .floorplan()
            .expect("butterfly layout floorplans");
        assert!(fp.chip_aspect() > 0.2 && fp.chip_aspect() < 5.0);
    }

    #[test]
    fn clos_layout_floorplans() {
        let g = builders::clos(4, 4, 4, 500.0).unwrap();
        let app = benchmarks::network_processor(100.0);
        let p = identity_placement(&g, 16);
        let lb = layout_blocks(&g, &app, &p, &areas(&g));
        assert_eq!(lb.switch_block_count(), 12);
        lb.placement.floorplan().expect("clos layout floorplans");
    }

    #[test]
    fn hypercube_layout_floorplans() {
        let g = builders::hypercube(4, 500.0).unwrap();
        let app = benchmarks::vopd();
        let p = identity_placement(&g, 12);
        let lb = layout_blocks(&g, &app, &p, &areas(&g));
        assert_eq!(lb.switch_block_count(), 16);
        lb.placement
            .floorplan()
            .expect("hypercube layout floorplans");
    }

    #[test]
    fn block_of_node_prefers_core_block() {
        let g = builders::mesh(2, 2, 500.0).unwrap();
        let app = benchmarks::dsp_filter();
        let p = identity_placement(&g, 4);
        let lb = layout_blocks(&g, &app, &p, &areas(&g));
        let node = g.mappable_nodes()[0];
        let core = p.core_at(node).unwrap();
        assert_eq!(lb.block_of_node(&p, node), lb.core_block[core.index()]);
    }
}
