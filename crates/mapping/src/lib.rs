//! The SUNMAP mapping engine (paper §4).
//!
//! This crate implements the heart of the paper: mapping an application
//! core graph onto a NoC topology graph under a chosen routing function
//! and design objective, subject to bandwidth and area constraints.
//!
//! The algorithm is the three-phase heuristic of paper Fig. 5:
//!
//! 1. a greedy initial placement — the core with maximum communication
//!    goes to the topology node with the most neighbours, then each
//!    remaining core (picked by communication with already-placed
//!    cores) goes to the free node minimising a distance-weighted cost;
//! 2. commodities are routed one by one in decreasing bandwidth order,
//!    each restricted to its topology-specific *quadrant graph*, with
//!    link loads accumulated so later commodities avoid congestion;
//!    the resulting mapping is evaluated by the floorplanner and the
//!    area–power libraries;
//! 3. pair-wise swapping of topology vertices repeats phase 2, and the
//!    best evaluated mapping is returned.
//!
//! Phase 3 scores its O(n²) candidate swaps per pass through a cached
//! fast path ([`EvalEngine`] over a per-topology [`RouteTable`], with
//! reusable [`EvalScratch`] buffers and a parallel sweep) that is
//! bit-identical to the reference [`evaluate`]; see the `engine` module
//! docs for the equivalence contract.
//!
//! Four routing functions are supported ([`RoutingFunction`]): dimension
//! ordered, minimum-path, split-traffic across minimum paths and
//! split-traffic across all paths. Four objectives are supported
//! ([`Objective`]): minimum average communication delay, area, power,
//! and minimum required link bandwidth (used for the paper's Fig. 9a
//! routing-function study).
//!
//! # Examples
//!
//! ```
//! use sunmap_mapping::{Mapper, MapperConfig};
//! use sunmap_topology::builders;
//! use sunmap_traffic::benchmarks;
//!
//! let mesh = builders::mesh(3, 4, 500.0)?;
//! let vopd = benchmarks::vopd();
//! let mapping = Mapper::new(&mesh, &vopd, MapperConfig::default()).run()?;
//! assert!(mapping.report().feasible());
//! assert!(mapping.report().avg_hops >= 2.0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

mod engine;
mod error;
mod evaluate;
mod layout;
mod mapper;
mod placement;
mod report;
mod routing;
pub mod timing;

pub use engine::{
    CachedPath, EvalEngine, EvalScratch, PairRef, RouteTable, SwapStrategy, TablePrep,
};
pub use error::MappingError;
pub use evaluate::{evaluate, Evaluation, RoutedCommodity};
pub use layout::{layout_blocks, LayoutBlocks};
pub use mapper::{Mapper, MapperConfig, Mapping};
pub use placement::Placement;
pub use report::{Constraints, CostReport, Objective};
pub use routing::{route_commodity, RoutingFunction};
