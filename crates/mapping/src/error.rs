//! Error type of the mapping engine.

use crate::CostReport;
use sunmap_floorplan::FloorplanError;
use sunmap_topology::TopologyError;

/// Errors produced while mapping an application onto a topology.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub enum MappingError {
    /// The application has more cores than the topology has mappable
    /// slots (`|V| > |U|`, violating paper Eq. 1).
    TooManyCores {
        /// Cores in the application.
        cores: usize,
        /// Mappable slots in the topology.
        slots: usize,
    },
    /// The application has no cores.
    EmptyApplication,
    /// A placement refers to a vertex cores cannot be mapped onto, or
    /// maps two cores onto one vertex.
    InvalidPlacement(String),
    /// No evaluated mapping satisfied the bandwidth and area
    /// constraints. Carries the report of the least-infeasible mapping
    /// found, so callers can see *how* infeasible the best attempt was
    /// (e.g. the butterfly row of the paper's Fig. 7b).
    NoFeasibleMapping(Box<CostReport>),
    /// A commodity could not be routed between its mapped endpoints.
    Unroutable {
        /// Source core index.
        src: usize,
        /// Destination core index.
        dst: usize,
    },
    /// Topology-level failure.
    Topology(TopologyError),
    /// Floorplanning failure.
    Floorplan(FloorplanError),
}

impl std::fmt::Display for MappingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MappingError::TooManyCores { cores, slots } => {
                write!(f, "{cores} cores cannot map onto {slots} topology slots")
            }
            MappingError::EmptyApplication => write!(f, "application has no cores"),
            MappingError::InvalidPlacement(why) => write!(f, "invalid placement: {why}"),
            MappingError::NoFeasibleMapping(best) => write!(
                f,
                "no feasible mapping (best attempt: max link load {:.1} MB/s, \
                 bandwidth ok: {}, area ok: {})",
                best.max_link_load, best.bandwidth_ok, best.area_ok
            ),
            MappingError::Unroutable { src, dst } => {
                write!(f, "no route for commodity c{src} -> c{dst}")
            }
            MappingError::Topology(e) => write!(f, "topology error: {e}"),
            MappingError::Floorplan(e) => write!(f, "floorplan error: {e}"),
        }
    }
}

impl std::error::Error for MappingError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MappingError::Topology(e) => Some(e),
            MappingError::Floorplan(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TopologyError> for MappingError {
    fn from(e: TopologyError) -> Self {
        MappingError::Topology(e)
    }
}

impl From<FloorplanError> for MappingError {
    fn from(e: FloorplanError) -> Self {
        MappingError::Floorplan(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = MappingError::TooManyCores {
            cores: 20,
            slots: 16,
        };
        assert!(e.to_string().contains("20"));
        let e: MappingError = TopologyError::InvalidRadix(1).into();
        assert!(std::error::Error::source(&e).is_some());
        let e: MappingError = FloorplanError::Empty.into();
        assert!(e.to_string().contains("floorplan"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<MappingError>();
    }
}
