//! The cached evaluation fast path: per-topology route tables,
//! allocation-free scratch buffers, and a parallel swap sweep.
//!
//! The mapper's phase-3 search evaluates O(passes · n²) candidate
//! placements per topology. The reference evaluator
//! ([`crate::evaluate`]) rebuilds everything from scratch per candidate:
//! BFS/Dijkstra state, quadrant sets, enumerated path sets, `find_edge`
//! scans per path window and map-backed accumulators. This module
//! amortises all placement-independent work into a [`RouteTable`] built
//! once per topology, keeps the per-candidate working state in a
//! reusable [`EvalScratch`], and fans the swap sweep out across scoped
//! threads with a deterministic reduction.
//!
//! **Equivalence contract**: for any placement, [`EvalEngine::
//! evaluate_report`] returns a [`CostReport`] bit-identical to
//! `evaluate(..).report`, and errors exactly when the reference errors.
//! The routed-path *sets* are placement-independent per `(src, dst)`
//! pair (quadrants, enumerated min/simple paths, dimension-ordered
//! routes), which is what makes caching sound; the load-dependent parts
//! (Dijkstra tie-breaking, min-max chunk assignment) run the same code
//! as the reference — `paths::dijkstra_into` backs `paths::dijkstra`,
//! and [`crate::routing::assign_chunks`] backs `min_max_split` — so the
//! arithmetic cannot drift. The proptest suite in
//! `tests/fast_path_equivalence.rs` enforces the contract across every
//! topology builder, routing function and objective.
//!
//! # The incremental swap-delta sweep
//!
//! On large topologies even the cached full evaluation is too much work
//! per candidate: a pass over an `n`-vertex grid scores `n(n-1)/2`
//! swaps and each full evaluation re-routes every commodity. The
//! [`EvalEngine::sweep_search`] path (selected through
//! [`SwapStrategy`]) keeps persistent per-edge link-load and per-switch
//! traffic accumulators for the pass's base placement and scores a
//! candidate swap of vertices `(a, b)` incrementally:
//!
//! 1. an **O(deg) pre-bound** — the bandwidth-weighted *minimum*
//!    switch-hop mass (and its switch-energy analogue) is updated by
//!    subtracting just the commodities incident to `a`/`b` and
//!    re-adding them under the swapped endpoints; if even this
//!    optimistic cost cannot beat the pass incumbent, the swap is
//!    abandoned without routing anything;
//! 2. for **placement-independent route sets** (dimension-ordered
//!    routing, where every pair's route is a cached enumerated path)
//!    the delta is exact up to float rounding: the incident
//!    commodities' old cached paths are subtracted from the base
//!    accumulators and their new paths re-added, yielding the
//!    candidate's loads, switch power and hop mass without touching the
//!    other `|E_app|` commodities;
//! 3. **load-dependent routing** (Dijkstra min-load `MP`, min-max
//!    split `SM`/`SA`) falls back to a full evaluation, but one with an
//!    **early-exit bound**: the floorplan is solved first, and after
//!    every routed commodity the partial cost plus an optimistic bound
//!    for the unrouted suffix is compared against the incumbent — the
//!    evaluation is abandoned the moment it can no longer win.
//!
//! Pruning is *sound*, never heuristic: a swap is only abandoned when a
//! margin-guarded lower bound proves it ranks strictly worse than an
//! already-evaluated candidate, and every surviving candidate is scored
//! by the same full evaluation the exhaustive sweep uses. Each pass's
//! chosen winner is then re-materialised through the reference
//! [`crate::evaluate`] (and `debug_assert`-checked against it) exactly
//! as in the exhaustive path, so pass winners, final placements and
//! reports are **bit-identical** to [`SwapStrategy::Exhaustive`] — only
//! the number of evaluations differs. The sweep is partitioned into
//! fixed-size blocks whose incumbent is frozen at the block boundary,
//! which keeps the pruning decisions (and therefore the evaluation
//! counts) deterministic at any worker count.

use crate::routing::{assign_chunks, DETOUR_SLACK, HOP_COST, MAX_SPLIT_PATHS, SPLIT_CHUNKS};
use crate::{
    layout_blocks, Constraints, CostReport, LayoutBlocks, MappingError, Objective, Placement,
    RoutingFunction,
};
use sunmap_floorplan::Floorplan;
use sunmap_power::{switch_power_from_energy, AreaPowerLibrary, SwitchConfig};
use sunmap_topology::paths::{AllowedSet, DijkstraScratch};
use sunmap_topology::{
    closed_form, dimension_order, paths, quadrant, AdjacencyMatrix, EdgeId, NodeId, NodeKind,
    TopologyGraph, TopologyKind,
};
use sunmap_traffic::{Commodity, CoreGraph};

// lint:allow(hash-iter): LazyPairs memo below is keyed lookup only, never iterated
use std::collections::HashMap;
use std::sync::{Arc, OnceLock, RwLock};

/// Sentinel for "unreachable" in the hop-distance matrix, chosen so the
/// greedy placement cost matches the reference's
/// `hop_distance(..).unwrap_or(usize::MAX / 2)`.
///
/// The sentinel is **never summed in integer arithmetic**: every
/// consumer either tests for it explicitly or converts through
/// [`RouteTable::greedy_distance`] / [`EvalEngine::pair_masses`], which
/// widen to `f64` (matching the reference's `usize::MAX / 2` cost)
/// before any accumulation, and use saturating ops on the raw value —
/// adding several sentinel costs therefore cannot wrap and silently
/// prefer disconnected vertices (see `tests/disconnected_sentinel.rs`).
const UNREACHABLE_HOPS: u32 = u32::MAX;

/// Relative safety margin for the sweep's prune comparisons. Bounds are
/// computed with re-ordered float arithmetic, so they may drift from
/// the exact evaluation by a few ulps (≲1e-12 relative for the problem
/// sizes involved); pruning only when a bound exceeds the incumbent by
/// this much larger margin keeps every decision sound — near-ties are
/// always fully evaluated.
const PRUNE_MARGIN: f64 = 1e-9;

/// `bound` is so far above `target` (both non-negative) that no float
/// drift in the bound's computation can make the true value ≤ `target`.
fn clearly_above(bound: f64, target: f64) -> bool {
    bound > target * (1.0 + PRUNE_MARGIN) + f64::MIN_POSITIVE
}

/// Relative slack on link-capacity checks — the same `1 + 1e-9` factor
/// the reference evaluator applies, shared between the report's
/// `bandwidth_ok` and the sweep's overload detection so the two can
/// never drift apart.
const BANDWIDTH_TOLERANCE: f64 = 1.0 + 1e-9;

/// How the mapper's phase-3 sweep scores candidate swaps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SwapStrategy {
    /// [`SwapStrategy::Exhaustive`] up to
    /// [`SwapStrategy::AUTO_THRESHOLD`] mappable vertices,
    /// [`SwapStrategy::DeltaPruned`] above — the seed benchmarks keep
    /// their exact evaluation counts while large synthetic grids get
    /// the incremental engine.
    #[default]
    Auto,
    /// Fully evaluate every candidate swap (the paper's literal Fig. 5
    /// loop). Observers see every candidate report.
    Exhaustive,
    /// Incremental swap-delta scoring with sound early-exit bounds:
    /// bit-identical pass winners, final placements and reports, but
    /// candidates proven unable to win are never fully evaluated (and
    /// therefore not observed or counted).
    DeltaPruned,
}

impl SwapStrategy {
    /// Mappable-vertex count above which [`SwapStrategy::Auto`] selects
    /// the delta-pruned sweep. All seed benchmarks (≤ 16 cores) stay on
    /// the exhaustive sweep, preserving their pinned evaluation counts.
    pub const AUTO_THRESHOLD: usize = 24;

    /// The concrete strategy for a topology with `mappable` vertices.
    pub fn resolve(self, mappable: usize) -> SwapStrategy {
        match self {
            SwapStrategy::Auto if mappable > Self::AUTO_THRESHOLD => SwapStrategy::DeltaPruned,
            SwapStrategy::Auto => SwapStrategy::Exhaustive,
            other => other,
        }
    }
}

/// How a [`RouteTable`] materialises its per-pair routing state
/// (quadrant sets, enumerated path sets, hop distances).
///
/// Every variant is proven bit-identical to [`TablePrep::Eager`] by the
/// `table_prep_equivalence` suite; they differ only in *when* (and
/// whether) each pair's state is computed. Mirrors [`SwapStrategy`] /
/// the simulator's engine knob: `Auto` resolves per topology through
/// [`TablePrep::resolve`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum TablePrep {
    /// [`TablePrep::Eager`] up to [`TablePrep::EAGER_THRESHOLD`]
    /// mappable vertices (the regime where dense enumeration is cheap
    /// and the whole table is touched anyway); above it,
    /// [`TablePrep::ClosedForm`] when the topology has closed-form
    /// distances, [`TablePrep::Lazy`] otherwise.
    #[default]
    Auto,
    /// Enumerate every pair's state up front — the original dense
    /// preparation, kept as the oracle the other variants are checked
    /// against.
    Eager,
    /// Hop distances by one BFS per source up front; per-pair quadrant
    /// and path sets materialised on first use and memoised (only
    /// commodities that exist — plus pairs touched by swap deltas —
    /// ever pay for enumeration).
    Lazy,
    /// Like [`TablePrep::Lazy`], but hop distances come from coordinate
    /// arithmetic (`sunmap_topology::closed_form`) — no BFS and no
    /// dense `m × n` hop matrix. Falls back to `Lazy` on topologies
    /// without a closed form (octagon, star, custom).
    ClosedForm,
}

impl TablePrep {
    /// Mappable-vertex count up to which [`TablePrep::Auto`] stays on
    /// the eager dense preparation. All seed benchmarks (≤ 16 cores)
    /// and the 64-core bench tier keep their original tables.
    pub const EAGER_THRESHOLD: usize = 64;

    /// The concrete preparation (never `Auto`) for a topology of `kind`
    /// with `mappable` vertices. An explicit `ClosedForm` request on a
    /// topology without closed-form distances degrades to `Lazy`.
    pub fn resolve(self, kind: TopologyKind, mappable: usize) -> TablePrep {
        match self {
            TablePrep::Auto if mappable <= Self::EAGER_THRESHOLD => TablePrep::Eager,
            TablePrep::Auto | TablePrep::ClosedForm if closed_form::supported(kind) => {
                TablePrep::ClosedForm
            }
            TablePrep::Auto | TablePrep::ClosedForm => TablePrep::Lazy,
            other => other,
        }
    }

    /// Parses the CLI/manifest spelling (`auto`, `eager`, `lazy`,
    /// `closed-form`).
    pub fn parse(s: &str) -> Option<TablePrep> {
        match s {
            "auto" => Some(TablePrep::Auto),
            "eager" => Some(TablePrep::Eager),
            "lazy" => Some(TablePrep::Lazy),
            "closed-form" => Some(TablePrep::ClosedForm),
            _ => None,
        }
    }

    /// The canonical spelling [`TablePrep::parse`] accepts.
    pub fn name(self) -> &'static str {
        match self {
            TablePrep::Auto => "auto",
            TablePrep::Eager => "eager",
            TablePrep::Lazy => "lazy",
            TablePrep::ClosedForm => "closed-form",
        }
    }
}

/// FNV-1a hash of a graph's directed edge list, capacities included.
fn edge_fingerprint(g: &TopologyGraph) -> u64 {
    let mut hash: u64 = 0xCBF2_9CE4_8422_2325;
    let mut mix = |word: u64| {
        for byte in word.to_le_bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
    };
    for (_, e) in g.edges() {
        mix(e.src.index() as u64);
        mix(e.dst.index() as u64);
        mix(e.capacity.to_bits());
    }
    hash
}

/// One enumerated route with everything the accumulation loop needs
/// precomputed: the directed edge per path window, the network-link
/// subset (for min-max splitting) and the switch vertices in traversal
/// order (for traffic accumulation and hop counting).
///
/// The simulator replays these routes flit by flit (see the
/// `sunmap-sim` crate), which is why the edge sequence is public.
/// `PartialEq` compares the full precomputed state — what the table
/// equivalence suite asserts across preparation strategies.
#[derive(Debug, Clone, PartialEq)]
pub struct CachedPath {
    edges: Vec<EdgeId>,
    net_edges: Vec<usize>,
    switch_nodes: Vec<NodeId>,
}

impl CachedPath {
    /// The route as its directed-edge sequence, in traversal order.
    /// The vertex sequence is recoverable through
    /// [`TopologyGraph::edge`]: the source of the first edge, then each
    /// edge's destination.
    pub fn edges(&self) -> &[EdgeId] {
        &self.edges
    }
}

impl CachedPath {
    fn build(g: &TopologyGraph, adj: &AdjacencyMatrix, nodes: &[NodeId]) -> Self {
        let edges: Vec<EdgeId> = nodes
            .windows(2)
            .map(|w| {
                adj.edge_between(w[0], w[1])
                    .expect("enumerated paths follow topology edges")
            })
            .collect();
        let net_edges = edges
            .iter()
            .filter(|e| g.edge(**e).is_network_link())
            .map(|e| e.index())
            .collect();
        let switch_nodes = nodes
            .iter()
            .copied()
            .filter(|n| g.node_kind(*n) == NodeKind::Switch)
            .collect();
        CachedPath {
            edges,
            net_edges,
            switch_nodes,
        }
    }
}

/// Shard count of [`LazyPairs`]. Pair indices stripe across shards so
/// concurrent sweep workers touching different pairs rarely contend.
const LAZY_SHARDS: usize = 64;

/// One [`LazyPairs`] shard: pair index → shared memoised value.
// lint:allow(hash-iter): perf-critical point-lookup memo, never iterated so order cannot leak
type LazyShard<T> = RwLock<HashMap<usize, Arc<T>>>;

/// Concurrent memo table for lazily materialised per-pair state: pair
/// index → shared value, sharded under reader-writer locks. Values are
/// pure functions of the pair, so a race at most computes the same
/// value twice and keeps whichever copy was inserted first.
#[derive(Debug)]
struct LazyPairs<T> {
    shards: Box<[LazyShard<T>]>,
}

impl<T> LazyPairs<T> {
    fn new() -> Self {
        LazyPairs {
            shards: (0..LAZY_SHARDS)
                // lint:allow(hash-iter): see LazyShard — keyed lookups only
                .map(|_| RwLock::new(HashMap::new()))
                .collect(),
        }
    }

    fn get_or_insert_with(&self, pair: usize, make: impl FnOnce() -> T) -> Arc<T> {
        let shard = &self.shards[pair % LAZY_SHARDS];
        if let Some(hit) = shard.read().unwrap().get(&pair) {
            return hit.clone();
        }
        // Compute outside the write lock: enumeration can be expensive
        // and must not serialise unrelated pairs of the same shard.
        let value = Arc::new(make());
        shard.write().unwrap().entry(pair).or_insert(value).clone()
    }

    /// Pairs materialised so far (diagnostics and tests).
    fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().unwrap().len()).sum()
    }
}

/// One per-pair cache of a [`RouteTable`]: dense and fully enumerated
/// (eager), or memoised on first use (lazy).
#[derive(Debug)]
enum PairStore<T> {
    /// Not prepared for the owning routing function yet.
    Absent,
    Eager(Vec<T>),
    Lazy(LazyPairs<T>),
}

impl<T> PairStore<T> {
    fn ready(&self) -> bool {
        !matches!(self, PairStore::Absent)
    }
}

/// A handle to one pair's cached state: borrowed straight out of the
/// eager dense store, or a shared handle into the lazy memo table.
/// Dereferences to the cached value either way.
#[derive(Debug)]
pub struct PairRef<'a, T>(PairRefInner<'a, T>);

#[derive(Debug)]
enum PairRefInner<'a, T> {
    Borrowed(&'a T),
    Shared(Arc<T>),
}

impl<T> std::ops::Deref for PairRef<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        match &self.0 {
            PairRefInner::Borrowed(t) => t,
            PairRefInner::Shared(t) => t,
        }
    }
}

/// All-pairs hop distances of a [`RouteTable`]: a dense BFS matrix, or
/// coordinate arithmetic for topologies with closed-form distances.
#[derive(Debug)]
enum HopStore {
    /// Full-graph BFS hop distances, `m × node_count`, row per
    /// mappable source.
    Dense(Vec<u32>),
    /// No stored state: distances come from
    /// [`closed_form::distance`] on demand.
    Closed,
}

/// Placement-independent routing state of one topology, computed once
/// per [`crate::Mapper::run`] and reusable across runs on the same
/// graph (the Fig. 9 sweeps re-map one graph under four routing
/// functions; `core`'s exploration flow builds one table per library
/// candidate).
///
/// Contents:
///
/// * all-pairs hop distances — one BFS per *source* instead of one per
///   pair, or closed-form coordinate arithmetic (see [`TablePrep`]);
/// * a dense `NodeId × NodeId → Option<EdgeId>` adjacency matrix
///   replacing linear `find_edge` scans;
/// * memoized quadrant sets per mappable pair;
/// * enumerated minimum-path / simple-path sets and dimension-ordered
///   routes per pair, filled per routing function by
///   [`RouteTable::prepare`] — all pairs up front under
///   [`TablePrep::Eager`], per pair on first use otherwise.
#[derive(Debug)]
pub struct RouteTable {
    kind: TopologyKind,
    node_count: usize,
    edge_count: usize,
    /// FNV-1a over the full edge list (endpoints + capacity bits), so
    /// [`RouteTable::matches`] rejects a graph that merely shares its
    /// kind and counts with the table's graph.
    edge_fingerprint: u64,
    /// Owned copy of the topology, so lazily materialised pairs can be
    /// computed at query time without threading the graph through
    /// every accessor.
    graph: TopologyGraph,
    /// The resolved preparation strategy (never [`TablePrep::Auto`]).
    prep: TablePrep,
    mappable: Vec<NodeId>,
    /// Node index → dense mappable index (`u32::MAX` = not mappable).
    midx: Vec<u32>,
    adj: AdjacencyMatrix,
    hop: HopStore,
    quadrants: PairStore<Vec<NodeId>>,
    do_paths: PairStore<Option<CachedPath>>,
    sm_paths: PairStore<Vec<CachedPath>>,
    sa_paths: PairStore<Vec<CachedPath>>,
    /// Unrestricted all-shortest-path sets per pair for simulator
    /// replay (no quadrant filter — the simulator routes adaptively
    /// over every minimum path, paper §6.2), capped per pair.
    sim_paths: PairStore<Vec<CachedPath>>,
    /// The cap `sim_paths` was enumerated under; `usize::MAX` = not
    /// prepared yet.
    sim_cap: usize,
}

impl RouteTable {
    /// Builds the routing-function-independent parts for `g` under
    /// [`TablePrep::Auto`] (see [`RouteTable::with_prep`]).
    pub fn new(g: &TopologyGraph) -> Self {
        Self::with_prep(g, TablePrep::Auto)
    }

    /// Builds the routing-function-independent parts (adjacency matrix
    /// and hop distances) for `g` under the given preparation
    /// strategy. `prep` is [resolved](TablePrep::resolve) against the
    /// topology first; the result is queryable via
    /// [`RouteTable::prep`].
    pub fn with_prep(g: &TopologyGraph, prep: TablePrep) -> Self {
        let mappable = g.mappable_nodes().to_vec();
        let mut midx = vec![u32::MAX; g.node_count()];
        for (i, n) in mappable.iter().enumerate() {
            midx[n.index()] = i as u32;
        }
        let prep = prep.resolve(g.kind(), mappable.len());
        let hop = if prep == TablePrep::ClosedForm {
            HopStore::Closed
        } else {
            let mut hop = vec![UNREACHABLE_HOPS; mappable.len() * g.node_count()];
            for (i, &src) in mappable.iter().enumerate() {
                let levels = paths::bfs_levels(g, src);
                let row = &mut hop[i * g.node_count()..(i + 1) * g.node_count()];
                for (slot, level) in row.iter_mut().zip(levels) {
                    if level != usize::MAX {
                        *slot = level as u32;
                    }
                }
            }
            HopStore::Dense(hop)
        };
        RouteTable {
            kind: g.kind(),
            node_count: g.node_count(),
            edge_count: g.edge_count(),
            edge_fingerprint: edge_fingerprint(g),
            graph: g.clone(),
            prep,
            mappable,
            midx,
            adj: g.adjacency_matrix(),
            hop,
            quadrants: PairStore::Absent,
            do_paths: PairStore::Absent,
            sm_paths: PairStore::Absent,
            sa_paths: PairStore::Absent,
            sim_paths: PairStore::Absent,
            sim_cap: usize::MAX,
        }
    }

    /// The resolved preparation strategy this table was built with
    /// (never [`TablePrep::Auto`]).
    pub fn prep(&self) -> TablePrep {
        self.prep
    }

    /// Raw minimum hop count between mappable `a` and any node `b`,
    /// `UNREACHABLE_HOPS` when unreachable.
    fn hops(&self, a: NodeId, b: NodeId) -> u32 {
        match &self.hop {
            HopStore::Dense(hop) => {
                let i = self.midx[a.index()] as usize;
                hop[i * self.node_count + b.index()]
            }
            HopStore::Closed => closed_form::distance(&self.graph, a, b)
                .expect("closed-form hop store queried for a pair without a closed form"),
        }
    }

    /// Minimum hop count between two mappable vertices, `None` when
    /// the pair is unreachable. Exposed for the table-preparation
    /// equivalence suite.
    pub fn hop_distance(&self, a: NodeId, b: NodeId) -> Option<u32> {
        let h = self.hops(a, b);
        (h != UNREACHABLE_HOPS).then_some(h)
    }

    /// The dense adjacency matrix of the table's graph (equivalence
    /// suite probe; identical across preparation strategies by
    /// construction).
    pub fn adjacency(&self) -> &AdjacencyMatrix {
        &self.adj
    }

    /// How many per-pair entries the store for `routing` has
    /// materialised so far — `m²` after an eager prepare, the touched
    /// pair count under lazy preparation. Diagnostics/tests only.
    pub fn materialized_pairs(&self, routing: RoutingFunction) -> usize {
        fn count<T>(store: &PairStore<T>) -> usize {
            match store {
                PairStore::Absent => 0,
                PairStore::Eager(v) => v.len(),
                PairStore::Lazy(l) => l.len(),
            }
        }
        match routing {
            RoutingFunction::DimensionOrdered => count(&self.do_paths),
            RoutingFunction::MinPath => count(&self.quadrants),
            RoutingFunction::SplitMinPaths => count(&self.sm_paths),
            RoutingFunction::SplitAllPaths => count(&self.sa_paths),
        }
    }

    /// The mappable vertices this table indexes pairs over, in the
    /// graph's canonical order (the simulator's terminal order).
    pub fn mappable_nodes(&self) -> &[NodeId] {
        &self.mappable
    }

    /// The cached dimension-ordered route between two mappable
    /// vertices (`None` inside the handle when no such route exists),
    /// materialising the pair first under lazy preparation.
    ///
    /// # Panics
    ///
    /// Panics unless [`RouteTable::prepare`] has run for
    /// [`RoutingFunction::DimensionOrdered`].
    pub fn dimension_ordered_route(&self, a: NodeId, b: NodeId) -> PairRef<'_, Option<CachedPath>> {
        Self::pair_entry(
            &self.do_paths,
            self.pair(a, b),
            "dimension-ordered routes",
            || self.compute_do(a, b),
        )
    }

    /// The memoised quadrant-graph vertex set of a mappable pair, in
    /// ascending node order (MinPath routing's search region;
    /// equivalence-suite probe).
    ///
    /// # Panics
    ///
    /// Panics unless [`RouteTable::prepare`] has run for
    /// [`RoutingFunction::MinPath`] (or `SplitMinPaths`, which
    /// prepares quadrants too).
    pub fn quadrant_pair(&self, a: NodeId, b: NodeId) -> PairRef<'_, Vec<NodeId>> {
        Self::pair_entry(&self.quadrants, self.pair(a, b), "quadrant sets", || {
            self.compute_quadrant(a, b)
        })
    }

    /// The enumerated quadrant-restricted minimum-path set of a
    /// mappable pair ([`RoutingFunction::SplitMinPaths`]'s candidates;
    /// empty = unreachable).
    ///
    /// # Panics
    ///
    /// Panics unless [`RouteTable::prepare`] has run for
    /// [`RoutingFunction::SplitMinPaths`].
    pub fn split_min_paths(&self, a: NodeId, b: NodeId) -> PairRef<'_, Vec<CachedPath>> {
        Self::pair_entry(&self.sm_paths, self.pair(a, b), "split-min paths", || {
            self.compute_split_min(a, b)
        })
    }

    /// The enumerated bounded-detour simple-path set of a mappable
    /// pair ([`RoutingFunction::SplitAllPaths`]'s candidates; empty =
    /// unreachable).
    ///
    /// # Panics
    ///
    /// Panics unless [`RouteTable::prepare`] has run for
    /// [`RoutingFunction::SplitAllPaths`].
    pub fn split_all_paths(&self, a: NodeId, b: NodeId) -> PairRef<'_, Vec<CachedPath>> {
        Self::pair_entry(&self.sa_paths, self.pair(a, b), "split-all paths", || {
            self.compute_split_all(a, b)
        })
    }

    /// Whether [`RouteTable::prepare_sim_routes`] has run with `cap`.
    pub fn sim_routes_ready(&self, cap: usize) -> bool {
        self.sim_cap == cap
    }

    /// Fills the per-pair minimum-path sets the simulator replays:
    /// every shortest path on the *full* graph (no quadrant
    /// restriction), at most `cap` per pair, in the deterministic
    /// enumeration order of [`paths::all_shortest_paths`]. Idempotent
    /// for a given `cap`; re-preparing with a different `cap`
    /// re-enumerates. Under lazy preparation this only installs the
    /// (empty) memo store — pairs materialise as the simulator's plan
    /// compiler asks for them.
    ///
    /// # Panics
    ///
    /// Panics if the table was built for a different graph.
    pub fn prepare_sim_routes(&mut self, g: &TopologyGraph, cap: usize) {
        assert!(self.matches(g), "route table built for a different graph");
        if self.sim_cap == cap {
            return;
        }
        self.sim_cap = cap;
        if self.prep != TablePrep::Eager {
            self.sim_paths = PairStore::Lazy(LazyPairs::new());
            return;
        }
        let m = self.mappable.len();
        let mut cache = vec![Vec::new(); m * m];
        for &a in &self.mappable {
            for &b in &self.mappable {
                if a == b {
                    continue;
                }
                cache[self.pair(a, b)] = paths::all_shortest_paths(g, a, b, None, cap)
                    .into_iter()
                    .map(|nodes| CachedPath::build(g, &self.adj, &nodes))
                    .collect();
            }
        }
        self.sim_paths = PairStore::Eager(cache);
    }

    /// The simulator-replay route set between two mappable vertices
    /// (empty = unreachable pair).
    ///
    /// # Panics
    ///
    /// Panics unless [`RouteTable::prepare_sim_routes`] has run.
    pub fn sim_route_set(&self, a: NodeId, b: NodeId) -> PairRef<'_, Vec<CachedPath>> {
        assert!(self.sim_cap != usize::MAX, "sim routes not prepared");
        let cap = self.sim_cap;
        Self::pair_entry(&self.sim_paths, self.pair(a, b), "sim routes", || {
            self.compute_sim(a, b, cap)
        })
    }

    /// The FNV-1a fingerprint of the edge list this table was built
    /// for — the cache key long-running services (the serve daemon's
    /// warm route cache) index hot tables by, without keeping the graph
    /// around.
    pub fn fingerprint(&self) -> u64 {
        self.edge_fingerprint
    }

    /// Whether this table was built for `g`: same kind, shape, and
    /// edge list (endpoints and capacities, order-sensitive).
    pub fn matches(&self, g: &TopologyGraph) -> bool {
        self.kind == g.kind()
            && self.node_count == g.node_count()
            && self.edge_count == g.edge_count()
            && self.edge_fingerprint == edge_fingerprint(g)
    }

    /// Whether [`RouteTable::prepare`] has run for `routing`.
    pub fn prepared(&self, routing: RoutingFunction) -> bool {
        match routing {
            RoutingFunction::DimensionOrdered => self.do_paths.ready(),
            RoutingFunction::MinPath => self.quadrants.ready(),
            RoutingFunction::SplitMinPaths => self.sm_paths.ready(),
            RoutingFunction::SplitAllPaths => self.sa_paths.ready(),
        }
    }

    /// Fills (eager) or installs (lazy) the per-pair caches `routing`
    /// needs (idempotent).
    ///
    /// # Panics
    ///
    /// Panics if the table was built for a different graph.
    pub fn prepare(&mut self, g: &TopologyGraph, routing: RoutingFunction) {
        assert!(self.matches(g), "route table built for a different graph");
        match routing {
            RoutingFunction::DimensionOrdered => self.prepare_dimension_ordered(),
            RoutingFunction::MinPath => self.prepare_quadrants(),
            RoutingFunction::SplitMinPaths => self.prepare_split_min(),
            RoutingFunction::SplitAllPaths => self.prepare_split_all(),
        }
    }

    fn pair(&self, a: NodeId, b: NodeId) -> usize {
        let (i, j) = (self.midx[a.index()], self.midx[b.index()]);
        debug_assert!(i != u32::MAX && j != u32::MAX, "pair of mappable nodes");
        i as usize * self.mappable.len() + j as usize
    }

    /// Looks a pair up in `store`, materialising it with `make` under
    /// lazy preparation.
    fn pair_entry<'s, T>(
        store: &'s PairStore<T>,
        pair: usize,
        what: &str,
        make: impl FnOnce() -> T,
    ) -> PairRef<'s, T> {
        match store {
            PairStore::Absent => panic!("{what} not prepared"),
            PairStore::Eager(v) => PairRef(PairRefInner::Borrowed(&v[pair])),
            PairStore::Lazy(l) => PairRef(PairRefInner::Shared(l.get_or_insert_with(pair, make))),
        }
    }

    /// Hop distance between two mappable nodes as the greedy placement
    /// sees it (the reference used
    /// `hop_distance(..).unwrap_or(usize::MAX / 2) as f64`).
    pub(crate) fn greedy_distance(&self, a: NodeId, b: NodeId) -> f64 {
        let h = self.hops(a, b);
        if h == UNREACHABLE_HOPS {
            (usize::MAX / 2) as f64
        } else {
            h as f64
        }
    }

    /// One pair's quadrant set — exactly the eager loop's per-pair
    /// computation (the lazy stores call these so every strategy runs
    /// identical per-pair code).
    fn compute_quadrant(&self, a: NodeId, b: NodeId) -> Vec<NodeId> {
        if a == b {
            return Vec::new();
        }
        let mut q: Vec<NodeId> = quadrant::quadrant_set(&self.graph, a, b)
            .into_iter()
            .collect();
        q.sort_unstable();
        q
    }

    fn compute_do(&self, a: NodeId, b: NodeId) -> Option<CachedPath> {
        if a == b {
            return None;
        }
        dimension_order::route(&self.graph, a, b)
            .ok()
            .map(|p| CachedPath::build(&self.graph, &self.adj, &p))
    }

    fn compute_split_min(&self, a: NodeId, b: NodeId) -> Vec<CachedPath> {
        if a == b {
            return Vec::new();
        }
        let quad = self.quadrant_pair(a, b);
        let q: AllowedSet = quad.iter().copied().collect();
        paths::all_shortest_paths(&self.graph, a, b, Some(&q), MAX_SPLIT_PATHS)
            .into_iter()
            .map(|nodes| CachedPath::build(&self.graph, &self.adj, &nodes))
            .collect()
    }

    fn compute_split_all(&self, a: NodeId, b: NodeId) -> Vec<CachedPath> {
        if a == b {
            return Vec::new();
        }
        // "All paths" searches the whole NoC graph; the slack and cap
        // mirror route_commodity exactly. Unreachable pairs keep an
        // empty candidate list (= unroutable).
        let min_hops = self.hops(a, b);
        if min_hops == UNREACHABLE_HOPS {
            return Vec::new();
        }
        let min_len = min_hops as usize + 1;
        paths::all_simple_paths(
            &self.graph,
            a,
            b,
            None,
            min_len + DETOUR_SLACK,
            MAX_SPLIT_PATHS,
        )
        .into_iter()
        .map(|nodes| CachedPath::build(&self.graph, &self.adj, &nodes))
        .collect()
    }

    fn compute_sim(&self, a: NodeId, b: NodeId, cap: usize) -> Vec<CachedPath> {
        if a == b {
            return Vec::new();
        }
        paths::all_shortest_paths(&self.graph, a, b, None, cap)
            .into_iter()
            .map(|nodes| CachedPath::build(&self.graph, &self.adj, &nodes))
            .collect()
    }

    fn prepare_quadrants(&mut self) {
        if self.quadrants.ready() {
            return;
        }
        if self.prep != TablePrep::Eager {
            self.quadrants = PairStore::Lazy(LazyPairs::new());
            return;
        }
        let m = self.mappable.len();
        let mut quads = vec![Vec::new(); m * m];
        for &a in &self.mappable {
            for &b in &self.mappable {
                if a == b {
                    continue;
                }
                quads[self.pair(a, b)] = self.compute_quadrant(a, b);
            }
        }
        self.quadrants = PairStore::Eager(quads);
    }

    fn prepare_dimension_ordered(&mut self) {
        if self.do_paths.ready() {
            return;
        }
        if self.prep != TablePrep::Eager {
            self.do_paths = PairStore::Lazy(LazyPairs::new());
            return;
        }
        let m = self.mappable.len();
        let mut cache = vec![None; m * m];
        for &a in &self.mappable {
            for &b in &self.mappable {
                if a == b {
                    continue;
                }
                cache[self.pair(a, b)] = self.compute_do(a, b);
            }
        }
        self.do_paths = PairStore::Eager(cache);
    }

    fn prepare_split_min(&mut self) {
        if self.sm_paths.ready() {
            return;
        }
        self.prepare_quadrants();
        if self.prep != TablePrep::Eager {
            self.sm_paths = PairStore::Lazy(LazyPairs::new());
            return;
        }
        let m = self.mappable.len();
        let mut cache = vec![Vec::new(); m * m];
        for &a in &self.mappable {
            for &b in &self.mappable {
                if a == b {
                    continue;
                }
                cache[self.pair(a, b)] = self.compute_split_min(a, b);
            }
        }
        self.sm_paths = PairStore::Eager(cache);
    }

    fn prepare_split_all(&mut self) {
        if self.sa_paths.ready() {
            return;
        }
        if self.prep != TablePrep::Eager {
            self.sa_paths = PairStore::Lazy(LazyPairs::new());
            return;
        }
        let m = self.mappable.len();
        let mut cache = vec![Vec::new(); m * m];
        for &a in &self.mappable {
            for &b in &self.mappable {
                if a == b {
                    continue;
                }
                cache[self.pair(a, b)] = self.compute_split_all(a, b);
            }
        }
        self.sa_paths = PairStore::Eager(cache);
    }
}

/// Reusable per-worker buffers for one candidate evaluation. After the
/// first use every steady-state evaluation routes its commodities
/// without touching the allocator (the floorplan solve still builds its
/// block list; see the crate README).
#[derive(Debug)]
pub struct EvalScratch {
    link_loads: Vec<f64>,
    switch_traffic: Vec<f64>,
    /// Working copy of the loads for min-max chunk assignment.
    local: Vec<f64>,
    chunks: Vec<usize>,
    quad_mask: Vec<bool>,
    dijkstra: DijkstraScratch,
    path: Vec<NodeId>,
    /// Swap-delta working state (delta sweep only): sparse per-edge /
    /// per-node deltas with their touched-index lists, the incident
    /// commodity indices of the candidate pair, candidate link lengths,
    /// and the optimistic suffix masses for the early-exit bound.
    delta_loads: Vec<f64>,
    touched_edges: Vec<usize>,
    delta_traffic: Vec<f64>,
    touched_nodes: Vec<usize>,
    incident: Vec<u32>,
    edge_len: Vec<f64>,
    min_suffix: Vec<f64>,
    rate_suffix: Vec<f64>,
    len_suffix: Vec<f64>,
    /// Per-node minimum outgoing / incoming powered network-link
    /// length of the current candidate floorplan (MinPower floor).
    out_min: Vec<f64>,
    in_min: Vec<f64>,
}

impl EvalScratch {
    fn new(node_count: usize, edge_count: usize) -> Self {
        EvalScratch {
            link_loads: vec![0.0; edge_count],
            switch_traffic: vec![0.0; node_count],
            local: vec![0.0; edge_count],
            chunks: Vec::new(),
            quad_mask: vec![false; node_count],
            dijkstra: DijkstraScratch::new(node_count),
            path: Vec::new(),
            delta_loads: vec![0.0; edge_count],
            touched_edges: Vec::new(),
            delta_traffic: vec![0.0; node_count],
            touched_nodes: Vec::new(),
            incident: Vec::new(),
            edge_len: vec![0.0; edge_count],
            min_suffix: Vec::new(),
            rate_suffix: Vec::new(),
            len_suffix: Vec::new(),
            out_min: vec![0.0; node_count],
            in_min: vec![0.0; node_count],
        }
    }
}

/// The caching evaluation engine shared by the mapper's swap search and
/// the exploration flow. Holds the [`RouteTable`] plus every
/// placement-independent quantity of the cost model: sorted
/// commodities, per-switch areas and bit energies, the constant design
/// area and channel counts.
#[derive(Debug)]
pub struct EvalEngine<'a> {
    g: &'a TopologyGraph,
    app: &'a CoreGraph,
    table: &'a RouteTable,
    routing: RoutingFunction,
    constraints: Constraints,
    commodities: Vec<Commodity>,
    /// Node-indexed switch block areas (zero for non-switches).
    switch_areas: Vec<f64>,
    /// Node-indexed bit-traversal energies (J/bit).
    switch_energy: Vec<f64>,
    switch_area_total: f64,
    design_area: f64,
    /// Edge-indexed bandwidth capacities (min-max splitting hot path).
    edge_capacity: Vec<f64>,
    /// Edge-indexed "is a network link" flags (bound tracking).
    net_edge: Vec<bool>,
    /// Core-indexed lists of incident commodity indices (into
    /// `commodities`) — the commodities a swap of that core re-routes.
    core_commodities: Vec<Vec<u32>>,
    /// Node-indexed switch power rate in mW per MB/s of traffic
    /// (`switch_power_from_energy(energy, 1.0)`; zero for non-switches).
    switch_rate: Vec<f64>,
    /// Lazily built per-source rows of the minimum switch-power rate
    /// any *walk* between two mappable vertices can accrue
    /// (node-weighted Dijkstra over the switch rates; see
    /// [`EvalEngine::rate_walk_row`]). Row-lazy so MinDelay searches
    /// never build any of it.
    rate_walk: Vec<OnceLock<Box<[f64]>>>,
    /// Node index → index of its ingress switch (`u32::MAX` =
    /// unknown), cached for the length-aware MinPower floor: the first
    /// network link of any route departs the source's ingress switch.
    ingress: Vec<u32>,
    /// Node index → index of its egress switch (`u32::MAX` = unknown):
    /// the last network link of any route enters the destination's
    /// egress switch.
    egress: Vec<u32>,
    /// Link power per MB/s per mm of length.
    link_rate_mm: f64,
    /// Total commodity bandwidth (the avg-hops denominator).
    total_bw_all: f64,
    switch_count: usize,
    link_count: usize,
    lib: AreaPowerLibrary,
}

impl<'a> EvalEngine<'a> {
    /// Creates an engine for `app` on `g`. `table` must already be
    /// [prepared](RouteTable::prepare) for `routing`; `lib` is used to
    /// warm the switch area/energy caches and cloned for link power.
    ///
    /// # Panics
    ///
    /// Panics if `table` does not match `g` or is not prepared for
    /// `routing`.
    pub fn new(
        g: &'a TopologyGraph,
        app: &'a CoreGraph,
        table: &'a RouteTable,
        routing: RoutingFunction,
        lib: &mut AreaPowerLibrary,
        constraints: &Constraints,
    ) -> Self {
        assert!(table.matches(g), "route table built for a different graph");
        assert!(
            table.prepared(routing),
            "route table not prepared for {routing}"
        );
        let mut switch_areas = vec![0.0; g.node_count()];
        let mut switch_energy = vec![0.0; g.node_count()];
        let mut switch_area_total = 0.0;
        for (s, inp, outp) in g.switch_radices() {
            let cfg = SwitchConfig::new(inp, outp);
            let area = lib.area(cfg);
            switch_areas[s.index()] = area;
            switch_energy[s.index()] = lib.energy_per_bit(cfg);
            switch_area_total += area;
        }
        let design_area = (switch_area_total + app.total_core_area()) / constraints.utilization;
        let edge_capacity: Vec<f64> = g.edges().map(|(_, e)| e.capacity).collect();
        let net_edge: Vec<bool> = g.edges().map(|(_, e)| e.is_network_link()).collect();
        let commodities = app.commodities();
        let mut core_commodities = vec![Vec::new(); app.core_count()];
        let mut total_bw_all = 0.0f64;
        for (i, c) in commodities.iter().enumerate() {
            core_commodities[c.src.index()].push(i as u32);
            core_commodities[c.dst.index()].push(i as u32);
            total_bw_all += c.bandwidth;
        }
        let switch_rate: Vec<f64> = switch_energy
            .iter()
            .map(|&e| switch_power_from_energy(e, 1.0))
            .collect();
        let mut rate_walk = Vec::new();
        rate_walk.resize_with(table.mappable_nodes().len(), OnceLock::new);
        let mut ingress = vec![u32::MAX; g.node_count()];
        let mut egress = vec![u32::MAX; g.node_count()];
        for &n in table.mappable_nodes() {
            if let Ok(s) = g.ingress_switch(n) {
                ingress[n.index()] = s.index() as u32;
            }
            if let Ok(s) = g.egress_switch(n) {
                egress[n.index()] = s.index() as u32;
            }
        }
        EvalEngine {
            g,
            app,
            table,
            routing,
            constraints: *constraints,
            commodities,
            switch_areas,
            switch_energy,
            switch_area_total,
            design_area,
            edge_capacity,
            net_edge,
            core_commodities,
            switch_rate,
            rate_walk,
            ingress,
            egress,
            link_rate_mm: lib.link_power(1.0, 1.0),
            total_bw_all,
            switch_count: g.switch_count(),
            link_count: g.network_channel_count() + g.attach_channel_count(),
            lib: lib.clone(),
        }
    }

    /// Fresh scratch buffers sized for this engine's graph.
    pub fn new_scratch(&self) -> EvalScratch {
        EvalScratch::new(self.g.node_count(), self.g.edge_count())
    }

    /// The report's area/aspect feasibility verdict for a floorplan
    /// with `chip_aspect` — one definition serving both
    /// [`EvalEngine::assemble_report`]'s `area_ok` and the bounded
    /// sweep's certain-infeasibility exit.
    fn area_feasible(&self, chip_aspect: f64) -> bool {
        self.constraints
            .max_area_mm2
            .is_none_or(|max| self.design_area <= max)
            && chip_aspect >= self.constraints.min_chip_aspect
            && chip_aspect <= self.constraints.max_chip_aspect
    }

    /// Evaluates `placement` and returns the cost report — bit-identical
    /// to `evaluate(..)?.report`, at a fraction of the cost and (outside
    /// the floorplan solve) without heap allocation.
    ///
    /// # Errors
    ///
    /// Exactly the reference's: [`MappingError::Unroutable`] when a
    /// commodity has no route, [`MappingError::Floorplan`] when the
    /// layout cannot be solved.
    pub fn evaluate_report(
        &self,
        placement: &Placement,
        scratch: &mut EvalScratch,
    ) -> Result<CostReport, MappingError> {
        scratch.link_loads.fill(0.0);
        scratch.switch_traffic.fill(0.0);

        let mut totals = RouteTotals::default();
        for c in &self.commodities {
            let src = placement.node_of(c.src);
            let dst = placement.node_of(c.dst);
            let hops = self.route_cached(src, dst, c.bandwidth, scratch).ok_or(
                MappingError::Unroutable {
                    src: c.src.index(),
                    dst: c.dst.index(),
                },
            )?;
            totals.add(c.bandwidth, hops);
        }

        let layout = layout_blocks(self.g, self.app, placement, &self.switch_areas);
        let fp_timer = crate::timing::floorplan_start();
        let floorplan = layout.placement.floorplan()?;
        crate::timing::floorplan_finish(fp_timer);
        Ok(self.assemble_report(placement, scratch, &layout, &floorplan, totals))
    }

    /// Fig. 5 steps 7–8 on accumulated loads: power, feasibility and
    /// the metric report. Shared verbatim by [`EvalEngine::
    /// evaluate_report`] and the bounded sweep evaluation, so a
    /// candidate that survives its bounds produces a report
    /// bit-identical to the unbounded path's.
    fn assemble_report(
        &self,
        placement: &Placement,
        scratch: &EvalScratch,
        layout: &LayoutBlocks,
        floorplan: &Floorplan,
        totals: RouteTotals,
    ) -> CostReport {
        let g = self.g;
        let mut switch_power_mw = 0.0;
        for s in g.switches() {
            let traffic = scratch.switch_traffic[s.index()];
            if traffic > 0.0 {
                switch_power_mw += switch_power_from_energy(self.switch_energy[s.index()], traffic);
            }
        }

        let mut link_power_mw = 0.0;
        let mut length_sum = 0.0;
        let mut loaded_links = 0usize;
        for (eid, edge) in g.edges() {
            let load = scratch.link_loads[eid.index()];
            if load <= 0.0 || !edge.is_network_link() {
                continue;
            }
            let (Some(a), Some(b)) = (
                layout.block_of_node(placement, edge.src),
                layout.block_of_node(placement, edge.dst),
            ) else {
                continue;
            };
            let length = floorplan.link_length(a, b);
            link_power_mw += self.lib.link_power(load, length);
            length_sum += length;
            loaded_links += 1;
        }

        let bandwidth_ok = g.edges().all(|(eid, edge)| {
            !edge.is_network_link()
                || scratch.link_loads[eid.index()] <= edge.capacity * BANDWIDTH_TOLERANCE
        });
        let chip_aspect = floorplan.chip_aspect();
        let area_ok = self.area_feasible(chip_aspect);

        let avg_hops = if totals.total_bw > 0.0 {
            totals.bw_hops / totals.total_bw
        } else {
            0.0
        };
        let mean_hops = if self.commodities.is_empty() {
            0.0
        } else {
            totals.hops_sum / self.commodities.len() as f64
        };
        let max_link_load = g
            .edges()
            .filter(|(_, e)| e.is_network_link())
            .map(|(eid, _)| scratch.link_loads[eid.index()])
            .fold(0.0, f64::max);

        CostReport {
            avg_hops,
            mean_hops,
            design_area: self.design_area,
            floorplan_area: floorplan.chip_area(),
            switch_area: self.switch_area_total,
            power_mw: switch_power_mw + link_power_mw,
            switch_power_mw,
            link_power_mw,
            max_link_load,
            avg_link_length_mm: if loaded_links > 0 {
                length_sum / loaded_links as f64
            } else {
                0.0
            },
            chip_aspect,
            bandwidth_ok,
            area_ok,
            bandwidth_enforced: self.constraints.enforce_bandwidth,
            switch_count: self.switch_count,
            link_count: self.link_count,
        }
    }

    /// Routes one commodity using the cached per-pair state,
    /// accumulating loads and switch traffic into `scratch`. Returns
    /// the commodity's fraction-weighted switch hops, or `None` when no
    /// route exists (the reference's `route_commodity` `None`).
    fn route_cached(
        &self,
        src: NodeId,
        dst: NodeId,
        bandwidth: f64,
        scratch: &mut EvalScratch,
    ) -> Option<f64> {
        let g = self.g;
        match self.routing {
            RoutingFunction::DimensionOrdered => {
                let entry = self.table.dimension_ordered_route(src, dst);
                let cached = entry.as_ref()?;
                Some(accumulate_cached(cached, 1.0, bandwidth, scratch))
            }
            RoutingFunction::MinPath => {
                let quad = self.table.quadrant_pair(src, dst);
                let EvalScratch {
                    link_loads,
                    quad_mask,
                    dijkstra,
                    path,
                    ..
                } = scratch;
                for n in quad.iter() {
                    quad_mask[n.index()] = true;
                }
                quad_mask[src.index()] = true;
                quad_mask[dst.index()] = true;
                let found = paths::dijkstra_into(
                    g,
                    src,
                    dst,
                    |n| quad_mask[n.index()],
                    |e| HOP_COST + link_loads[e.index()],
                    dijkstra,
                    path,
                );
                for n in quad.iter() {
                    quad_mask[n.index()] = false;
                }
                quad_mask[src.index()] = false;
                quad_mask[dst.index()] = false;
                found?;
                Some(self.accumulate_dynamic(1.0, bandwidth, scratch))
            }
            RoutingFunction::SplitMinPaths => {
                let set = self.table.split_min_paths(src, dst);
                self.accumulate_split(&set, bandwidth, scratch)
            }
            RoutingFunction::SplitAllPaths => {
                let set = self.table.split_all_paths(src, dst);
                self.accumulate_split(&set, bandwidth, scratch)
            }
        }
    }

    /// Min-max water filling over cached candidates — the same chunk
    /// assignment as the reference's `min_max_split`, including its
    /// single-candidate shortcut.
    fn accumulate_split(
        &self,
        candidates: &[CachedPath],
        bandwidth: f64,
        scratch: &mut EvalScratch,
    ) -> Option<f64> {
        match candidates {
            [] => None,
            [only] => Some(accumulate_cached(only, 1.0, bandwidth, scratch)),
            _ => {
                {
                    let EvalScratch {
                        local,
                        chunks,
                        link_loads,
                        ..
                    } = &mut *scratch;
                    // The chunk assignment only ever touches candidate
                    // network edges, so only those entries of the
                    // working copy need refreshing (the reference
                    // copies the whole load vector; same values where
                    // it matters).
                    for cand in candidates {
                        for &e in &cand.net_edges {
                            local[e] = link_loads[e];
                        }
                    }
                    assign_chunks(
                        |e| self.edge_capacity[e],
                        candidates.len(),
                        |i| candidates[i].net_edges.as_slice(),
                        local,
                        bandwidth,
                        chunks,
                    );
                }
                let mut hops = 0.0;
                for (i, cand) in candidates.iter().enumerate() {
                    let n = scratch.chunks[i];
                    if n > 0 {
                        let fraction = n as f64 / SPLIT_CHUNKS as f64;
                        hops += accumulate_cached(cand, fraction, bandwidth, scratch);
                    }
                }
                Some(hops)
            }
        }
    }

    /// Accumulates the freshly found MinPath route held in
    /// `scratch.path`.
    fn accumulate_dynamic(&self, fraction: f64, bandwidth: f64, scratch: &mut EvalScratch) -> f64 {
        let g = self.g;
        let flow = bandwidth * fraction;
        let EvalScratch {
            link_loads,
            switch_traffic,
            path,
            ..
        } = scratch;
        for w in path.windows(2) {
            let e = self
                .table
                .adj
                .edge_between(w[0], w[1])
                .expect("routed paths follow topology edges");
            link_loads[e.index()] += flow;
        }
        let mut switch_hops = 0usize;
        for n in path.iter() {
            if g.node_kind(*n) == NodeKind::Switch {
                switch_traffic[n.index()] += flow;
                switch_hops += 1;
            }
        }
        fraction * switch_hops as f64
    }

    /// The bandwidth-independent optimistic hop mass of a mappable
    /// pair: the minimum switch-hop count of any route between the
    /// vertices (any routing function's path crosses at least that
    /// many switches).
    ///
    /// `None` marks an unreachable pair — every routing function errors
    /// on it. The raw hop value uses saturating arithmetic and widens
    /// to `f64` before any summation, so the [`UNREACHABLE_HOPS`]
    /// sentinel can never wrap into a small, attractive-looking cost.
    fn pair_min_switches(&self, a: NodeId, b: NodeId) -> Option<f64> {
        let h = self.table.hops(a, b);
        if h == UNREACHABLE_HOPS {
            return None;
        }
        // A minimum path has h+1 vertices; every intermediate is a
        // switch (core ports are degree-1 leaves), and each endpoint
        // counts iff it is itself a switch (direct topologies map cores
        // onto switch vertices, indirect ones onto ports).
        let non_switch_ends = (self.g.node_kind(a) != NodeKind::Switch) as u32
            + (self.g.node_kind(b) != NodeKind::Switch) as u32;
        Some(h.saturating_add(1).saturating_sub(non_switch_ends) as f64)
    }

    /// A lower bound on the switch-power rate any route of a mappable
    /// pair can accrue, from the per-source rate-walk row (built on
    /// first touch). Only the MinPower bound consumes this; MinDelay
    /// searches never pay for a single rate Dijkstra.
    fn pair_rate(&self, a: NodeId, b: NodeId) -> f64 {
        let si = self.table.midx[a.index()] as usize;
        let di = self.table.midx[b.index()] as usize;
        self.rate_walk_row(si)[di]
    }

    /// One source's minimum switch-power rate row (built on first
    /// use): entry `di` is the smallest Σ of node switch rates any
    /// *walk* from mappable source `si` to mappable destination `di`
    /// can accrue — a node-weighted Dijkstra over the switch rates.
    /// Every realised route is a walk, so this is a sound
    /// per-commodity power floor for every routing function — and on
    /// min-hop-routed functions it is nearly exact. Non-switch
    /// vertices weigh zero, so the value matches the report's
    /// switch-power accounting for both direct topologies (cores on
    /// switch vertices) and indirect ones (cores on ports).
    fn rate_walk_row(&self, si: usize) -> &[f64] {
        self.rate_walk[si].get_or_init(|| {
            use std::cmp::Reverse;
            use std::collections::BinaryHeap;
            let g = self.g;
            let mappable = self.table.mappable_nodes();
            let s = mappable[si];
            let mut dist = vec![f64::INFINITY; g.node_count()];
            let mut heap: BinaryHeap<Reverse<(TotalF64, usize)>> = BinaryHeap::new();
            dist[s.index()] = self.switch_rate[s.index()];
            heap.push(Reverse((TotalF64(dist[s.index()]), s.index())));
            while let Some(Reverse((TotalF64(d), u))) = heap.pop() {
                if d > dist[u] {
                    continue;
                }
                for v in g.successors(NodeId(u)) {
                    let next = d + self.switch_rate[v.index()];
                    if next < dist[v.index()] {
                        dist[v.index()] = next;
                        heap.push(Reverse((TotalF64(next), v.index())));
                    }
                }
            }
            mappable.iter().map(|d| dist[d.index()]).collect()
        })
    }

    /// Builds the persistent base-placement state one delta-sweep pass
    /// works against: link-load and switch-traffic accumulators, the
    /// base switch power, the bandwidth-weighted hop mass, and the
    /// optimistic mass totals the pre-bound differentiates. `None` if
    /// the placement is unroutable (its report could then not exist).
    fn sweep_base(
        &self,
        placement: &Placement,
        objective: Objective,
        scratch: &mut EvalScratch,
    ) -> Option<SweepBase> {
        scratch.link_loads.fill(0.0);
        scratch.switch_traffic.fill(0.0);
        let mut bw_hops = 0.0f64;
        let mut min_mass = 0.0f64;
        let mut rate_mass = 0.0f64;
        for c in &self.commodities {
            let src = placement.node_of(c.src);
            let dst = placement.node_of(c.dst);
            let hops = self.route_cached(src, dst, c.bandwidth, scratch)?;
            bw_hops += c.bandwidth * hops;
            let m = self.pair_min_switches(src, dst)?;
            min_mass += c.bandwidth * m;
            // Only the MinPower pre-bound reads the rate mass; skipping
            // it here keeps MinDelay passes free of rate Dijkstras.
            if objective == Objective::MinPower {
                rate_mass += c.bandwidth * self.pair_rate(src, dst);
            }
        }
        let mut switch_power = 0.0;
        for s in self.g.switches() {
            let traffic = scratch.switch_traffic[s.index()];
            if traffic > 0.0 {
                switch_power += switch_power_from_energy(self.switch_energy[s.index()], traffic);
            }
        }
        Some(SweepBase {
            bw_hops,
            min_mass,
            rate_mass,
            switch_power,
            link_loads: scratch.link_loads.clone(),
        })
    }

    /// Scores one candidate swap against the pass incumbent: pre-bound,
    /// then (for dimension-ordered routing) the exact incremental
    /// delta, then — only for survivors — the bounded full evaluation.
    fn score_swap(
        &self,
        local: &mut Placement,
        a: NodeId,
        b: NodeId,
        ctx: &PassCtx<'_>,
        scratch: &mut EvalScratch,
    ) -> SwapOutcome {
        let PassCtx {
            base,
            inc,
            objective,
        } = *ctx;
        let u = local.core_at(a);
        let v = local.core_at(b);
        if u.is_none() && v.is_none() {
            return SwapOutcome::NotEvaluated;
        }
        // The commodities the swap re-routes: everything incident to
        // either occupant (a commodity between them appears in both
        // lists and is taken once).
        scratch.incident.clear();
        if let Some(u) = u {
            scratch
                .incident
                .extend_from_slice(&self.core_commodities[u.index()]);
        }
        if let Some(v) = v {
            for &ci in &self.core_commodities[v.index()] {
                let c = &self.commodities[ci as usize];
                if Some(c.src) == u || Some(c.dst) == u {
                    continue;
                }
                scratch.incident.push(ci);
            }
        }

        // Pre-bound: subtract the incident commodities' optimistic
        // masses under the base endpoints, re-add them under the
        // swapped endpoints — O(deg) work, no routing.
        let swapped = |n: NodeId| {
            if n == a {
                b
            } else if n == b {
                a
            } else {
                n
            }
        };
        // Only the delay and power objectives have an O(deg) mass
        // bound, and only against a feasible incumbent; otherwise the
        // loop is skipped entirely (unreachable new pairs are then
        // caught by the delta/bounded evaluation instead — with the
        // identical skip outcome).
        let pre_bound = inc.feasible
            && matches!(objective, Objective::MinDelay | Objective::MinPower)
            && self.total_bw_all > 0.0;
        if pre_bound {
            let mut d_mass = 0.0f64;
            for &ci in &scratch.incident {
                let c = &self.commodities[ci as usize];
                let (os, od) = (local.node_of(c.src), local.node_of(c.dst));
                let (ns, nd) = (swapped(os), swapped(od));
                let om = self
                    .pair_min_switches(os, od)
                    .expect("base placement routed, so its pairs are reachable");
                let Some(nm) = self.pair_min_switches(ns, nd) else {
                    // Unreachable new pair: the evaluation would error,
                    // and the search skips errored candidates.
                    return SwapOutcome::NotEvaluated;
                };
                d_mass += match objective {
                    Objective::MinDelay => c.bandwidth * (nm - om),
                    _ => c.bandwidth * (self.pair_rate(ns, nd) - self.pair_rate(os, od)),
                };
            }
            let lower = match objective {
                Objective::MinDelay => (base.min_mass + d_mass) / self.total_bw_all,
                _ => base.rate_mass + d_mass,
            };
            if clearly_above(lower, inc.cost) {
                return SwapOutcome::NotEvaluated;
            }
        }

        // Placement-independent route sets: the exact incremental delta
        // (subtract the incident commodities' cached paths, re-add the
        // re-routed ones) scores the swap without a full evaluation.
        if self.routing == RoutingFunction::DimensionOrdered {
            match self.dimension_ordered_delta(local, &swapped, ctx, scratch) {
                DeltaVerdict::WouldError | DeltaVerdict::Prune => return SwapOutcome::NotEvaluated,
                DeltaVerdict::Evaluate => {}
            }
        }

        // Survivor: full evaluation (identical arithmetic to the
        // exhaustive sweep) with the mid-evaluation early-exit bound.
        let swapped_ok = local.swap_nodes(a, b);
        debug_assert!(swapped_ok, "occupancy was checked above");
        let report = self.evaluate_bounded(local, scratch, &inc, objective);
        local.swap_nodes(a, b);
        match report {
            Some(r) => SwapOutcome::Report(r),
            None => SwapOutcome::NotEvaluated,
        }
    }

    /// The exact swap delta for dimension-ordered routing: every pair's
    /// route is a cached enumerated path, so the candidate's loads,
    /// switch power and hop mass follow from the base accumulators by
    /// subtracting the incident commodities' old paths and re-adding
    /// their new ones. The sparse deltas live in `scratch` and are
    /// zeroed exactly (no float-undo drift) before returning.
    fn dimension_ordered_delta(
        &self,
        local: &Placement,
        swapped: &impl Fn(NodeId) -> NodeId,
        ctx: &PassCtx<'_>,
        scratch: &mut EvalScratch,
    ) -> DeltaVerdict {
        let PassCtx {
            base,
            inc,
            objective,
        } = *ctx;
        let EvalScratch {
            incident,
            delta_loads,
            touched_edges,
            delta_traffic,
            touched_nodes,
            ..
        } = scratch;
        debug_assert!(touched_edges.is_empty() && touched_nodes.is_empty());
        let mut d_bw_hops = 0.0f64;
        let mut routable = true;
        'commodities: for &ci in incident.iter() {
            let c = &self.commodities[ci as usize];
            let (os, od) = (local.node_of(c.src), local.node_of(c.dst));
            let old_entry = self.table.dimension_ordered_route(os, od);
            let old = old_entry.as_ref().expect("base placement routed");
            let new_entry = self.table.dimension_ordered_route(swapped(os), swapped(od));
            let Some(new) = new_entry.as_ref() else {
                routable = false;
                break 'commodities;
            };
            d_bw_hops +=
                c.bandwidth * (new.switch_nodes.len() as f64 - old.switch_nodes.len() as f64);
            for (path, sign) in [(old, -1.0f64), (new, 1.0f64)] {
                let flow = sign * c.bandwidth;
                for e in &path.edges {
                    touched_edges.push(e.index());
                    delta_loads[e.index()] += flow;
                }
                for n in &path.switch_nodes {
                    touched_nodes.push(n.index());
                    delta_traffic[n.index()] += flow;
                }
            }
        }
        // Collapse the deltas (processing each touched index once and
        // resetting it to exactly zero) into the candidate estimates.
        let mut est_load = f64::NEG_INFINITY;
        let mut over = false;
        for &ei in touched_edges.iter() {
            let d = delta_loads[ei];
            if d == 0.0 {
                continue;
            }
            delta_loads[ei] = 0.0;
            if self.net_edge[ei] {
                let load = base.link_loads[ei] + d;
                if load > est_load {
                    est_load = load;
                }
                // The estimate can drift a few ulps from the true load,
                // so only a margin-clear overload counts as certain.
                over |= load > self.edge_capacity[ei] * BANDWIDTH_TOLERANCE * (1.0 + PRUNE_MARGIN);
            }
        }
        touched_edges.clear();
        let mut d_switch_power = 0.0f64;
        for &ni in touched_nodes.iter() {
            let d = delta_traffic[ni];
            if d == 0.0 {
                continue;
            }
            delta_traffic[ni] = 0.0;
            d_switch_power += self.switch_rate[ni] * d;
        }
        touched_nodes.clear();
        if !routable {
            return DeltaVerdict::WouldError;
        }

        if inc.feasible {
            if over && self.constraints.enforce_bandwidth {
                return DeltaVerdict::Prune;
            }
            let lower = match objective {
                Objective::MinDelay if self.total_bw_all > 0.0 => {
                    (base.bw_hops + d_bw_hops) / self.total_bw_all
                }
                // Switch power alone already lower-bounds total power.
                Objective::MinPower => base.switch_power + d_switch_power,
                Objective::MinBandwidth => est_load,
                Objective::MinArea | Objective::MinDelay => {
                    // MinArea ties on the constant design area; the
                    // max-load tie-break decides.
                    if objective == Objective::MinArea
                        && est_load > f64::NEG_INFINITY
                        && clearly_above(est_load, inc.load)
                    {
                        return DeltaVerdict::Prune;
                    }
                    f64::NEG_INFINITY
                }
            };
            if lower > f64::NEG_INFINITY && clearly_above(lower, inc.cost) {
                return DeltaVerdict::Prune;
            }
        } else if over
            && self.constraints.enforce_bandwidth
            && est_load > f64::NEG_INFINITY
            && clearly_above(est_load, inc.load)
        {
            return DeltaVerdict::Prune;
        }
        DeltaVerdict::Evaluate
    }

    /// Full candidate evaluation with the early-exit bound: identical
    /// accumulation arithmetic to [`EvalEngine::evaluate_report`] (a
    /// completed evaluation's report is bit-identical), but the
    /// floorplan is solved first and after every routed commodity the
    /// partial cost plus an optimistic suffix is checked against the
    /// incumbent. `None` means the candidate was abandoned as provably
    /// unable to win, or errored (the search skips it either way).
    fn evaluate_bounded(
        &self,
        placement: &Placement,
        scratch: &mut EvalScratch,
        inc: &Incumbent,
        objective: Objective,
    ) -> Option<CostReport> {
        let g = self.g;
        let layout = layout_blocks(g, self.app, placement, &self.switch_areas);
        let fp_timer = crate::timing::floorplan_start();
        let floorplan = layout.placement.floorplan().ok()?;
        crate::timing::floorplan_finish(fp_timer);
        let chip_aspect = floorplan.chip_aspect();
        if inc.feasible && !self.area_feasible(chip_aspect) {
            // Certainly infeasible against a feasible incumbent.
            return None;
        }

        // Candidate link lengths (zero for edges the report's power
        // loop skips) and the shortest powered length, for the
        // link-power share of the suffix bound.
        let mut len_min = f64::INFINITY;
        for (eid, edge) in g.edges() {
            let mut len = 0.0;
            if edge.is_network_link() {
                if let (Some(x), Some(y)) = (
                    layout.block_of_node(placement, edge.src),
                    layout.block_of_node(placement, edge.dst),
                ) {
                    len = floorplan.link_length(x, y);
                    if len < len_min {
                        len_min = len;
                    }
                }
            }
            scratch.edge_len[eid.index()] = len;
        }
        if !len_min.is_finite() {
            len_min = 0.0;
        }

        // Optimistic suffix masses in routing order: after commodity i,
        // the unrouted remainder contributes at least `min_suffix[i+1]`
        // bandwidth-weighted switch hops, `rate_suffix[i+1]` mW of
        // switch power and `len_suffix[i+1]` bandwidth-weighted mm of
        // network-link length. Only the delay and power objectives
        // consume them (MinArea/MinBandwidth prune on the tracked max
        // load alone), so the other objectives skip the build — and
        // MinDelay skips the power-only arrays.
        let n = self.commodities.len();
        let suffix_bound = inc.feasible
            && matches!(objective, Objective::MinDelay | Objective::MinPower)
            && self.total_bw_all > 0.0;
        let power_bound = suffix_bound && objective == Objective::MinPower;
        if power_bound {
            // Per-node minimum powered link lengths under *this*
            // candidate floorplan: any route's first network link
            // departs the source's ingress switch and its last enters
            // the destination's egress switch, so those two links cost
            // at least `out_min[ingress]` / `in_min[egress]` — a
            // per-commodity floor strictly tighter than `len_min` per
            // link. Unpowered (block-less) links keep length 0, which
            // only loosens the floor; nodes without network links fall
            // back to `len_min`.
            scratch.out_min.fill(f64::INFINITY);
            scratch.in_min.fill(f64::INFINITY);
            for (eid, edge) in g.edges() {
                if !edge.is_network_link() {
                    continue;
                }
                let len = scratch.edge_len[eid.index()];
                let (s, d) = (edge.src.index(), edge.dst.index());
                if len < scratch.out_min[s] {
                    scratch.out_min[s] = len;
                }
                if len < scratch.in_min[d] {
                    scratch.in_min[d] = len;
                }
            }
            for slot in scratch.out_min.iter_mut().chain(scratch.in_min.iter_mut()) {
                if !slot.is_finite() {
                    *slot = len_min;
                }
            }
        }
        if suffix_bound {
            scratch.min_suffix.clear();
            scratch.min_suffix.resize(n + 1, 0.0);
            scratch.rate_suffix.clear();
            scratch.rate_suffix.resize(n + 1, 0.0);
            scratch.len_suffix.clear();
            scratch.len_suffix.resize(n + 1, 0.0);
            for i in (0..n).rev() {
                let c = &self.commodities[i];
                let (src, dst) = (placement.node_of(c.src), placement.node_of(c.dst));
                let m = self.pair_min_switches(src, dst)?;
                scratch.min_suffix[i] = scratch.min_suffix[i + 1] + c.bandwidth * m;
                if power_bound {
                    scratch.rate_suffix[i] =
                        scratch.rate_suffix[i + 1] + c.bandwidth * self.pair_rate(src, dst);
                    // A route crossing `m` switches crosses at least
                    // `m - 1` network links: the first departs the
                    // ingress switch, the last enters the egress
                    // switch, intermediates cost at least `len_min`.
                    let links = m - 1.0;
                    let floor_len = if links <= 0.0 {
                        0.0
                    } else {
                        let first = self.ingress[src.index()];
                        let last = self.egress[dst.index()];
                        let out = if first == u32::MAX {
                            len_min
                        } else {
                            scratch.out_min[first as usize]
                        };
                        let inl = if last == u32::MAX {
                            len_min
                        } else {
                            scratch.in_min[last as usize]
                        };
                        if links <= 1.0 {
                            out.max(inl)
                        } else {
                            out + inl + (links - 2.0) * len_min
                        }
                    };
                    scratch.len_suffix[i] = scratch.len_suffix[i + 1] + c.bandwidth * floor_len;
                }
            }
            // The whole-candidate floor is already known before routing
            // a single commodity — abandon here when even it cannot
            // beat the incumbent.
            let lower = if objective == Objective::MinDelay {
                scratch.min_suffix[0] / self.total_bw_all
            } else {
                scratch.rate_suffix[0] + self.link_rate_mm * scratch.len_suffix[0]
            };
            if clearly_above(lower, inc.cost) {
                return None;
            }
        }

        scratch.link_loads.fill(0.0);
        scratch.switch_traffic.fill(0.0);
        let mut totals = RouteTotals::default();
        let mut track = BoundTracker::default();
        for i in 0..n {
            let c = self.commodities[i];
            let src = placement.node_of(c.src);
            let dst = placement.node_of(c.dst);
            let hops = self.route_cached(src, dst, c.bandwidth, scratch)?;
            totals.add(c.bandwidth, hops);
            self.track_commodity(src, dst, c.bandwidth, scratch, &mut track);
            let certainly_infeasible = track.over && self.constraints.enforce_bandwidth;
            if inc.feasible {
                if certainly_infeasible {
                    return None;
                }
                match objective {
                    // MinArea: cost ties on the engine-constant design
                    // area; the max-load tie-break decides.
                    Objective::MinArea
                        if track.max_load > f64::NEG_INFINITY
                            && clearly_above(track.max_load, inc.load) =>
                    {
                        return None;
                    }
                    Objective::MinBandwidth if clearly_above(track.max_load, inc.cost) => {
                        return None;
                    }
                    Objective::MinDelay | Objective::MinPower if suffix_bound => {
                        let lower = if objective == Objective::MinDelay {
                            (totals.bw_hops + scratch.min_suffix[i + 1]) / self.total_bw_all
                        } else {
                            track.switch_power
                                + track.link_power
                                + scratch.rate_suffix[i + 1]
                                + self.link_rate_mm * scratch.len_suffix[i + 1]
                        };
                        if clearly_above(lower, inc.cost) {
                            return None;
                        }
                    }
                    _ => {}
                }
            } else if certainly_infeasible
                && track.max_load > f64::NEG_INFINITY
                && clearly_above(track.max_load, inc.load)
            {
                return None;
            }
        }
        Some(self.assemble_report(placement, scratch, &layout, &floorplan, totals))
    }

    /// Updates the bound tracker with the commodity just routed into
    /// `scratch` — re-walking the realised routes (the accumulators
    /// themselves are untouched, so the authoritative sums cannot
    /// drift).
    fn track_commodity(
        &self,
        src: NodeId,
        dst: NodeId,
        bandwidth: f64,
        scratch: &EvalScratch,
        track: &mut BoundTracker,
    ) {
        match self.routing {
            RoutingFunction::DimensionOrdered => {
                let entry = self.table.dimension_ordered_route(src, dst);
                let path = entry.as_ref().expect("just routed");
                self.track_cached(path, 1.0, bandwidth, scratch, track);
            }
            RoutingFunction::MinPath => {
                for w in scratch.path.windows(2) {
                    let e = self
                        .table
                        .adj
                        .edge_between(w[0], w[1])
                        .expect("routed paths follow topology edges");
                    self.track_edge(e.index(), bandwidth, scratch, track);
                }
                for node in &scratch.path {
                    if self.g.node_kind(*node) == NodeKind::Switch {
                        track.switch_power += bandwidth * self.switch_rate[node.index()];
                    }
                }
            }
            RoutingFunction::SplitMinPaths | RoutingFunction::SplitAllPaths => {
                let candidates = if self.routing == RoutingFunction::SplitMinPaths {
                    self.table.split_min_paths(src, dst)
                } else {
                    self.table.split_all_paths(src, dst)
                };
                match candidates.as_slice() {
                    [] => unreachable!("just routed"),
                    [only] => self.track_cached(only, 1.0, bandwidth, scratch, track),
                    _ => {
                        for (i, cand) in candidates.iter().enumerate() {
                            let chunks = scratch.chunks[i];
                            if chunks > 0 {
                                let fraction = chunks as f64 / SPLIT_CHUNKS as f64;
                                self.track_cached(cand, fraction, bandwidth, scratch, track);
                            }
                        }
                    }
                }
            }
        }
    }

    fn track_cached(
        &self,
        path: &CachedPath,
        fraction: f64,
        bandwidth: f64,
        scratch: &EvalScratch,
        track: &mut BoundTracker,
    ) {
        let flow = bandwidth * fraction;
        for e in &path.edges {
            self.track_edge(e.index(), flow, scratch, track);
        }
        for node in &path.switch_nodes {
            track.switch_power += flow * self.switch_rate[node.index()];
        }
    }

    /// Folds one edge the routed commodity crossed into the tracker.
    /// Loads only ever grow during accumulation, so the partial values
    /// read here are true lower bounds of the final ones.
    fn track_edge(&self, edge: usize, flow: f64, scratch: &EvalScratch, track: &mut BoundTracker) {
        if self.net_edge[edge] {
            let load = scratch.link_loads[edge];
            if load > track.max_load {
                track.max_load = load;
            }
            track.over |= load > self.edge_capacity[edge] * BANDWIDTH_TOLERANCE;
        }
        track.link_power += flow * self.link_rate_mm * scratch.edge_len[edge];
    }

    /// The delta-pruned phase-3 pass: scores every `(a, b)` swap of
    /// `base_placement` against `pairs` and returns the pass winner
    /// (the swap the exhaustive scan would select, with a bit-identical
    /// report) plus the number of candidates that were fully evaluated.
    /// `on_report` observes each fully evaluated candidate's report in
    /// pair order.
    ///
    /// The sweep runs in fixed-size blocks: each block's candidates are
    /// scored (in parallel, positionally reduced) against the incumbent
    /// frozen at the block boundary, then the incumbent advances. A
    /// frozen incumbent only prunes *less* than a live one, so the
    /// winner is unaffected — and the evaluation count becomes a pure
    /// function of the inputs, independent of the worker count.
    pub fn sweep_search(
        &self,
        base_placement: &Placement,
        base_report: &CostReport,
        pairs: &[(NodeId, NodeId)],
        objective: Objective,
        on_report: impl FnMut(&CostReport),
    ) -> (Option<(usize, CostReport)>, usize) {
        self.sweep_search_with_workers(
            base_placement,
            base_report,
            pairs,
            objective,
            worker_count(pairs.len()),
            on_report,
        )
    }

    /// [`EvalEngine::sweep_search`] with an explicit worker count — how
    /// tests exercise the chunked multi-worker path on single-CPU
    /// machines and assert the winner, report and evaluation count are
    /// worker-count invariant.
    pub fn sweep_search_with_workers(
        &self,
        base_placement: &Placement,
        base_report: &CostReport,
        pairs: &[(NodeId, NodeId)],
        objective: Objective,
        workers: usize,
        mut on_report: impl FnMut(&CostReport),
    ) -> (Option<(usize, CostReport)>, usize) {
        const BLOCK: usize = 512;
        let mut scratch = self.new_scratch();
        let Some(base) = self.sweep_base(base_placement, objective, &mut scratch) else {
            return (None, 0);
        };
        let base = &base;
        let mut local = base_placement.clone();
        let mut best: Option<(usize, CostReport)> = None;
        let mut evaluated = 0usize;
        for (block_idx, block) in pairs.chunks(BLOCK).enumerate() {
            let ctx = PassCtx {
                base,
                inc: Incumbent::of(best.as_ref().map_or(base_report, |(_, r)| r), objective),
                objective,
            };
            let ctx = &ctx;
            let outcomes: Vec<SwapOutcome> = if workers <= 1 || block.len() < 2 * workers {
                block
                    .iter()
                    .map(|&(a, b)| self.score_swap(&mut local, a, b, ctx, &mut scratch))
                    .collect()
            } else {
                let chunk = block.len().div_ceil(workers);
                let mut out = Vec::with_capacity(block.len());
                std::thread::scope(|s| {
                    let handles: Vec<_> = block
                        .chunks(chunk)
                        .map(|chunk_pairs| {
                            s.spawn(move || {
                                let mut scratch = self.new_scratch();
                                let mut local = base_placement.clone();
                                chunk_pairs
                                    .iter()
                                    .map(|&(a, b)| {
                                        self.score_swap(&mut local, a, b, ctx, &mut scratch)
                                    })
                                    .collect::<Vec<_>>()
                            })
                        })
                        .collect();
                    for h in handles {
                        out.extend(h.join().expect("swap-sweep worker panicked"));
                    }
                });
                out
            };
            for (offset, outcome) in outcomes.into_iter().enumerate() {
                let SwapOutcome::Report(report) = outcome else {
                    continue;
                };
                evaluated += 1;
                on_report(&report);
                let improves_on = best.as_ref().map_or(base_report, |(_, r)| r);
                if report.better_than(improves_on, objective) {
                    best = Some((block_idx * BLOCK + offset, report));
                }
            }
        }
        (best, evaluated)
    }

    /// Evaluates every `(a, b)` swap of `base` and returns one report
    /// slot per pair, in pair order. `None` marks pairs the search
    /// skips: both vertices empty, or an evaluation error.
    ///
    /// Large sweeps are partitioned across `std::thread::scope` workers,
    /// each with its own scratch and placement copy; because the output
    /// is positional, the reduction the mapper runs over it is
    /// bit-identical to a sequential scan regardless of worker count.
    pub fn sweep_reports(
        &self,
        base: &Placement,
        pairs: &[(NodeId, NodeId)],
    ) -> Vec<Option<CostReport>> {
        self.sweep_reports_with_workers(base, pairs, worker_count(pairs.len()))
    }

    /// [`EvalEngine::sweep_reports`] with an explicit worker count —
    /// this is how tests exercise the chunked multi-worker path on
    /// single-CPU machines and assert it agrees with the sequential
    /// scan.
    pub fn sweep_reports_with_workers(
        &self,
        base: &Placement,
        pairs: &[(NodeId, NodeId)],
        workers: usize,
    ) -> Vec<Option<CostReport>> {
        if workers <= 1 || pairs.is_empty() {
            let mut scratch = self.new_scratch();
            let mut local = base.clone();
            return pairs
                .iter()
                .map(|&(a, b)| self.swap_report(&mut local, a, b, &mut scratch))
                .collect();
        }
        let chunk = pairs.len().div_ceil(workers);
        let mut out = Vec::with_capacity(pairs.len());
        std::thread::scope(|s| {
            let handles: Vec<_> = pairs
                .chunks(chunk)
                .map(|chunk_pairs| {
                    s.spawn(move || {
                        let mut scratch = self.new_scratch();
                        let mut local = base.clone();
                        chunk_pairs
                            .iter()
                            .map(|&(a, b)| self.swap_report(&mut local, a, b, &mut scratch))
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            for h in handles {
                out.extend(h.join().expect("swap-sweep worker panicked"));
            }
        });
        out
    }

    /// Applies the swap, evaluates, and restores `local` (swapping the
    /// same pair twice is the identity).
    fn swap_report(
        &self,
        local: &mut Placement,
        a: NodeId,
        b: NodeId,
        scratch: &mut EvalScratch,
    ) -> Option<CostReport> {
        if !local.swap_nodes(a, b) {
            return None;
        }
        let report = self.evaluate_report(local, scratch).ok();
        local.swap_nodes(a, b);
        report
    }
}

/// Running totals of the routing loop (one `add` per commodity, in
/// routing order — the same three float ops the pre-refactor loop
/// performed, so the assembled averages are bit-identical).
#[derive(Debug, Default, Clone, Copy)]
struct RouteTotals {
    total_bw: f64,
    bw_hops: f64,
    hops_sum: f64,
}

impl RouteTotals {
    #[inline]
    fn add(&mut self, bandwidth: f64, hops: f64) {
        self.total_bw += bandwidth;
        self.bw_hops += bandwidth * hops;
        self.hops_sum += hops;
    }
}

/// The rank components of the pass incumbent a candidate must beat
/// (from [`CostReport::rank`]'s fields, pre-extracted for the bounds).
#[derive(Debug, Clone, Copy)]
struct Incumbent {
    feasible: bool,
    cost: f64,
    load: f64,
}

impl Incumbent {
    fn of(report: &CostReport, objective: Objective) -> Self {
        Incumbent {
            feasible: report.feasible(),
            cost: report.cost(objective),
            load: report.max_link_load,
        }
    }
}

/// Everything a block of the delta sweep scores its candidates
/// against: the pass base state and the block-frozen incumbent rank.
#[derive(Clone, Copy)]
struct PassCtx<'a> {
    base: &'a SweepBase,
    inc: Incumbent,
    objective: Objective,
}

/// Persistent accumulators of the delta sweep's base placement — built
/// once per pass, shared read-only by every candidate's delta.
#[derive(Debug)]
struct SweepBase {
    /// Bandwidth-weighted switch hops of the base placement.
    bw_hops: f64,
    /// Σ bandwidth × minimum switch hops (pre-bound numerator).
    min_mass: f64,
    /// Σ bandwidth × optimistic switch power rate (power pre-bound).
    rate_mass: f64,
    /// Base switch power in mW.
    switch_power: f64,
    /// Per-edge link loads of the base placement.
    link_loads: Vec<f64>,
}

/// Partial-cost tracker of one bounded evaluation. All fields are
/// monotone under further routing, so comparing them against the
/// incumbent mid-evaluation is sound.
#[derive(Debug)]
struct BoundTracker {
    switch_power: f64,
    link_power: f64,
    max_load: f64,
    over: bool,
}

impl Default for BoundTracker {
    fn default() -> Self {
        BoundTracker {
            switch_power: 0.0,
            link_power: 0.0,
            max_load: f64::NEG_INFINITY,
            over: false,
        }
    }
}

/// Total-order f64 wrapper for the rate-walk Dijkstra heap.
#[derive(PartialEq)]
struct TotalF64(f64);

impl Eq for TotalF64 {}

impl PartialOrd for TotalF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for TotalF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// What the delta scorer decided about a candidate swap.
enum DeltaVerdict {
    /// A re-routed pair is unroutable — the evaluation would error.
    WouldError,
    /// Provably unable to beat the incumbent.
    Prune,
    /// Might win: run the (bounded) full evaluation.
    Evaluate,
}

/// One scored swap of the delta sweep.
enum SwapOutcome {
    /// Skipped, pruned or errored — not a candidate for the pass win.
    NotEvaluated,
    /// Fully evaluated (bit-identical to the exhaustive sweep's report
    /// for this swap).
    Report(CostReport),
}

/// How many sweep workers to spawn for `pairs` candidate swaps: one per
/// core, but never so many that a worker gets a trivial share (thread
/// spawn would dominate), and always 1 for tiny sweeps.
fn worker_count(pairs: usize) -> usize {
    const MIN_PAIRS_PER_WORKER: usize = 8;
    let cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    cpus.min(pairs / MIN_PAIRS_PER_WORKER).max(1)
}

/// Adds one cached path's flow onto the load and switch-traffic
/// accumulators, mirroring the reference's per-path loop order.
fn accumulate_cached(
    cached: &CachedPath,
    fraction: f64,
    bandwidth: f64,
    scratch: &mut EvalScratch,
) -> f64 {
    let flow = bandwidth * fraction;
    for e in &cached.edges {
        scratch.link_loads[e.index()] += flow;
    }
    for n in &cached.switch_nodes {
        scratch.switch_traffic[n.index()] += flow;
    }
    fraction * cached.switch_nodes.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{evaluate, Mapper, MapperConfig, Objective};
    use sunmap_power::Technology;
    use sunmap_topology::builders;
    use sunmap_traffic::benchmarks;

    fn engine_fixture(
        g: &TopologyGraph,
        routing: RoutingFunction,
    ) -> (RouteTable, AreaPowerLibrary, Constraints) {
        let mut table = RouteTable::new(g);
        table.prepare(g, routing);
        (
            table,
            AreaPowerLibrary::new(Technology::um_0_10()),
            Constraints::default(),
        )
    }

    #[test]
    fn multi_worker_sweep_equals_sequential_sweep() {
        // The CI container is single-CPU, so the chunked thread::scope
        // path never runs through worker_count(); force it here and
        // assert positional agreement with the sequential scan for
        // every worker count that produces a different chunking.
        let g = builders::mesh(3, 4, 500.0).unwrap();
        let app = benchmarks::vopd();
        let routing = RoutingFunction::SplitMinPaths;
        let (table, mut lib, constraints) = engine_fixture(&g, routing);
        let engine = EvalEngine::new(&g, &app, &table, routing, &mut lib, &constraints);
        let base = Mapper::new(&g, &app, MapperConfig::default()).greedy_placement();
        let nodes = g.mappable_nodes();
        let mut pairs = Vec::new();
        for i in 0..nodes.len() {
            for j in i + 1..nodes.len() {
                pairs.push((nodes[i], nodes[j]));
            }
        }
        let sequential = engine.sweep_reports_with_workers(&base, &pairs, 1);
        assert_eq!(sequential.len(), pairs.len());
        for workers in [2, 3, 4, 7] {
            let parallel = engine.sweep_reports_with_workers(&base, &pairs, workers);
            assert_eq!(sequential, parallel, "{workers} workers diverged");
        }
    }

    #[test]
    fn delta_sweep_is_worker_count_invariant() {
        // Single-CPU CI never reaches the chunked thread::scope branch
        // of sweep_search through worker_count(); force it and assert
        // the winner, its report AND the evaluation count (the pruning
        // decisions) agree with the sequential scan — the block-frozen
        // incumbent makes all three pure functions of the inputs.
        let g = builders::mesh(3, 4, 500.0).unwrap();
        let app = benchmarks::vopd();
        for routing in [RoutingFunction::MinPath, RoutingFunction::DimensionOrdered] {
            for objective in [Objective::MinDelay, Objective::MinPower] {
                let (table, mut lib, constraints) = engine_fixture(&g, routing);
                let engine = EvalEngine::new(&g, &app, &table, routing, &mut lib, &constraints);
                let config = MapperConfig {
                    routing,
                    objective,
                    ..MapperConfig::default()
                };
                let base_placement = Mapper::new(&g, &app, config).greedy_placement();
                let mut scratch = engine.new_scratch();
                let base_report = engine
                    .evaluate_report(&base_placement, &mut scratch)
                    .unwrap();
                let nodes = g.mappable_nodes();
                let mut pairs = Vec::new();
                for i in 0..nodes.len() {
                    for j in i + 1..nodes.len() {
                        pairs.push((nodes[i], nodes[j]));
                    }
                }
                let sequential = engine.sweep_search_with_workers(
                    &base_placement,
                    &base_report,
                    &pairs,
                    objective,
                    1,
                    |_| {},
                );
                for workers in [2, 3, 5] {
                    let parallel = engine.sweep_search_with_workers(
                        &base_placement,
                        &base_report,
                        &pairs,
                        objective,
                        workers,
                        |_| {},
                    );
                    assert_eq!(
                        sequential, parallel,
                        "{routing} {objective}: {workers} workers diverged"
                    );
                }
            }
        }
    }

    #[test]
    fn report_matches_reference_on_greedy_placement() {
        for g in builders::standard_library(12, 500.0).unwrap() {
            let app = benchmarks::vopd();
            let routing = RoutingFunction::MinPath;
            let (table, mut lib, constraints) = engine_fixture(&g, routing);
            let engine = EvalEngine::new(&g, &app, &table, routing, &mut lib, &constraints);
            let placement = Mapper::new(&g, &app, MapperConfig::default()).greedy_placement();
            let mut scratch = engine.new_scratch();
            let fast = engine.evaluate_report(&placement, &mut scratch).unwrap();
            let reference = evaluate(&g, &app, placement, routing, &mut lib, &constraints)
                .unwrap()
                .report;
            assert_eq!(fast, reference, "{} diverged", g.kind());
        }
    }

    #[test]
    fn route_table_rejects_same_shape_different_edges() {
        // Same kind, node count and edge count, different capacities:
        // matches() must reject via the edge fingerprint.
        let a = builders::mesh(3, 4, 500.0).unwrap();
        let b = builders::mesh(3, 4, 400.0).unwrap();
        let table = RouteTable::new(&a);
        assert!(table.matches(&a));
        assert!(!table.matches(&b));
    }

    #[test]
    #[should_panic(expected = "different graph")]
    fn prepare_panics_on_mismatched_graph() {
        let a = builders::mesh(3, 4, 500.0).unwrap();
        let b = builders::torus(3, 4, 500.0).unwrap();
        let mut table = RouteTable::new(&a);
        table.prepare(&b, RoutingFunction::MinPath);
    }

    #[test]
    fn sweep_handles_empty_vertices_and_errors_like_the_search() {
        // A 4x4 mesh with only 12 cores leaves empty vertices: pairs of
        // two empty slots must come back None (skipped), matching the
        // sequential search's swap_nodes() == false skip.
        let g = builders::mesh(4, 4, 500.0).unwrap();
        let app = benchmarks::vopd();
        let routing = RoutingFunction::MinPath;
        let (table, mut lib, constraints) = engine_fixture(&g, routing);
        let engine = EvalEngine::new(&g, &app, &table, routing, &mut lib, &constraints);
        let base = Mapper::new(&g, &app, MapperConfig::new(routing, Objective::MinDelay))
            .greedy_placement();
        let occupied: Vec<bool> = g
            .mappable_nodes()
            .iter()
            .map(|n| base.core_at(*n).is_some())
            .collect();
        let nodes = g.mappable_nodes();
        let mut pairs = Vec::new();
        for i in 0..nodes.len() {
            for j in i + 1..nodes.len() {
                pairs.push((nodes[i], nodes[j]));
            }
        }
        let reports = engine.sweep_reports(&base, &pairs);
        for (k, &(a, b)) in pairs.iter().enumerate() {
            let ia = nodes.iter().position(|n| *n == a).unwrap();
            let ib = nodes.iter().position(|n| *n == b).unwrap();
            if !occupied[ia] && !occupied[ib] {
                assert!(reports[k].is_none(), "empty-empty pair {k} evaluated");
            } else {
                assert!(reports[k].is_some(), "occupied pair {k} skipped");
            }
        }
    }
}
