//! The cached evaluation fast path: per-topology route tables,
//! allocation-free scratch buffers, and a parallel swap sweep.
//!
//! The mapper's phase-3 search evaluates O(passes · n²) candidate
//! placements per topology. The reference evaluator
//! ([`crate::evaluate`]) rebuilds everything from scratch per candidate:
//! BFS/Dijkstra state, quadrant sets, enumerated path sets, `find_edge`
//! scans per path window and map-backed accumulators. This module
//! amortises all placement-independent work into a [`RouteTable`] built
//! once per topology, keeps the per-candidate working state in a
//! reusable [`EvalScratch`], and fans the swap sweep out across scoped
//! threads with a deterministic reduction.
//!
//! **Equivalence contract**: for any placement, [`EvalEngine::
//! evaluate_report`] returns a [`CostReport`] bit-identical to
//! `evaluate(..).report`, and errors exactly when the reference errors.
//! The routed-path *sets* are placement-independent per `(src, dst)`
//! pair (quadrants, enumerated min/simple paths, dimension-ordered
//! routes), which is what makes caching sound; the load-dependent parts
//! (Dijkstra tie-breaking, min-max chunk assignment) run the same code
//! as the reference — `paths::dijkstra_into` backs `paths::dijkstra`,
//! and [`crate::routing::assign_chunks`] backs `min_max_split` — so the
//! arithmetic cannot drift. The proptest suite in
//! `tests/fast_path_equivalence.rs` enforces the contract across every
//! topology builder, routing function and objective.

use crate::routing::{assign_chunks, DETOUR_SLACK, HOP_COST, MAX_SPLIT_PATHS, SPLIT_CHUNKS};
use crate::{layout_blocks, Constraints, CostReport, MappingError, Placement, RoutingFunction};
use sunmap_power::{switch_power_from_energy, AreaPowerLibrary, SwitchConfig};
use sunmap_topology::paths::{AllowedSet, DijkstraScratch};
use sunmap_topology::{
    dimension_order, paths, quadrant, AdjacencyMatrix, EdgeId, NodeId, NodeKind, TopologyGraph,
    TopologyKind,
};
use sunmap_traffic::{Commodity, CoreGraph};

/// Sentinel for "unreachable" in the hop-distance matrix, chosen so the
/// greedy placement cost matches the reference's
/// `hop_distance(..).unwrap_or(usize::MAX / 2)`.
const UNREACHABLE_HOPS: u32 = u32::MAX;

/// FNV-1a hash of a graph's directed edge list, capacities included.
fn edge_fingerprint(g: &TopologyGraph) -> u64 {
    let mut hash: u64 = 0xCBF2_9CE4_8422_2325;
    let mut mix = |word: u64| {
        for byte in word.to_le_bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
    };
    for (_, e) in g.edges() {
        mix(e.src.index() as u64);
        mix(e.dst.index() as u64);
        mix(e.capacity.to_bits());
    }
    hash
}

/// One enumerated route with everything the accumulation loop needs
/// precomputed: the directed edge per path window, the network-link
/// subset (for min-max splitting) and the switch vertices in traversal
/// order (for traffic accumulation and hop counting).
///
/// The simulator replays these routes flit by flit (see the
/// `sunmap-sim` crate), which is why the edge sequence is public.
#[derive(Debug, Clone)]
pub struct CachedPath {
    edges: Vec<EdgeId>,
    net_edges: Vec<usize>,
    switch_nodes: Vec<NodeId>,
}

impl CachedPath {
    /// The route as its directed-edge sequence, in traversal order.
    /// The vertex sequence is recoverable through
    /// [`TopologyGraph::edge`]: the source of the first edge, then each
    /// edge's destination.
    pub fn edges(&self) -> &[EdgeId] {
        &self.edges
    }
}

impl CachedPath {
    fn build(g: &TopologyGraph, adj: &AdjacencyMatrix, nodes: &[NodeId]) -> Self {
        let edges: Vec<EdgeId> = nodes
            .windows(2)
            .map(|w| {
                adj.edge_between(w[0], w[1])
                    .expect("enumerated paths follow topology edges")
            })
            .collect();
        let net_edges = edges
            .iter()
            .filter(|e| g.edge(**e).is_network_link())
            .map(|e| e.index())
            .collect();
        let switch_nodes = nodes
            .iter()
            .copied()
            .filter(|n| g.node_kind(*n) == NodeKind::Switch)
            .collect();
        CachedPath {
            edges,
            net_edges,
            switch_nodes,
        }
    }
}

/// Placement-independent routing state of one topology, computed once
/// per [`crate::Mapper::run`] and reusable across runs on the same
/// graph (the Fig. 9 sweeps re-map one graph under four routing
/// functions; `core`'s exploration flow builds one table per library
/// candidate).
///
/// Contents:
///
/// * all-pairs hop distances — one BFS per *source* instead of one per
///   pair;
/// * a dense `NodeId × NodeId → Option<EdgeId>` adjacency matrix
///   replacing linear `find_edge` scans;
/// * memoized quadrant sets per mappable pair;
/// * enumerated minimum-path / simple-path sets and dimension-ordered
///   routes per pair, filled on demand per routing function by
///   [`RouteTable::prepare`].
#[derive(Debug)]
pub struct RouteTable {
    kind: TopologyKind,
    node_count: usize,
    edge_count: usize,
    /// FNV-1a over the full edge list (endpoints + capacity bits), so
    /// [`RouteTable::matches`] rejects a graph that merely shares its
    /// kind and counts with the table's graph.
    edge_fingerprint: u64,
    mappable: Vec<NodeId>,
    /// Node index → dense mappable index (`u32::MAX` = not mappable).
    midx: Vec<u32>,
    adj: AdjacencyMatrix,
    /// Full-graph BFS hop distances, `m × node_count`, row per
    /// mappable source.
    hop: Vec<u32>,
    quadrants: Vec<Vec<NodeId>>,
    quadrants_ready: bool,
    do_paths: Vec<Option<CachedPath>>,
    do_ready: bool,
    sm_paths: Vec<Vec<CachedPath>>,
    sm_ready: bool,
    sa_paths: Vec<Vec<CachedPath>>,
    sa_ready: bool,
    /// Unrestricted all-shortest-path sets per pair for simulator
    /// replay (no quadrant filter — the simulator routes adaptively
    /// over every minimum path, paper §6.2), capped per pair.
    sim_paths: Vec<Vec<CachedPath>>,
    /// The cap `sim_paths` was enumerated under; `usize::MAX` = not
    /// prepared yet.
    sim_cap: usize,
}

impl RouteTable {
    /// Builds the routing-function-independent parts (adjacency matrix
    /// and the all-pairs hop-distance matrix) for `g`.
    pub fn new(g: &TopologyGraph) -> Self {
        let mappable = g.mappable_nodes().to_vec();
        let mut midx = vec![u32::MAX; g.node_count()];
        for (i, n) in mappable.iter().enumerate() {
            midx[n.index()] = i as u32;
        }
        let mut hop = vec![UNREACHABLE_HOPS; mappable.len() * g.node_count()];
        for (i, &src) in mappable.iter().enumerate() {
            let levels = paths::bfs_levels(g, src);
            let row = &mut hop[i * g.node_count()..(i + 1) * g.node_count()];
            for (slot, level) in row.iter_mut().zip(levels) {
                if level != usize::MAX {
                    *slot = level as u32;
                }
            }
        }
        RouteTable {
            kind: g.kind(),
            node_count: g.node_count(),
            edge_count: g.edge_count(),
            edge_fingerprint: edge_fingerprint(g),
            mappable,
            midx,
            adj: g.adjacency_matrix(),
            hop,
            quadrants: Vec::new(),
            quadrants_ready: false,
            do_paths: Vec::new(),
            do_ready: false,
            sm_paths: Vec::new(),
            sm_ready: false,
            sa_paths: Vec::new(),
            sa_ready: false,
            sim_paths: Vec::new(),
            sim_cap: usize::MAX,
        }
    }

    /// The mappable vertices this table indexes pairs over, in the
    /// graph's canonical order (the simulator's terminal order).
    pub fn mappable_nodes(&self) -> &[NodeId] {
        &self.mappable
    }

    /// The cached dimension-ordered route between two mappable
    /// vertices, or `None` when no such route exists.
    ///
    /// # Panics
    ///
    /// Panics unless [`RouteTable::prepare`] has run for
    /// [`RoutingFunction::DimensionOrdered`].
    pub fn dimension_ordered_route(&self, a: NodeId, b: NodeId) -> Option<&CachedPath> {
        assert!(self.do_ready, "dimension-ordered routes not prepared");
        self.do_paths[self.pair(a, b)].as_ref()
    }

    /// Whether [`RouteTable::prepare_sim_routes`] has run with `cap`.
    pub fn sim_routes_ready(&self, cap: usize) -> bool {
        self.sim_cap == cap
    }

    /// Fills the per-pair minimum-path sets the simulator replays:
    /// every shortest path on the *full* graph (no quadrant
    /// restriction), at most `cap` per pair, in the deterministic
    /// enumeration order of [`paths::all_shortest_paths`]. Idempotent
    /// for a given `cap`; re-preparing with a different `cap`
    /// re-enumerates.
    ///
    /// # Panics
    ///
    /// Panics if the table was built for a different graph.
    pub fn prepare_sim_routes(&mut self, g: &TopologyGraph, cap: usize) {
        assert!(self.matches(g), "route table built for a different graph");
        if self.sim_cap == cap {
            return;
        }
        let m = self.mappable.len();
        let mut cache = vec![Vec::new(); m * m];
        for &a in &self.mappable {
            for &b in &self.mappable {
                if a == b {
                    continue;
                }
                cache[self.pair(a, b)] = paths::all_shortest_paths(g, a, b, None, cap)
                    .into_iter()
                    .map(|nodes| CachedPath::build(g, &self.adj, &nodes))
                    .collect();
            }
        }
        self.sim_paths = cache;
        self.sim_cap = cap;
    }

    /// The simulator-replay route set between two mappable vertices
    /// (empty = unreachable pair).
    ///
    /// # Panics
    ///
    /// Panics unless [`RouteTable::prepare_sim_routes`] has run.
    pub fn sim_route_set(&self, a: NodeId, b: NodeId) -> &[CachedPath] {
        assert!(self.sim_cap != usize::MAX, "sim routes not prepared");
        &self.sim_paths[self.pair(a, b)]
    }

    /// Whether this table was built for `g`: same kind, shape, and
    /// edge list (endpoints and capacities, order-sensitive).
    pub fn matches(&self, g: &TopologyGraph) -> bool {
        self.kind == g.kind()
            && self.node_count == g.node_count()
            && self.edge_count == g.edge_count()
            && self.edge_fingerprint == edge_fingerprint(g)
    }

    /// Whether [`RouteTable::prepare`] has run for `routing`.
    pub fn prepared(&self, routing: RoutingFunction) -> bool {
        match routing {
            RoutingFunction::DimensionOrdered => self.do_ready,
            RoutingFunction::MinPath => self.quadrants_ready,
            RoutingFunction::SplitMinPaths => self.sm_ready,
            RoutingFunction::SplitAllPaths => self.sa_ready,
        }
    }

    /// Fills the per-pair caches `routing` needs (idempotent).
    ///
    /// # Panics
    ///
    /// Panics if the table was built for a different graph.
    pub fn prepare(&mut self, g: &TopologyGraph, routing: RoutingFunction) {
        assert!(self.matches(g), "route table built for a different graph");
        match routing {
            RoutingFunction::DimensionOrdered => self.prepare_dimension_ordered(g),
            RoutingFunction::MinPath => self.prepare_quadrants(g),
            RoutingFunction::SplitMinPaths => self.prepare_split_min(g),
            RoutingFunction::SplitAllPaths => self.prepare_split_all(g),
        }
    }

    fn pair(&self, a: NodeId, b: NodeId) -> usize {
        let (i, j) = (self.midx[a.index()], self.midx[b.index()]);
        debug_assert!(i != u32::MAX && j != u32::MAX, "pair of mappable nodes");
        i as usize * self.mappable.len() + j as usize
    }

    /// Hop distance between two mappable nodes as the greedy placement
    /// sees it (the reference used
    /// `hop_distance(..).unwrap_or(usize::MAX / 2) as f64`).
    pub(crate) fn greedy_distance(&self, a: NodeId, b: NodeId) -> f64 {
        let i = self.midx[a.index()] as usize;
        let h = self.hop[i * self.node_count + b.index()];
        if h == UNREACHABLE_HOPS {
            (usize::MAX / 2) as f64
        } else {
            h as f64
        }
    }

    fn prepare_quadrants(&mut self, g: &TopologyGraph) {
        if self.quadrants_ready {
            return;
        }
        let m = self.mappable.len();
        let mut quads = vec![Vec::new(); m * m];
        for &a in &self.mappable {
            for &b in &self.mappable {
                if a == b {
                    continue;
                }
                let mut q: Vec<NodeId> = quadrant::quadrant_set(g, a, b).into_iter().collect();
                q.sort_unstable();
                quads[self.pair(a, b)] = q;
            }
        }
        self.quadrants = quads;
        self.quadrants_ready = true;
    }

    fn prepare_dimension_ordered(&mut self, g: &TopologyGraph) {
        if self.do_ready {
            return;
        }
        let m = self.mappable.len();
        let mut cache = vec![None; m * m];
        for &a in &self.mappable {
            for &b in &self.mappable {
                if a == b {
                    continue;
                }
                cache[self.pair(a, b)] = dimension_order::route(g, a, b)
                    .ok()
                    .map(|p| CachedPath::build(g, &self.adj, &p));
            }
        }
        self.do_paths = cache;
        self.do_ready = true;
    }

    fn prepare_split_min(&mut self, g: &TopologyGraph) {
        if self.sm_ready {
            return;
        }
        self.prepare_quadrants(g);
        let m = self.mappable.len();
        let mut cache = vec![Vec::new(); m * m];
        for &a in &self.mappable {
            for &b in &self.mappable {
                if a == b {
                    continue;
                }
                let p = self.pair(a, b);
                let q: AllowedSet = self.quadrants[p].iter().copied().collect();
                cache[p] = paths::all_shortest_paths(g, a, b, Some(&q), MAX_SPLIT_PATHS)
                    .into_iter()
                    .map(|nodes| CachedPath::build(g, &self.adj, &nodes))
                    .collect();
            }
        }
        self.sm_paths = cache;
        self.sm_ready = true;
    }

    fn prepare_split_all(&mut self, g: &TopologyGraph) {
        if self.sa_ready {
            return;
        }
        let m = self.mappable.len();
        let mut cache = vec![Vec::new(); m * m];
        for (i, &a) in self.mappable.iter().enumerate() {
            for &b in &self.mappable {
                if a == b {
                    continue;
                }
                // "All paths" searches the whole NoC graph; the slack
                // and cap mirror route_commodity exactly. Unreachable
                // pairs keep an empty candidate list (= unroutable).
                let min_hops = self.hop[i * self.node_count + b.index()];
                if min_hops == UNREACHABLE_HOPS {
                    continue;
                }
                let min_len = min_hops as usize + 1;
                cache[self.pair(a, b)] =
                    paths::all_simple_paths(g, a, b, None, min_len + DETOUR_SLACK, MAX_SPLIT_PATHS)
                        .into_iter()
                        .map(|nodes| CachedPath::build(g, &self.adj, &nodes))
                        .collect();
            }
        }
        self.sa_paths = cache;
        self.sa_ready = true;
    }
}

/// Reusable per-worker buffers for one candidate evaluation. After the
/// first use every steady-state evaluation routes its commodities
/// without touching the allocator (the floorplan solve still builds its
/// block list; see the crate README).
#[derive(Debug)]
pub struct EvalScratch {
    link_loads: Vec<f64>,
    switch_traffic: Vec<f64>,
    /// Working copy of the loads for min-max chunk assignment.
    local: Vec<f64>,
    chunks: Vec<usize>,
    quad_mask: Vec<bool>,
    dijkstra: DijkstraScratch,
    path: Vec<NodeId>,
}

impl EvalScratch {
    fn new(node_count: usize, edge_count: usize) -> Self {
        EvalScratch {
            link_loads: vec![0.0; edge_count],
            switch_traffic: vec![0.0; node_count],
            local: vec![0.0; edge_count],
            chunks: Vec::new(),
            quad_mask: vec![false; node_count],
            dijkstra: DijkstraScratch::new(node_count),
            path: Vec::new(),
        }
    }
}

/// The caching evaluation engine shared by the mapper's swap search and
/// the exploration flow. Holds the [`RouteTable`] plus every
/// placement-independent quantity of the cost model: sorted
/// commodities, per-switch areas and bit energies, the constant design
/// area and channel counts.
#[derive(Debug)]
pub struct EvalEngine<'a> {
    g: &'a TopologyGraph,
    app: &'a CoreGraph,
    table: &'a RouteTable,
    routing: RoutingFunction,
    constraints: Constraints,
    commodities: Vec<Commodity>,
    /// Node-indexed switch block areas (zero for non-switches).
    switch_areas: Vec<f64>,
    /// Node-indexed bit-traversal energies (J/bit).
    switch_energy: Vec<f64>,
    switch_area_total: f64,
    design_area: f64,
    /// Edge-indexed bandwidth capacities (min-max splitting hot path).
    edge_capacity: Vec<f64>,
    switch_count: usize,
    link_count: usize,
    lib: AreaPowerLibrary,
}

impl<'a> EvalEngine<'a> {
    /// Creates an engine for `app` on `g`. `table` must already be
    /// [prepared](RouteTable::prepare) for `routing`; `lib` is used to
    /// warm the switch area/energy caches and cloned for link power.
    ///
    /// # Panics
    ///
    /// Panics if `table` does not match `g` or is not prepared for
    /// `routing`.
    pub fn new(
        g: &'a TopologyGraph,
        app: &'a CoreGraph,
        table: &'a RouteTable,
        routing: RoutingFunction,
        lib: &mut AreaPowerLibrary,
        constraints: &Constraints,
    ) -> Self {
        assert!(table.matches(g), "route table built for a different graph");
        assert!(
            table.prepared(routing),
            "route table not prepared for {routing}"
        );
        let mut switch_areas = vec![0.0; g.node_count()];
        let mut switch_energy = vec![0.0; g.node_count()];
        let mut switch_area_total = 0.0;
        for (s, inp, outp) in g.switch_radices() {
            let cfg = SwitchConfig::new(inp, outp);
            let area = lib.area(cfg);
            switch_areas[s.index()] = area;
            switch_energy[s.index()] = lib.energy_per_bit(cfg);
            switch_area_total += area;
        }
        let design_area = (switch_area_total + app.total_core_area()) / constraints.utilization;
        let edge_capacity = g.edges().map(|(_, e)| e.capacity).collect();
        EvalEngine {
            g,
            app,
            table,
            routing,
            constraints: *constraints,
            commodities: app.commodities(),
            switch_areas,
            switch_energy,
            switch_area_total,
            design_area,
            edge_capacity,
            switch_count: g.switch_count(),
            link_count: g.network_channel_count() + g.attach_channel_count(),
            lib: lib.clone(),
        }
    }

    /// Fresh scratch buffers sized for this engine's graph.
    pub fn new_scratch(&self) -> EvalScratch {
        EvalScratch::new(self.g.node_count(), self.g.edge_count())
    }

    /// Evaluates `placement` and returns the cost report — bit-identical
    /// to `evaluate(..)?.report`, at a fraction of the cost and (outside
    /// the floorplan solve) without heap allocation.
    ///
    /// # Errors
    ///
    /// Exactly the reference's: [`MappingError::Unroutable`] when a
    /// commodity has no route, [`MappingError::Floorplan`] when the
    /// layout cannot be solved.
    pub fn evaluate_report(
        &self,
        placement: &Placement,
        scratch: &mut EvalScratch,
    ) -> Result<CostReport, MappingError> {
        let g = self.g;
        scratch.link_loads.fill(0.0);
        scratch.switch_traffic.fill(0.0);

        let mut total_bw = 0.0f64;
        let mut bw_hops = 0.0f64;
        let mut hops_sum = 0.0f64;
        for c in &self.commodities {
            let src = placement.node_of(c.src);
            let dst = placement.node_of(c.dst);
            let hops = self.route_cached(src, dst, c.bandwidth, scratch).ok_or(
                MappingError::Unroutable {
                    src: c.src.index(),
                    dst: c.dst.index(),
                },
            )?;
            total_bw += c.bandwidth;
            bw_hops += c.bandwidth * hops;
            hops_sum += hops;
        }

        let layout = layout_blocks(g, self.app, placement, &self.switch_areas);
        let floorplan = layout.placement.floorplan()?;

        let mut switch_power_mw = 0.0;
        for s in g.switches() {
            let traffic = scratch.switch_traffic[s.index()];
            if traffic > 0.0 {
                switch_power_mw += switch_power_from_energy(self.switch_energy[s.index()], traffic);
            }
        }

        let mut link_power_mw = 0.0;
        let mut length_sum = 0.0;
        let mut loaded_links = 0usize;
        for (eid, edge) in g.edges() {
            let load = scratch.link_loads[eid.index()];
            if load <= 0.0 || !edge.is_network_link() {
                continue;
            }
            let (Some(a), Some(b)) = (
                layout.block_of_node(placement, edge.src),
                layout.block_of_node(placement, edge.dst),
            ) else {
                continue;
            };
            let length = floorplan.link_length(a, b);
            link_power_mw += self.lib.link_power(load, length);
            length_sum += length;
            loaded_links += 1;
        }

        let bandwidth_ok = g.edges().all(|(eid, edge)| {
            !edge.is_network_link()
                || scratch.link_loads[eid.index()] <= edge.capacity * (1.0 + 1e-9)
        });
        let chip_aspect = floorplan.chip_aspect();
        let area_ok = self
            .constraints
            .max_area_mm2
            .is_none_or(|max| self.design_area <= max)
            && chip_aspect >= self.constraints.min_chip_aspect
            && chip_aspect <= self.constraints.max_chip_aspect;

        let avg_hops = if total_bw > 0.0 {
            bw_hops / total_bw
        } else {
            0.0
        };
        let mean_hops = if self.commodities.is_empty() {
            0.0
        } else {
            hops_sum / self.commodities.len() as f64
        };
        let max_link_load = g
            .edges()
            .filter(|(_, e)| e.is_network_link())
            .map(|(eid, _)| scratch.link_loads[eid.index()])
            .fold(0.0, f64::max);

        Ok(CostReport {
            avg_hops,
            mean_hops,
            design_area: self.design_area,
            floorplan_area: floorplan.chip_area(),
            switch_area: self.switch_area_total,
            power_mw: switch_power_mw + link_power_mw,
            switch_power_mw,
            link_power_mw,
            max_link_load,
            avg_link_length_mm: if loaded_links > 0 {
                length_sum / loaded_links as f64
            } else {
                0.0
            },
            chip_aspect,
            bandwidth_ok,
            area_ok,
            bandwidth_enforced: self.constraints.enforce_bandwidth,
            switch_count: self.switch_count,
            link_count: self.link_count,
        })
    }

    /// Routes one commodity using the cached per-pair state,
    /// accumulating loads and switch traffic into `scratch`. Returns
    /// the commodity's fraction-weighted switch hops, or `None` when no
    /// route exists (the reference's `route_commodity` `None`).
    fn route_cached(
        &self,
        src: NodeId,
        dst: NodeId,
        bandwidth: f64,
        scratch: &mut EvalScratch,
    ) -> Option<f64> {
        let g = self.g;
        let pair = self.table.pair(src, dst);
        match self.routing {
            RoutingFunction::DimensionOrdered => {
                let cached = self.table.do_paths[pair].as_ref()?;
                Some(accumulate_cached(cached, 1.0, bandwidth, scratch))
            }
            RoutingFunction::MinPath => {
                let EvalScratch {
                    link_loads,
                    quad_mask,
                    dijkstra,
                    path,
                    ..
                } = scratch;
                let quad = &self.table.quadrants[pair];
                for n in quad {
                    quad_mask[n.index()] = true;
                }
                quad_mask[src.index()] = true;
                quad_mask[dst.index()] = true;
                let found = paths::dijkstra_into(
                    g,
                    src,
                    dst,
                    |n| quad_mask[n.index()],
                    |e| HOP_COST + link_loads[e.index()],
                    dijkstra,
                    path,
                );
                for n in quad {
                    quad_mask[n.index()] = false;
                }
                quad_mask[src.index()] = false;
                quad_mask[dst.index()] = false;
                found?;
                Some(self.accumulate_dynamic(1.0, bandwidth, scratch))
            }
            RoutingFunction::SplitMinPaths => {
                self.accumulate_split(&self.table.sm_paths[pair], bandwidth, scratch)
            }
            RoutingFunction::SplitAllPaths => {
                self.accumulate_split(&self.table.sa_paths[pair], bandwidth, scratch)
            }
        }
    }

    /// Min-max water filling over cached candidates — the same chunk
    /// assignment as the reference's `min_max_split`, including its
    /// single-candidate shortcut.
    fn accumulate_split(
        &self,
        candidates: &[CachedPath],
        bandwidth: f64,
        scratch: &mut EvalScratch,
    ) -> Option<f64> {
        match candidates {
            [] => None,
            [only] => Some(accumulate_cached(only, 1.0, bandwidth, scratch)),
            _ => {
                {
                    let EvalScratch {
                        local,
                        chunks,
                        link_loads,
                        ..
                    } = &mut *scratch;
                    // The chunk assignment only ever touches candidate
                    // network edges, so only those entries of the
                    // working copy need refreshing (the reference
                    // copies the whole load vector; same values where
                    // it matters).
                    for cand in candidates {
                        for &e in &cand.net_edges {
                            local[e] = link_loads[e];
                        }
                    }
                    assign_chunks(
                        |e| self.edge_capacity[e],
                        candidates.len(),
                        |i| candidates[i].net_edges.as_slice(),
                        local,
                        bandwidth,
                        chunks,
                    );
                }
                let mut hops = 0.0;
                for (i, cand) in candidates.iter().enumerate() {
                    let n = scratch.chunks[i];
                    if n > 0 {
                        let fraction = n as f64 / SPLIT_CHUNKS as f64;
                        hops += accumulate_cached(cand, fraction, bandwidth, scratch);
                    }
                }
                Some(hops)
            }
        }
    }

    /// Accumulates the freshly found MinPath route held in
    /// `scratch.path`.
    fn accumulate_dynamic(&self, fraction: f64, bandwidth: f64, scratch: &mut EvalScratch) -> f64 {
        let g = self.g;
        let flow = bandwidth * fraction;
        let EvalScratch {
            link_loads,
            switch_traffic,
            path,
            ..
        } = scratch;
        for w in path.windows(2) {
            let e = self
                .table
                .adj
                .edge_between(w[0], w[1])
                .expect("routed paths follow topology edges");
            link_loads[e.index()] += flow;
        }
        let mut switch_hops = 0usize;
        for n in path.iter() {
            if g.node_kind(*n) == NodeKind::Switch {
                switch_traffic[n.index()] += flow;
                switch_hops += 1;
            }
        }
        fraction * switch_hops as f64
    }

    /// Evaluates every `(a, b)` swap of `base` and returns one report
    /// slot per pair, in pair order. `None` marks pairs the search
    /// skips: both vertices empty, or an evaluation error.
    ///
    /// Large sweeps are partitioned across `std::thread::scope` workers,
    /// each with its own scratch and placement copy; because the output
    /// is positional, the reduction the mapper runs over it is
    /// bit-identical to a sequential scan regardless of worker count.
    pub fn sweep_reports(
        &self,
        base: &Placement,
        pairs: &[(NodeId, NodeId)],
    ) -> Vec<Option<CostReport>> {
        self.sweep_reports_with_workers(base, pairs, worker_count(pairs.len()))
    }

    /// [`EvalEngine::sweep_reports`] with an explicit worker count —
    /// this is how tests exercise the chunked multi-worker path on
    /// single-CPU machines and assert it agrees with the sequential
    /// scan.
    pub fn sweep_reports_with_workers(
        &self,
        base: &Placement,
        pairs: &[(NodeId, NodeId)],
        workers: usize,
    ) -> Vec<Option<CostReport>> {
        if workers <= 1 || pairs.is_empty() {
            let mut scratch = self.new_scratch();
            let mut local = base.clone();
            return pairs
                .iter()
                .map(|&(a, b)| self.swap_report(&mut local, a, b, &mut scratch))
                .collect();
        }
        let chunk = pairs.len().div_ceil(workers);
        let mut out = Vec::with_capacity(pairs.len());
        std::thread::scope(|s| {
            let handles: Vec<_> = pairs
                .chunks(chunk)
                .map(|chunk_pairs| {
                    s.spawn(move || {
                        let mut scratch = self.new_scratch();
                        let mut local = base.clone();
                        chunk_pairs
                            .iter()
                            .map(|&(a, b)| self.swap_report(&mut local, a, b, &mut scratch))
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            for h in handles {
                out.extend(h.join().expect("swap-sweep worker panicked"));
            }
        });
        out
    }

    /// Applies the swap, evaluates, and restores `local` (swapping the
    /// same pair twice is the identity).
    fn swap_report(
        &self,
        local: &mut Placement,
        a: NodeId,
        b: NodeId,
        scratch: &mut EvalScratch,
    ) -> Option<CostReport> {
        if !local.swap_nodes(a, b) {
            return None;
        }
        let report = self.evaluate_report(local, scratch).ok();
        local.swap_nodes(a, b);
        report
    }
}

/// How many sweep workers to spawn for `pairs` candidate swaps: one per
/// core, but never so many that a worker gets a trivial share (thread
/// spawn would dominate), and always 1 for tiny sweeps.
fn worker_count(pairs: usize) -> usize {
    const MIN_PAIRS_PER_WORKER: usize = 8;
    let cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    cpus.min(pairs / MIN_PAIRS_PER_WORKER).max(1)
}

/// Adds one cached path's flow onto the load and switch-traffic
/// accumulators, mirroring the reference's per-path loop order.
fn accumulate_cached(
    cached: &CachedPath,
    fraction: f64,
    bandwidth: f64,
    scratch: &mut EvalScratch,
) -> f64 {
    let flow = bandwidth * fraction;
    for e in &cached.edges {
        scratch.link_loads[e.index()] += flow;
    }
    for n in &cached.switch_nodes {
        scratch.switch_traffic[n.index()] += flow;
    }
    fraction * cached.switch_nodes.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{evaluate, Mapper, MapperConfig, Objective};
    use sunmap_power::Technology;
    use sunmap_topology::builders;
    use sunmap_traffic::benchmarks;

    fn engine_fixture(
        g: &TopologyGraph,
        routing: RoutingFunction,
    ) -> (RouteTable, AreaPowerLibrary, Constraints) {
        let mut table = RouteTable::new(g);
        table.prepare(g, routing);
        (
            table,
            AreaPowerLibrary::new(Technology::um_0_10()),
            Constraints::default(),
        )
    }

    #[test]
    fn multi_worker_sweep_equals_sequential_sweep() {
        // The CI container is single-CPU, so the chunked thread::scope
        // path never runs through worker_count(); force it here and
        // assert positional agreement with the sequential scan for
        // every worker count that produces a different chunking.
        let g = builders::mesh(3, 4, 500.0).unwrap();
        let app = benchmarks::vopd();
        let routing = RoutingFunction::SplitMinPaths;
        let (table, mut lib, constraints) = engine_fixture(&g, routing);
        let engine = EvalEngine::new(&g, &app, &table, routing, &mut lib, &constraints);
        let base = Mapper::new(&g, &app, MapperConfig::default()).greedy_placement();
        let nodes = g.mappable_nodes();
        let mut pairs = Vec::new();
        for i in 0..nodes.len() {
            for j in i + 1..nodes.len() {
                pairs.push((nodes[i], nodes[j]));
            }
        }
        let sequential = engine.sweep_reports_with_workers(&base, &pairs, 1);
        assert_eq!(sequential.len(), pairs.len());
        for workers in [2, 3, 4, 7] {
            let parallel = engine.sweep_reports_with_workers(&base, &pairs, workers);
            assert_eq!(sequential, parallel, "{workers} workers diverged");
        }
    }

    #[test]
    fn report_matches_reference_on_greedy_placement() {
        for g in builders::standard_library(12, 500.0).unwrap() {
            let app = benchmarks::vopd();
            let routing = RoutingFunction::MinPath;
            let (table, mut lib, constraints) = engine_fixture(&g, routing);
            let engine = EvalEngine::new(&g, &app, &table, routing, &mut lib, &constraints);
            let placement = Mapper::new(&g, &app, MapperConfig::default()).greedy_placement();
            let mut scratch = engine.new_scratch();
            let fast = engine.evaluate_report(&placement, &mut scratch).unwrap();
            let reference = evaluate(&g, &app, placement, routing, &mut lib, &constraints)
                .unwrap()
                .report;
            assert_eq!(fast, reference, "{} diverged", g.kind());
        }
    }

    #[test]
    fn route_table_rejects_same_shape_different_edges() {
        // Same kind, node count and edge count, different capacities:
        // matches() must reject via the edge fingerprint.
        let a = builders::mesh(3, 4, 500.0).unwrap();
        let b = builders::mesh(3, 4, 400.0).unwrap();
        let table = RouteTable::new(&a);
        assert!(table.matches(&a));
        assert!(!table.matches(&b));
    }

    #[test]
    #[should_panic(expected = "different graph")]
    fn prepare_panics_on_mismatched_graph() {
        let a = builders::mesh(3, 4, 500.0).unwrap();
        let b = builders::torus(3, 4, 500.0).unwrap();
        let mut table = RouteTable::new(&a);
        table.prepare(&b, RoutingFunction::MinPath);
    }

    #[test]
    fn sweep_handles_empty_vertices_and_errors_like_the_search() {
        // A 4x4 mesh with only 12 cores leaves empty vertices: pairs of
        // two empty slots must come back None (skipped), matching the
        // sequential search's swap_nodes() == false skip.
        let g = builders::mesh(4, 4, 500.0).unwrap();
        let app = benchmarks::vopd();
        let routing = RoutingFunction::MinPath;
        let (table, mut lib, constraints) = engine_fixture(&g, routing);
        let engine = EvalEngine::new(&g, &app, &table, routing, &mut lib, &constraints);
        let base = Mapper::new(&g, &app, MapperConfig::new(routing, Objective::MinDelay))
            .greedy_placement();
        let occupied: Vec<bool> = g
            .mappable_nodes()
            .iter()
            .map(|n| base.core_at(*n).is_some())
            .collect();
        let nodes = g.mappable_nodes();
        let mut pairs = Vec::new();
        for i in 0..nodes.len() {
            for j in i + 1..nodes.len() {
                pairs.push((nodes[i], nodes[j]));
            }
        }
        let reports = engine.sweep_reports(&base, &pairs);
        for (k, &(a, b)) in pairs.iter().enumerate() {
            let ia = nodes.iter().position(|n| *n == a).unwrap();
            let ib = nodes.iter().position(|n| *n == b).unwrap();
            if !occupied[ia] && !occupied[ib] {
                assert!(reports[k].is_none(), "empty-empty pair {k} evaluated");
            } else {
                assert!(reports[k].is_some(), "occupied pair {k} skipped");
            }
        }
    }
}
