//! Mapping evaluation: routing, load accumulation, floorplanning and
//! cost-report generation (paper Fig. 5 steps 2–8).
//!
//! This is the *reference* evaluator: a from-scratch, allocation-happy
//! implementation that serves as the oracle the cached fast path
//! ([`crate::EvalEngine`]) is tested against. The mapper's inner search
//! loop uses the fast path; the reference evaluates the initial
//! placement and re-materialises the winning candidate.

use crate::{
    layout_blocks, route_commodity, Constraints, CostReport, LayoutBlocks, MappingError, Placement,
    RoutingFunction,
};
use sunmap_floorplan::Floorplan;
use sunmap_power::{AreaPowerLibrary, SwitchConfig};
use sunmap_topology::{NodeId, NodeKind, TopologyGraph};
use sunmap_traffic::{Commodity, CoreGraph};

/// One routed commodity: the flow `d_k` with the paths carrying it.
#[derive(Debug, Clone, PartialEq)]
pub struct RoutedCommodity {
    /// The core-graph flow.
    pub commodity: Commodity,
    /// Mapped source vertex `map(v_i)`.
    pub src_node: NodeId,
    /// Mapped destination vertex.
    pub dst_node: NodeId,
    /// `(vertex path, traffic fraction)` pairs; fractions sum to 1.
    pub paths: Vec<(Vec<NodeId>, f64)>,
    /// Fraction-weighted switch traversals of this commodity.
    pub hops: f64,
}

/// A fully evaluated mapping: routes, loads, floorplan and the metric
/// report.
#[derive(Debug, Clone)]
pub struct Evaluation {
    /// The evaluated core→vertex assignment.
    pub placement: Placement,
    /// The routing function used.
    pub routing: RoutingFunction,
    /// Routed commodities in decreasing-bandwidth order.
    pub routes: Vec<RoutedCommodity>,
    /// Traffic per directed edge (MB/s), indexed by edge id.
    pub link_loads: Vec<f64>,
    /// Blocks and their grid slots.
    pub layout: LayoutBlocks,
    /// The solved floorplan.
    pub floorplan: Floorplan,
    /// The paper's metrics for this mapping.
    pub report: CostReport,
}

fn switch_hops(g: &TopologyGraph, path: &[NodeId]) -> usize {
    path.iter()
        .filter(|n| g.node_kind(**n) == NodeKind::Switch)
        .count()
}

/// Evaluates `placement` of `app` on `g` under `routing`: routes every
/// commodity in decreasing bandwidth order on its quadrant graph while
/// accumulating link loads, floorplans the result, computes area and
/// power through `lib`, and checks the constraints.
///
/// # Errors
///
/// * [`MappingError::Unroutable`] if a commodity has no route.
/// * [`MappingError::Floorplan`] if the layout cannot be floorplanned.
///
/// # Examples
///
/// ```
/// use sunmap_mapping::{evaluate, Constraints, Placement, RoutingFunction};
/// use sunmap_power::{AreaPowerLibrary, Technology};
/// use sunmap_topology::builders;
/// use sunmap_traffic::benchmarks;
///
/// let mesh = builders::mesh(3, 4, 500.0)?;
/// let vopd = benchmarks::vopd();
/// let placement = Placement::new(mesh.mappable_nodes()[..12].to_vec(), &mesh)?;
/// let mut lib = AreaPowerLibrary::new(Technology::um_0_10());
/// let eval = evaluate(
///     &mesh,
///     &vopd,
///     placement,
///     RoutingFunction::MinPath,
///     &mut lib,
///     &Constraints::default(),
/// )?;
/// assert_eq!(eval.routes.len(), 14);
/// assert!(eval.report.avg_hops >= 2.0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn evaluate(
    g: &TopologyGraph,
    app: &CoreGraph,
    placement: Placement,
    routing: RoutingFunction,
    lib: &mut AreaPowerLibrary,
    constraints: &Constraints,
) -> Result<Evaluation, MappingError> {
    let mut link_loads = vec![0.0f64; g.edge_count()];
    // Node-indexed accumulator: deterministic by construction (no map
    // iteration order involved in any float summation below).
    let mut switch_traffic = vec![0.0f64; g.node_count()];
    let mut routes = Vec::with_capacity(app.edge_count());

    // Fig. 5 steps 2-6: route commodities in decreasing-cost order,
    // incrementing edge weights as we go.
    for commodity in app.commodities() {
        let src_node = placement.node_of(commodity.src);
        let dst_node = placement.node_of(commodity.dst);
        let paths = route_commodity(
            g,
            src_node,
            dst_node,
            routing,
            &link_loads,
            commodity.bandwidth,
        )
        .ok_or(MappingError::Unroutable {
            src: commodity.src.index(),
            dst: commodity.dst.index(),
        })?;
        let mut hops = 0.0;
        for (path, fraction) in &paths {
            let flow = commodity.bandwidth * fraction;
            hops += *fraction * switch_hops(g, path) as f64;
            for w in path.windows(2) {
                let e = g
                    .find_edge(w[0], w[1])
                    .expect("routed paths follow topology edges");
                link_loads[e.index()] += flow;
            }
            for n in path {
                if g.node_kind(*n) == NodeKind::Switch {
                    switch_traffic[n.index()] += flow;
                }
            }
        }
        routes.push(RoutedCommodity {
            commodity,
            src_node,
            dst_node,
            paths,
            hops,
        });
    }

    // Fig. 5 step 7: floorplan and area-power estimates, accumulated in
    // node order (switch_radices iterates switches ascending).
    let mut switch_areas = vec![0.0f64; g.node_count()];
    let mut switch_configs = vec![SwitchConfig::new(0, 0); g.node_count()];
    let mut switch_area = 0.0f64;
    for (s, inp, outp) in g.switch_radices() {
        let cfg = SwitchConfig::new(inp, outp);
        let area = lib.area(cfg);
        switch_configs[s.index()] = cfg;
        switch_areas[s.index()] = area;
        switch_area += area;
    }
    let layout = layout_blocks(g, app, &placement, &switch_areas);
    let fp_timer = crate::timing::floorplan_start();
    let floorplan = layout.placement.floorplan()?;
    crate::timing::floorplan_finish(fp_timer);
    let design_area = (switch_area + app.total_core_area()) / constraints.utilization;

    let mut switch_power_mw = 0.0;
    for s in g.switches() {
        // Every accumulated flow is strictly positive, so a zero entry
        // means "no commodity crossed this switch" — such switches draw
        // no dynamic power in the paper's model.
        let traffic = switch_traffic[s.index()];
        if traffic > 0.0 {
            switch_power_mw += lib.switch_power(switch_configs[s.index()], traffic);
        }
    }

    let mut link_power_mw = 0.0;
    let mut length_sum = 0.0;
    let mut loaded_links = 0usize;
    for (eid, edge) in g.edges() {
        let load = link_loads[eid.index()];
        // Link power counts switch-to-switch network channels only, for
        // every topology alike: core/NI attach stubs are intra-tile
        // wires an order of magnitude shorter and are excluded so that
        // direct and indirect topologies are compared consistently.
        if load <= 0.0 || !edge.is_network_link() {
            continue;
        }
        let (Some(a), Some(b)) = (
            layout.block_of_node(&placement, edge.src),
            layout.block_of_node(&placement, edge.dst),
        ) else {
            continue;
        };
        let length = floorplan.link_length(a, b);
        link_power_mw += lib.link_power(load, length);
        length_sum += length;
        loaded_links += 1;
    }

    // Fig. 5 step 8: feasibility and cost.
    let bandwidth_ok = g.edges().all(|(eid, edge)| {
        !edge.is_network_link() || link_loads[eid.index()] <= edge.capacity * (1.0 + 1e-9)
    });
    let chip_aspect = floorplan.chip_aspect();
    let area_ok = constraints
        .max_area_mm2
        .is_none_or(|max| design_area <= max)
        && chip_aspect >= constraints.min_chip_aspect
        && chip_aspect <= constraints.max_chip_aspect;

    let total_bw: f64 = routes.iter().map(|r| r.commodity.bandwidth).sum();
    let avg_hops = if total_bw > 0.0 {
        routes
            .iter()
            .map(|r| r.commodity.bandwidth * r.hops)
            .sum::<f64>()
            / total_bw
    } else {
        0.0
    };
    let mean_hops = if routes.is_empty() {
        0.0
    } else {
        routes.iter().map(|r| r.hops).sum::<f64>() / routes.len() as f64
    };
    let max_link_load = g
        .edges()
        .filter(|(_, e)| e.is_network_link())
        .map(|(eid, _)| link_loads[eid.index()])
        .fold(0.0, f64::max);

    let report = CostReport {
        avg_hops,
        mean_hops,
        design_area,
        floorplan_area: floorplan.chip_area(),
        switch_area,
        power_mw: switch_power_mw + link_power_mw,
        switch_power_mw,
        link_power_mw,
        max_link_load,
        avg_link_length_mm: if loaded_links > 0 {
            length_sum / loaded_links as f64
        } else {
            0.0
        },
        chip_aspect,
        bandwidth_ok,
        area_ok,
        bandwidth_enforced: constraints.enforce_bandwidth,
        switch_count: g.switch_count(),
        link_count: g.network_channel_count() + g.attach_channel_count(),
    };

    Ok(Evaluation {
        placement,
        routing,
        routes,
        link_loads,
        layout,
        floorplan,
        report,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sunmap_power::Technology;
    use sunmap_topology::builders;
    use sunmap_traffic::benchmarks;

    fn eval_mesh_vopd(routing: RoutingFunction) -> Evaluation {
        let g = builders::mesh(3, 4, 500.0).unwrap();
        let app = benchmarks::vopd();
        let placement = Placement::new(g.mappable_nodes()[..12].to_vec(), &g).unwrap();
        let mut lib = AreaPowerLibrary::new(Technology::um_0_10());
        evaluate(
            &g,
            &app,
            placement,
            routing,
            &mut lib,
            &Constraints::default(),
        )
        .unwrap()
    }

    #[test]
    fn flow_conservation_per_commodity() {
        let eval = eval_mesh_vopd(RoutingFunction::SplitMinPaths);
        for r in &eval.routes {
            let frac: f64 = r.paths.iter().map(|(_, f)| f).sum();
            assert!((frac - 1.0).abs() < 1e-9);
            for (p, _) in &r.paths {
                assert_eq!(p.first(), Some(&r.src_node));
                assert_eq!(p.last(), Some(&r.dst_node));
            }
        }
    }

    #[test]
    fn link_loads_equal_sum_of_path_fractions() {
        let g = builders::mesh(3, 4, 500.0).unwrap();
        let eval = eval_mesh_vopd(RoutingFunction::SplitAllPaths);
        let mut expected = vec![0.0f64; g.edge_count()];
        for r in &eval.routes {
            for (p, f) in &r.paths {
                for w in p.windows(2) {
                    let e = g.find_edge(w[0], w[1]).unwrap();
                    expected[e.index()] += r.commodity.bandwidth * f;
                }
            }
        }
        for (a, b) in eval.link_loads.iter().zip(&expected) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn adjacent_cores_cost_two_hops() {
        // Paper §6.1: "the least possible hop delay (that of adjacent
        // nodes) itself is two".
        let eval = eval_mesh_vopd(RoutingFunction::MinPath);
        for r in &eval.routes {
            assert!(r.hops >= 2.0, "hops {} below the direct minimum", r.hops);
        }
        assert!(eval.report.avg_hops >= 2.0);
    }

    #[test]
    fn split_routing_never_raises_max_load() {
        let mp = eval_mesh_vopd(RoutingFunction::MinPath);
        let sa = eval_mesh_vopd(RoutingFunction::SplitAllPaths);
        assert!(
            sa.report.max_link_load <= mp.report.max_link_load + 1e-6,
            "SA {} > MP {}",
            sa.report.max_link_load,
            mp.report.max_link_load
        );
    }

    #[test]
    fn power_and_area_are_positive_and_decomposed() {
        let eval = eval_mesh_vopd(RoutingFunction::MinPath);
        let r = &eval.report;
        assert!(r.switch_area > 0.0);
        assert!(r.design_area > r.switch_area);
        assert!(r.switch_power_mw > 0.0);
        assert!(r.link_power_mw > 0.0);
        assert!((r.power_mw - r.switch_power_mw - r.link_power_mw).abs() < 1e-9);
        // The paper's observation: switch power dominates link power.
        assert!(r.switch_power_mw > r.link_power_mw);
    }

    #[test]
    fn butterfly_evaluation_has_constant_hops() {
        let g = builders::butterfly(4, 2, 500.0).unwrap();
        let app = benchmarks::vopd();
        let placement = Placement::new(g.mappable_nodes()[..12].to_vec(), &g).unwrap();
        let mut lib = AreaPowerLibrary::new(Technology::um_0_10());
        let eval = evaluate(
            &g,
            &app,
            placement,
            RoutingFunction::MinPath,
            &mut lib,
            &Constraints::default(),
        )
        .unwrap();
        // Every butterfly route crosses exactly the two switch stages.
        assert!((eval.report.avg_hops - 2.0).abs() < 1e-9);
    }

    #[test]
    fn infeasible_bandwidth_is_reported_not_hidden() {
        let g = builders::mesh(3, 4, 100.0).unwrap(); // tiny links
        let app = benchmarks::vopd();
        let placement = Placement::new(g.mappable_nodes()[..12].to_vec(), &g).unwrap();
        let mut lib = AreaPowerLibrary::new(Technology::um_0_10());
        let eval = evaluate(
            &g,
            &app,
            placement,
            RoutingFunction::MinPath,
            &mut lib,
            &Constraints::default(),
        )
        .unwrap();
        assert!(!eval.report.bandwidth_ok);
        assert!(!eval.report.feasible());
        assert!(eval.report.max_link_load > 100.0);
    }
}
