//! The three-phase mapping heuristic of paper Fig. 5.

use crate::{
    evaluate, Constraints, CostReport, EvalEngine, Evaluation, MappingError, Objective, Placement,
    RouteTable, RoutingFunction, SwapStrategy, TablePrep,
};
use sunmap_power::{AreaPowerLibrary, Technology};
use sunmap_topology::{NodeId, TopologyGraph};
use sunmap_traffic::{Commodity, CoreGraph, CoreId};

/// Configuration of one mapping run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MapperConfig {
    /// Routing function (paper input parameter).
    pub routing: RoutingFunction,
    /// Design objective (paper input parameter).
    pub objective: Objective,
    /// Bandwidth/area feasibility constraints.
    pub constraints: Constraints,
    /// Maximum pair-wise-swap improvement passes. The paper performs
    /// one pass over all vertex pairs; additional passes repeat the
    /// sweep from the improved mapping until no swap helps. `0`
    /// disables phase 3 entirely (useful for ablation studies).
    pub max_swap_passes: usize,
    /// How phase 3 scores its candidate swaps: exhaustively, or through
    /// the incremental swap-delta engine with sound early-exit bounds
    /// ([`SwapStrategy::Auto`] picks by topology size). Pass winners,
    /// final placements and reports are bit-identical either way; only
    /// the evaluation count (and thus the observed report sequence)
    /// differs.
    pub swap_strategy: SwapStrategy,
    /// How the per-topology [`RouteTable`] prepares its pair-wise
    /// structures: eagerly over all m×m pairs, lazily on first touch,
    /// or with closed-form hop distances on the regular library
    /// topologies ([`TablePrep::Auto`] picks by topology size). Every
    /// variant answers queries bit-identically; only preparation time
    /// and memory differ. Ignored when a caller-owned table is attached
    /// via [`Mapper::with_route_table`] (that table's own policy wins).
    pub table_prep: TablePrep,
}

impl Default for MapperConfig {
    fn default() -> Self {
        MapperConfig {
            routing: RoutingFunction::MinPath,
            objective: Objective::MinDelay,
            constraints: Constraints::default(),
            max_swap_passes: 4,
            swap_strategy: SwapStrategy::Auto,
            table_prep: TablePrep::Auto,
        }
    }
}

impl MapperConfig {
    /// Convenience constructor fixing routing and objective.
    pub fn new(routing: RoutingFunction, objective: Objective) -> Self {
        MapperConfig {
            routing,
            objective,
            ..MapperConfig::default()
        }
    }
}

/// The result of a mapping run.
#[derive(Debug, Clone)]
pub struct Mapping {
    evaluation: Evaluation,
    evaluated_candidates: usize,
}

impl Mapping {
    /// The metric report of the chosen mapping.
    pub fn report(&self) -> &CostReport {
        &self.evaluation.report
    }

    /// The chosen core→vertex assignment.
    pub fn placement(&self) -> &Placement {
        &self.evaluation.placement
    }

    /// The full evaluation (routes, loads, floorplan).
    pub fn evaluation(&self) -> &Evaluation {
        &self.evaluation
    }

    /// Consumes the mapping, returning the evaluation.
    pub fn into_evaluation(self) -> Evaluation {
        self.evaluation
    }

    /// How many candidate mappings the search evaluated.
    pub fn evaluated_candidates(&self) -> usize {
        self.evaluated_candidates
    }
}

/// Maps an application core graph onto one topology (paper Fig. 5).
///
/// # Examples
///
/// ```
/// use sunmap_mapping::{Mapper, MapperConfig, Objective, RoutingFunction};
/// use sunmap_topology::builders;
/// use sunmap_traffic::benchmarks;
///
/// let torus = builders::torus(3, 4, 500.0)?;
/// let vopd = benchmarks::vopd();
/// let cfg = MapperConfig::new(RoutingFunction::MinPath, Objective::MinPower);
/// let mapping = Mapper::new(&torus, &vopd, cfg).run()?;
/// assert!(mapping.report().feasible());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct Mapper<'a> {
    graph: &'a TopologyGraph,
    app: &'a CoreGraph,
    config: MapperConfig,
    lib: AreaPowerLibrary,
    /// Optional caller-owned route table, reused across runs on the
    /// same graph (the Fig. 9 sweeps re-map one topology under several
    /// routing functions and objectives).
    table: Option<&'a mut RouteTable>,
}

impl<'a> Mapper<'a> {
    /// Creates a mapper with the paper's 0.1 µm area-power library.
    pub fn new(graph: &'a TopologyGraph, app: &'a CoreGraph, config: MapperConfig) -> Self {
        Mapper {
            graph,
            app,
            config,
            lib: AreaPowerLibrary::new(Technology::um_0_10()),
            table: None,
        }
    }

    /// Creates a mapper with an explicit area-power library.
    pub fn with_library(
        graph: &'a TopologyGraph,
        app: &'a CoreGraph,
        config: MapperConfig,
        lib: AreaPowerLibrary,
    ) -> Self {
        Mapper {
            graph,
            app,
            config,
            lib,
            table: None,
        }
    }

    /// Attaches a caller-owned [`RouteTable`] so its per-topology caches
    /// (hop distances, adjacency matrix, quadrants, enumerated path
    /// sets) survive across multiple runs on the same graph.
    ///
    /// # Panics
    ///
    /// [`Mapper::run`] panics if the table was built for a different
    /// graph.
    pub fn with_route_table(mut self, table: &'a mut RouteTable) -> Self {
        self.table = Some(table);
        self
    }

    /// Runs the three phases and returns the best feasible mapping.
    ///
    /// # Errors
    ///
    /// * [`MappingError::TooManyCores`] / [`MappingError::EmptyApplication`]
    ///   for size mismatches;
    /// * [`MappingError::NoFeasibleMapping`] when every evaluated
    ///   mapping violates the constraints (the error carries the
    ///   least-infeasible report).
    pub fn run(&mut self) -> Result<Mapping, MappingError> {
        self.run_observed(|_| {})
    }

    /// Like [`Mapper::run`], additionally invoking `observer` with the
    /// cost report of **every** candidate mapping the search evaluates
    /// (the greedy seed and each pair-wise swap). This is how the
    /// Fig. 9b Pareto study collects its cloud of design points.
    ///
    /// Under [`SwapStrategy::DeltaPruned`] (or [`SwapStrategy::Auto`]
    /// on a large topology), candidates the incremental bounds prove
    /// unable to win are never evaluated — the observer sees exactly
    /// the candidates that were, still in pair order.
    pub fn run_observed(
        &mut self,
        mut observer: impl FnMut(&CostReport),
    ) -> Result<Mapping, MappingError> {
        let graph = self.graph;
        let app = self.app;
        let config = self.config;
        let slots = graph.mappable_nodes().len();
        let cores = app.core_count();
        if cores == 0 {
            return Err(MappingError::EmptyApplication);
        }
        if cores > slots {
            return Err(MappingError::TooManyCores { cores, slots });
        }

        // The per-topology route table: either the caller's (reused
        // across runs) or a run-local one.
        let mut local_table = None;
        let table: &mut RouteTable = match self.table.as_deref_mut() {
            Some(t) => t,
            None => local_table.insert(RouteTable::with_prep(graph, config.table_prep)),
        };
        table.prepare(graph, config.routing);
        let table: &RouteTable = table;

        let mut evaluated = 0usize;
        // Phase 1: greedy initial mapping, evaluated by the reference
        // path (the search keeps the full Evaluation of the incumbent).
        let initial = initial_placement(graph, app, table);
        let mut best = evaluate(
            graph,
            app,
            initial,
            config.routing,
            &mut self.lib,
            &config.constraints,
        )?;
        observer(&best.report);
        evaluated += 1;

        // Phase 3 (steps 9-10): pair-wise swaps, steepest-descent
        // passes. Candidates are scored through the cached fast path
        // (parallel sweep, reports reduced in pair order — bit-identical
        // to a sequential reference scan); only each pass's winner is
        // re-materialised into a full Evaluation.
        let engine = EvalEngine::new(
            graph,
            app,
            table,
            config.routing,
            &mut self.lib,
            &config.constraints,
        );
        let nodes = graph.mappable_nodes();
        let strategy = config.swap_strategy.resolve(nodes.len());
        let mut pairs = Vec::with_capacity(nodes.len() * nodes.len().saturating_sub(1) / 2);
        for i in 0..nodes.len() {
            for j in i + 1..nodes.len() {
                pairs.push((nodes[i], nodes[j]));
            }
        }
        for _pass in 0..config.max_swap_passes {
            let best_swap: Option<(usize, CostReport)> = match strategy {
                SwapStrategy::DeltaPruned => {
                    let (best_swap, pass_evaluated) = engine.sweep_search(
                        &best.placement,
                        &best.report,
                        &pairs,
                        config.objective,
                        |r| observer(r),
                    );
                    evaluated += pass_evaluated;
                    best_swap
                }
                _ => {
                    let reports = engine.sweep_reports(&best.placement, &pairs);
                    let mut best_swap: Option<(usize, CostReport)> = None;
                    for (k, report) in reports.into_iter().enumerate() {
                        let Some(report) = report else { continue };
                        observer(&report);
                        evaluated += 1;
                        let improves_on = best_swap.as_ref().map_or(&best.report, |(_, r)| r);
                        if report.better_than(improves_on, config.objective) {
                            best_swap = Some((k, report));
                        }
                    }
                    best_swap
                }
            };
            match best_swap {
                Some((k, report)) => {
                    let (a, b) = pairs[k];
                    let mut placement = best.placement.clone();
                    placement.swap_nodes(a, b);
                    let eval = evaluate(
                        graph,
                        app,
                        placement,
                        config.routing,
                        &mut self.lib,
                        &config.constraints,
                    )
                    .expect("fast path evaluated this placement");
                    debug_assert_eq!(eval.report, report, "fast path diverged from reference");
                    best = eval;
                }
                None => break,
            }
        }

        if best.report.feasible() {
            Ok(Mapping {
                evaluation: best,
                evaluated_candidates: evaluated,
            })
        } else {
            Err(MappingError::NoFeasibleMapping(Box::new(best.report)))
        }
    }

    /// Phase 1 in isolation: the greedy constructive placement of
    /// Fig. 5 step 1. Exposed so the equivalence suite can replay the
    /// reference search from the same starting point as [`Mapper::run`].
    ///
    /// # Panics
    ///
    /// Panics if the application is empty, has more cores than the
    /// topology has mappable slots ([`Mapper::run`] reports these as
    /// errors before placing), or an attached route table was built for
    /// a different graph (the same guard [`Mapper::run`] applies).
    pub fn greedy_placement(&self) -> Placement {
        match &self.table {
            Some(t) => {
                assert!(
                    t.matches(self.graph),
                    "route table built for a different graph"
                );
                initial_placement(self.graph, self.app, t)
            }
            None => initial_placement(
                self.graph,
                self.app,
                &RouteTable::with_prep(self.graph, self.config.table_prep),
            ),
        }
    }
}

/// Phase 1: the greedy constructive placement of Fig. 5 step 1. Hop
/// distances come from the route table's matrix (one BFS per source)
/// instead of the former per-pair BFS (O(n³) total).
///
/// The selection loop recomputes each unplaced core's communication
/// with the placed set in a single pass over the edge list per step
/// (the same edge-order summation [`CoreGraph::communication_with`]
/// performs, so the floating-point totals — and therefore every argmax
/// decision — are bit-identical to querying it per core), and scores
/// candidate nodes over per-core incident edge lists instead of the
/// full edge set. Together these drop phase 1 from O(n²·|E|·n) to
/// O(n·(|E| + n)) edge visits, which is what makes 1024+ core meshes
/// mappable in seconds.
fn initial_placement(graph: &TopologyGraph, app: &CoreGraph, table: &RouteTable) -> Placement {
    let cores = app.core_count();
    let nodes = graph.mappable_nodes().to_vec();
    let edges = app.edges();

    // Per-core incident commodities in edge order, pre-resolved to the
    // (partner, direction) pair `greedy_cost` derives per edge. An
    // edge's `src` arm wins when both endpoints are the same core,
    // matching the if/else-if chain in `greedy_cost`.
    let mut incident: Vec<Vec<(usize, CoreId, bool)>> = vec![Vec::new(); cores];
    for (i, e) in edges.iter().enumerate() {
        if e.src.index() < cores {
            incident[e.src.index()].push((i, e.dst, true));
        }
        if e.dst != e.src && e.dst.index() < cores {
            incident[e.dst.index()].push((i, e.src, false));
        }
    }

    let mut assignment: Vec<Option<NodeId>> = vec![None; cores];
    let mut free: Vec<NodeId> = nodes.clone();
    let mut placed_mask: Vec<bool> = vec![false; cores];
    let mut placed_count = 0usize;
    let mut comm: Vec<f64> = vec![0.0; cores];

    // Seed: the core with maximum communication goes to the node
    // with maximum neighbours.
    let seed_core = app.max_communication_core().expect("non-empty application");
    let seed_node = *free
        .iter()
        .max_by_key(|n| {
            graph
                .ingress_switch(**n)
                .map(|s| graph.neighbor_count(s))
                .unwrap_or(0)
        })
        .expect("topology has mappable nodes");
    assignment[seed_core.index()] = Some(seed_node);
    free.retain(|n| *n != seed_node);
    placed_mask[seed_core.index()] = true;
    placed_count += 1;

    while placed_count < cores {
        // Next: the unplaced core communicating most with placed
        // cores. One edge-order pass accumulates the same filtered
        // bandwidth sums `communication_with` would produce per core.
        comm.fill(0.0);
        for e in edges {
            if e.src.index() < cores && placed_mask[e.dst.index()] {
                comm[e.src.index()] += e.bandwidth;
            }
            if e.dst != e.src && e.dst.index() < cores && placed_mask[e.src.index()] {
                comm[e.dst.index()] += e.bandwidth;
            }
        }
        let next_core = (0..cores)
            .map(CoreId)
            .filter(|c| assignment[c.index()].is_none())
            .max_by(|a, b| {
                comm[a.index()]
                    .total_cmp(&comm[b.index()])
                    .then_with(|| b.cmp(a))
            })
            .expect("an unplaced core remains");
        // Its node: minimise bandwidth-weighted distance to the
        // placed communication partners.
        let best_node = *free
            .iter()
            .min_by(|x, y| {
                let cx = greedy_cost(edges, &incident, table, next_core, **x, &assignment);
                let cy = greedy_cost(edges, &incident, table, next_core, **y, &assignment);
                cx.total_cmp(&cy).then_with(|| x.cmp(y))
            })
            .expect("a free node remains (|V| <= |U|)");
        assignment[next_core.index()] = Some(best_node);
        free.retain(|n| *n != best_node);
        placed_mask[next_core.index()] = true;
        placed_count += 1;
    }

    let assignment: Vec<NodeId> = assignment
        .into_iter()
        .map(|n| n.expect("all cores placed"))
        .collect();
    Placement::new(assignment, graph).expect("greedy placement is valid")
}

fn greedy_cost(
    edges: &[Commodity],
    incident: &[Vec<(usize, CoreId, bool)>],
    table: &RouteTable,
    core: CoreId,
    node: NodeId,
    assignment: &[Option<NodeId>],
) -> f64 {
    let mut cost = 0.0;
    for &(i, other, forward) in &incident[core.index()] {
        let Some(Some(other_node)) = assignment.get(other.index()) else {
            continue;
        };
        let d = if forward {
            table.greedy_distance(node, *other_node)
        } else {
            table.greedy_distance(*other_node, node)
        };
        cost += edges[i].bandwidth * d;
    }
    cost
}

#[cfg(test)]
mod tests {
    use super::*;
    use sunmap_topology::builders;
    use sunmap_traffic::benchmarks;

    #[test]
    fn vopd_maps_feasibly_on_all_five_topologies() {
        let vopd = benchmarks::vopd();
        for g in builders::standard_library(12, 500.0).unwrap() {
            let mapping = Mapper::new(&g, &vopd, MapperConfig::default())
                .run()
                .unwrap_or_else(|e| panic!("{}: {e}", g.kind()));
            assert!(mapping.report().feasible(), "{} infeasible", g.kind());
            assert!(mapping.report().avg_hops >= 2.0);
        }
    }

    #[test]
    fn swaps_never_worsen_the_initial_mapping() {
        let vopd = benchmarks::vopd();
        let g = builders::mesh(3, 4, 500.0).unwrap();
        let no_swaps = MapperConfig {
            max_swap_passes: 0,
            ..MapperConfig::default()
        };
        let base = Mapper::new(&g, &vopd, no_swaps).run().unwrap();
        let tuned = Mapper::new(&g, &vopd, MapperConfig::default())
            .run()
            .unwrap();
        assert!(
            tuned.report().avg_hops <= base.report().avg_hops + 1e-9,
            "swaps worsened delay: {} > {}",
            tuned.report().avg_hops,
            base.report().avg_hops
        );
        assert!(tuned.evaluated_candidates() > base.evaluated_candidates());
    }

    #[test]
    fn butterfly_mpeg4_has_no_feasible_mapping() {
        // The paper's Fig. 7b headline: the butterfly cannot split the
        // 910 MB/s SDRAM flow across multiple paths, so MPEG4 has no
        // feasible butterfly mapping at 500 MB/s links.
        let mpeg4 = benchmarks::mpeg4();
        let g = builders::butterfly(4, 2, 500.0).unwrap();
        let cfg = MapperConfig::new(RoutingFunction::SplitAllPaths, Objective::MinDelay);
        let err = Mapper::new(&g, &mpeg4, cfg).run().unwrap_err();
        match err {
            MappingError::NoFeasibleMapping(report) => {
                assert!(report.max_link_load > 500.0);
            }
            other => panic!("expected NoFeasibleMapping, got {other}"),
        }
    }

    #[test]
    fn mpeg4_feasible_on_mesh_with_split_routing() {
        let mpeg4 = benchmarks::mpeg4();
        let g = builders::mesh(3, 4, 500.0).unwrap();
        // Min-path routing cannot carry the 910 MB/s flow...
        let mp = MapperConfig::new(RoutingFunction::MinPath, Objective::MinDelay);
        assert!(Mapper::new(&g, &mpeg4, mp).run().is_err());
        // ...but split-traffic routing can (paper §6.1).
        let sa = MapperConfig::new(RoutingFunction::SplitAllPaths, Objective::MinDelay);
        let mapping = Mapper::new(&g, &mpeg4, sa).run().unwrap();
        assert!(mapping.report().feasible());
    }

    #[test]
    fn size_mismatches_are_rejected() {
        let vopd = benchmarks::vopd();
        let g = builders::mesh(2, 2, 500.0).unwrap();
        assert!(matches!(
            Mapper::new(&g, &vopd, MapperConfig::default()).run(),
            Err(MappingError::TooManyCores {
                cores: 12,
                slots: 4
            })
        ));
        let empty = sunmap_traffic::CoreGraph::new();
        assert!(matches!(
            Mapper::new(&g, &empty, MapperConfig::default()).run(),
            Err(MappingError::EmptyApplication)
        ));
    }

    #[test]
    fn objectives_steer_the_search() {
        let vopd = benchmarks::vopd();
        let g = builders::mesh(3, 4, 500.0).unwrap();
        let delay = Mapper::new(
            &g,
            &vopd,
            MapperConfig::new(RoutingFunction::MinPath, Objective::MinDelay),
        )
        .run()
        .unwrap();
        let power = Mapper::new(
            &g,
            &vopd,
            MapperConfig::new(RoutingFunction::MinPath, Objective::MinPower),
        )
        .run()
        .unwrap();
        // The delay-optimised mapping is at least as good on delay.
        assert!(delay.report().avg_hops <= power.report().avg_hops + 1e-9);
        // The power-optimised mapping is at least as good on power.
        assert!(power.report().power_mw <= delay.report().power_mw + 1e-9);
    }

    #[test]
    fn mapper_is_deterministic() {
        let vopd = benchmarks::vopd();
        let g = builders::torus(3, 4, 500.0).unwrap();
        let a = Mapper::new(&g, &vopd, MapperConfig::default())
            .run()
            .unwrap();
        let b = Mapper::new(&g, &vopd, MapperConfig::default())
            .run()
            .unwrap();
        assert_eq!(a.placement().assignment(), b.placement().assignment());
    }
}
