//! Opt-in floorplan phase timing for long-running callers.
//!
//! The serve daemon attributes request latency to phases (route-table
//! build, swap search, floorplan, probe). The first two and the probe
//! are timed at their call sites, but floorplanning happens deep inside
//! the evaluation hot loop — thousands of calls per request, spread
//! over the sweep's worker threads — so it is accumulated here in a
//! process-global counter instead of threading a collector through
//! every evaluation signature.
//!
//! Disabled (the default), the cost at each floorplan call is a single
//! relaxed atomic load. Enabled, each call adds its wall-clock
//! nanoseconds to the global accumulator; [`take_floorplan_nanos`]
//! drains it. With several requests in flight the accumulator holds
//! their *combined* floorplan time — attribution is per process, not
//! per request, which is exactly the granularity the daemon's metrics
//! histograms report.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Instant;

static ENABLED: AtomicBool = AtomicBool::new(false);
static FLOORPLAN_NANOS: AtomicU64 = AtomicU64::new(0);

/// Turns floorplan timing on or off for the whole process.
pub fn set_floorplan_timing(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Drains the accumulated floorplan nanoseconds (resets to zero).
pub fn take_floorplan_nanos() -> u64 {
    FLOORPLAN_NANOS.swap(0, Ordering::Relaxed)
}

/// Starts one floorplan measurement; `None` when timing is off.
#[inline]
pub(crate) fn floorplan_start() -> Option<Instant> {
    if ENABLED.load(Ordering::Relaxed) {
        Some(Instant::now())
    } else {
        None
    }
}

/// Finishes the measurement begun by [`floorplan_start`].
#[inline]
pub(crate) fn floorplan_finish(start: Option<Instant>) {
    if let Some(t) = start {
        let nanos = u64::try_from(t.elapsed().as_nanos()).unwrap_or(u64::MAX);
        FLOORPLAN_NANOS.fetch_add(nanos, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_timing_accumulates_nothing() {
        // Tests in this binary run concurrently, but nothing else in
        // the mapping crate's unit tests enables timing, so the
        // accumulator only moves inside this test.
        set_floorplan_timing(false);
        take_floorplan_nanos();
        floorplan_finish(floorplan_start());
        assert_eq!(take_floorplan_nanos(), 0);
        set_floorplan_timing(true);
        let start = floorplan_start();
        assert!(start.is_some());
        std::thread::sleep(std::time::Duration::from_millis(1));
        floorplan_finish(start);
        set_floorplan_timing(false);
        assert!(take_floorplan_nanos() > 0);
        assert_eq!(take_floorplan_nanos(), 0);
    }
}
