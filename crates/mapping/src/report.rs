//! Objectives, constraints and the evaluated cost report.

/// Design objective driving the mapping search (paper §4.1: "the
/// mapping algorithms can have many different objectives ... an input
/// parameter to SUNMAP").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Objective {
    /// Minimise average communication delay (traffic-weighted switch
    /// hops).
    #[default]
    MinDelay,
    /// Minimise design area.
    MinArea,
    /// Minimise design power dissipation.
    MinPower,
    /// Minimise the maximum link load — i.e. the smallest link
    /// bandwidth the design would require. Used for the paper's Fig. 9a
    /// study of routing functions; bandwidth feasibility is not
    /// enforced under this objective (the answer *is* the required
    /// bandwidth).
    MinBandwidth,
}

impl std::fmt::Display for Objective {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Objective::MinDelay => "min-delay",
            Objective::MinArea => "min-area",
            Objective::MinPower => "min-power",
            Objective::MinBandwidth => "min-bandwidth",
        };
        f.write_str(s)
    }
}

/// Feasibility constraints of the mapping (paper §4.1: bandwidth and
/// area constraints).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Constraints {
    /// Maximum allowed design area in mm², if any.
    pub max_area_mm2: Option<f64>,
    /// Minimum permissible chip aspect ratio (width/height).
    pub min_chip_aspect: f64,
    /// Maximum permissible chip aspect ratio.
    pub max_chip_aspect: f64,
    /// Whether link bandwidth limits are enforced. The paper's
    /// network-processor study (§6.2) produces mappings "by relaxing
    /// the bandwidth constraints"; set this to `false` to do the same.
    pub enforce_bandwidth: bool,
    /// Packing utilisation assumed when converting summed block area
    /// into design area (our grid floorplanner does not perform the
    /// LP's final compaction; see DESIGN.md).
    pub utilization: f64,
}

impl Default for Constraints {
    fn default() -> Self {
        Constraints {
            max_area_mm2: None,
            min_chip_aspect: 0.25,
            max_chip_aspect: 4.0,
            enforce_bandwidth: true,
            utilization: 0.95,
        }
    }
}

impl Constraints {
    /// Constraints with a maximum design area.
    pub fn with_max_area(max_area_mm2: f64) -> Self {
        Constraints {
            max_area_mm2: Some(max_area_mm2),
            ..Constraints::default()
        }
    }

    /// Constraints with bandwidth checking disabled (the paper's
    /// "relaxed" mode for simulation-driven studies).
    pub fn relaxed_bandwidth() -> Self {
        Constraints {
            enforce_bandwidth: false,
            ..Constraints::default()
        }
    }
}

/// Every metric the paper reports for a mapping, produced by
/// [`crate::evaluate`] (Fig. 5 steps 7–8).
#[derive(Debug, Clone, PartialEq)]
pub struct CostReport {
    /// Traffic-weighted average switch traversals per byte — the
    /// "avg hops" of paper Figs. 3d, 6a, 7b. Adjacent-switch
    /// communication counts 2 (source plus destination switch).
    pub avg_hops: f64,
    /// Unweighted mean hops over commodities.
    pub mean_hops: f64,
    /// Design area in mm² (cores + switches at the configured
    /// utilisation).
    pub design_area: f64,
    /// Floorplan bounding-box area in mm².
    pub floorplan_area: f64,
    /// Sum of switch block areas in mm².
    pub switch_area: f64,
    /// Total power in mW (switches + links).
    pub power_mw: f64,
    /// Switch share of power in mW.
    pub switch_power_mw: f64,
    /// Link share of power in mW.
    pub link_power_mw: f64,
    /// Largest per-link traffic in MB/s — the minimum link bandwidth
    /// this mapping requires.
    pub max_link_load: f64,
    /// Mean floorplanned length of loaded links in mm.
    pub avg_link_length_mm: f64,
    /// Chip aspect ratio from the floorplanner.
    pub chip_aspect: f64,
    /// Whether every link load is within its capacity (always reported,
    /// even when not enforced).
    pub bandwidth_ok: bool,
    /// Whether area and aspect constraints hold.
    pub area_ok: bool,
    /// Whether bandwidth feasibility participates in
    /// [`CostReport::feasible`] (copied from the constraints used).
    pub bandwidth_enforced: bool,
    /// Number of switches in the topology.
    pub switch_count: usize,
    /// Number of physical channels (network + core attach).
    pub link_count: usize,
}

impl CostReport {
    /// Whether this mapping satisfies the enforced constraints
    /// (paper Fig. 5 step 8 gate).
    pub fn feasible(&self) -> bool {
        (self.bandwidth_ok || !self.bandwidth_enforced) && self.area_ok
    }

    /// Scalar cost under an objective; lower is better. Infeasible
    /// mappings still get finite costs — the mapper ranks feasibility
    /// first, then cost.
    pub fn cost(&self, objective: Objective) -> f64 {
        match objective {
            Objective::MinDelay => self.avg_hops,
            Objective::MinArea => self.design_area,
            Objective::MinPower => self.power_mw,
            Objective::MinBandwidth => self.max_link_load,
        }
    }

    /// Ranking key used by the mapper: feasible mappings sort before
    /// infeasible ones. Among feasible mappings the objective cost
    /// decides (worst link load breaking ties); among infeasible ones
    /// the *violation* (max link load) decides, so the swap search
    /// climbs towards feasibility before optimising anything else.
    pub fn rank(&self, objective: Objective) -> (bool, f64, f64) {
        if self.feasible() {
            (false, self.cost(objective), self.max_link_load)
        } else {
            (true, self.max_link_load, self.cost(objective))
        }
    }

    /// Whether `self` ranks strictly better than `other` under
    /// `objective`.
    pub fn better_than(&self, other: &CostReport, objective: Objective) -> bool {
        let (a_inf, a_cost, a_load) = self.rank(objective);
        let (b_inf, b_cost, b_load) = other.rank(objective);
        (a_inf, a_cost, a_load) < (b_inf, b_cost, b_load)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> CostReport {
        CostReport {
            avg_hops: 2.25,
            mean_hops: 2.1,
            design_area: 57.9,
            floorplan_area: 60.0,
            switch_area: 6.2,
            power_mw: 372.0,
            switch_power_mw: 330.0,
            link_power_mw: 42.0,
            max_link_load: 450.0,
            avg_link_length_mm: 2.2,
            chip_aspect: 1.5,
            bandwidth_ok: true,
            area_ok: true,
            bandwidth_enforced: true,
            switch_count: 12,
            link_count: 29,
        }
    }

    #[test]
    fn cost_selects_metric() {
        let r = report();
        assert_eq!(r.cost(Objective::MinDelay), 2.25);
        assert_eq!(r.cost(Objective::MinArea), 57.9);
        assert_eq!(r.cost(Objective::MinPower), 372.0);
        assert_eq!(r.cost(Objective::MinBandwidth), 450.0);
    }

    #[test]
    fn feasibility_gate() {
        let mut r = report();
        assert!(r.feasible());
        r.bandwidth_ok = false;
        assert!(!r.feasible());
        r.bandwidth_enforced = false;
        assert!(r.feasible(), "relaxed bandwidth ignores overload");
        r.area_ok = false;
        assert!(!r.feasible(), "area violations always matter");
    }

    #[test]
    fn feasible_always_beats_infeasible() {
        let good = report();
        let mut bad = report();
        bad.bandwidth_ok = false;
        bad.avg_hops = 1.0; // better cost, but infeasible
        assert!(good.better_than(&bad, Objective::MinDelay));
        assert!(!bad.better_than(&good, Objective::MinDelay));
    }

    #[test]
    fn lower_cost_wins_between_feasibles() {
        let a = report();
        let mut b = report();
        b.power_mw = 300.0;
        assert!(b.better_than(&a, Objective::MinPower));
        assert!(!a.better_than(&b, Objective::MinPower));
        assert!(!a.better_than(&a.clone(), Objective::MinPower));
    }

    #[test]
    fn default_constraints_are_permissive() {
        let c = Constraints::default();
        assert!(c.max_area_mm2.is_none());
        assert!(c.enforce_bandwidth);
        let r = Constraints::relaxed_bandwidth();
        assert!(!r.enforce_bandwidth);
        let a = Constraints::with_max_area(70.0);
        assert_eq!(a.max_area_mm2, Some(70.0));
    }
}
