//! The one-to-one mapping function `map: V -> U` (paper Eq. 1).

use crate::MappingError;
use sunmap_topology::{NodeId, TopologyGraph};
use sunmap_traffic::CoreId;

/// An injective assignment of application cores to mappable topology
/// vertices.
///
/// # Examples
///
/// ```
/// use sunmap_mapping::Placement;
/// use sunmap_topology::builders;
///
/// let mesh = builders::mesh(2, 2, 500.0)?;
/// let slots = mesh.mappable_nodes().to_vec();
/// let p = Placement::new(vec![slots[0], slots[3]], &mesh)?;
/// assert_eq!(p.core_at(slots[3]), Some(sunmap_traffic::CoreId(1)));
/// assert_eq!(p.core_at(slots[1]), None);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Placement {
    core_to_node: Vec<NodeId>,
    /// Node-indexed reverse table. A flat vector (not a map): the swap
    /// search clones placements per sweep worker and probes occupancy
    /// on every layout/link loop, so O(1) unhashed access matters.
    node_to_core: Vec<Option<CoreId>>,
}

impl Placement {
    /// Creates a placement where core `i` sits on `assignment[i]`.
    ///
    /// # Errors
    ///
    /// Returns [`MappingError::InvalidPlacement`] if any target is not
    /// mappable in `graph` or two cores share a vertex.
    pub fn new(assignment: Vec<NodeId>, graph: &TopologyGraph) -> Result<Self, MappingError> {
        let mut node_to_core = vec![None; graph.node_count()];
        for (i, node) in assignment.iter().enumerate() {
            if !graph.mappable_nodes().contains(node) {
                return Err(MappingError::InvalidPlacement(format!(
                    "core c{i} assigned to non-mappable vertex {node}"
                )));
            }
            if node_to_core[node.index()].replace(CoreId(i)).is_some() {
                return Err(MappingError::InvalidPlacement(format!(
                    "vertex {node} hosts two cores"
                )));
            }
        }
        Ok(Placement {
            core_to_node: assignment,
            node_to_core,
        })
    }

    /// Number of placed cores `|V|`.
    pub fn core_count(&self) -> usize {
        self.core_to_node.len()
    }

    /// The vertex hosting `core` — `map(v_i)`.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of bounds.
    pub fn node_of(&self, core: CoreId) -> NodeId {
        self.core_to_node[core.index()]
    }

    /// The core hosted on `node`, if any.
    pub fn core_at(&self, node: NodeId) -> Option<CoreId> {
        self.node_to_core[node.index()]
    }

    /// The full core→vertex table.
    pub fn assignment(&self) -> &[NodeId] {
        &self.core_to_node
    }

    /// Swaps the occupants of two topology vertices (phase 3 of the
    /// Fig. 5 algorithm). Either vertex may be empty; swapping two empty
    /// vertices returns `false` (nothing changed).
    pub fn swap_nodes(&mut self, a: NodeId, b: NodeId) -> bool {
        if a == b {
            return false;
        }
        let ca = self.node_to_core[a.index()].take();
        let cb = self.node_to_core[b.index()].take();
        if ca.is_none() && cb.is_none() {
            return false;
        }
        if let Some(c) = ca {
            self.node_to_core[b.index()] = Some(c);
            self.core_to_node[c.index()] = b;
        }
        if let Some(c) = cb {
            self.node_to_core[a.index()] = Some(c);
            self.core_to_node[c.index()] = a;
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sunmap_topology::builders;

    fn mesh22() -> TopologyGraph {
        builders::mesh(2, 2, 500.0).unwrap()
    }

    #[test]
    fn bijective_bookkeeping() {
        let g = mesh22();
        let m = g.mappable_nodes().to_vec();
        let p = Placement::new(vec![m[2], m[0], m[3]], &g).unwrap();
        assert_eq!(p.core_count(), 3);
        assert_eq!(p.node_of(CoreId(0)), m[2]);
        assert_eq!(p.core_at(m[0]), Some(CoreId(1)));
        assert_eq!(p.core_at(m[1]), None);
    }

    #[test]
    fn duplicate_target_rejected() {
        let g = mesh22();
        let m = g.mappable_nodes().to_vec();
        assert!(Placement::new(vec![m[0], m[0]], &g).is_err());
    }

    #[test]
    fn non_mappable_target_rejected() {
        let g = builders::clos(2, 2, 2, 500.0).unwrap();
        let sw = g.switch_at_stage(0, 0).unwrap();
        assert!(Placement::new(vec![sw], &g).is_err());
    }

    #[test]
    fn swap_core_with_core() {
        let g = mesh22();
        let m = g.mappable_nodes().to_vec();
        let mut p = Placement::new(vec![m[0], m[1]], &g).unwrap();
        assert!(p.swap_nodes(m[0], m[1]));
        assert_eq!(p.node_of(CoreId(0)), m[1]);
        assert_eq!(p.node_of(CoreId(1)), m[0]);
    }

    #[test]
    fn swap_core_with_empty() {
        let g = mesh22();
        let m = g.mappable_nodes().to_vec();
        let mut p = Placement::new(vec![m[0]], &g).unwrap();
        assert!(p.swap_nodes(m[0], m[3]));
        assert_eq!(p.node_of(CoreId(0)), m[3]);
        assert_eq!(p.core_at(m[0]), None);
        // Swapping two empties is a no-op.
        assert!(!p.swap_nodes(m[0], m[1]));
        // Self-swap is a no-op.
        assert!(!p.swap_nodes(m[3], m[3]));
    }
}
