//! Batch exploration: many applications × configurations in one
//! sharded invocation.
//!
//! A [`BatchManifest`] names the grid — applications (built-in
//! benchmarks, `.app` files, or [`SyntheticSpec`] `synth:` specs),
//! objectives, routing functions, link capacities and constraint
//! regimes — and [`run_batch`] executes its cross product across
//! `std::thread::scope` workers. Each worker keeps **one
//! [`RouteTable`] per distinct topology** (reused across every job
//! mapping onto that topology via [`Mapper::with_route_table`]) and,
//! when the manifest requests a simulation probe, **one
//! [`RoutePlan`] per topology** compiled from that same table (via the
//! table's `prepare_sim_routes` path for indirect networks).
//!
//! Results stream as JSON-lines in job order — a positional reorder
//! buffer delivers line *k* only after lines `0..k`, so the output is
//! **byte-identical at any worker count** and a killed run leaves a
//! clean prefix that a resumed run extends to the same bytes.
//!
//! # Examples
//!
//! ```
//! use sunmap::batch::{run_batch, BatchManifest};
//!
//! let manifest = BatchManifest::parse(
//!     "app dsp\napp synth:seed=1,cores=8\nobjective power\nrouting MP\ncapacity 1000\n",
//! )?;
//! let jobs = manifest.jobs()?;
//! assert_eq!(jobs.len(), 2);
//! let mut lines = Vec::new();
//! run_batch(&jobs, None, 2, |_, line| {
//!     lines.push(line.to_string());
//!     true // keep going; false cancels the run
//! });
//! assert_eq!(lines.len(), 2);
//! assert!(lines[0].starts_with("{\"schema\":\"sunmap-batch/1\""));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::Arc;

use crate::flow::{rank_reports, SelectionPolicy};
use sunmap_mapping::{
    Constraints, CostReport, Mapper, MapperConfig, Objective, RouteTable, RoutingFunction,
};
use sunmap_sim::sweep::{json_number, json_string, stats_json_fields};
use sunmap_sim::{NocSimulator, RoutePlan, SimConfig};
use sunmap_topology::{builders, TopologyGraph};
use sunmap_traffic::patterns::TrafficPattern;
use sunmap_traffic::synthetic::SyntheticSpec;
use sunmap_traffic::{benchmarks, io, CoreGraph};

/// Resolves an application spec the way every CLI surface does: a
/// built-in benchmark name (`vopd`, `mpeg4`, `dsp`, `netproc`), a
/// seeded synthetic spec (`synth:seed=..,cores=..`), or a `.app` file
/// path.
///
/// # Errors
///
/// Returns a human-readable message naming the spec and the failure.
/// Empty applications (a `.app` file with no `core` lines) are
/// rejected here, so every downstream consumer can rely on a
/// non-empty graph.
pub fn resolve_app(spec: &str) -> Result<CoreGraph, String> {
    let app = match spec {
        "vopd" => benchmarks::vopd(),
        "mpeg4" => benchmarks::mpeg4(),
        "dsp" => benchmarks::dsp_filter(),
        "netproc" => benchmarks::network_processor(100.0),
        s if SyntheticSpec::is_spec(s) => {
            let spec: SyntheticSpec = s.parse().map_err(|e| format!("{s}: {e}"))?;
            spec.generate()
        }
        path => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| format!("cannot read application '{path}': {e}"))?;
            io::parse_app(&text).map_err(|e| format!("{path}: {e}"))?
        }
    };
    if app.core_count() == 0 {
        return Err(format!("application '{spec}' declares no cores"));
    }
    Ok(app)
}

/// One constraint regime of the manifest grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConstraintMode {
    /// Bandwidth feasibility enforced ([`Constraints::default`]).
    Strict,
    /// Bandwidth feasibility relaxed
    /// ([`Constraints::relaxed_bandwidth`], the paper's §6.2 mode).
    Relaxed,
}

impl ConstraintMode {
    /// The mapper constraints this mode selects.
    pub fn constraints(self) -> Constraints {
        match self {
            ConstraintMode::Strict => Constraints::default(),
            ConstraintMode::Relaxed => Constraints::relaxed_bandwidth(),
        }
    }

    /// Manifest/JSONL spelling.
    pub fn name(self) -> &'static str {
        match self {
            ConstraintMode::Strict => "strict",
            ConstraintMode::Relaxed => "relaxed",
        }
    }
}

/// An optional per-job simulation probe: the winning topology is
/// simulated under this synthetic pattern and injection rate, through
/// the worker's shared per-topology [`RoutePlan`].
#[derive(Debug, Clone, PartialEq)]
pub struct SimProbe {
    /// Destination pattern for the probe.
    pub pattern: TrafficPattern,
    /// Injection rate in flits/cycle/terminal.
    pub rate: f64,
}

/// Errors from manifest parsing and job expansion.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ManifestError {
    /// A line did not match any directive.
    UnknownDirective {
        /// 1-based line number.
        line: usize,
        /// The offending word.
        word: String,
    },
    /// A directive carried a bad value.
    BadValue {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// The manifest declares no applications.
    NoApps,
    /// An application spec failed to resolve.
    BadApp {
        /// The application spec.
        spec: String,
        /// The resolver's message.
        message: String,
    },
}

impl std::fmt::Display for ManifestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ManifestError::UnknownDirective { line, word } => write!(
                f,
                "line {line}: unknown directive '{word}' (valid: app, objective, \
                 routing, capacity, constraints, simulate)"
            ),
            ManifestError::BadValue { line, message } => write!(f, "line {line}: {message}"),
            ManifestError::NoApps => write!(f, "manifest declares no applications"),
            ManifestError::BadApp { spec, message } => {
                write!(f, "application '{spec}': {message}")
            }
        }
    }
}

impl std::error::Error for ManifestError {}

/// A parsed job manifest: the axes of the exploration grid.
///
/// The text format is line based; `#` starts a comment. Each directive
/// adds one value to its axis, and the job list is the cross product
/// `apps × capacities × objectives × routings × constraints` in that
/// nesting order. Axes left empty fall back to a single default
/// (objective `delay`, routing `MP`, capacity `500`, constraints
/// `strict`); repeated values within an axis are deduplicated (first
/// occurrence wins), keeping job ids unique.
///
/// ```text
/// # 2 apps x 2 objectives x 1 routing = 4 jobs
/// app vopd
/// app synth:seed=7,cores=16
/// objective power
/// objective delay
/// routing MP
/// capacity 500
/// constraints strict
/// simulate uniform 0.1      # optional: simulate each winner
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct BatchManifest {
    /// Application specs, in declaration order.
    pub apps: Vec<String>,
    /// Objective axis (empty = `[MinDelay]`).
    pub objectives: Vec<Objective>,
    /// Routing axis (empty = `[MinPath]`).
    pub routings: Vec<RoutingFunction>,
    /// Link-capacity axis in MB/s (empty = `[500.0]`).
    pub capacities: Vec<f64>,
    /// Constraint-regime axis (empty = `[Strict]`).
    pub constraints: Vec<ConstraintMode>,
    /// Winner simulation probe, if requested.
    pub probe: Option<SimProbe>,
}

impl BatchManifest {
    /// Parses the manifest text.
    ///
    /// # Errors
    ///
    /// Returns the first offending line.
    pub fn parse(text: &str) -> Result<BatchManifest, ManifestError> {
        let mut m = BatchManifest::default();
        for (idx, raw) in text.lines().enumerate() {
            let line = idx + 1;
            let bad = |message: String| ManifestError::BadValue { line, message };
            let content = raw.split('#').next().unwrap_or("").trim();
            if content.is_empty() {
                continue;
            }
            let (word, rest) = match content.split_once(char::is_whitespace) {
                Some((w, r)) => (w, r.trim()),
                None => (content, ""),
            };
            if rest.is_empty() {
                return Err(bad(format!("'{word}' needs a value")));
            }
            match word {
                "app" => m.apps.push(rest.to_string()),
                "objective" => m.objectives.push(parse_objective(rest).map_err(bad)?),
                "routing" => m.routings.push(parse_routing(rest).map_err(bad)?),
                "capacity" => {
                    let cap: f64 = rest
                        .parse()
                        .map_err(|_| bad(format!("'{rest}' is not a capacity in MB/s")))?;
                    if !(cap.is_finite() && cap > 0.0) {
                        return Err(bad("capacity must be positive".to_string()));
                    }
                    m.capacities.push(cap);
                }
                "constraints" => m.constraints.push(match rest {
                    "strict" => ConstraintMode::Strict,
                    "relaxed" => ConstraintMode::Relaxed,
                    other => {
                        return Err(bad(format!(
                            "unknown constraints '{other}' (valid: strict, relaxed)"
                        )))
                    }
                }),
                "simulate" => {
                    let (pattern, rate) = rest
                        .split_once(char::is_whitespace)
                        .ok_or_else(|| bad("'simulate' needs a pattern and a rate".to_string()))?;
                    let pattern = TrafficPattern::from_name(pattern.trim()).ok_or_else(|| {
                        bad(format!(
                            "unknown pattern '{}' (valid: {})",
                            pattern.trim(),
                            TrafficPattern::NAMES.join(", ")
                        ))
                    })?;
                    let rate: f64 = rate
                        .trim()
                        .parse()
                        .map_err(|_| bad(format!("'{}' is not a rate", rate.trim())))?;
                    if !(rate.is_finite() && rate >= 0.0) {
                        return Err(bad("rate must be non-negative".to_string()));
                    }
                    m.probe = Some(SimProbe { pattern, rate });
                }
                other => {
                    return Err(ManifestError::UnknownDirective {
                        line,
                        word: other.to_string(),
                    })
                }
            }
        }
        Ok(m)
    }

    /// Expands the grid into its job list, loading each application
    /// once (shared by `Arc` across its jobs).
    ///
    /// # Errors
    ///
    /// [`ManifestError::NoApps`] for an app-less manifest,
    /// [`ManifestError::BadApp`] for an unresolvable spec.
    pub fn jobs(&self) -> Result<Vec<BatchJob>, ManifestError> {
        if self.apps.is_empty() {
            return Err(ManifestError::NoApps);
        }
        // Every axis is deduplicated (first occurrence wins): repeated
        // directives would otherwise mint jobs with identical ids,
        // which breaks the resume bookkeeping's one-line-per-id
        // contract and with it the byte-identity guarantee.
        let apps = dedup(&self.apps, |a, b| a == b);
        let objectives = non_empty(&self.objectives, Objective::MinDelay);
        let routings = non_empty(&self.routings, RoutingFunction::MinPath);
        let capacities = non_empty(&self.capacities, 500.0);
        let constraints = non_empty(&self.constraints, ConstraintMode::Strict);
        let mut jobs = Vec::new();
        for spec in &apps {
            let app = Arc::new(resolve_app(spec).map_err(|message| ManifestError::BadApp {
                spec: spec.clone(),
                message,
            })?);
            for &capacity in &capacities {
                for &objective in &objectives {
                    for &routing in &routings {
                        for &mode in &constraints {
                            jobs.push(BatchJob {
                                id: format!(
                                    "{spec}|{capacity}|{objective}|{}|{}",
                                    routing.abbrev(),
                                    mode.name()
                                ),
                                app_spec: spec.clone(),
                                app: app.clone(),
                                capacity,
                                objective,
                                routing,
                                mode,
                            });
                        }
                    }
                }
            }
        }
        Ok(jobs)
    }
}

fn non_empty<T: Copy + PartialEq>(axis: &[T], default: T) -> Vec<T> {
    if axis.is_empty() {
        vec![default]
    } else {
        dedup(axis, |a, b| a == b)
    }
}

fn dedup<T: Clone>(values: &[T], eq: impl Fn(&T, &T) -> bool) -> Vec<T> {
    let mut out: Vec<T> = Vec::with_capacity(values.len());
    for v in values {
        if !out.iter().any(|seen| eq(seen, v)) {
            out.push(v.clone());
        }
    }
    out
}

/// Parses an objective name (`delay`, `area`, `power`, `bandwidth`),
/// case-insensitively — shared by the manifest parser and the CLI's
/// `--objective` flag.
///
/// # Errors
///
/// The message lists the valid names.
pub fn parse_objective(text: &str) -> Result<Objective, String> {
    match text.to_ascii_lowercase().as_str() {
        "delay" => Ok(Objective::MinDelay),
        "area" => Ok(Objective::MinArea),
        "power" => Ok(Objective::MinPower),
        "bandwidth" => Ok(Objective::MinBandwidth),
        other => Err(format!(
            "unknown objective '{other}' (valid: delay, area, power, bandwidth)"
        )),
    }
}

/// Parses a routing-function abbreviation (`DO`, `MP`, `SM`, `SA`),
/// case-insensitively — shared by the manifest parser and the CLI's
/// `--routing` flag.
///
/// # Errors
///
/// The message lists the valid names.
pub fn parse_routing(text: &str) -> Result<RoutingFunction, String> {
    match text.to_ascii_uppercase().as_str() {
        "DO" => Ok(RoutingFunction::DimensionOrdered),
        "MP" => Ok(RoutingFunction::MinPath),
        "SM" => Ok(RoutingFunction::SplitMinPaths),
        "SA" => Ok(RoutingFunction::SplitAllPaths),
        other => Err(format!("unknown routing '{other}' (valid: DO, MP, SM, SA)")),
    }
}

/// One cell of the exploration grid, ready to run.
#[derive(Debug, Clone)]
pub struct BatchJob {
    /// Stable identifier (`app|capacity|objective|routing|mode`) used
    /// for resume bookkeeping and carried in the JSONL line.
    pub id: String,
    /// The application spec as written in the manifest.
    pub app_spec: String,
    /// The loaded application, shared across the spec's jobs.
    pub app: Arc<CoreGraph>,
    /// Link capacity in MB/s.
    pub capacity: f64,
    /// Mapping/selection objective.
    pub objective: Objective,
    /// Routing function.
    pub routing: RoutingFunction,
    /// Constraint regime.
    pub mode: ConstraintMode,
}

/// Worker-local per-topology state: the graph, its route table (shared
/// by every mapping job on this topology) and, lazily, the simulation
/// route plan compiled from that same table.
struct TopoCache {
    graph: TopologyGraph,
    table: RouteTable,
    plan: Option<Arc<RoutePlan>>,
}

/// Worker-local library cache, keyed by the inputs that determine the
/// standard library: core count and link capacity.
struct LibraryCache {
    entries: Vec<((usize, u64), Vec<TopoCache>)>,
}

impl LibraryCache {
    fn new() -> Self {
        LibraryCache {
            entries: Vec::new(),
        }
    }

    fn library(&mut self, cores: usize, capacity: f64) -> &mut Vec<TopoCache> {
        let key = (cores, capacity.to_bits());
        if let Some(i) = self.entries.iter().position(|(k, _)| *k == key) {
            return &mut self.entries[i].1;
        }
        let topos = builders::standard_library(cores, capacity)
            .expect("jobs carry non-empty applications")
            .into_iter()
            .map(|graph| TopoCache {
                table: RouteTable::new(&graph),
                graph,
                plan: None,
            })
            .collect();
        self.entries.push((key, topos));
        &mut self.entries.last_mut().expect("just pushed").1
    }
}

/// Runs one job against the worker's shared caches and renders its
/// JSONL line.
fn run_job(job: &BatchJob, cache: &mut LibraryCache, probe: Option<&SimProbe>) -> String {
    // SwapStrategy::Auto (via ..default()) keeps the seed benchmarks on
    // the exhaustive sweep (stable evaluation counts) while large
    // synthetic grids get the incremental delta engine.
    let config = MapperConfig {
        routing: job.routing,
        objective: job.objective,
        constraints: job.mode.constraints(),
        ..MapperConfig::default()
    };
    let topos = cache.library(job.app.core_count(), job.capacity);
    let outcomes: Vec<_> = topos
        .iter_mut()
        .map(|tc| {
            Mapper::new(&tc.graph, &job.app, config)
                .with_route_table(&mut tc.table)
                .run()
        })
        .collect();
    let reports: Vec<Option<&CostReport>> = outcomes
        .iter()
        .map(|o| o.as_ref().ok().map(|m| m.report()))
        .collect();
    let ranked = rank_reports(&reports, SelectionPolicy::Balanced, job.objective);
    let winner = ranked.first().copied();

    let mut line = format!(
        "{{\"schema\":\"sunmap-batch/1\",\"job\":{},\"app\":{},\"cores\":{},\
         \"capacity\":{},\"objective\":{},\"routing\":{},\"constraints\":{}",
        json_string(&job.id),
        json_string(&job.app_spec),
        job.app.core_count(),
        json_number(job.capacity),
        json_string(&job.objective.to_string()),
        json_string(job.routing.abbrev()),
        json_string(job.mode.name()),
    );
    let feasible = reports.iter().filter(|r| r.is_some()).count();
    let evaluated: usize = outcomes
        .iter()
        .filter_map(|o| o.as_ref().ok().map(|m| m.evaluated_candidates()))
        .sum();
    line.push_str(&format!(
        ",\"candidates\":{},\"feasible\":{feasible},\"evaluated\":{evaluated}",
        topos.len()
    ));
    line.push_str(",\"topologies\":[");
    for (i, tc) in topos.iter().enumerate() {
        if i > 0 {
            line.push(',');
        }
        match reports[i] {
            Some(r) => line.push_str(&format!(
                "{{\"topology\":{},\"feasible\":true,\"avg_hops\":{},\
                 \"design_area\":{},\"power_mw\":{}}}",
                json_string(tc.graph.kind().name()),
                json_number(r.avg_hops),
                json_number(r.design_area),
                json_number(r.power_mw),
            )),
            None => line.push_str(&format!(
                "{{\"topology\":{},\"feasible\":false}}",
                json_string(tc.graph.kind().name())
            )),
        }
    }
    line.push(']');
    match winner {
        Some(w) => {
            let r = reports[w].expect("ranked candidates are feasible");
            line.push_str(&format!(
                ",\"winner\":{{\"topology\":{},\"avg_hops\":{},\"design_area\":{},\
                 \"floorplan_area\":{},\"power_mw\":{},\"max_link_load\":{},\
                 \"evaluated\":{}}}",
                json_string(topos[w].graph.kind().name()),
                json_number(r.avg_hops),
                json_number(r.design_area),
                json_number(r.floorplan_area),
                json_number(r.power_mw),
                json_number(r.max_link_load),
                outcomes[w]
                    .as_ref()
                    .map(|m| m.evaluated_candidates())
                    .expect("winner is feasible"),
            ));
            if let Some(probe) = probe {
                let tc = &mut topos[w];
                let config = SimConfig::default();
                // The probe plan comes from the same shared table the
                // mapper used; compiled once per topology, reused by
                // every later job that picks the same winner.
                let plan = match &tc.plan {
                    Some(plan) => plan.clone(),
                    None => {
                        let plan =
                            Arc::new(RoutePlan::synthetic(&tc.graph, &mut tc.table, &config));
                        tc.plan = Some(plan.clone());
                        plan
                    }
                };
                let mut sim = NocSimulator::with_plan(&tc.graph, config, plan);
                let stats = sim.run_synthetic(&probe.pattern, probe.rate);
                line.push_str(&format!(
                    ",\"sim\":{{\"pattern\":{},\"rate\":{},{}}}",
                    json_string(probe.pattern.name()),
                    json_number(probe.rate),
                    stats_json_fields(&stats),
                ));
            }
        }
        None => line.push_str(",\"winner\":null"),
    }
    line.push('}');
    line
}

/// Executes `jobs` across at most `workers` scoped threads (`0` = one
/// per available CPU) and delivers each job's JSONL line through
/// `on_line(position, line)` **in job order** — line `k` is delivered
/// only after lines `0..k`, whatever the sharding, so streaming the
/// lines straight to a file yields byte-identical output at any worker
/// count.
///
/// `on_line` returns whether to keep going: `false` (e.g. the sink
/// hit a write error) cancels the run — in-flight jobs finish, queued
/// ones are abandoned, and `on_line` is not called again.
///
/// Jobs are split into contiguous chunks (jobs of the same application
/// and capacity sit next to each other in manifest order, so a chunk's
/// worker reuses its per-topology route tables across them).
pub fn run_batch(
    jobs: &[BatchJob],
    probe: Option<&SimProbe>,
    workers: usize,
    mut on_line: impl FnMut(usize, &str) -> bool,
) {
    let workers = effective_workers(workers, jobs.len());
    if workers <= 1 {
        let mut cache = LibraryCache::new();
        for (i, job) in jobs.iter().enumerate() {
            let line = run_job(job, &mut cache, probe);
            if !on_line(i, &line) {
                return;
            }
        }
        return;
    }
    let chunk = jobs.len().div_ceil(workers);
    let abort = AtomicBool::new(false);
    let (tx, rx) = mpsc::channel::<(usize, String)>();
    std::thread::scope(|s| {
        for (c, chunk_jobs) in jobs.chunks(chunk).enumerate() {
            let tx = tx.clone();
            let abort = &abort;
            s.spawn(move || {
                let mut cache = LibraryCache::new();
                for (i, job) in chunk_jobs.iter().enumerate() {
                    if abort.load(Ordering::Relaxed) {
                        break;
                    }
                    let line = run_job(job, &mut cache, probe);
                    // A send fails only after a cancelled receiver has
                    // hung up; the abort flag then ends the loop.
                    let _ = tx.send((c * chunk + i, line));
                }
            });
        }
        drop(tx);
        let mut pending: BTreeMap<usize, String> = BTreeMap::new();
        let mut next = 0usize;
        for (idx, line) in rx {
            pending.insert(idx, line);
            while let Some(line) = pending.remove(&next) {
                if !on_line(next, &line) {
                    abort.store(true, Ordering::Relaxed);
                    return; // drops rx; workers drain via abort/send-fail
                }
                next += 1;
            }
        }
        debug_assert_eq!(next, jobs.len(), "all jobs reduced in order");
    });
}

/// Extracts the `"job"` field of a batch JSONL line (the first string
/// value after `"job":`), decoding exactly the escapes
/// [`json_string`] emits so an id containing a quote, backslash or
/// control character round-trips for the resume comparison.
pub fn job_id_of_line(line: &str) -> Option<String> {
    let rest = line.split_once("\"job\":\"")?.1;
    let mut id = String::new();
    let mut chars = rest.chars();
    while let Some(c) = chars.next() {
        match c {
            '"' => return Some(id),
            '\\' => id.push(match chars.next()? {
                'n' => '\n',
                'r' => '\r',
                't' => '\t',
                'u' => {
                    let hex: String = chars.by_ref().take(4).collect();
                    char::from_u32(u32::from_str_radix(&hex, 16).ok()?)?
                }
                other => other, // \" \\ \/
            }),
            c => id.push(c),
        }
    }
    None
}

/// How a `--resume` run picks up from an interrupted output file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResumePlan {
    /// Bytes of the existing file to keep: the complete-line prefix. A
    /// kill mid-write may leave a trailing fragment with no newline —
    /// even one whose bytes happen to parse as a full JSON object —
    /// and it is always discarded and its job re-run, because only the
    /// newline proves the writer finished the line.
    pub keep_bytes: usize,
    /// How many leading jobs of the manifest those lines cover; the
    /// resumed run executes the remainder and appends.
    pub completed_jobs: usize,
}

/// Validates an interrupted `batch.jsonl` against the manifest's job
/// list and returns the [`ResumePlan`]. Because `run_batch` delivers
/// lines strictly in job order, a killed run leaves a prefix of the
/// uninterrupted output (possibly plus a partial trailing line);
/// resuming from the plan therefore reproduces the uninterrupted bytes
/// exactly.
///
/// # Errors
///
/// Refuses to resume when the existing complete lines are *not* the
/// manifest's job prefix — a carried-over file from a different
/// manifest would otherwise be silently extended with out-of-order
/// lines, breaking the byte-identity contract.
pub fn plan_resume(jobs: &[BatchJob], existing: &str) -> Result<ResumePlan, String> {
    let keep_bytes = existing.rfind('\n').map(|i| i + 1).unwrap_or(0);
    let mut completed = 0usize;
    for line in existing[..keep_bytes].lines() {
        let id = job_id_of_line(line).ok_or_else(|| {
            format!(
                "existing output line {} carries no job id; refusing to resume",
                completed + 1
            )
        })?;
        let Some(job) = jobs.get(completed) else {
            return Err(format!(
                "existing output has more complete lines than the manifest has jobs \
                 ({}); refusing to resume",
                jobs.len()
            ));
        };
        if job.id != id {
            return Err(format!(
                "existing output line {} is job '{}' but the manifest's job {} is '{}'; \
                 the output is not a prefix of this manifest — refusing to resume",
                completed + 1,
                id,
                completed + 1,
                job.id
            ));
        }
        completed += 1;
    }
    Ok(ResumePlan {
        keep_bytes,
        completed_jobs: completed,
    })
}

fn effective_workers(requested: usize, jobs: usize) -> usize {
    let cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let w = if requested == 0 { cpus } else { requested };
    w.min(jobs).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SMALL_GRID: &str = "\
# two apps x two objectives
app dsp
app synth:seed=3,cores=8
objective power
objective delay
routing MP
capacity 1000
";

    fn collect(jobs: &[BatchJob], probe: Option<&SimProbe>, workers: usize) -> Vec<String> {
        let mut lines = Vec::new();
        run_batch(jobs, probe, workers, |i, line| {
            assert_eq!(i, lines.len(), "lines must arrive in job order");
            lines.push(line.to_string());
            true
        });
        lines
    }

    #[test]
    fn manifest_cross_product_order_and_ids() {
        let m = BatchManifest::parse(SMALL_GRID).unwrap();
        let jobs = m.jobs().unwrap();
        let ids: Vec<&str> = jobs.iter().map(|j| j.id.as_str()).collect();
        assert_eq!(
            ids,
            [
                "dsp|1000|min-power|MP|strict",
                "dsp|1000|min-delay|MP|strict",
                "synth:seed=3,cores=8|1000|min-power|MP|strict",
                "synth:seed=3,cores=8|1000|min-delay|MP|strict",
            ]
        );
        // The app graph is loaded once and shared across its jobs.
        assert!(Arc::ptr_eq(&jobs[0].app, &jobs[1].app));
        assert!(!Arc::ptr_eq(&jobs[1].app, &jobs[2].app));
    }

    #[test]
    fn manifest_defaults_fill_empty_axes() {
        let m = BatchManifest::parse("app dsp\n").unwrap();
        let jobs = m.jobs().unwrap();
        assert_eq!(jobs.len(), 1);
        assert_eq!(jobs[0].objective, Objective::MinDelay);
        assert_eq!(jobs[0].routing, RoutingFunction::MinPath);
        assert_eq!(jobs[0].capacity, 500.0);
        assert_eq!(jobs[0].mode, ConstraintMode::Strict);
    }

    #[test]
    fn manifest_errors_name_the_line() {
        let e = BatchManifest::parse("frob vopd\n").unwrap_err();
        assert!(e.to_string().contains("line 1"), "{e}");
        assert!(e.to_string().contains("unknown directive"), "{e}");
        let e = BatchManifest::parse("app vopd\nobjective speed\n").unwrap_err();
        assert!(e.to_string().contains("line 2"), "{e}");
        let e = BatchManifest::parse("app vopd\nrouting XY\n").unwrap_err();
        assert!(e.to_string().contains("unknown routing"), "{e}");
        let e = BatchManifest::parse("capacity -5\n").unwrap_err();
        assert!(e.to_string().contains("positive"), "{e}");
        let e = BatchManifest::parse("simulate warp 0.1\n").unwrap_err();
        assert!(e.to_string().contains("uniform"), "error lists names: {e}");
        assert!(matches!(
            BatchManifest::parse("").unwrap().jobs(),
            Err(ManifestError::NoApps)
        ));
        let e = BatchManifest::parse("app nope.app\n")
            .unwrap()
            .jobs()
            .unwrap_err();
        assert!(matches!(e, ManifestError::BadApp { .. }));
    }

    #[test]
    fn resolve_app_handles_all_spec_kinds() {
        assert_eq!(resolve_app("vopd").unwrap().core_count(), 12);
        assert_eq!(resolve_app("netproc").unwrap().core_count(), 16);
        assert_eq!(
            resolve_app("synth:seed=1,cores=10").unwrap().core_count(),
            10
        );
        assert!(resolve_app("synth:cores=1")
            .unwrap_err()
            .contains("2..=4096"));
        assert!(resolve_app("/no/such.app")
            .unwrap_err()
            .contains("cannot read"));
    }

    #[test]
    fn repeated_axis_values_are_deduplicated() {
        // Duplicate directives would mint identical job ids, breaking
        // the resume bookkeeping's one-line-per-id contract.
        let m = BatchManifest::parse(
            "app dsp\napp dsp\nobjective power\nobjective power\ncapacity 1000\ncapacity 1000\n",
        )
        .unwrap();
        let jobs = m.jobs().unwrap();
        assert_eq!(jobs.len(), 1);
        let ids: std::collections::BTreeSet<&str> = jobs.iter().map(|j| j.id.as_str()).collect();
        assert_eq!(ids.len(), jobs.len(), "job ids must be unique");
    }

    #[test]
    fn empty_applications_are_rejected_at_load_time() {
        let dir = std::env::temp_dir().join("sunmap_batch_empty_app");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("empty.app");
        std::fs::write(&path, "# no cores declared\n").unwrap();
        let err = resolve_app(path.to_str().unwrap()).unwrap_err();
        assert!(err.contains("declares no cores"), "{err}");
        let m = BatchManifest::parse(&format!("app {}\n", path.display())).unwrap();
        assert!(matches!(m.jobs(), Err(ManifestError::BadApp { .. })));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn a_false_sink_cancels_the_run() {
        let m = BatchManifest::parse(
            "app dsp\nobjective power\nobjective delay\nrouting MP\nrouting DO\ncapacity 1000\n",
        )
        .unwrap();
        let jobs = m.jobs().unwrap();
        assert_eq!(jobs.len(), 4);
        for workers in [1, 2] {
            let mut delivered = Vec::new();
            run_batch(&jobs, None, workers, |i, line| {
                delivered.push((i, line.to_string()));
                delivered.len() < 2
            });
            assert_eq!(delivered.len(), 2, "{workers} workers: not cancelled");
            assert_eq!(delivered[0].0, 0);
            assert_eq!(delivered[1].0, 1);
        }
    }

    /// Replays a kill-and-resume at byte offset `cut` of the
    /// uninterrupted output and asserts the recovered run reproduces
    /// the exact bytes.
    fn assert_resume_reproduces(jobs: &[BatchJob], full: &str, cut: usize) {
        let existing = &full[..cut];
        let plan = plan_resume(jobs, existing).expect("prefix output resumes");
        assert!(plan.keep_bytes <= existing.len());
        let mut rebuilt = existing[..plan.keep_bytes].to_string();
        run_batch(&jobs[plan.completed_jobs..], None, 1, |_, line| {
            rebuilt.push_str(line);
            rebuilt.push('\n');
            true
        });
        assert_eq!(rebuilt, full, "cut at byte {cut} did not reproduce");
    }

    #[test]
    fn resume_recovers_newline_boundary_and_midline_kills() {
        let jobs = BatchManifest::parse(SMALL_GRID).unwrap().jobs().unwrap();
        let mut full = String::new();
        run_batch(&jobs, None, 1, |_, line| {
            full.push_str(line);
            full.push('\n');
            true
        });
        let line_ends: Vec<usize> = full
            .char_indices()
            .filter(|(_, c)| *c == '\n')
            .map(|(i, _)| i + 1)
            .collect();
        assert_eq!(line_ends.len(), jobs.len());

        // Killed exactly at a newline boundary: every complete line
        // survives, only the missing jobs re-run.
        for &end in &line_ends {
            assert_resume_reproduces(&jobs, &full, end);
        }
        // Killed mid-line: the partial trailing fragment is dropped and
        // its job re-runs. The most treacherous cut is one byte short
        // of the newline — the fragment is a complete JSON object whose
        // prefix parses, but without the newline it must not count.
        let mut prev = 0usize;
        for &end in &line_ends {
            assert_resume_reproduces(&jobs, &full, end - 1);
            assert_resume_reproduces(&jobs, &full, prev + (end - prev) / 2);
            prev = end;
        }
        // Empty file (a kill before the first write).
        assert_resume_reproduces(&jobs, &full, 0);
    }

    #[test]
    fn resume_refuses_foreign_or_oversized_output() {
        let jobs = BatchManifest::parse(SMALL_GRID).unwrap().jobs().unwrap();
        let mut full = String::new();
        run_batch(&jobs, None, 1, |_, line| {
            full.push_str(line);
            full.push('\n');
            true
        });
        // Output whose first line is some other manifest's job.
        let foreign = "{\"schema\":\"sunmap-batch/1\",\"job\":\"other|500|min-delay|MP|strict\"}\n";
        let err = plan_resume(&jobs, foreign).unwrap_err();
        assert!(err.contains("not a prefix"), "{err}");
        // A complete line with no job id at all.
        let err = plan_resume(&jobs, "{\"schema\":\"sunmap-batch/1\"}\n").unwrap_err();
        assert!(err.contains("no job id"), "{err}");
        // More lines than the manifest has jobs.
        let mut oversized = full.clone();
        oversized.push_str(&full[..full.find('\n').unwrap() + 1]);
        let err = plan_resume(&jobs, &oversized).unwrap_err();
        assert!(err.contains("more complete lines"), "{err}");
    }

    #[test]
    fn job_id_extraction_honours_escapes() {
        assert_eq!(
            job_id_of_line("{\"schema\":\"x\",\"job\":\"dsp|500|min-delay|MP|strict\",\"a\":1}"),
            Some("dsp|500|min-delay|MP|strict".to_string())
        );
        assert_eq!(
            job_id_of_line("{\"job\":\"a\\\"b\\\\c\"}"),
            Some("a\"b\\c".to_string())
        );
        // Control-character escapes decode to the character, not the
        // escape letter, so ids with tabs/newlines round-trip.
        assert_eq!(
            job_id_of_line("{\"job\":\"a\\tb\\nc\\u0007d\"}"),
            Some("a\tb\nc\u{7}d".to_string())
        );
        assert_eq!(job_id_of_line("{\"schema\":\"sunmap-ba"), None);
        assert_eq!(job_id_of_line("{\"job\":\"unterminated"), None);
        assert_eq!(job_id_of_line("{\"job\":\"bad\\u00"), None);
    }

    #[test]
    fn batch_output_is_worker_count_invariant() {
        let jobs = BatchManifest::parse(SMALL_GRID).unwrap().jobs().unwrap();
        let one = collect(&jobs, None, 1);
        assert_eq!(one.len(), jobs.len());
        for workers in [2, 4] {
            assert_eq!(one, collect(&jobs, None, workers), "{workers} workers");
        }
    }

    #[test]
    fn batch_lines_carry_the_result_schema() {
        let m = BatchManifest::parse("app dsp\ncapacity 1000\nsimulate uniform 0.05\n").unwrap();
        let jobs = m.jobs().unwrap();
        let lines = collect(&jobs, m.probe.as_ref(), 1);
        let line = &lines[0];
        assert!(line.starts_with("{\"schema\":\"sunmap-batch/1\""), "{line}");
        assert!(line.contains("\"job\":\"dsp|1000|min-delay|MP|strict\""));
        assert!(line.contains("\"candidates\":5"));
        assert!(line.contains("\"winner\":{\"topology\":"), "{line}");
        assert!(line.contains("\"sim\":{\"pattern\":\"uniform\""), "{line}");
        assert!(!line.contains('\n'));
    }

    #[test]
    fn infeasible_jobs_report_a_null_winner() {
        // 1 MB/s links cannot carry the DSP filter anywhere.
        let m = BatchManifest::parse("app dsp\ncapacity 1\n").unwrap();
        let lines = collect(&m.jobs().unwrap(), None, 1);
        assert!(lines[0].contains("\"feasible\":0"), "{}", lines[0]);
        assert!(lines[0].contains("\"winner\":null"), "{}", lines[0]);
    }

    #[test]
    fn batch_winner_agrees_with_the_flow() {
        // The batch engine's shared-table path must select exactly what
        // Sunmap::explore selects (PR-1's seed assertion: VOPD ->
        // Butterfly under MinPower).
        let m = BatchManifest::parse("app vopd\nobjective power\n").unwrap();
        let lines = collect(&m.jobs().unwrap(), None, 1);
        assert!(
            lines[0].contains("\"winner\":{\"topology\":\"Butterfly\""),
            "{}",
            lines[0]
        );
    }
}
