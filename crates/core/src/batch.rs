//! Batch exploration: many applications × configurations in one
//! sharded invocation.
//!
//! A [`BatchManifest`] names the grid — applications (any
//! [`AppSource`] spelling: built-in benchmarks, `synth:` specs,
//! `inline:` graphs or `.app` files), objectives, routing functions,
//! link capacities and constraint regimes — and expands each cell into
//! an [`ExploreRequest`] (see [`crate::request`]; the manifest parser
//! is one of the surfaces that construct it). [`run_batch`] executes
//! the requests across `std::thread::scope` workers. Each worker keeps
//! a [`crate::request::LruLibraryCache`]: **one route table per
//! distinct topology** (reused across every job mapping onto that
//! topology) and, when the manifest requests a simulation probe, **one
//! route plan per topology** compiled from that same table.
//!
//! Results stream as JSON-lines in job order — a positional reorder
//! buffer delivers line *k* only after lines `0..k`, so the output is
//! **byte-identical at any worker count** and a killed run leaves a
//! clean prefix that a resumed run extends to the same bytes.
//!
//! # Examples
//!
//! ```
//! use sunmap::batch::{run_batch, BatchManifest};
//!
//! let manifest = BatchManifest::parse(
//!     "app dsp\napp synth:seed=1,cores=8\nobjective power\nrouting MP\ncapacity 1000\n",
//! )?;
//! let jobs = manifest.jobs()?;
//! assert_eq!(jobs.len(), 2);
//! let mut lines = Vec::new();
//! run_batch(&jobs, 2, |_, line| {
//!     lines.push(line.to_string());
//!     true // keep going; false cancels the run
//! });
//! assert_eq!(lines.len(), 2);
//! assert!(lines[0].starts_with("{\"schema\":\"sunmap-batch/1\""));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::Arc;

use crate::request::{execute, parse_engine, parse_table_prep, ExploreRequest, LruLibraryCache};
use crate::schema::BATCH_SCHEMA;
use sunmap_mapping::{Objective, RoutingFunction, SwapStrategy, TablePrep};
use sunmap_sim::sweep::json_string;
use sunmap_sim::SimEngine;
use sunmap_traffic::{AppSource, CoreGraph};

// The request vocabulary lived here before `crate::request` unified
// the parse paths; re-exported so `sunmap::batch::{...}` stays valid.
pub use crate::request::{parse_objective, parse_routing, ConstraintMode, SimProbe};

/// Errors from manifest parsing and job expansion.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ManifestError {
    /// A line did not match any directive.
    UnknownDirective {
        /// 1-based line number.
        line: usize,
        /// The offending word.
        word: String,
    },
    /// A directive carried a bad value.
    BadValue {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// The manifest declares no applications.
    NoApps,
    /// An application spec failed to resolve.
    BadApp {
        /// The application spec.
        spec: String,
        /// The resolver's message.
        message: String,
    },
}

impl std::fmt::Display for ManifestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ManifestError::UnknownDirective { line, word } => write!(
                f,
                "line {line}: unknown directive '{word}' (valid: app, objective, \
                 routing, capacity, constraints, swap, engine, table-prep, simulate)"
            ),
            ManifestError::BadValue { line, message } => write!(f, "line {line}: {message}"),
            ManifestError::NoApps => write!(f, "manifest declares no applications"),
            ManifestError::BadApp { spec, message } => {
                write!(f, "application '{spec}': {message}")
            }
        }
    }
}

impl std::error::Error for ManifestError {}

/// A parsed job manifest: the axes of the exploration grid.
///
/// The text format is line based; `#` starts a comment. Each directive
/// adds one value to its axis, and the job list is the cross product
/// `apps × capacities × objectives × routings × constraints` in that
/// nesting order. Axes left empty fall back to a single default
/// (objective `delay`, routing `MP`, capacity `500`, constraints
/// `strict`); repeated values within an axis are deduplicated (first
/// occurrence wins), keeping job ids unique.
///
/// ```text
/// # 2 apps x 2 objectives x 1 routing = 4 jobs
/// app vopd
/// app synth:seed=7,cores=16
/// objective power
/// objective delay
/// routing MP
/// capacity 500
/// constraints strict
/// engine event              # optional: probe simulation engine
/// table-prep lazy           # optional: route-table preparation
/// simulate uniform 0.1 3    # optional: simulate each job's 3 best
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct BatchManifest {
    /// Application specs, in declaration order.
    pub apps: Vec<String>,
    /// Objective axis (empty = `[MinDelay]`).
    pub objectives: Vec<Objective>,
    /// Routing axis (empty = `[MinPath]`).
    pub routings: Vec<RoutingFunction>,
    /// Link-capacity axis in MB/s (empty = `[500.0]`).
    pub capacities: Vec<f64>,
    /// Constraint-regime axis (empty = `[Strict]`).
    pub constraints: Vec<ConstraintMode>,
    /// Phase-3 swap strategy applied to every job (default `auto`; not
    /// part of the job id — it never changes a job's winning bytes,
    /// only how fast the sweep finds them).
    pub swap: Option<SwapStrategy>,
    /// Simulation engine applied to every job's probe (default `auto`;
    /// not part of the job id — all engines are bit-identical, so it
    /// never changes a job's measured numbers, only how fast the probe
    /// runs).
    pub engine: Option<SimEngine>,
    /// Route-table preparation applied to every job (default `auto`;
    /// not part of the job id — every variant answers queries
    /// bit-identically, so it never changes a job's bytes, only how
    /// fast the tables come up).
    pub table_prep: Option<TablePrep>,
    /// Winner simulation probe, if requested.
    pub probe: Option<SimProbe>,
}

impl BatchManifest {
    /// Parses the manifest text.
    ///
    /// # Errors
    ///
    /// Returns the first offending line.
    pub fn parse(text: &str) -> Result<BatchManifest, ManifestError> {
        let mut m = BatchManifest::default();
        for (idx, raw) in text.lines().enumerate() {
            let line = idx + 1;
            let bad = |message: String| ManifestError::BadValue { line, message };
            let content = raw.split('#').next().unwrap_or("").trim();
            if content.is_empty() {
                continue;
            }
            let (word, rest) = match content.split_once(char::is_whitespace) {
                Some((w, r)) => (w, r.trim()),
                None => (content, ""),
            };
            if rest.is_empty() {
                return Err(bad(format!("'{word}' needs a value")));
            }
            match word {
                "app" => m.apps.push(rest.to_string()),
                "objective" => m.objectives.push(parse_objective(rest).map_err(bad)?),
                "routing" => m.routings.push(parse_routing(rest).map_err(bad)?),
                "capacity" => {
                    let cap: f64 = rest
                        .parse()
                        .map_err(|_| bad(format!("'{rest}' is not a capacity in MB/s")))?;
                    if !(cap.is_finite() && cap > 0.0) {
                        return Err(bad("capacity must be positive".to_string()));
                    }
                    m.capacities.push(cap);
                }
                "constraints" => m
                    .constraints
                    .push(ConstraintMode::parse(rest).map_err(bad)?),
                "swap" => m.swap = Some(crate::request::parse_swap(rest).map_err(bad)?),
                "engine" => m.engine = Some(parse_engine(rest).map_err(bad)?),
                "table-prep" => m.table_prep = Some(parse_table_prep(rest).map_err(bad)?),
                "simulate" => m.probe = Some(SimProbe::parse(rest).map_err(bad)?),
                other => {
                    return Err(ManifestError::UnknownDirective {
                        line,
                        word: other.to_string(),
                    })
                }
            }
        }
        Ok(m)
    }

    /// Expands the grid into its job list, loading each application
    /// once (shared by `Arc` across its jobs).
    ///
    /// # Errors
    ///
    /// [`ManifestError::NoApps`] for an app-less manifest,
    /// [`ManifestError::BadApp`] for an unresolvable spec.
    pub fn jobs(&self) -> Result<Vec<BatchJob>, ManifestError> {
        if self.apps.is_empty() {
            return Err(ManifestError::NoApps);
        }
        // Every axis is deduplicated (first occurrence wins): repeated
        // directives would otherwise mint jobs with identical ids,
        // which breaks the resume bookkeeping's one-line-per-id
        // contract and with it the byte-identity guarantee.
        let apps = dedup(&self.apps, |a, b| a == b);
        let objectives = non_empty(&self.objectives, Objective::MinDelay);
        let routings = non_empty(&self.routings, RoutingFunction::MinPath);
        let capacities = non_empty(&self.capacities, 500.0);
        let constraints = non_empty(&self.constraints, ConstraintMode::Strict);
        let swap = self.swap.unwrap_or(SwapStrategy::Auto);
        let mut jobs = Vec::new();
        for spec in &apps {
            let bad_app = |message: String| ManifestError::BadApp {
                spec: spec.clone(),
                message,
            };
            let source: AppSource = spec.parse().map_err(|e| bad_app(format!("{e}")))?;
            let app = Arc::new(source.resolve().map_err(bad_app)?);
            for &capacity in &capacities {
                for &objective in &objectives {
                    for &routing in &routings {
                        for &mode in &constraints {
                            let mut request = ExploreRequest::new(source.clone());
                            request.objective = objective;
                            request.routing = routing;
                            request.capacity = capacity;
                            request.constraints = mode;
                            request.swap = swap;
                            request.engine = self.engine.unwrap_or(SimEngine::Auto);
                            request.table_prep = self.table_prep.unwrap_or(TablePrep::Auto);
                            request.probe = self.probe.clone();
                            jobs.push(BatchJob {
                                id: format!(
                                    "{spec}|{capacity}|{objective}|{}|{}",
                                    routing.abbrev(),
                                    mode.name()
                                ),
                                app_spec: spec.clone(),
                                app: app.clone(),
                                request,
                            });
                        }
                    }
                }
            }
        }
        Ok(jobs)
    }
}

fn non_empty<T: Copy + PartialEq>(axis: &[T], default: T) -> Vec<T> {
    if axis.is_empty() {
        vec![default]
    } else {
        dedup(axis, |a, b| a == b)
    }
}

fn dedup<T: Clone>(values: &[T], eq: impl Fn(&T, &T) -> bool) -> Vec<T> {
    let mut out: Vec<T> = Vec::with_capacity(values.len());
    for v in values {
        if !out.iter().any(|seen| eq(seen, v)) {
            out.push(v.clone());
        }
    }
    out
}

/// One cell of the exploration grid, ready to run.
#[derive(Debug, Clone)]
pub struct BatchJob {
    /// Stable identifier (`app|capacity|objective|routing|mode`) used
    /// for resume bookkeeping and carried in the JSONL line.
    pub id: String,
    /// The application spec as written in the manifest — reported
    /// verbatim (and used in the id) so resumed outputs from older
    /// manifests keep their bytes even when the spec is a
    /// non-canonical spelling of its [`AppSource`].
    pub app_spec: String,
    /// The loaded application, shared across the spec's jobs.
    pub app: Arc<CoreGraph>,
    /// The unified request this cell executes.
    pub request: ExploreRequest,
}

/// Runs one job against the worker's shared cache and renders its
/// JSONL line: the schema/job prefix plus the shared report body of
/// [`crate::request::execute`]. Fully deterministic: the same job
/// renders the same bytes in any process, which is what lets the shard
/// coordinator byte-compare duplicate results (see [`crate::shard`]).
pub(crate) fn run_job(job: &BatchJob, cache: &mut LruLibraryCache) -> String {
    let body = cache.with_library(
        job.app.core_count(),
        job.request.capacity,
        job.request.table_prep,
        |topos| execute(&job.app_spec, &job.app, &job.request, topos).0,
    );
    format!(
        "{{\"schema\":\"{BATCH_SCHEMA}\",\"job\":{},{body}}}",
        json_string(&job.id)
    )
}

/// Executes `jobs` across at most `workers` scoped threads (`0` = one
/// per available CPU) and delivers each job's JSONL line through
/// `on_line(position, line)` **in job order** — line `k` is delivered
/// only after lines `0..k`, whatever the sharding, so streaming the
/// lines straight to a file yields byte-identical output at any worker
/// count.
///
/// `on_line` returns whether to keep going: `false` (e.g. the sink
/// hit a write error) cancels the run — in-flight jobs finish, queued
/// ones are abandoned, and `on_line` is not called again.
///
/// Jobs are split into contiguous chunks (jobs of the same application
/// and capacity sit next to each other in manifest order, so a chunk's
/// worker reuses its per-topology route tables across them).
pub fn run_batch(jobs: &[BatchJob], workers: usize, mut on_line: impl FnMut(usize, &str) -> bool) {
    // Workers never evict: a batch's grid is finite and grouped by
    // application/capacity, so the old unbounded per-worker cache
    // behaviour is exactly an LRU that never reaches its limit.
    let workers = effective_workers(workers, jobs.len());
    if workers <= 1 {
        let mut cache = LruLibraryCache::new(usize::MAX);
        for (i, job) in jobs.iter().enumerate() {
            let line = run_job(job, &mut cache);
            if !on_line(i, &line) {
                return;
            }
        }
        return;
    }
    let chunk = jobs.len().div_ceil(workers);
    let abort = AtomicBool::new(false);
    let (tx, rx) = mpsc::channel::<(usize, String)>();
    std::thread::scope(|s| {
        for (c, chunk_jobs) in jobs.chunks(chunk).enumerate() {
            let tx = tx.clone();
            let abort = &abort;
            s.spawn(move || {
                let mut cache = LruLibraryCache::new(usize::MAX);
                for (i, job) in chunk_jobs.iter().enumerate() {
                    if abort.load(Ordering::Relaxed) {
                        break;
                    }
                    let line = run_job(job, &mut cache);
                    // A send fails only after a cancelled receiver has
                    // hung up; the abort flag then ends the loop.
                    let _ = tx.send((c * chunk + i, line));
                }
            });
        }
        drop(tx);
        let mut pending: BTreeMap<usize, String> = BTreeMap::new();
        let mut next = 0usize;
        for (idx, line) in rx {
            pending.insert(idx, line);
            while let Some(line) = pending.remove(&next) {
                if !on_line(next, &line) {
                    abort.store(true, Ordering::Relaxed);
                    return; // drops rx; workers drain via abort/send-fail
                }
                next += 1;
            }
        }
        debug_assert_eq!(next, jobs.len(), "all jobs reduced in order");
    });
}

/// Extracts the `"job"` field of a batch JSONL line (the first string
/// value after `"job":`), decoding exactly the escapes
/// [`json_string`] emits so an id containing a quote, backslash or
/// control character round-trips for the resume comparison.
pub fn job_id_of_line(line: &str) -> Option<String> {
    let rest = line.split_once("\"job\":\"")?.1;
    let mut id = String::new();
    let mut chars = rest.chars();
    while let Some(c) = chars.next() {
        match c {
            '"' => return Some(id),
            '\\' => id.push(match chars.next()? {
                'n' => '\n',
                'r' => '\r',
                't' => '\t',
                'u' => {
                    let hex: String = chars.by_ref().take(4).collect();
                    char::from_u32(u32::from_str_radix(&hex, 16).ok()?)?
                }
                other => other, // \" \\ \/
            }),
            c => id.push(c),
        }
    }
    None
}

/// How a `--resume` run picks up from an interrupted output file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResumePlan {
    /// Bytes of the existing file to keep: the complete-line prefix. A
    /// kill mid-write may leave a trailing fragment with no newline —
    /// even one whose bytes happen to parse as a full JSON object —
    /// and it is always discarded and its job re-run, because only the
    /// newline proves the writer finished the line.
    pub keep_bytes: usize,
    /// How many leading jobs of the manifest those lines cover; the
    /// resumed run executes the remainder and appends.
    pub completed_jobs: usize,
}

/// Validates an interrupted `batch.jsonl` against the manifest's job
/// list and returns the [`ResumePlan`]. Because `run_batch` delivers
/// lines strictly in job order, a killed run leaves a prefix of the
/// uninterrupted output (possibly plus a partial trailing line);
/// resuming from the plan therefore reproduces the uninterrupted bytes
/// exactly.
///
/// # Errors
///
/// Refuses to resume when the existing complete lines are *not* the
/// manifest's job prefix — a carried-over file from a different
/// manifest would otherwise be silently extended with out-of-order
/// lines, breaking the byte-identity contract.
pub fn plan_resume(jobs: &[BatchJob], existing: &str) -> Result<ResumePlan, String> {
    let keep_bytes = existing.rfind('\n').map(|i| i + 1).unwrap_or(0);
    let mut completed = 0usize;
    for line in existing[..keep_bytes].lines() {
        let id = job_id_of_line(line).ok_or_else(|| {
            format!(
                "existing output line {} carries no job id; refusing to resume",
                completed + 1
            )
        })?;
        let Some(job) = jobs.get(completed) else {
            return Err(format!(
                "existing output has more complete lines than the manifest has jobs \
                 ({}); refusing to resume",
                jobs.len()
            ));
        };
        if job.id != id {
            return Err(format!(
                "existing output line {} is job '{}' but the manifest's job {} is '{}'; \
                 the output is not a prefix of this manifest — refusing to resume",
                completed + 1,
                id,
                completed + 1,
                job.id
            ));
        }
        completed += 1;
    }
    Ok(ResumePlan {
        keep_bytes,
        completed_jobs: completed,
    })
}

/// The contiguous job range shard `k` of `n` owns (1-based `k`,
/// matching the CLI's `--shard k/n` spelling): jobs are split as
/// evenly as possible, earlier shards taking the remainder, so
/// concatenating every shard's output in `k` order reproduces the
/// unsharded bytes. The same math sizes the coordinator's lease grain
/// windows, so static shards and coordinated leases agree on
/// boundaries.
///
/// # Errors
///
/// Rejects `k` outside `1..=n` and `n == 0` with a human-readable
/// message.
pub fn shard_range(jobs: usize, k: usize, n: usize) -> Result<std::ops::Range<usize>, String> {
    if n == 0 {
        return Err("--shard needs at least one shard (k/n with n >= 1)".to_string());
    }
    if k == 0 || k > n {
        return Err(format!("shard index {k} is outside 1..={n}"));
    }
    let base = jobs / n;
    let extra = jobs % n;
    // Shards 1..=extra carry base+1 jobs, the rest carry base.
    let start = (k - 1) * base + (k - 1).min(extra);
    let len = base + usize::from(k <= extra);
    Ok(start..start + len)
}

/// A stable fingerprint of a manifest's expanded job list (FNV-1a over
/// the job ids), used by the shard protocol to reject a worker that
/// loaded a different manifest before any job is leased to it.
pub fn manifest_fingerprint(jobs: &[BatchJob]) -> String {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for job in jobs {
        for byte in job.id.as_bytes().iter().chain(b"\n") {
            hash ^= u64::from(*byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    format!("{:016x}-{}", hash, jobs.len())
}

fn effective_workers(requested: usize, jobs: usize) -> usize {
    let cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let w = if requested == 0 { cpus } else { requested };
    w.min(jobs).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sunmap_traffic::patterns::TrafficPattern;

    const SMALL_GRID: &str = "\
# two apps x two objectives
app dsp
app synth:seed=3,cores=8
objective power
objective delay
routing MP
capacity 1000
";

    fn collect(jobs: &[BatchJob], workers: usize) -> Vec<String> {
        let mut lines = Vec::new();
        run_batch(jobs, workers, |i, line| {
            assert_eq!(i, lines.len(), "lines must arrive in job order");
            lines.push(line.to_string());
            true
        });
        lines
    }

    #[test]
    fn manifest_cross_product_order_and_ids() {
        let m = BatchManifest::parse(SMALL_GRID).unwrap();
        let jobs = m.jobs().unwrap();
        let ids: Vec<&str> = jobs.iter().map(|j| j.id.as_str()).collect();
        assert_eq!(
            ids,
            [
                "dsp|1000|min-power|MP|strict",
                "dsp|1000|min-delay|MP|strict",
                "synth:seed=3,cores=8|1000|min-power|MP|strict",
                "synth:seed=3,cores=8|1000|min-delay|MP|strict",
            ]
        );
        // The app graph is loaded once and shared across its jobs.
        assert!(Arc::ptr_eq(&jobs[0].app, &jobs[1].app));
        assert!(!Arc::ptr_eq(&jobs[1].app, &jobs[2].app));
    }

    #[test]
    fn manifest_defaults_fill_empty_axes() {
        let m = BatchManifest::parse("app dsp\n").unwrap();
        let jobs = m.jobs().unwrap();
        assert_eq!(jobs.len(), 1);
        let req = &jobs[0].request;
        assert_eq!(*req, ExploreRequest::new("dsp".parse().unwrap()));
        assert_eq!(req.objective, Objective::MinDelay);
        assert_eq!(req.routing, RoutingFunction::MinPath);
        assert_eq!(req.capacity, 500.0);
        assert_eq!(req.constraints, ConstraintMode::Strict);
        assert_eq!(req.swap, SwapStrategy::Auto);
        assert_eq!(req.probe, None);
    }

    #[test]
    fn manifest_swap_engine_and_probe_reach_every_request() {
        let m = BatchManifest::parse(
            "app dsp\napp vopd\nswap delta\nengine event\nsimulate transpose 0.2 3\n",
        )
        .unwrap();
        for job in m.jobs().unwrap() {
            assert_eq!(job.request.swap, SwapStrategy::DeltaPruned);
            assert_eq!(job.request.engine, SimEngine::EventDriven);
            assert_eq!(
                job.request.probe,
                Some(SimProbe {
                    pattern: TrafficPattern::Transpose,
                    rate: 0.2,
                    top_k: 3,
                })
            );
        }
        let e = BatchManifest::parse("swap sometimes\n").unwrap_err();
        assert!(e.to_string().contains("auto, exhaustive, delta"), "{e}");
        let e = BatchManifest::parse("engine warp\n").unwrap_err();
        assert!(
            e.to_string().contains("auto, flat, event, reference"),
            "{e}"
        );
    }

    #[test]
    fn manifest_errors_name_the_line() {
        let e = BatchManifest::parse("frob vopd\n").unwrap_err();
        assert!(e.to_string().contains("line 1"), "{e}");
        assert!(e.to_string().contains("unknown directive"), "{e}");
        let e = BatchManifest::parse("app vopd\nobjective speed\n").unwrap_err();
        assert!(e.to_string().contains("line 2"), "{e}");
        let e = BatchManifest::parse("app vopd\nrouting XY\n").unwrap_err();
        assert!(e.to_string().contains("unknown routing"), "{e}");
        let e = BatchManifest::parse("capacity -5\n").unwrap_err();
        assert!(e.to_string().contains("positive"), "{e}");
        let e = BatchManifest::parse("simulate warp 0.1\n").unwrap_err();
        assert!(e.to_string().contains("uniform"), "error lists names: {e}");
        assert!(matches!(
            BatchManifest::parse("").unwrap().jobs(),
            Err(ManifestError::NoApps)
        ));
        let e = BatchManifest::parse("app nope.app\n")
            .unwrap()
            .jobs()
            .unwrap_err();
        assert!(matches!(e, ManifestError::BadApp { .. }));
    }

    #[test]
    fn repeated_axis_values_are_deduplicated() {
        // Duplicate directives would mint identical job ids, breaking
        // the resume bookkeeping's one-line-per-id contract.
        let m = BatchManifest::parse(
            "app dsp\napp dsp\nobjective power\nobjective power\ncapacity 1000\ncapacity 1000\n",
        )
        .unwrap();
        let jobs = m.jobs().unwrap();
        assert_eq!(jobs.len(), 1);
        let ids: std::collections::BTreeSet<&str> = jobs.iter().map(|j| j.id.as_str()).collect();
        assert_eq!(ids.len(), jobs.len(), "job ids must be unique");
    }

    #[test]
    fn empty_applications_are_rejected_at_load_time() {
        let dir = std::env::temp_dir().join("sunmap_batch_empty_app");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("empty.app");
        std::fs::write(&path, "# no cores declared\n").unwrap();
        let err = AppSource::load(path.to_str().unwrap()).unwrap_err();
        assert!(err.contains("declares no cores"), "{err}");
        let m = BatchManifest::parse(&format!("app {}\n", path.display())).unwrap();
        assert!(matches!(m.jobs(), Err(ManifestError::BadApp { .. })));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn a_false_sink_cancels_the_run() {
        let m = BatchManifest::parse(
            "app dsp\nobjective power\nobjective delay\nrouting MP\nrouting DO\ncapacity 1000\n",
        )
        .unwrap();
        let jobs = m.jobs().unwrap();
        assert_eq!(jobs.len(), 4);
        for workers in [1, 2] {
            let mut delivered = Vec::new();
            run_batch(&jobs, workers, |i, line| {
                delivered.push((i, line.to_string()));
                delivered.len() < 2
            });
            assert_eq!(delivered.len(), 2, "{workers} workers: not cancelled");
            assert_eq!(delivered[0].0, 0);
            assert_eq!(delivered[1].0, 1);
        }
    }

    /// Replays a kill-and-resume at byte offset `cut` of the
    /// uninterrupted output and asserts the recovered run reproduces
    /// the exact bytes.
    fn assert_resume_reproduces(jobs: &[BatchJob], full: &str, cut: usize) {
        let existing = &full[..cut];
        let plan = plan_resume(jobs, existing).expect("prefix output resumes");
        assert!(plan.keep_bytes <= existing.len());
        let mut rebuilt = existing[..plan.keep_bytes].to_string();
        run_batch(&jobs[plan.completed_jobs..], 1, |_, line| {
            rebuilt.push_str(line);
            rebuilt.push('\n');
            true
        });
        assert_eq!(rebuilt, full, "cut at byte {cut} did not reproduce");
    }

    #[test]
    fn resume_recovers_newline_boundary_and_midline_kills() {
        let jobs = BatchManifest::parse(SMALL_GRID).unwrap().jobs().unwrap();
        let mut full = String::new();
        run_batch(&jobs, 1, |_, line| {
            full.push_str(line);
            full.push('\n');
            true
        });
        let line_ends: Vec<usize> = full
            .char_indices()
            .filter(|(_, c)| *c == '\n')
            .map(|(i, _)| i + 1)
            .collect();
        assert_eq!(line_ends.len(), jobs.len());

        // Killed exactly at a newline boundary: every complete line
        // survives, only the missing jobs re-run.
        for &end in &line_ends {
            assert_resume_reproduces(&jobs, &full, end);
        }
        // Killed mid-line: the partial trailing fragment is dropped and
        // its job re-runs. The most treacherous cut is one byte short
        // of the newline — the fragment is a complete JSON object whose
        // prefix parses, but without the newline it must not count.
        let mut prev = 0usize;
        for &end in &line_ends {
            assert_resume_reproduces(&jobs, &full, end - 1);
            assert_resume_reproduces(&jobs, &full, prev + (end - prev) / 2);
            prev = end;
        }
        // Empty file (a kill before the first write).
        assert_resume_reproduces(&jobs, &full, 0);
    }

    #[test]
    fn resume_refuses_foreign_or_oversized_output() {
        let jobs = BatchManifest::parse(SMALL_GRID).unwrap().jobs().unwrap();
        let mut full = String::new();
        run_batch(&jobs, 1, |_, line| {
            full.push_str(line);
            full.push('\n');
            true
        });
        // Output whose first line is some other manifest's job.
        let foreign = "{\"schema\":\"sunmap-batch/1\",\"job\":\"other|500|min-delay|MP|strict\"}\n";
        let err = plan_resume(&jobs, foreign).unwrap_err();
        assert!(err.contains("not a prefix"), "{err}");
        // A complete line with no job id at all.
        let err = plan_resume(&jobs, "{\"schema\":\"sunmap-batch/1\"}\n").unwrap_err();
        assert!(err.contains("no job id"), "{err}");
        // More lines than the manifest has jobs.
        let mut oversized = full.clone();
        oversized.push_str(&full[..full.find('\n').unwrap() + 1]);
        let err = plan_resume(&jobs, &oversized).unwrap_err();
        assert!(err.contains("more complete lines"), "{err}");
    }

    #[test]
    fn job_id_extraction_honours_escapes() {
        assert_eq!(
            job_id_of_line("{\"schema\":\"x\",\"job\":\"dsp|500|min-delay|MP|strict\",\"a\":1}"),
            Some("dsp|500|min-delay|MP|strict".to_string())
        );
        assert_eq!(
            job_id_of_line("{\"job\":\"a\\\"b\\\\c\"}"),
            Some("a\"b\\c".to_string())
        );
        // Control-character escapes decode to the character, not the
        // escape letter, so ids with tabs/newlines round-trip.
        assert_eq!(
            job_id_of_line("{\"job\":\"a\\tb\\nc\\u0007d\"}"),
            Some("a\tb\nc\u{7}d".to_string())
        );
        assert_eq!(job_id_of_line("{\"schema\":\"sunmap-ba"), None);
        assert_eq!(job_id_of_line("{\"job\":\"unterminated"), None);
        assert_eq!(job_id_of_line("{\"job\":\"bad\\u00"), None);
    }

    #[test]
    fn shard_ranges_partition_every_job_exactly_once() {
        for jobs in [0usize, 1, 4, 7, 16, 33] {
            for n in [1usize, 2, 3, 5, 8] {
                let mut covered = Vec::new();
                for k in 1..=n {
                    let range = shard_range(jobs, k, n).unwrap();
                    covered.extend(range.clone());
                    if k > 1 {
                        let prev = shard_range(jobs, k - 1, n).unwrap();
                        assert_eq!(prev.end, range.start, "shards must be contiguous");
                        assert!(
                            prev.len() >= range.len(),
                            "earlier shards take the remainder"
                        );
                    }
                }
                assert_eq!(covered, (0..jobs).collect::<Vec<_>>(), "{jobs} jobs / {n}");
            }
        }
        assert!(shard_range(4, 0, 2).is_err(), "k is 1-based");
        assert!(shard_range(4, 3, 2).is_err(), "k must not exceed n");
        assert!(shard_range(4, 1, 0).is_err(), "n must be positive");
    }

    #[test]
    fn manifest_fingerprint_tracks_the_job_list() {
        let jobs = BatchManifest::parse(SMALL_GRID).unwrap().jobs().unwrap();
        let again = BatchManifest::parse(SMALL_GRID).unwrap().jobs().unwrap();
        assert_eq!(manifest_fingerprint(&jobs), manifest_fingerprint(&again));
        let other = BatchManifest::parse("app dsp\n").unwrap().jobs().unwrap();
        assert_ne!(manifest_fingerprint(&jobs), manifest_fingerprint(&other));
        assert!(manifest_fingerprint(&jobs).ends_with("-4"), "carries count");
    }

    #[test]
    fn batch_output_is_worker_count_invariant() {
        let jobs = BatchManifest::parse(SMALL_GRID).unwrap().jobs().unwrap();
        let one = collect(&jobs, 1);
        assert_eq!(one.len(), jobs.len());
        for workers in [2, 4] {
            assert_eq!(one, collect(&jobs, workers), "{workers} workers");
        }
    }

    #[test]
    fn batch_lines_carry_the_result_schema() {
        let m = BatchManifest::parse("app dsp\ncapacity 1000\nsimulate uniform 0.05\n").unwrap();
        let jobs = m.jobs().unwrap();
        let lines = collect(&jobs, 1);
        let line = &lines[0];
        assert!(line.starts_with("{\"schema\":\"sunmap-batch/1\""), "{line}");
        assert!(line.contains("\"job\":\"dsp|1000|min-delay|MP|strict\""));
        assert!(line.contains("\"candidates\":5"));
        assert!(line.contains("\"winner\":{\"topology\":"), "{line}");
        assert!(line.contains("\"sim\":{\"pattern\":\"uniform\""), "{line}");
        assert!(!line.contains('\n'));
    }

    #[test]
    fn top_k_probes_report_drift_per_candidate() {
        let m =
            BatchManifest::parse("app dsp\ncapacity 1000\nengine flat\nsimulate uniform 0.05 3\n")
                .unwrap();
        let lines = collect(&m.jobs().unwrap(), 1);
        let line = &lines[0];
        assert!(line.contains("\"sim\":{\"pattern\":\"uniform\""), "{line}");
        assert!(line.contains("\"probes\":[{\"rank\":1,"), "{line}");
        assert!(line.contains("\"rank\":3"), "{line}");
        assert!(line.contains("\"engine\":\"flat\""), "{line}");
        assert!(line.contains("\"analytical_latency_cycles\":"), "{line}");
        assert!(line.contains("\"latency_drift\":"), "{line}");
    }

    #[test]
    fn engines_produce_identical_winner_bytes() {
        // The three-way equivalence contract surfaces here as whole
        // batch lines: a winner-only probe renders the same bytes on
        // every engine.
        let run = |engine: &str| {
            let m = BatchManifest::parse(&format!(
                "app dsp\ncapacity 1000\nengine {engine}\nsimulate uniform 0.05\n"
            ))
            .unwrap();
            collect(&m.jobs().unwrap(), 1)
        };
        let flat = run("flat");
        assert_eq!(flat, run("event"));
        assert_eq!(flat, run("reference"));
        assert_eq!(flat, run("auto"));
    }

    #[test]
    fn infeasible_jobs_report_a_null_winner() {
        // 1 MB/s links cannot carry the DSP filter anywhere.
        let m = BatchManifest::parse("app dsp\ncapacity 1\n").unwrap();
        let lines = collect(&m.jobs().unwrap(), 1);
        assert!(lines[0].contains("\"feasible\":0"), "{}", lines[0]);
        assert!(lines[0].contains("\"winner\":null"), "{}", lines[0]);
    }

    #[test]
    fn batch_winner_agrees_with_the_flow() {
        // The batch engine's shared-table path must select exactly what
        // Sunmap::explore selects (PR-1's seed assertion: VOPD ->
        // Butterfly under MinPower).
        let m = BatchManifest::parse("app vopd\nobjective power\n").unwrap();
        let lines = collect(&m.jobs().unwrap(), 1);
        assert!(
            lines[0].contains("\"winner\":{\"topology\":\"Butterfly\""),
            "{}",
            lines[0]
        );
    }
}
