//! One request type for every exploration surface.
//!
//! Historically each surface parsed its own configuration: the batch
//! manifest ([`crate::batch::BatchManifest`]), the CLI's `explore` /
//! `simulate` flag handling, and (new) serve frames. An
//! [`ExploreRequest`] is the one serializable description of a mapping
//! exploration — application source, objective, routing function, link
//! capacity, constraint regime, swap strategy and an optional
//! simulation probe — with a single validate path and a canonical JSON
//! form that round-trips ([`ExploreRequest::to_json`] /
//! [`ExploreRequest::from_json`]).
//!
//! The module also owns the shared *execution* path: [`execute`]
//! renders the report body every producer wraps —
//!
//! * `{"schema":"sunmap-batch/1","job":<id>,` + body + `}` per batch
//!   JSONL line;
//! * `{"schema":"sunmap-report/1",` + body + `}` for the one-shot CLI
//!   and the serve daemon —
//!
//! so a request submitted through the daemon is byte-identical to the
//! same request run one-shot, by construction rather than by test.
//!
//! Per-topology route state ([`TopoState`]) is cached in an
//! [`LruLibraryCache`] keyed by `(core count, link capacity)`; the
//! [`LruLibraryCache::checkout`] / [`LruLibraryCache::checkin`] pair
//! lets a daemon worker take a library out of a shared `Mutex`'d cache
//! for the duration of a request instead of serializing all mapping
//! work behind the lock.
//!
//! # Examples
//!
//! ```
//! use sunmap::request::{ExploreRequest, RequestRunner};
//! use sunmap::Objective;
//!
//! let mut req = ExploreRequest::new("dsp".parse()?);
//! req.objective = Objective::MinPower;
//! // The canonical JSON form round-trips.
//! assert_eq!(ExploreRequest::from_json(&req.to_json())?, req);
//!
//! let mut runner = RequestRunner::new(4);
//! let outcome = runner.run(&req)?;
//! assert!(outcome.line.starts_with("{\"schema\":\"sunmap-report/1\""));
//! assert!(!outcome.cache_hit);
//! // Same topology again: the route tables are served warm.
//! assert!(runner.run(&req)?.cache_hit);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use std::sync::Arc;
use std::time::Instant;

use crate::flow::{rank_reports, SelectionPolicy};
use crate::json::Json;
use crate::schema::REPORT_SCHEMA;
use sunmap_mapping::{
    Constraints, CostReport, Mapper, MapperConfig, Objective, RouteTable, RoutingFunction,
    SwapStrategy, TablePrep,
};
use sunmap_sim::sweep::{json_number, json_string, stats_json_fields};
use sunmap_sim::{LatencyStats, RoutePlan, SimConfig, SimEngine, SimSession};
use sunmap_topology::{builders, TopologyGraph};
use sunmap_traffic::patterns::TrafficPattern;
use sunmap_traffic::{AppSource, CoreGraph};

/// One constraint regime of an exploration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ConstraintMode {
    /// Bandwidth feasibility enforced ([`Constraints::default`]).
    #[default]
    Strict,
    /// Bandwidth feasibility relaxed
    /// ([`Constraints::relaxed_bandwidth`], the paper's §6.2 mode).
    Relaxed,
}

impl ConstraintMode {
    /// The mapper constraints this mode selects.
    pub fn constraints(self) -> Constraints {
        match self {
            ConstraintMode::Strict => Constraints::default(),
            ConstraintMode::Relaxed => Constraints::relaxed_bandwidth(),
        }
    }

    /// Manifest/JSON spelling.
    pub fn name(self) -> &'static str {
        match self {
            ConstraintMode::Strict => "strict",
            ConstraintMode::Relaxed => "relaxed",
        }
    }

    /// Parses the manifest/JSON spelling (`strict`, `relaxed`).
    ///
    /// # Errors
    ///
    /// The message lists the valid names.
    pub fn parse(text: &str) -> Result<ConstraintMode, String> {
        match text {
            "strict" => Ok(ConstraintMode::Strict),
            "relaxed" => Ok(ConstraintMode::Relaxed),
            other => Err(format!(
                "unknown constraints '{other}' (valid: strict, relaxed)"
            )),
        }
    }
}

/// An optional simulation probe: the `top_k` best-ranked topologies
/// are simulated under this synthetic pattern and injection rate,
/// through the request's shared per-topology [`RoutePlan`]s, on the
/// engine the request selects ([`ExploreRequest::engine`]).
///
/// With `top_k == 1` (the default) only the winner is probed and the
/// report keeps its historical `"sim"` object byte for byte; above 1
/// the report grows a `"probes"` array with one entry per candidate,
/// each carrying the analytical-latency drift.
#[derive(Debug, Clone, PartialEq)]
pub struct SimProbe {
    /// Destination pattern for the probe.
    pub pattern: TrafficPattern,
    /// Injection rate in flits/cycle/terminal.
    pub rate: f64,
    /// How many ranked candidates to simulate (min 1).
    pub top_k: usize,
}

impl SimProbe {
    /// Parses `<pattern> <rate> [top_k]` (the manifest's `simulate`
    /// directive and the CLI's `--probe` value share this). `top_k`
    /// defaults to 1 — winner only.
    ///
    /// # Errors
    ///
    /// Messages list the valid pattern names or name the bad value.
    pub fn parse(text: &str) -> Result<SimProbe, String> {
        let mut parts = text.split_whitespace();
        let pattern = parts
            .next()
            .ok_or_else(|| "probe needs a pattern and a rate".to_string())?;
        let pattern = TrafficPattern::from_name(pattern).ok_or_else(|| {
            format!(
                "unknown pattern '{pattern}' (valid: {})",
                TrafficPattern::NAMES.join(", ")
            )
        })?;
        let rate = parts
            .next()
            .ok_or_else(|| "probe needs a pattern and a rate".to_string())?;
        let rate: f64 = rate
            .parse()
            .map_err(|_| format!("'{rate}' is not a rate"))?;
        if !(rate.is_finite() && rate >= 0.0) {
            return Err("rate must be non-negative".to_string());
        }
        let top_k = match parts.next() {
            None => 1,
            Some(k) => {
                let k: usize = k
                    .parse()
                    .map_err(|_| format!("'{k}' is not a top-k count"))?;
                if k == 0 {
                    return Err("top-k must be at least 1".to_string());
                }
                k
            }
        };
        if let Some(extra) = parts.next() {
            return Err(format!("unexpected probe token '{extra}'"));
        }
        Ok(SimProbe {
            pattern,
            rate,
            top_k,
        })
    }
}

/// Parses an objective name (`delay`, `area`, `power`, `bandwidth`),
/// case-insensitively — shared by the manifest parser, the CLI's
/// `--objective` flag and the request JSON reader.
///
/// # Errors
///
/// The message lists the valid names.
pub fn parse_objective(text: &str) -> Result<Objective, String> {
    match text.to_ascii_lowercase().as_str() {
        "delay" => Ok(Objective::MinDelay),
        "area" => Ok(Objective::MinArea),
        "power" => Ok(Objective::MinPower),
        "bandwidth" => Ok(Objective::MinBandwidth),
        other => Err(format!(
            "unknown objective '{other}' (valid: delay, area, power, bandwidth)"
        )),
    }
}

/// The short objective name [`parse_objective`] accepts — the inverse
/// used by the canonical request JSON.
pub fn objective_name(objective: Objective) -> &'static str {
    match objective {
        Objective::MinDelay => "delay",
        Objective::MinArea => "area",
        Objective::MinPower => "power",
        Objective::MinBandwidth => "bandwidth",
    }
}

/// Parses a routing-function abbreviation (`DO`, `MP`, `SM`, `SA`),
/// case-insensitively — shared by the manifest parser, the CLI's
/// `--routing` flag and the request JSON reader.
///
/// # Errors
///
/// The message lists the valid names.
pub fn parse_routing(text: &str) -> Result<RoutingFunction, String> {
    match text.to_ascii_uppercase().as_str() {
        "DO" => Ok(RoutingFunction::DimensionOrdered),
        "MP" => Ok(RoutingFunction::MinPath),
        "SM" => Ok(RoutingFunction::SplitMinPaths),
        "SA" => Ok(RoutingFunction::SplitAllPaths),
        other => Err(format!("unknown routing '{other}' (valid: DO, MP, SM, SA)")),
    }
}

/// Parses a swap-strategy name (`auto`, `exhaustive`, `delta`),
/// case-insensitively.
///
/// # Errors
///
/// The message lists the valid names.
pub fn parse_swap(text: &str) -> Result<SwapStrategy, String> {
    match text.to_ascii_lowercase().as_str() {
        "auto" => Ok(SwapStrategy::Auto),
        "exhaustive" => Ok(SwapStrategy::Exhaustive),
        "delta" => Ok(SwapStrategy::DeltaPruned),
        other => Err(format!(
            "unknown swap strategy '{other}' (valid: auto, exhaustive, delta)"
        )),
    }
}

/// The name [`parse_swap`] accepts — the inverse used by the canonical
/// request JSON.
pub fn swap_name(swap: SwapStrategy) -> &'static str {
    match swap {
        SwapStrategy::Auto => "auto",
        SwapStrategy::Exhaustive => "exhaustive",
        SwapStrategy::DeltaPruned => "delta",
    }
}

/// Parses a simulation-engine name (`auto`, `flat`, `event`,
/// `reference`), case-insensitively — shared by the manifest parser,
/// the CLI's `--engine` flag and the request JSON reader.
///
/// # Errors
///
/// The message lists the valid names.
pub fn parse_engine(text: &str) -> Result<SimEngine, String> {
    SimEngine::parse(&text.to_ascii_lowercase())
        .ok_or_else(|| format!("unknown engine '{text}' (valid: auto, flat, event, reference)"))
}

/// Parses a table-preparation name (`auto`, `eager`, `lazy`,
/// `closed-form`), case-insensitively — shared by the manifest parser,
/// the CLI's `--table-prep` flag and the request JSON reader.
///
/// # Errors
///
/// The message lists the valid names.
pub fn parse_table_prep(text: &str) -> Result<TablePrep, String> {
    TablePrep::parse(&text.to_ascii_lowercase()).ok_or_else(|| {
        format!("unknown table prep '{text}' (valid: auto, eager, lazy, closed-form)")
    })
}

/// One exploration request: everything the flow needs to map an
/// application across the standard topology library and report the
/// winner.
///
/// All surfaces construct this type — the CLI from flags, the batch
/// manifest from its grid axes, the serve daemon from frame JSON — so
/// there is exactly one set of defaults and one validate path.
#[derive(Debug, Clone, PartialEq)]
pub struct ExploreRequest {
    /// What to map.
    pub app: AppSource,
    /// Mapping/selection objective (default `delay`).
    pub objective: Objective,
    /// Routing function (default `MP`).
    pub routing: RoutingFunction,
    /// Link capacity in MB/s (default `500`).
    pub capacity: f64,
    /// Constraint regime (default `strict`).
    pub constraints: ConstraintMode,
    /// Phase-3 swap strategy (default `auto`).
    pub swap: SwapStrategy,
    /// Simulation engine for probes and validation runs (default
    /// `auto`: event-driven below [`SimEngine::AUTO_EVENT_MAX_LOAD`],
    /// flat otherwise).
    pub engine: SimEngine,
    /// Route-table preparation policy (default `auto`: eager on small
    /// topologies, lazy/closed-form at scale — reports are
    /// bit-identical either way).
    pub table_prep: TablePrep,
    /// Winner simulation probe, if any.
    pub probe: Option<SimProbe>,
}

impl ExploreRequest {
    /// A request for `app` under the default configuration (the same
    /// defaults every surface documents: objective `delay`, routing
    /// `MP`, capacity `500`, constraints `strict`, swap `auto`, engine
    /// `auto`, table prep `auto`, no probe).
    pub fn new(app: AppSource) -> ExploreRequest {
        ExploreRequest {
            app,
            objective: Objective::MinDelay,
            routing: RoutingFunction::MinPath,
            capacity: 500.0,
            constraints: ConstraintMode::Strict,
            swap: SwapStrategy::Auto,
            engine: SimEngine::Auto,
            table_prep: TablePrep::Auto,
            probe: None,
        }
    }

    /// Validates field ranges (capacity positive and finite; probe rate
    /// non-negative and finite). Parsing surfaces enforce these on
    /// entry; this guards requests built in code.
    ///
    /// # Errors
    ///
    /// A human-readable message naming the bad field.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.capacity.is_finite() && self.capacity > 0.0) {
            return Err("capacity must be positive".to_string());
        }
        if let Some(p) = &self.probe {
            if !(p.rate.is_finite() && p.rate >= 0.0) {
                return Err("rate must be non-negative".to_string());
            }
            if p.top_k == 0 {
                return Err("top-k must be at least 1".to_string());
            }
        }
        Ok(())
    }

    /// The canonical JSON form, with a fixed field order:
    ///
    /// ```json
    /// {"app":"vopd","objective":"delay","routing":"MP","capacity":500,
    ///  "constraints":"strict","swap":"auto","engine":"auto",
    ///  "table_prep":"auto","probe":null}
    /// ```
    ///
    /// Round-trips through [`ExploreRequest::from_json`]. Note the app
    /// source is serialized canonically (via [`AppSource`]'s `Display`),
    /// so two requests that compare equal serialize identically.
    pub fn to_json(&self) -> String {
        let probe = match &self.probe {
            Some(p) => format!(
                "{{\"pattern\":{},\"rate\":{},\"top_k\":{}}}",
                json_string(p.pattern.name()),
                json_number(p.rate),
                p.top_k,
            ),
            None => "null".to_string(),
        };
        format!(
            "{{\"app\":{},\"objective\":{},\"routing\":{},\"capacity\":{},\
             \"constraints\":{},\"swap\":{},\"engine\":{},\"table_prep\":{},\
             \"probe\":{probe}}}",
            json_string(&self.app.to_string()),
            json_string(objective_name(self.objective)),
            json_string(self.routing.abbrev()),
            json_number(self.capacity),
            json_string(self.constraints.name()),
            json_string(swap_name(self.swap)),
            json_string(self.engine.name()),
            json_string(self.table_prep.name()),
        )
    }

    /// Parses the JSON form. `app` is required; every other field is
    /// optional and falls back to its default (`probe` may be `null`).
    /// Unknown fields are rejected — a typo'd field silently meaning
    /// "default" is the failure mode this type exists to delete.
    ///
    /// # Errors
    ///
    /// A message naming the offending field.
    pub fn from_json(text: &str) -> Result<ExploreRequest, String> {
        Self::from_json_value(&Json::parse(text)?)
    }

    pub(crate) fn from_json_value(value: &Json) -> Result<ExploreRequest, String> {
        let Json::Object(fields) = value else {
            return Err("request must be a JSON object".to_string());
        };
        for key in fields.keys() {
            if !matches!(
                key.as_str(),
                "app"
                    | "objective"
                    | "routing"
                    | "capacity"
                    | "constraints"
                    | "swap"
                    | "engine"
                    | "table_prep"
                    | "probe"
            ) {
                return Err(format!("unknown request field '{key}'"));
            }
        }
        let str_field = |key: &str| -> Result<Option<&str>, String> {
            match fields.get(key) {
                None => Ok(None),
                Some(v) => v
                    .as_str()
                    .map(Some)
                    .ok_or_else(|| format!("'{key}' must be a string")),
            }
        };
        let app: AppSource = str_field("app")?
            .ok_or_else(|| "request needs an 'app'".to_string())?
            .parse()
            .map_err(|e| format!("app: {e}"))?;
        let mut req = ExploreRequest::new(app);
        if let Some(text) = str_field("objective")? {
            req.objective = parse_objective(text)?;
        }
        if let Some(text) = str_field("routing")? {
            req.routing = parse_routing(text)?;
        }
        if let Some(v) = fields.get("capacity") {
            req.capacity = v
                .as_f64()
                .ok_or_else(|| "'capacity' must be a number".to_string())?;
        }
        if let Some(text) = str_field("constraints")? {
            req.constraints = ConstraintMode::parse(text)?;
        }
        if let Some(text) = str_field("swap")? {
            req.swap = parse_swap(text)?;
        }
        if let Some(text) = str_field("engine")? {
            req.engine = parse_engine(text)?;
        }
        if let Some(text) = str_field("table_prep")? {
            req.table_prep = parse_table_prep(text)?;
        }
        match fields.get("probe") {
            None | Some(Json::Null) => {}
            Some(probe) => {
                let pattern = probe
                    .get("pattern")
                    .and_then(Json::as_str)
                    .ok_or_else(|| "'probe' needs a string 'pattern'".to_string())?;
                let rate = probe
                    .get("rate")
                    .and_then(Json::as_f64)
                    .ok_or_else(|| "'probe' needs a numeric 'rate'".to_string())?;
                let top_k = match probe.get("top_k") {
                    None => 1,
                    Some(v) => {
                        let k = v
                            .as_f64()
                            .filter(|k| k.fract() == 0.0 && *k >= 1.0)
                            .ok_or_else(|| "'top_k' must be a positive integer".to_string())?;
                        k as usize
                    }
                };
                let mut parsed = SimProbe::parse(&format!("{pattern} {rate}"))?;
                parsed.top_k = top_k;
                req.probe = Some(parsed);
            }
        }
        req.validate()?;
        Ok(req)
    }
}

/// Per-topology route state shared across every request mapping onto
/// that topology: the graph, its [`RouteTable`] (reused via
/// [`Mapper::with_route_table`]) and, lazily, the simulation
/// [`RoutePlan`] compiled from that same table.
#[derive(Debug)]
pub struct TopoState {
    /// The candidate topology.
    pub graph: TopologyGraph,
    /// Its route table, warmed a little more by every request.
    pub table: RouteTable,
    /// The compiled probe plan, if a probe has run on this topology.
    pub plan: Option<Arc<RoutePlan>>,
}

/// A checked-out candidate library: the [`TopoState`] of every standard
/// topology for one `(core count, link capacity)` key.
#[derive(Debug)]
pub struct CandidateLibrary {
    key: (usize, u64),
    /// The per-topology states, in standard-library order.
    pub topos: Vec<TopoState>,
}

impl CandidateLibrary {
    /// Builds the cold library for `cores` mappable cores at
    /// `capacity` MB/s links (route tables constructed under `prep`,
    /// no plans).
    pub fn build(cores: usize, capacity: f64, prep: TablePrep) -> CandidateLibrary {
        let topos = builders::standard_library(cores, capacity)
            .expect("requests carry non-empty applications")
            .into_iter()
            .map(|graph| TopoState {
                table: RouteTable::with_prep(&graph, prep),
                graph,
                plan: None,
            })
            .collect();
        CandidateLibrary {
            key: (cores, capacity.to_bits()),
            topos,
        }
    }

    /// Whether this library's route tables were prepared exactly as a
    /// request asking for `prep` would prepare them. `Auto` and an
    /// explicit variant share cache entries whenever they resolve to
    /// the same concrete preparation per topology (e.g. `auto` and
    /// `eager` on a small library), while distinct resolved variants
    /// never reuse each other's tables — a library advertising eager
    /// dense state must actually hold it.
    fn serves_prep(&self, prep: TablePrep) -> bool {
        self.topos.iter().all(|tc| {
            tc.table.prep() == prep.resolve(tc.graph.kind(), tc.graph.mappable_nodes().len())
        })
    }
}

/// An LRU cache of [`CandidateLibrary`]s keyed by `(core count, link
/// capacity)` — the warm heart of the serve daemon, and the same
/// structure the batch engine keeps per worker.
///
/// Single-threaded callers use [`LruLibraryCache::with_library`]; the
/// daemon's workers share one cache behind a `Mutex` and use
/// [`LruLibraryCache::checkout`] / [`LruLibraryCache::checkin`] so the
/// lock is held only for the lookup, not for the mapping work. If two
/// workers check out the same key concurrently the second builds a
/// fresh library (and the later check-in is dropped) — route tables
/// are warmth, not correctness, so losing one costs a rebuild, never
/// a wrong answer.
#[derive(Debug)]
pub struct LruLibraryCache {
    max_entries: usize,
    entries: Vec<CandidateLibrary>,
    hits: u64,
    misses: u64,
}

impl LruLibraryCache {
    /// An empty cache holding at most `max_entries` libraries (min 1).
    pub fn new(max_entries: usize) -> LruLibraryCache {
        LruLibraryCache {
            max_entries: max_entries.max(1),
            entries: Vec::new(),
            hits: 0,
            misses: 0,
        }
    }

    /// Libraries served warm so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Libraries built cold so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Takes the library for `(cores, capacity)` out of the cache,
    /// building it under `prep` if no compatible entry is resident —
    /// compatible meaning every resident route table already carries
    /// the preparation `prep` *resolves to* on its topology, so
    /// spellings that resolve alike (`auto`/`eager` at seed sizes)
    /// share one entry while distinct resolved variants coexist.
    /// Returns the library, whether it was a hit, and the build time
    /// in nanoseconds (0 on a hit).
    pub fn checkout(
        &mut self,
        cores: usize,
        capacity: f64,
        prep: TablePrep,
    ) -> (CandidateLibrary, bool, u64) {
        let key = (cores, capacity.to_bits());
        if let Some(i) = self
            .entries
            .iter()
            .position(|e| e.key == key && e.serves_prep(prep))
        {
            self.hits += 1;
            (self.entries.remove(i), true, 0)
        } else {
            self.misses += 1;
            // lint:allow(wall-clock): cache-build latency instrumentation only; no logic branches on time
            let start = Instant::now();
            let library = CandidateLibrary::build(cores, capacity, prep);
            let nanos = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            (library, false, nanos)
        }
    }

    /// Returns a checked-out library to the front of the LRU order,
    /// evicting from the back beyond capacity. If an identically
    /// prepared library for the key was re-built by a concurrent
    /// checkout and already checked back in, the returned copy is
    /// dropped (the resident one is equally warm). Libraries for the
    /// same key under *different* resolved preparations coexist.
    pub fn checkin(&mut self, library: CandidateLibrary) {
        if self.entries.iter().any(|e| {
            e.key == library.key
                && e.topos.len() == library.topos.len()
                && e.topos
                    .iter()
                    .zip(&library.topos)
                    .all(|(a, b)| a.table.prep() == b.table.prep())
        }) {
            return;
        }
        self.entries.insert(0, library);
        self.entries.truncate(self.max_entries);
    }

    /// Runs `f` on the library for `(cores, capacity)` prepared under
    /// `prep` — the single-threaded convenience over checkout/checkin.
    pub fn with_library<R>(
        &mut self,
        cores: usize,
        capacity: f64,
        prep: TablePrep,
        f: impl FnOnce(&mut [TopoState]) -> R,
    ) -> R {
        let (mut library, _, _) = self.checkout(cores, capacity, prep);
        let result = f(&mut library.topos);
        self.checkin(library);
        result
    }
}

/// Counters and timings from one executed request.
#[derive(Debug, Clone, Copy, Default)]
pub struct ExecStats {
    /// Topology candidates tried (the standard library size).
    pub candidates: usize,
    /// Candidates that mapped feasibly.
    pub feasible: usize,
    /// Mapping candidates evaluated across all topologies.
    pub evaluated: usize,
    /// Wall-clock nanoseconds in the mapping/swap search (includes
    /// floorplanning; subtract the timing module's floorplan share for
    /// pure search time).
    pub mapping_nanos: u64,
    /// Wall-clock nanoseconds in the simulation probe (0 without one).
    pub probe_nanos: u64,
}

/// Executes `req` for the already-resolved `app` against the
/// per-topology states `topos` and renders the report *body*: the
/// fields from `"app":` through `"winner":...` without surrounding
/// braces, ready to be wrapped in a schema envelope. `spec` is the
/// application spelling to report (batch passes the manifest's
/// as-written spec; the one-shot and serve paths pass the canonical
/// [`AppSource`] form).
pub fn execute(
    spec: &str,
    app: &CoreGraph,
    req: &ExploreRequest,
    topos: &mut [TopoState],
) -> (String, ExecStats) {
    let config = MapperConfig {
        routing: req.routing,
        objective: req.objective,
        constraints: req.constraints.constraints(),
        swap_strategy: req.swap,
        table_prep: req.table_prep,
        ..MapperConfig::default()
    };
    // lint:allow(wall-clock): phase-latency instrumentation feeding the report; no logic branches on time
    let mapping_start = Instant::now();
    let outcomes: Vec<_> = topos
        .iter_mut()
        .map(|tc| {
            Mapper::new(&tc.graph, app, config)
                .with_route_table(&mut tc.table)
                .run()
        })
        .collect();
    let mapping_nanos = u64::try_from(mapping_start.elapsed().as_nanos()).unwrap_or(u64::MAX);
    let reports: Vec<Option<&CostReport>> = outcomes
        .iter()
        .map(|o| o.as_ref().ok().map(|m| m.report()))
        .collect();
    let ranked = rank_reports(&reports, SelectionPolicy::Balanced, req.objective);
    let winner = ranked.first().copied();

    let mut body = format!(
        "\"app\":{},\"cores\":{},\"capacity\":{},\"objective\":{},\"routing\":{},\
         \"constraints\":{}",
        json_string(spec),
        app.core_count(),
        json_number(req.capacity),
        json_string(&req.objective.to_string()),
        json_string(req.routing.abbrev()),
        json_string(req.constraints.name()),
    );
    let feasible = reports.iter().filter(|r| r.is_some()).count();
    let evaluated: usize = outcomes
        .iter()
        .filter_map(|o| o.as_ref().ok().map(|m| m.evaluated_candidates()))
        .sum();
    body.push_str(&format!(
        ",\"candidates\":{},\"feasible\":{feasible},\"evaluated\":{evaluated}",
        topos.len()
    ));
    body.push_str(",\"topologies\":[");
    for (i, tc) in topos.iter().enumerate() {
        if i > 0 {
            body.push(',');
        }
        match reports[i] {
            Some(r) => body.push_str(&format!(
                "{{\"topology\":{},\"feasible\":true,\"avg_hops\":{},\
                 \"design_area\":{},\"power_mw\":{}}}",
                json_string(tc.graph.kind().name()),
                json_number(r.avg_hops),
                json_number(r.design_area),
                json_number(r.power_mw),
            )),
            None => body.push_str(&format!(
                "{{\"topology\":{},\"feasible\":false}}",
                json_string(tc.graph.kind().name())
            )),
        }
    }
    body.push(']');
    let mut probe_nanos = 0u64;
    match winner {
        Some(w) => {
            let r = reports[w].expect("ranked candidates are feasible");
            body.push_str(&format!(
                ",\"winner\":{{\"topology\":{},\"avg_hops\":{},\"design_area\":{},\
                 \"floorplan_area\":{},\"power_mw\":{},\"max_link_load\":{},\
                 \"evaluated\":{}}}",
                json_string(topos[w].graph.kind().name()),
                json_number(r.avg_hops),
                json_number(r.design_area),
                json_number(r.floorplan_area),
                json_number(r.power_mw),
                json_number(r.max_link_load),
                outcomes[w]
                    .as_ref()
                    .map(|m| m.evaluated_candidates())
                    .expect("winner is feasible"),
            ));
            if let Some(probe) = &req.probe {
                // lint:allow(wall-clock): probe-latency instrumentation feeding the report; no logic branches on time
                let probe_start = Instant::now();
                let config = SimConfig {
                    engine: req.engine,
                    ..SimConfig::default()
                };
                let k = probe.top_k.min(ranked.len());
                let probed: Vec<(usize, LatencyStats)> = ranked
                    .iter()
                    .take(k)
                    .map(|&cand| {
                        let tc = &mut topos[cand];
                        let mut builder = SimSession::builder(&tc.graph).config(config);
                        if req.engine != SimEngine::Reference {
                            // The probe plan comes from the same shared
                            // table the mapper used; compiled once per
                            // topology, reused by every later request
                            // that probes the same candidate. All
                            // indexed engines share one plan class.
                            let plan = match &tc.plan {
                                Some(plan) => plan.clone(),
                                None => {
                                    let plan = Arc::new(RoutePlan::synthetic(
                                        &tc.graph,
                                        &mut tc.table,
                                        &config,
                                    ));
                                    tc.plan = Some(plan.clone());
                                    plan
                                }
                            };
                            builder = builder.plan(plan);
                        }
                        let stats = builder.build().run_synthetic(&probe.pattern, probe.rate);
                        (cand, stats)
                    })
                    .collect();
                let (_, winner_stats) = &probed[0];
                body.push_str(&format!(
                    ",\"sim\":{{\"pattern\":{},\"rate\":{},{}}}",
                    json_string(probe.pattern.name()),
                    json_number(probe.rate),
                    stats_json_fields(winner_stats),
                ));
                if probe.top_k > 1 {
                    // Per-candidate analytical-vs-measured drift: the
                    // zero-load latency model is avg_hops switch
                    // traversals plus serialization of the body flits.
                    body.push_str(",\"probes\":[");
                    for (i, (cand, stats)) in probed.iter().enumerate() {
                        if i > 0 {
                            body.push(',');
                        }
                        let r = reports[*cand].expect("ranked candidates are feasible");
                        let analytical = r.avg_hops * (1.0 + config.switch_pipeline as f64)
                            + (config.packet_flits as f64 - 1.0);
                        let drift = if analytical > 0.0 {
                            (stats.avg_latency - analytical) / analytical
                        } else {
                            0.0
                        };
                        body.push_str(&format!(
                            "{{\"rank\":{},\"topology\":{},\"engine\":{},{},\
                             \"analytical_latency_cycles\":{},\"latency_drift\":{}}}",
                            i + 1,
                            json_string(topos[*cand].graph.kind().name()),
                            json_string(req.engine.resolve(probe.rate).name()),
                            stats_json_fields(stats),
                            json_number(analytical),
                            json_number(drift),
                        ));
                    }
                    body.push(']');
                }
                probe_nanos = u64::try_from(probe_start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            }
        }
        None => body.push_str(",\"winner\":null"),
    }
    (
        body,
        ExecStats {
            candidates: topos.len(),
            feasible,
            evaluated,
            mapping_nanos,
            probe_nanos,
        },
    )
}

/// Everything [`RequestRunner::run`] produces for one request.
#[derive(Debug, Clone)]
pub struct RequestOutcome {
    /// The one-line report: `{"schema":"sunmap-report/1",...}`.
    pub line: String,
    /// Execution counters and phase timings.
    pub stats: ExecStats,
    /// Whether the candidate library (route tables) was served warm.
    pub cache_hit: bool,
    /// Nanoseconds spent building route tables (0 on a cache hit).
    pub route_table_nanos: u64,
}

/// A socketless request executor over an owned warm cache — the
/// one-shot CLI path, the replay verifier and the throughput bench all
/// run requests through this; the serve daemon inlines the same
/// checkout/execute/checkin sequence against its shared cache.
#[derive(Debug)]
pub struct RequestRunner {
    cache: LruLibraryCache,
}

impl RequestRunner {
    /// A runner whose cache holds at most `cache_entries` candidate
    /// libraries.
    pub fn new(cache_entries: usize) -> RequestRunner {
        RequestRunner {
            cache: LruLibraryCache::new(cache_entries),
        }
    }

    /// Validates, resolves and executes `req`, returning the wrapped
    /// report line. The same request always produces the same bytes —
    /// warm or cold cache, here or through the daemon.
    ///
    /// # Errors
    ///
    /// Validation and application-resolution failures, as
    /// human-readable messages.
    pub fn run(&mut self, req: &ExploreRequest) -> Result<RequestOutcome, String> {
        req.validate()?;
        let app = req.app.resolve()?;
        let spec = req.app.to_string();
        let (mut library, cache_hit, route_table_nanos) =
            self.cache
                .checkout(app.core_count(), req.capacity, req.table_prep);
        let (body, stats) = execute(&spec, &app, req, &mut library.topos);
        self.cache.checkin(library);
        Ok(RequestOutcome {
            line: format!("{{\"schema\":\"{REPORT_SCHEMA}\",{body}}}"),
            stats,
            cache_hit,
            route_table_nanos,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dsp_request() -> ExploreRequest {
        let mut req = ExploreRequest::new("dsp".parse().unwrap());
        req.capacity = 1000.0;
        req
    }

    #[test]
    fn json_round_trips_every_field() {
        let mut req = ExploreRequest::new("synth:seed=7,cores=12".parse().unwrap());
        req.objective = Objective::MinPower;
        req.routing = RoutingFunction::DimensionOrdered;
        req.capacity = 750.0;
        req.constraints = ConstraintMode::Relaxed;
        req.swap = SwapStrategy::DeltaPruned;
        req.engine = SimEngine::EventDriven;
        req.table_prep = TablePrep::ClosedForm;
        req.probe = Some(SimProbe {
            pattern: TrafficPattern::Transpose,
            rate: 0.125,
            top_k: 3,
        });
        let json = req.to_json();
        assert_eq!(ExploreRequest::from_json(&json).unwrap(), req);
        // And the canonical form is stable (serialize twice).
        assert_eq!(ExploreRequest::from_json(&json).unwrap().to_json(), json);
    }

    #[test]
    fn json_defaults_match_new() {
        let req = ExploreRequest::from_json("{\"app\":\"vopd\"}").unwrap();
        assert_eq!(req, ExploreRequest::new("vopd".parse().unwrap()));
    }

    #[test]
    fn json_errors_name_the_field() {
        let err = ExploreRequest::from_json("{}").unwrap_err();
        assert!(err.contains("app"), "{err}");
        let err =
            ExploreRequest::from_json("{\"app\":\"vopd\",\"objectiv\":\"delay\"}").unwrap_err();
        assert!(err.contains("unknown request field"), "{err}");
        let err =
            ExploreRequest::from_json("{\"app\":\"vopd\",\"objective\":\"speed\"}").unwrap_err();
        assert!(err.contains("delay, area, power, bandwidth"), "{err}");
        let err = ExploreRequest::from_json("{\"app\":\"vopd\",\"capacity\":-1}").unwrap_err();
        assert!(err.contains("positive"), "{err}");
        let err = ExploreRequest::from_json("{\"app\":\"synth:wat=1\"}").unwrap_err();
        assert!(err.contains("wat"), "{err}");
        let err = ExploreRequest::from_json(
            "{\"app\":\"vopd\",\"probe\":{\"pattern\":\"warp\",\"rate\":0.1}}",
        )
        .unwrap_err();
        assert!(err.contains("uniform"), "error lists patterns: {err}");
        let err = ExploreRequest::from_json("{\"app\":\"vopd\",\"engine\":\"warp\"}").unwrap_err();
        assert!(err.contains("auto, flat, event, reference"), "{err}");
        let err =
            ExploreRequest::from_json("{\"app\":\"vopd\",\"table_prep\":\"dense\"}").unwrap_err();
        assert!(err.contains("auto, eager, lazy, closed-form"), "{err}");
        let err = ExploreRequest::from_json(
            "{\"app\":\"vopd\",\"probe\":{\"pattern\":\"uniform\",\"rate\":0.1,\"top_k\":0}}",
        )
        .unwrap_err();
        assert!(err.contains("top_k"), "{err}");
    }

    #[test]
    fn probe_parse_accepts_an_optional_top_k() {
        assert_eq!(SimProbe::parse("uniform 0.05").unwrap().top_k, 1);
        assert_eq!(SimProbe::parse("uniform 0.05 4").unwrap().top_k, 4);
        let err = SimProbe::parse("uniform 0.05 zero").unwrap_err();
        assert!(err.contains("top-k"), "{err}");
        let err = SimProbe::parse("uniform 0.05 0").unwrap_err();
        assert!(err.contains("at least 1"), "{err}");
        let err = SimProbe::parse("uniform 0.05 2 extra").unwrap_err();
        assert!(err.contains("unexpected"), "{err}");
    }

    #[test]
    fn validate_guards_code_built_requests() {
        let mut req = ExploreRequest::new("dsp".parse().unwrap());
        req.capacity = f64::INFINITY;
        assert!(req.validate().is_err());
        req.capacity = 500.0;
        req.probe = Some(SimProbe {
            pattern: TrafficPattern::UniformRandom,
            rate: f64::NAN,
            top_k: 1,
        });
        assert!(req.validate().is_err());
        req.probe = Some(SimProbe {
            pattern: TrafficPattern::UniformRandom,
            rate: 0.05,
            top_k: 0,
        });
        assert!(req.validate().is_err());
    }

    #[test]
    fn runner_reports_are_deterministic_and_cache_aware() {
        let req = dsp_request();
        let mut runner = RequestRunner::new(2);
        let first = runner.run(&req).unwrap();
        assert!(!first.cache_hit);
        assert!(first.route_table_nanos > 0);
        assert!(first
            .line
            .starts_with("{\"schema\":\"sunmap-report/1\",\"app\":\"dsp\""));
        assert!(first.stats.candidates >= 5);
        assert!(first.stats.evaluated > 0);
        let second = runner.run(&req).unwrap();
        assert!(second.cache_hit, "same topology must be served warm");
        assert_eq!(second.route_table_nanos, 0);
        assert_eq!(second.line, first.line, "warm and cold bytes must match");
    }

    #[test]
    fn lru_evicts_beyond_capacity() {
        let mut cache = LruLibraryCache::new(1);
        cache.with_library(6, 500.0, TablePrep::Auto, |_| ());
        cache.with_library(6, 1000.0, TablePrep::Auto, |_| ()); // evicts the 500.0 entry
        cache.with_library(6, 500.0, TablePrep::Auto, |_| ());
        assert_eq!(cache.hits(), 0);
        assert_eq!(cache.misses(), 3);
        // With room for both, the second pass is all hits.
        let mut cache = LruLibraryCache::new(2);
        for _ in 0..2 {
            cache.with_library(6, 500.0, TablePrep::Auto, |_| ());
            cache.with_library(6, 1000.0, TablePrep::Auto, |_| ());
        }
        assert_eq!(cache.hits(), 2);
        assert_eq!(cache.misses(), 2);
    }

    #[test]
    fn checkin_drops_duplicates_from_concurrent_rebuilds() {
        let mut cache = LruLibraryCache::new(4);
        let (a, _, _) = cache.checkout(6, 500.0, TablePrep::Auto);
        let (b, hit, _) = cache.checkout(6, 500.0, TablePrep::Auto);
        assert!(!hit, "checked-out key rebuilds cold");
        cache.checkin(a);
        cache.checkin(b);
        let (_, hit, _) = cache.checkout(6, 500.0, TablePrep::Auto);
        assert!(hit, "exactly one copy survives");
    }

    #[test]
    fn cache_distinguishes_table_preps_only_when_resolved_differently() {
        let mut cache = LruLibraryCache::new(4);
        // 6 cores is far below the eager threshold: `auto` resolves to
        // `eager`, so the two spellings share one entry.
        cache.with_library(6, 500.0, TablePrep::Auto, |_| ());
        cache.with_library(6, 500.0, TablePrep::Eager, |_| ());
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
        // An explicit lazy request must not reuse the eager tables...
        cache.with_library(6, 500.0, TablePrep::Lazy, |topos| {
            for tc in topos {
                assert_eq!(tc.table.prep(), TablePrep::Lazy);
            }
        });
        assert_eq!(cache.misses(), 2);
        // ...and both resolved variants stay resident side by side.
        cache.with_library(6, 500.0, TablePrep::Eager, |_| ());
        cache.with_library(6, 500.0, TablePrep::Lazy, |_| ());
        assert_eq!(cache.hits(), 3);
        assert_eq!(cache.misses(), 2);
    }

    #[test]
    fn probe_requests_append_sim_results() {
        let mut req = dsp_request();
        req.probe = Some(SimProbe::parse("uniform 0.05").unwrap());
        let mut runner = RequestRunner::new(2);
        let outcome = runner.run(&req).unwrap();
        assert!(
            outcome.line.contains(",\"sim\":{\"pattern\":\"uniform\""),
            "{}",
            outcome.line
        );
        assert!(
            !outcome.line.contains("\"probes\":"),
            "winner-only probes keep the historical report shape: {}",
            outcome.line
        );
        assert!(outcome.stats.probe_nanos > 0);
    }

    #[test]
    fn top_k_probes_append_per_candidate_drift() {
        let mut req = dsp_request();
        req.engine = SimEngine::EventDriven;
        // 99 candidates requested, clamped to the feasible count.
        req.probe = Some(SimProbe::parse("uniform 0.05 99").unwrap());
        let mut runner = RequestRunner::new(2);
        let outcome = runner.run(&req).unwrap();
        let line = &outcome.line;
        assert!(line.contains("\"probes\":[{\"rank\":1,"), "{line}");
        assert!(line.contains("\"engine\":\"event\""), "{line}");
        assert!(line.contains("\"analytical_latency_cycles\":"), "{line}");
        assert!(line.contains("\"latency_drift\":"), "{line}");
        let ranks = line.matches("\"rank\":").count();
        assert!(
            (2..=5).contains(&ranks),
            "drift entries clamp to the feasible candidates: {line}"
        );
        // The winner's "sim" object stays, bytes shared with the k=1
        // form (probes[0] is the same run).
        assert!(line.contains(",\"sim\":{\"pattern\":\"uniform\""), "{line}");
    }
}
